"""Shim for environments without the ``wheel`` package (offline install).

``pip install -e . --no-build-isolation`` falls back to this legacy
path; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
