"""Table 3: guard instructions elided by the verifier's range analysis (§5.4)."""

from repro.figures.table3 import format_table, run_guard_elision_table
from conftest import emit


def test_table3_guard_elision(benchmark):
    rows = benchmark.pedantic(run_guard_elision_table, rounds=1, iterations=1)
    emit("table3_guard_elision", format_table(rows))

    by_name = {r.function: r for r in rows}
    # Sketches: everything provable statically (the paper's footnote).
    for fn in ("countmin update", "countmin lookup",
               "countsketch update", "countsketch lookup"):
        assert by_name[fn].pct == 100.0
    # Pointer structures have elidable manipulation guards, and the
    # analysis removes the overwhelming majority (paper: 76% average;
    # our hand-emitted bytecode has provably-bounded indices everywhere,
    # so the measured rate is higher — see EXPERIMENTS.md).
    pointer_rows = [r for r in rows if r.total > 0]
    total = sum(r.total for r in pointer_rows)
    elided = sum(r.elided for r in pointer_rows)
    assert elided / total >= 0.76
