"""Figure 3: Memcached at 16 threads — the benefits persist (§5.1)."""

from repro.figures.memcached_figs import format_rows, run_memcached_comparison
from conftest import emit


def test_fig3_memcached_16threads(benchmark):
    results = benchmark.pedantic(
        lambda: run_memcached_comparison(
            n_servers=16, n_clients=128, total_requests=10_000
        ),
        rounds=1,
        iterations=1,
    )
    text = format_rows(results, title="Figure 3: Memcached, 16 server threads")
    emit("fig3_memcached_16t", text)

    for mix, by in results.items():
        assert by["KFlex"].throughput_mops > by["BMC"].throughput_mops
        assert by["KFlex"].throughput_mops > by["User space"].throughput_mops
