"""Verification-service benchmark: parallel + differential vs serial.

A fleet rollout re-verifies one extension *family* across every shard:
64 variants of a verification-heavy program (eight unbounded
pointer-chasing loops apiece — each loop forces widening and is its
own CFG region) that differ only in their final heap-store region, the
shape of a per-tenant patched artifact.  The serial baseline runs the
single-threaded ``Verifier.verify()`` over all 64 from scratch — the
pre-service world.  The service fans the batch over 4 worker
processes whose long-lived per-worker region memos make every variant
after a worker's first a differential re-verification: only the
changed tail region is re-explored, the rest replay from the memo and
merge to a bit-identical analysis (checked here against the serial
references).

Also measured: the single-program differential case — a 1-instruction
patch must re-explore < 50% of the regions.

Run under pytest (``pytest benchmarks/bench_verify_service.py``) or
standalone:

.. code-block:: console

    $ python benchmarks/bench_verify_service.py            # print results
    $ python benchmarks/bench_verify_service.py --update   # refresh baseline
    $ python benchmarks/bench_verify_service.py --check    # gate vs baseline

``--check`` enforces the acceptance floors (4-worker rollout >= 2x
over serial; 1-insn patch re-explores < 50% of regions) and compares
the measured speedup against the committed baseline
``benchmarks/results/BENCH_verify.json`` with 40% tolerance.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_verify.json"

#: Acceptance floors.
PARALLEL_SPEEDUP_FLOOR = 2.0
DIFF_REEXPLORE_CEILING = 0.5
#: Additional gate vs the committed baseline speedup.
REGRESSION_TOLERANCE = 0.40

N_PROGRAMS = 64
WORKERS = 4
N_LOOPS = 8
LOOP_BODY = 128
HEAP_SIZE = 1 << 16


def build_variant(variant: int):
    """One member of the rollout family: N_LOOPS unbounded list walks
    (one widened region each) plus a variant-specific heap-store tail —
    the only region that differs between family members."""
    from repro.ebpf.isa import Reg
    from repro.ebpf.macroasm import MacroAsm
    from repro.ebpf.program import Program

    R = Reg
    m = MacroAsm()
    m.mov(R.R0, 0)
    for i in range(N_LOOPS):
        m.heap_addr(R.R6, 0x40 + 8 * i)  # &head_i
        m.ldx(R.R7, R.R6)                # e = head_i
        with m.while_("!=", R.R7, 0):    # unbounded: widened
            for j in range(LOOP_BODY):
                m.ldx(R.R2, R.R7, 8 * (j % 4))
                m.add(R.R0, R.R2)
            m.ldx(R.R7, R.R7, 8)         # e = e->next
    m.heap_addr(R.R3, 0x800 + 8 * (variant % 64))
    m.stx(R.R3, R.R0)
    m.exit()
    return Program(f"rollout{variant}", m.assemble(), hook="bench",
                   heap_size=HEAP_SIZE)


def _trivial_program(name="warm"):
    from repro.ebpf.isa import Reg
    from repro.ebpf.macroasm import MacroAsm
    from repro.ebpf.program import Program

    m = MacroAsm()
    m.mov(Reg.R0, 0)
    m.exit()
    return Program(name, m.assemble(), hook="bench", heap_size=HEAP_SIZE)


def run_benchmark() -> dict:
    from repro.ebpf.verifier import Verifier, VerifierConfig
    from repro.verify import VerificationService, VerifyJob

    progs = [build_variant(v) for v in range(N_PROGRAMS)]

    # Serial baseline: single-threaded verifier, from scratch each time.
    t0 = time.perf_counter()
    refs = [Verifier(p, VerifierConfig()).verify() for p in progs]
    serial_s = time.perf_counter() - t0

    # The service, as a fleet runs it: a long-lived pool (fork +
    # interpreter warmup are deployment one-time costs, primed here
    # with trivial programs that share nothing with the family), then
    # one timed 64-program rollout batch.
    svc = VerificationService(workers=WORKERS, poll_s=0.02)
    try:
        svc.submit_batch(
            [VerifyJob(_trivial_program(f"w{i}")) for i in range(2 * WORKERS)]
        )
        t0 = time.perf_counter()
        outs = svc.submit_batch([VerifyJob(p) for p in progs])
        parallel_s = time.perf_counter() - t0
    finally:
        svc.close()

    mismatches = sum(
        1 for out, ref in zip(outs, refs)
        if not out.ok or out.analysis != ref
    )
    regions_total = sum(o.regions_total for o in outs)
    regions_reused = sum(o.regions_reused for o in outs)

    # Differential re-verification: patch ONE instruction (the tail
    # store offset) and re-verify through a warm memo.
    diff_svc = VerificationService(workers=0)
    base = build_variant(0)
    diff_svc.verify(base)
    patched_insns = list(base.insns)
    idx = max(i for i, ins in enumerate(patched_insns) if ins.is_ld_imm64)
    patched_insns[idx] = dataclasses.replace(patched_insns[idx], imm64=0x808)
    from repro.ebpf.program import Program

    patched = Program("rollout0p", patched_insns, hook="bench",
                      heap_size=HEAP_SIZE)
    out = diff_svc.submit_batch([VerifyJob(patched)])[0]
    diff_ok = out.ok and out.analysis == Verifier(
        patched, VerifierConfig()
    ).verify()
    diff_fraction = (
        (out.regions_total - out.regions_reused) / out.regions_total
    )

    return {
        "workload": f"{N_PROGRAMS}-program rollout, {WORKERS} workers",
        "program_insns": len(progs[0].insns),
        "regions_per_program": outs[0].regions_total,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "mismatches": mismatches,
        "regions_total": regions_total,
        "regions_reused": regions_reused,
        "differential_saved": round(regions_reused / regions_total, 3),
        "diff_regions_total": out.regions_total,
        "diff_regions_reexplored": out.regions_total - out.regions_reused,
        "diff_reexplore_fraction": round(diff_fraction, 3),
        "diff_identical": bool(diff_ok),
    }


def format_result(r: dict) -> str:
    return "\n".join([
        f"verification-service benchmark ({r['workload']}, "
        f"{r['program_insns']} insns each)",
        f"  serial      {r['serial_s']:8.3f} s   (single-threaded verifier)",
        f"  service     {r['parallel_s']:8.3f} s   (pool + differential memos)",
        f"  speedup     {r['speedup']:8.2f} x   "
        f"(floor {PARALLEL_SPEEDUP_FLOOR}x)",
        f"  regions     {r['regions_reused']}/{r['regions_total']} reused "
        f"({100 * r['differential_saved']:.0f}% differential savings)",
        f"  1-insn patch re-explores "
        f"{r['diff_regions_reexplored']}/{r['diff_regions_total']} regions "
        f"({100 * r['diff_reexplore_fraction']:.0f}%, "
        f"ceiling {100 * DIFF_REEXPLORE_CEILING:.0f}%)",
        f"  bit-identical to serial: "
        f"{'yes' if not r['mismatches'] and r['diff_identical'] else 'NO'}",
    ])


def check_result(r: dict) -> tuple[bool, str]:
    if r["mismatches"] or not r["diff_identical"]:
        return False, f"{r['mismatches']} analyses diverged from serial"
    if r["speedup"] < PARALLEL_SPEEDUP_FLOOR:
        return False, (
            f"rollout speedup {r['speedup']:.2f}x below the "
            f"{PARALLEL_SPEEDUP_FLOOR}x acceptance floor"
        )
    if r["diff_reexplore_fraction"] >= DIFF_REEXPLORE_CEILING:
        return False, (
            f"1-insn patch re-explored "
            f"{100 * r['diff_reexplore_fraction']:.0f}% of regions "
            f"(ceiling {100 * DIFF_REEXPLORE_CEILING:.0f}%)"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; floor-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    ok = r["speedup"] >= floor
    msg = (
        f"speedup {r['speedup']:.2f}x vs baseline "
        f"{baseline['speedup']:.2f}x (floor {floor:.2f}x): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_verify_service_rollout():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_verify", format_result(result))
    ok, msg = check_result(result)
    assert ok, msg + "\n" + format_result(result)


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_verify.json")
    p.add_argument("--check", action="store_true",
                   help="fail below the floors or on a >40%% baseline "
                        "regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
