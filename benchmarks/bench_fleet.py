"""Fleet benchmark: live scale-out migration time, zero failed cutover.

Elastic scale is only practical if growing the fleet is fast and
invisible: the new shard's ring segment ships over snapshot + WAL-tail
while the fleet keeps serving, and the atomic cutover *holds* requests
behind the router's pause gate rather than failing them.  This
benchmark gates both:

* **Migration time** — a 2-shard fleet is seeded with a full key
  population, then grown to 3 while a closed-loop TCP load generator
  hammers the front.  The clock runs over the whole ``apply`` (segment
  images + tail catch-up + paused cutover + source cleanup); must
  finish within ``MIGRATION_BUDGET_S`` and not regress >50% vs the
  committed baseline.

* **Requests failed during cutover** — must be exactly zero.  The
  pause gate turns the ring flip into added latency, never refusals;
  a single failed request fails the gate.

.. code-block:: console

    $ python benchmarks/bench_fleet.py            # print results
    $ python benchmarks/bench_fleet.py --update   # refresh baseline
    $ python benchmarks/bench_fleet.py --check    # gate (make bench-fleet)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_fleet.json"

#: Acceptance budget: apply(shards=3) wall time under load, seconds.
MIGRATION_BUDGET_S = 30.0
#: Loose regression gate vs the committed baseline (wall clock).
REGRESSION_TOLERANCE = 0.50

N_KEYS = 2000
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 500


def _workload(cid, seq):
    from repro.apps.memcached import protocol as P

    key = (cid * 7919 + seq) % N_KEYS
    if seq % 4 == 0:
        return key, P.encode_set(key, cid * 100_000 + seq)
    return key, P.encode_get(key)


def run_benchmark() -> dict:
    from repro.apps.memcached import protocol as P
    from repro.fleet import FleetController, FleetSpec
    from repro.net import TcpLoadGenerator

    async def run() -> dict:
        fleet = await FleetController().start(n_shards=2)
        # Full key population: the migration moves a real segment, not
        # an empty map.
        seed = TcpLoadGenerator(
            [fleet.port],
            lambda cid, seq: (seq, P.encode_set(seq, seq * 3 + 1)),
            n_clients=1, requests_per_client=N_KEYS,
        )
        sres = await seed.run()
        assert sres.failures == 0

        gen = TcpLoadGenerator(
            [fleet.port], _workload, n_clients=N_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
        )
        load = asyncio.ensure_future(gen.run())
        await asyncio.sleep(0.1)
        t0 = time.perf_counter()
        report = await fleet.apply(FleetSpec(shards=3))
        migration_s = time.perf_counter() - t0
        res = await load

        entries_moved = sum(m.entries_moved for m in report["migrations"])
        tail_records = sum(m.tail_records for m in report["migrations"])
        rescans = sum(m.rescans for m in report["migrations"])
        out = {
            "scale_out_s": round(migration_s, 3),
            "entries_moved": entries_moved,
            "tail_records": tail_records,
            "rescans": rescans,
            "requests_during": res.requests,
            "failed_during": res.failures,
            "retries_during": res.retries,
            "ring_after": list(fleet.ring.nodes),
        }
        await fleet.stop()
        return out

    return {
        "workload": f"scale-out 2->3 under {N_CLIENTS}-client closed-loop "
                    f"TCP load, {N_KEYS} seeded keys",
        "scale_out": asyncio.run(run()),
    }


def format_result(result: dict) -> str:
    so = result["scale_out"]
    return (
        "fleet benchmark (live scale-out migration)\n"
        f"  scale-out 2->3: {so['scale_out_s']:.3f}s "
        f"({so['entries_moved']} entries + {so['tail_records']} tail "
        f"records migrated, {so['rescans']} rescans)\n"
        f"  during cutover: {so['requests_during']} requests, "
        f"{so['failed_during']} failed, {so['retries_during']} retries "
        f"(budget {MIGRATION_BUDGET_S}s, failures must be 0)"
    )


def check_result(result: dict) -> tuple[bool, str]:
    so = result["scale_out"]
    if so["failed_during"] != 0:
        return False, (
            f"{so['failed_during']} requests failed during the live "
            f"migration — the cutover must hold requests, not refuse them"
        )
    if so["entries_moved"] <= 0:
        return False, "migration moved no entries (empty segment?)"
    if so["scale_out_s"] > MIGRATION_BUDGET_S:
        return False, (
            f"scale-out took {so['scale_out_s']:.2f}s, over the "
            f"{MIGRATION_BUDGET_S}s budget"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; budget-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    base_s = baseline["scale_out"]["scale_out_s"]
    ceiling = max(base_s * (1.0 + REGRESSION_TOLERANCE), 1.0)
    ok = so["scale_out_s"] <= ceiling
    msg = (
        f"scale-out {so['scale_out_s']:.3f}s vs baseline {base_s:.3f}s "
        f"(ceiling {ceiling:.3f}s), 0 failed during cutover: "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_fleet_benchmark():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_fleet", format_result(result))
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_fleet.json")
    p.add_argument("--check", action="store_true",
                   help="fail on any request failed during cutover, the "
                        "migration budget, or a >50%% baseline regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
