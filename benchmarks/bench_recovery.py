"""Durability benchmark: WAL overhead on the hot path + recovery time.

Durable state is only practical if (a) journaling acknowledged writes
costs little on the serving path and (b) a crashed shard's replacement
comes back fast.  This benchmark gates both:

* **WAL overhead** — the map-authoritative Memcached extension
  (:mod:`repro.apps.memcached.durable_ext`) serves the Fig-2 workload
  shape (Zipfian(0.99) keys, 32 B keys/values, the paper's three
  GET:SET mixes) through real XDP invocations, once with no store and
  once with every SET journaled + flushed (``sync_every=1`` — the
  acked=>durable configuration the failover test relies on).  The gate:
  on the canonical 90:10 mix the WAL may cost at most
  ``OVERHEAD_CEILING`` of throughput.  SET-heavy mixes are reported
  for the curve but not gated — journaling is per-SET, so overhead
  scales with the SET share by construction.

* **Warm recovery** — a 100k-entry map is snapshotted to real files
  (:class:`~repro.state.storage.DirStorage`), then rebuilt into a
  fresh kernel the way ``KFlexRuntime.recover`` would; must finish
  within ``RECOVERY_BUDGET_S``.

.. code-block:: console

    $ python benchmarks/bench_recovery.py            # print results
    $ python benchmarks/bench_recovery.py --update   # refresh baseline
    $ python benchmarks/bench_recovery.py --check    # gate (make bench-recovery)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_recovery.json"

#: Acceptance ceiling: WAL-on throughput loss on the 90:10 mix.
OVERHEAD_CEILING = 0.15
#: Acceptance budget: warm recovery of a 100k-entry map, seconds.
RECOVERY_BUDGET_S = 5.0
#: Loose regression gate vs the committed baseline (wall clock).
REGRESSION_TOLERANCE = 0.50

MIXES = {"90:10": 0.9, "50:50": 0.5, "10:90": 0.1}
N_REQUESTS = 4000
N_KEYS = 1000
MAP_CAPACITY = 2048
ZIPF_S = 0.99
BEST_OF = 3

RECOVERY_ENTRIES = 100_000


def _zipf_keys(rng: random.Random, n: int) -> list[int]:
    weights = [1.0 / (k + 1) ** ZIPF_S for k in range(N_KEYS)]
    return rng.choices(range(N_KEYS), weights=weights, k=n)


def _requests(mix_ratio: float, seed: str) -> list[bytes]:
    from repro.apps.memcached import protocol as P

    rng = random.Random(f"bench-recovery:{seed}")  # deterministic per mix
    return [
        P.encode_get(key) if rng.random() < mix_ratio
        else P.encode_set(key, key * 7 + 1)
        for key in _zipf_keys(rng, N_REQUESTS)
    ]


def _serve(requests: list[bytes], store) -> float:
    """One serving run: returns wall-clock seconds for all requests."""
    from repro.apps.memcached import protocol as P
    from repro.apps.memcached.durable_ext import build_durable_memcached_program
    from repro.core.runtime import KFlexRuntime
    from repro.ebpf.maps import HashMap
    from repro.kernel.machine import Kernel

    rt = KFlexRuntime(Kernel())
    cache = HashMap(
        rt.kernel.aspace, rt.kernel.vmalloc,
        key_size=P.KEY_SIZE, value_size=P.VAL_SIZE,
        max_entries=MAP_CAPACITY,
    )
    if store is not None:
        rt.pin_map("bench/cache", cache, store)
    ext = rt.load(build_durable_memcached_program(cache), mode="ebpf")
    # Warm the table so GETs mostly hit, as in the Fig-2 setup.
    for key in range(int(N_KEYS * 0.6)):
        cache.update(P.key_bytes(key), P.value_bytes(key))
    t0 = time.perf_counter()
    for pkt in requests:
        ext.invoke(ext.xdp_ctx(pkt, 0), cpu=0)
    return time.perf_counter() - t0


def bench_wal_overhead() -> dict:
    from repro.state import DurableStore, MemStorage

    out = {}
    for mix, ratio in MIXES.items():
        requests = _requests(ratio, seed=mix)
        off = min(_serve(requests, None) for _ in range(BEST_OF))
        on = min(
            _serve(
                requests,
                DurableStore(storage=MemStorage(), sync_every=1),
            )
            for _ in range(BEST_OF)
        )
        out[mix] = {
            "wal_off_krps": round(N_REQUESTS / off / 1e3, 2),
            "wal_on_krps": round(N_REQUESTS / on / 1e3, 2),
            "overhead": round((on - off) / off, 4),
        }
    return out


def bench_warm_recovery() -> dict:
    from repro.ebpf.maps import HashMap
    from repro.kernel.machine import Kernel
    from repro.state import DirStorage, DurableStore

    with tempfile.TemporaryDirectory(prefix="kflex-bench-rec.") as tmp:
        store = DurableStore(storage=DirStorage(tmp), sync_every=None)
        k = Kernel()
        m = HashMap(
            k.aspace, k.vmalloc,
            key_size=8, value_size=16, max_entries=RECOVERY_ENTRIES,
        )
        store.attach("bench/big", m)
        for i in range(RECOVERY_ENTRIES):
            m.update(
                i.to_bytes(8, "little"),
                (i * 2654435761 % (1 << 128)).to_bytes(16, "little"),
            )
        store.wal("bench/big").flush()
        store.snapshot("bench/big")  # recovery will be snapshot-only
        store.close()

        best = float("inf")
        for _ in range(BEST_OF):
            store2 = DurableStore(storage=DirStorage(tmp))
            k2 = Kernel()
            t0 = time.perf_counter()
            m2, rec = store2.recover_map("bench/big", k2.aspace, k2.vmalloc)
            best = min(best, time.perf_counter() - t0)
            assert rec.recovered_seq == RECOVERY_ENTRIES
            assert len(m2) == RECOVERY_ENTRIES
            store2.close()
    return {
        "entries": RECOVERY_ENTRIES,
        "recovery_s": round(best, 3),
        "entries_per_s": round(RECOVERY_ENTRIES / best),
    }


def run_benchmark() -> dict:
    return {
        "workload": "durable memcached WAL overhead + warm recovery",
        "wal": bench_wal_overhead(),
        "recovery": bench_warm_recovery(),
    }


def format_result(result: dict) -> str:
    lines = ["durability benchmark (WAL on hot path, warm recovery)"]
    for mix, row in result["wal"].items():
        gate = "  (gated)" if mix == "90:10" else ""
        lines.append(
            f"  {mix}: {row['wal_off_krps']:8.1f} -> "
            f"{row['wal_on_krps']:8.1f} kreq/s, "
            f"overhead {row['overhead'] * 100:5.1f}%{gate}"
        )
    rec = result["recovery"]
    lines.append(
        f"  recovery: {rec['entries']:,} entries in {rec['recovery_s']:.3f}s "
        f"({rec['entries_per_s']:,} entries/s, budget {RECOVERY_BUDGET_S}s)"
    )
    return "\n".join(lines)


def check_result(result: dict) -> tuple[bool, str]:
    overhead = result["wal"]["90:10"]["overhead"]
    if overhead > OVERHEAD_CEILING:
        return False, (
            f"WAL overhead {overhead * 100:.1f}% on the 90:10 mix exceeds "
            f"the {OVERHEAD_CEILING * 100:.0f}% ceiling"
        )
    rec_s = result["recovery"]["recovery_s"]
    if rec_s > RECOVERY_BUDGET_S:
        return False, (
            f"warm recovery took {rec_s:.2f}s, over the "
            f"{RECOVERY_BUDGET_S}s budget"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; ceiling-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    base_rec = baseline["recovery"]["recovery_s"]
    ceiling = base_rec * (1.0 + REGRESSION_TOLERANCE)
    ok = rec_s <= ceiling
    msg = (
        f"overhead {overhead * 100:.1f}% (ceiling "
        f"{OVERHEAD_CEILING * 100:.0f}%), recovery {rec_s:.3f}s vs baseline "
        f"{base_rec:.3f}s (ceiling {ceiling:.3f}s): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_recovery_benchmark():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_recovery", format_result(result))
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_recovery.json")
    p.add_argument("--check", action="store_true",
                   help="fail over the 15%% overhead ceiling, the "
                        "recovery budget, or a >50%% baseline regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
