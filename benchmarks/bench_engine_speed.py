"""Engine micro-benchmark: reference interpreter vs threaded engine.

Times the Fig. 5 data-structure workload (update/lookup/delete over
hashmap, linked list, skiplist) end-to-end through ``KFlexRuntime``
under each execution engine and emits machine-readable
``BENCH_engine.json`` so the perf trajectory is tracked across PRs.

The headline ``speedup`` is aggregate wall-clock (interp total /
threaded total) over the whole workload.  Cost-model output (cycle
accounting) is engine-independent; only wall-clock changes.

Run under pytest (``pytest benchmarks/bench_engine_speed.py``) or
standalone:

.. code-block:: console

    $ python benchmarks/bench_engine_speed.py            # print + write json
    $ python benchmarks/bench_engine_speed.py --update   # refresh baseline
    $ python benchmarks/bench_engine_speed.py --check    # gate vs baseline

``--check`` compares the measured *speedup ratio* (not absolute
wall-clock, which is machine-dependent) against the committed baseline
and fails if the threaded engine regressed more than 20%.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

HERE = pathlib.Path(__file__).parent
RESULTS_JSON = HERE / "results" / "BENCH_engine.json"
BASELINE_JSON = HERE / "BENCH_engine.json"

#: Fig. 5 structures exercised (rbtree/sketches behave like hashmap —
#: short programs; the pointer-chasing structures are the hot case).
STRUCTURES = ("hashmap", "linkedlist", "skiplist")
ENGINES = ("interp", "threaded")

#: >20% regression of the speedup ratio fails ``--check``.
REGRESSION_TOLERANCE = 0.20

N_ELEMS = {"hashmap": 1024, "linkedlist": 192, "skiplist": 512}
N_OPS = {"hashmap": 1500, "linkedlist": 250, "skiplist": 500}
REPEATS = 3


def _time_structure(engine: str, struct: str) -> float:
    """Wall-clock seconds for one op mix on a freshly built structure."""
    from repro.core.runtime import KFlexRuntime
    from repro.apps.datastructures import ALL_STRUCTURES

    rt = KFlexRuntime(engine=engine)
    ds = ALL_STRUCTURES[struct](rt)
    n_elems = N_ELEMS[struct]
    n_ops = N_OPS[struct]
    for k in range(n_elems):
        ds.update(k, k ^ 0xABCD)
    rng = random.Random(11)
    # Fig. 5 mix: lookup-heavy with updates and occasional deletes.
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        k = rng.randrange(n_elems)
        ops.append(("lookup" if r < 0.7 else "update" if r < 0.9 else "delete", k))
    for op, k in ops[: n_ops // 10]:  # warm caches / translation
        getattr(ds, op)(k) if op != "update" else ds.update(k, k)
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for op, k in ops:
            if op == "update":
                ds.update(k, k * 7 + 1)
            elif op == "lookup":
                ds.lookup(k)
            else:
                ds.delete(k)
        best = min(best, time.perf_counter() - t0)
    return best


def run_benchmark() -> dict:
    per_struct: dict[str, dict[str, float]] = {}
    totals = dict.fromkeys(ENGINES, 0.0)
    for struct in STRUCTURES:
        per_struct[struct] = {}
        for engine in ENGINES:
            t = _time_structure(engine, struct)
            per_struct[struct][engine] = t
            totals[engine] += t
    result = {
        "workload": "fig5-datastructures",
        "structures": {
            s: {
                "interp_s": round(v["interp"], 6),
                "threaded_s": round(v["threaded"], 6),
                "speedup": round(v["interp"] / v["threaded"], 3),
            }
            for s, v in per_struct.items()
        },
        "interp_total_s": round(totals["interp"], 6),
        "threaded_total_s": round(totals["threaded"], 6),
        "speedup": round(totals["interp"] / totals["threaded"], 3),
    }
    return result


def format_result(result: dict) -> str:
    lines = ["engine micro-benchmark (Fig 5 workload)"]
    for s, row in result["structures"].items():
        lines.append(
            f"  {s:<12s} interp {row['interp_s'] * 1e3:9.1f} ms   "
            f"threaded {row['threaded_s'] * 1e3:9.1f} ms   "
            f"speedup {row['speedup']:5.2f}x"
        )
    lines.append(
        f"  {'total':<12s} interp {result['interp_total_s'] * 1e3:9.1f} ms   "
        f"threaded {result['threaded_total_s'] * 1e3:9.1f} ms   "
        f"speedup {result['speedup']:5.2f}x"
    )
    return "\n".join(lines)


def write_results(result: dict) -> None:
    RESULTS_JSON.parent.mkdir(exist_ok=True)
    RESULTS_JSON.write_text(json.dumps(result, indent=2) + "\n")


def check_against_baseline(result: dict) -> tuple[bool, str]:
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; skipping gate"
    baseline = json.loads(BASELINE_JSON.read_text())
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    ok = result["speedup"] >= floor
    msg = (
        f"speedup {result['speedup']:.2f}x vs baseline "
        f"{baseline['speedup']:.2f}x (floor {floor:.2f}x): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_engine_speed():
    from conftest import emit

    result = run_benchmark()
    write_results(result)
    emit("BENCH_engine", format_result(result))
    # The threaded engine must be a clear win over the reference
    # interpreter on the aggregate workload.  (The committed baseline
    # records the >=3x acceptance measurement; this run-time assertion
    # is looser to tolerate loaded CI machines.)
    assert result["speedup"] >= 2.0, format_result(result)
    ok, msg = check_against_baseline(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_engine.json")
    p.add_argument("--check", action="store_true",
                   help="fail if speedup regressed >20%% vs the baseline")
    args = p.parse_args(argv)

    result = run_benchmark()
    write_results(result)
    print(format_result(result))
    if args.update:
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_against_baseline(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
