"""Ablation: SFI with and without range-analysis guard elision (§5.4).

The paper's Table 3 argues the verifier co-design is crucial for low
overhead; this ablation measures it end-to-end by loading the same
structures with elision disabled (every heap access guarded).
"""

import random

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures import ALL_STRUCTURES
from repro.sim.costs import UNITS_TO_NS
from conftest import emit

STRUCTURES = ["hashmap", "rbtree", "linkedlist", "skiplist"]
N_ELEMS = 1024
N_SAMPLES = 25


def _mean_op_ns(ds, op: str, rng) -> float:
    total = 0
    deleted = []
    for _ in range(N_SAMPLES):
        k = rng.randrange(N_ELEMS)
        if op == "update":
            ds.update(k, rng.randrange(1 << 30))
        elif op == "lookup":
            ds.lookup(k)
        else:
            ds.delete(k)
            deleted.append(k)
        total += ds.op_cost(op)
    for k in deleted:
        ds.update(k, k)
    return total / N_SAMPLES * UNITS_TO_NS


def run_ablation():
    out = {}
    for name in STRUCTURES:
        per = {}
        for label, kwargs in (("elision", {}), ("no-elision", {"elision": False})):
            ds = ALL_STRUCTURES[name](KFlexRuntime(), **kwargs)
            rng = random.Random(17)
            for k in range(N_ELEMS):
                ds.update(k, k)
            per[label] = {
                op: _mean_op_ns(ds, op, rng) for op in ds.OPS
            }
            per.setdefault("guards", {})[label] = {
                op: ds.op_stats(op).guards_emitted for op in ds.OPS
            }
        out[name] = per
    return out


def test_ablation_guard_elision(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["Ablation: range-analysis guard elision (on vs off)"]
    for name, per in results.items():
        for op in per["elision"]:
            on, off = per["elision"][op], per["no-elision"][op]
            g_on = per["guards"]["elision"][op]
            g_off = per["guards"]["no-elision"][op]
            lines.append(
                f"   {name:<11s}{op:<8s} {on:8.1f} ns -> {off:8.1f} ns "
                f"(+{100 * (off / on - 1):5.1f}%)  guards {g_on} -> {g_off}"
            )
            # Disabling elision must emit strictly more guards and must
            # never make execution cheaper.
            assert g_off >= g_on
            assert off >= on - 1e-9
    emit("ablation_elision", "\n".join(lines))
