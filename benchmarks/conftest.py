"""Shared benchmark plumbing.

Each benchmark regenerates one paper figure/table.  Results are saved
under ``benchmarks/results/`` and replayed in pytest's terminal summary
(which survives output capture), so a plain
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
every figure's rows.
"""

import pathlib

from repro.ebpf.engine import ENGINES, set_default_engine

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--engine",
        action="store",
        default=None,
        choices=sorted(ENGINES),
        help="execution engine for all benchmarks (default: threaded, "
        "or the REPRO_ENGINE env var)",
    )


def pytest_configure(config):
    engine = config.getoption("--engine", default=None)
    if engine:
        set_default_engine(engine)


def pytest_collection_modifyitems(items):
    import pytest

    for item in items:
        item.add_marker(pytest.mark.bench)

_EMITTED: list = []


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    _EMITTED.append(text)


def pytest_terminal_summary(terminalreporter):
    if not _EMITTED:
        return
    terminalreporter.section("reproduced paper results")
    for block in _EMITTED:
        terminalreporter.write_line("")
        for line in block.splitlines():
            terminalreporter.write_line(line)
