"""Replication benchmark: quorum-ack overhead + promotion time.

Replicated durable state is only practical if (a) waiting for follower
acks costs little on the serving path and (b) a killed primary's
replica set starts answering again fast.  This benchmark gates both:

* **Quorum-ack overhead** — the map-authoritative Memcached extension
  serves the Fig-2 workload shape (Zipfian(0.99) keys, the paper's
  three GET:SET mixes) through real XDP invocations, once over a
  single-node durable store (``sync_every=1``, the acked=>durable
  baseline) and once with every journaled record shipped to follower
  replicas and the ack held for ``sync_replicas=k`` confirmations
  (in-process channels, so the number is the shipping pipeline's CPU
  cost, not loopback RTT).  The gate: on the canonical 90:10 mix the
  per-request p50 at k=1 may cost at most ``P50_OVERHEAD_CEILING``
  over single-node durable.  k=2 and SET-heavy mixes are reported for
  the curve but not gated — shipping is per-SET, so overhead scales
  with the SET share by construction.

* **Promotion time** — a real replica set (primary ShardWorker + two
  follower nodes over TCP, as in ``tests/test_net_replication.py``)
  serves acked SETs, the primary is killed (``kill -9`` analog), and
  the clock runs from the kill to the first request served by the
  promoted follower; must finish within ``PROMOTION_BUDGET_S``.

.. code-block:: console

    $ python benchmarks/bench_replication.py            # print results
    $ python benchmarks/bench_replication.py --update   # refresh baseline
    $ python benchmarks/bench_replication.py --check    # gate (make bench-replication)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import statistics
import sys
import tempfile
import time

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_replication.json"

#: Acceptance ceiling: p50 per-request cost of quorum k=1 on the
#: 90:10 mix, relative to single-node durable.
P50_OVERHEAD_CEILING = 0.35
#: Acceptance budget: primary kill -> first served request, seconds.
PROMOTION_BUDGET_S = 10.0
#: Loose regression gate vs the committed baseline (wall clock).
REGRESSION_TOLERANCE = 0.50

MIXES = {"90:10": 0.9, "50:50": 0.5, "10:90": 0.1}
N_REQUESTS = 3000
N_KEYS = 1000
MAP_CAPACITY = 2048
ZIPF_S = 0.99
BEST_OF = 3


def _zipf_keys(rng: random.Random, n: int) -> list[int]:
    weights = [1.0 / (k + 1) ** ZIPF_S for k in range(N_KEYS)]
    return rng.choices(range(N_KEYS), weights=weights, k=n)


def _requests(mix_ratio: float, seed: str) -> list[bytes]:
    from repro.apps.memcached import protocol as P

    rng = random.Random(f"bench-replication:{seed}")
    return [
        P.encode_get(key) if rng.random() < mix_ratio
        else P.encode_set(key, key * 7 + 1)
        for key in _zipf_keys(rng, N_REQUESTS)
    ]


def _serve(requests: list[bytes], n_followers: int, k: int) -> list[float]:
    """One serving run; returns per-request wall-clock seconds.

    ``n_followers=0`` is the single-node durable baseline.  With
    followers, each SET's journaled record is shipped over in-process
    channels and the 'reply' waits for ``k`` durable follower acks —
    the same stage/commit split the serving layer uses."""
    from repro.apps.memcached import protocol as P
    from repro.apps.memcached.durable_ext import build_durable_memcached_program
    from repro.core.runtime import KFlexRuntime
    from repro.ebpf.maps import HashMap
    from repro.kernel.machine import Kernel
    from repro.state import DurableStore, MemStorage
    from repro.state.replication import (
        LocalChannel,
        QuorumShipper,
        ReplicaSession,
    )

    shipper = None
    if n_followers:
        channels = [
            LocalChannel(f"n{i}", ReplicaSession(MemStorage(),
                                                 node_id=f"n{i}"))
            for i in range(n_followers)
        ]
        shipper = QuorumShipper(channels, sync_replicas=k,
                                maintenance_every=None)
    rt = KFlexRuntime(Kernel())
    cache = HashMap(
        rt.kernel.aspace, rt.kernel.vmalloc,
        key_size=P.KEY_SIZE, value_size=P.VAL_SIZE,
        max_entries=MAP_CAPACITY,
    )
    store = DurableStore(storage=MemStorage(), sync_every=1,
                         shipper=shipper)
    rt.pin_map("bench/cache", cache, store)
    ext = rt.load(build_durable_memcached_program(cache), mode="ebpf")
    for key in range(int(N_KEYS * 0.6)):
        cache.update(P.key_bytes(key), P.value_bytes(key))
    if shipper is not None:
        shipper.commit()  # ship the warmup out of the measured window
    samples = []
    for pkt in requests:
        t0 = time.perf_counter()
        ext.invoke(ext.xdp_ctx(pkt, 0), cpu=0)
        if shipper is not None and shipper.has_staged():
            shipper.commit()
        samples.append(time.perf_counter() - t0)
    return samples


def _p50_us(samples: list[float]) -> float:
    return statistics.median(samples) * 1e6


def bench_quorum_overhead() -> dict:
    out = {}
    for mix, ratio in MIXES.items():
        requests = _requests(ratio, seed=mix)
        legs = {}
        for name, (nf, k) in {
            "single": (0, 0), "k1": (2, 1), "k2": (2, 2),
        }.items():
            best = min(
                (_serve(requests, nf, k) for _ in range(BEST_OF)),
                key=statistics.median,
            )
            legs[name] = best
        base = _p50_us(legs["single"])
        out[mix] = {
            "single_p50_us": round(base, 3),
            "k1_p50_us": round(_p50_us(legs["k1"]), 3),
            "k2_p50_us": round(_p50_us(legs["k2"]), 3),
            "k1_overhead": round((_p50_us(legs["k1"]) - base) / base, 4),
            "k2_overhead": round((_p50_us(legs["k2"]) - base) / base, 4),
            "single_krps": round(
                N_REQUESTS / sum(legs["single"]) / 1e3, 2
            ),
            "k1_krps": round(N_REQUESTS / sum(legs["k1"]) / 1e3, 2),
        }
    return out


def bench_promotion_time() -> dict:
    """Primary kill -> first reply from the promoted follower (TCP)."""
    import asyncio

    from repro.apps.memcached import protocol as P
    from repro.net import TcpDatapath, TcpLoadGenerator
    from repro.net.replica import ReplicatedFailover, ReplicatedShard
    from repro.net.shard import ConsistentHashRing, ShardRouterService

    async def run(root) -> dict:
        loop = asyncio.get_running_loop()
        rset = ReplicatedShard(0, root, n_replicas=2, sync_replicas=1,
                               capacity=MAP_CAPACITY)
        await loop.run_in_executor(None, rset.start_followers)
        primary = rset.build_primary(n_workers=2)
        primary.start()
        await loop.run_in_executor(None, primary.wait_ready)
        workers = [primary]
        failover = ReplicatedFailover(workers, [rset], n_workers=2)
        router = ShardRouterService(
            workers, ConsistentHashRing(1),
            lambda p: P.decode_request(p)[1], failover=failover,
        )
        front = await TcpDatapath(router).start()
        # Acked, replicated state for the promotee to serve.
        seed = TcpLoadGenerator(
            [front.port],
            lambda cid, seq: (seq % 256, P.encode_set(seq % 256, seq)),
            n_clients=2, requests_per_client=256,
        )
        res = await seed.run()
        assert res.failures == 0
        t0 = time.perf_counter()
        await loop.run_in_executor(None, primary.crash)
        probe = TcpLoadGenerator(
            [front.port],
            lambda cid, seq: (0, P.encode_get(0)),
            n_clients=1, requests_per_client=1,
        )
        pres = await probe.run()
        promotion_s = time.perf_counter() - t0
        assert pres.failures == 0
        assert rset.promotions == 1
        await front.stop()
        await loop.run_in_executor(None, failover.workers[0].shutdown)
        await loop.run_in_executor(None, rset.stop)
        return {
            "acked_before_kill": res.requests,
            "promotion_to_first_reply_s": round(promotion_s, 3),
            "epoch_after": rset.epoch,
        }

    with tempfile.TemporaryDirectory(prefix="kflex-bench-repl.") as tmp:
        return asyncio.run(run(tmp))


def run_benchmark() -> dict:
    return {
        "workload": "quorum-ack overhead (in-process shipping) + "
                    "promotion time (TCP replica set)",
        "quorum": bench_quorum_overhead(),
        "promotion": bench_promotion_time(),
    }


def format_result(result: dict) -> str:
    lines = ["replication benchmark (quorum-ack overhead, promotion time)"]
    for mix, row in result["quorum"].items():
        gate = "  (gated)" if mix == "90:10" else ""
        lines.append(
            f"  {mix}: p50 {row['single_p50_us']:7.2f}us single -> "
            f"{row['k1_p50_us']:7.2f}us k=1 "
            f"({row['k1_overhead'] * 100:+5.1f}%), "
            f"{row['k2_p50_us']:7.2f}us k=2 "
            f"({row['k2_overhead'] * 100:+5.1f}%){gate}"
        )
    pro = result["promotion"]
    lines.append(
        f"  promotion: kill -> first reply in "
        f"{pro['promotion_to_first_reply_s']:.3f}s "
        f"({pro['acked_before_kill']} acked writes promoted, "
        f"epoch {pro['epoch_after']}, budget {PROMOTION_BUDGET_S}s)"
    )
    return "\n".join(lines)


def check_result(result: dict) -> tuple[bool, str]:
    overhead = result["quorum"]["90:10"]["k1_overhead"]
    if overhead > P50_OVERHEAD_CEILING:
        return False, (
            f"quorum k=1 p50 overhead {overhead * 100:.1f}% on the 90:10 "
            f"mix exceeds the {P50_OVERHEAD_CEILING * 100:.0f}% ceiling"
        )
    promo_s = result["promotion"]["promotion_to_first_reply_s"]
    if promo_s > PROMOTION_BUDGET_S:
        return False, (
            f"promotion took {promo_s:.2f}s to first served request, "
            f"over the {PROMOTION_BUDGET_S}s budget"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; ceiling-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    base_promo = baseline["promotion"]["promotion_to_first_reply_s"]
    ceiling = max(base_promo * (1.0 + REGRESSION_TOLERANCE), 1.0)
    ok = promo_s <= ceiling
    msg = (
        f"k=1 p50 overhead {overhead * 100:.1f}% (ceiling "
        f"{P50_OVERHEAD_CEILING * 100:.0f}%), promotion {promo_s:.3f}s vs "
        f"baseline {base_promo:.3f}s (ceiling {ceiling:.3f}s): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_replication_benchmark():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_replication", format_result(result))
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline "
                        "BENCH_replication.json")
    p.add_argument("--check", action="store_true",
                   help="fail over the 35%% p50 ceiling, the promotion "
                        "budget, or a >50%% baseline regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
