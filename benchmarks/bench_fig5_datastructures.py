"""Figure 5: five data structures — KMod vs KFlex-PM vs KFlex (§5.2).

Paper result: ~9% throughput / ~32% latency overhead vs the unsafe
kernel module on average; performance mode recovers a few percent on
pointer-chasing structures (linked list, skip list) and nothing on the
sketches (whose accesses all verify statically).
"""

from repro.figures.datastructure_figs import (
    format_rows,
    run_datastructure_comparison,
)
from conftest import emit

STRUCTURES = ["hashmap", "rbtree", "linkedlist", "skiplist", "countmin", "countsketch"]


def test_fig5_datastructures(benchmark):
    results = benchmark.pedantic(
        lambda: run_datastructure_comparison(
            structures=STRUCTURES, n_elems=2048, n_samples=30
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig5_datastructures", format_rows(results))

    for name, by_variant in results.items():
        for op in by_variant["KMod"]:
            kmod = by_variant["KMod"][op].mean_ns
            pm = by_variant["KFlex-PM"][op].mean_ns
            kflex = by_variant["KFlex"][op].mean_ns
            # Ordering: unsafe module <= performance mode <= full SFI.
            assert kmod <= pm + 1e-9, (name, op)
            assert pm <= kflex + 1e-9, (name, op)
            # Overhead is bounded (the paper's low-overhead claim).
            assert kflex <= kmod * 1.6, (name, op, kflex / kmod)

    # Performance mode only helps where reads are guarded: sketches see
    # no change at all (Table 3 note).
    for sketch in ("countmin", "countsketch"):
        for op in results[sketch]["KMod"]:
            assert (
                results[sketch]["KFlex-PM"][op].mean_ns
                == results[sketch]["KFlex"][op].mean_ns
            )
