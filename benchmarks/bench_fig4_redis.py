"""Figure 4: Redis offload at sk_skb vs user-space KeyDB (§5.1).

Paper result: 1.61-2.14x throughput, 0.97-2.96x lower p99; gains are
smaller than Memcached because every Redis request pays the TCP stack.
"""

from repro.figures.redis_figs import run_redis_comparison
from repro.figures.memcached_figs import run_memcached_comparison
from conftest import emit


def test_fig4_redis(benchmark):
    results = benchmark.pedantic(
        lambda: run_redis_comparison(n_servers=8, total_requests=10_000),
        rounds=1,
        iterations=1,
    )
    lines = ["Figure 4: Redis GET/SET offload"]
    for mix, by in results.items():
        lines.append(f"-- GETs:SETs = {mix}")
        for name, res in by.items():
            lines.append("   " + res.row(name))
        ratio = by["KFlex"].throughput_mops / by["User space"].throughput_mops
        lines.append(f"   speedup KFlex/User = {ratio:.2f}x")
        assert by["KFlex"].throughput_mops > by["User space"].throughput_mops
        # §5.1: Redis gains are bounded well below Memcached's because
        # of the shared TCP-stack cost.
        assert ratio < 3.5
    emit("fig4_redis", "\n".join(lines))
