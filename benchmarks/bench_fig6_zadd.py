"""Figure 6: ZADD offload — skip lists allocated in the fast path (§5.2).

Paper result: 1.65x throughput and 52.8% lower p99 than user-space
Redis (single server thread: ZADD serialises on a global lock).
"""

from repro.figures.redis_figs import run_zadd_comparison
from conftest import emit


def test_fig6_zadd(benchmark):
    results = benchmark.pedantic(
        lambda: run_zadd_comparison(total_requests=8_000),
        rounds=1,
        iterations=1,
    )
    lines = ["Figure 6: Redis ZADD (single thread)"]
    for name, res in results.items():
        lines.append("   " + res.row(name))
    ratio = results["KFlex"].throughput_mops / results["Redis"].throughput_mops
    p99_cut = 1 - results["KFlex"].p99_us / results["Redis"].p99_us
    lines.append(f"   speedup = {ratio:.2f}x, p99 reduction = {100 * p99_cut:.1f}%")
    emit("fig6_zadd", "\n".join(lines))

    assert ratio > 1.2  # KFlex wins
    assert p99_cut > 0.2  # and cuts tail latency substantially
