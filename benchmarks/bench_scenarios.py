"""Hostile-traffic benchmark: per-scenario p99 and shed-rate envelopes.

The scenario matrix's oracles are boolean (acked writes never lost,
graceful shed, bounded recovery); this benchmark pins the *numbers*
behind them so a resilience regression that still squeaks past the
oracles is caught:

* **Loaded p99** — per scenario, the p99 of legitimate traffic while
  the hostile phase is active must stay within ``P99_TOLERANCE`` of
  the committed baseline (scenarios already bound it at 3x their own
  unloaded baseline; this gate catches drift *between* commits).
* **Shed rate** — flood scenarios must keep shedding at least
  ``SHED_FLOOR`` of the attack volume; a shedder that quietly starts
  letting the flood through regresses resilience without failing a
  latency oracle.
* **Oracles** — every scenario must pass outright; a FAIL fails the
  gate before any envelope math.

Each scenario runs ``RUNS_PER_SCENARIO`` seeds and the *median* loaded
p99 is compared, so one unlucky OS stall cannot fail the gate.

.. code-block:: console

    $ python benchmarks/bench_scenarios.py            # print results
    $ python benchmarks/bench_scenarios.py --update   # refresh baseline
    $ python benchmarks/bench_scenarios.py --check    # gate (make bench-scenarios)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_scenarios.json"

#: Loaded-p99 drift allowed vs the committed baseline (median of runs).
P99_TOLERANCE = 1.0  # 2x: loopback latency is noisy between machines
#: Absolute floor before the relative gate kicks in (microseconds) —
#: sub-floor baselines are all "fast enough" and drift freely.
P99_FLOOR_US = 4000.0
#: Flood scenarios must shed at least this fraction of attack volume.
SHED_FLOOR = 0.90
#: Scenarios whose shed rate is a resilience property (open-loop floods).
FLOOD_SCENARIOS = ("syn_flood", "udp_flood")

RUNS_PER_SCENARIO = 3


def run_benchmark() -> dict:
    from repro.sim.scenarios import SCENARIOS, run_scenario

    scenarios: dict = {}
    for name in sorted(SCENARIOS):
        runs = [run_scenario(name, seed) for seed in range(RUNS_PER_SCENARIO)]
        scenarios[name] = {
            "ok": all(r.ok for r in runs),
            "errors": [e for r in runs for e in r.errors],
            "baseline_p99_us": round(
                statistics.median(r.baseline_p99_us for r in runs), 1
            ),
            "loaded_p99_us": round(
                statistics.median(r.loaded_p99_us for r in runs), 1
            ),
            "shed_rate": round(min(r.shed_rate for r in runs), 4),
            "acked_checked": sum(r.acked_checked for r in runs),
            "recovery_s": round(max(r.recovery_s for r in runs), 3),
        }
    return {
        "workload": f"{len(scenarios)} scenarios x {RUNS_PER_SCENARIO} seeds, "
                    "median loaded p99 / min shed rate per scenario",
        "scenarios": scenarios,
    }


def format_result(result: dict) -> str:
    lines = ["hostile-traffic benchmark (scenario matrix envelopes)"]
    for name, s in result["scenarios"].items():
        shed = f" shed={s['shed_rate']:.1%}" if s["shed_rate"] else ""
        lines.append(
            f"  {name:<18} {'OK ' if s['ok'] else 'FAIL'} "
            f"p99 {s['baseline_p99_us']:.0f}us→{s['loaded_p99_us']:.0f}us"
            f"{shed} acked={s['acked_checked']}"
        )
    return "\n".join(lines)


def check_result(result: dict) -> tuple[bool, str]:
    problems = []
    for name, s in result["scenarios"].items():
        if not s["ok"]:
            problems.append(f"{name}: oracle FAIL ({'; '.join(s['errors'])})")
        if name in FLOOD_SCENARIOS and s["shed_rate"] < SHED_FLOOR:
            problems.append(
                f"{name}: shed rate {s['shed_rate']:.1%} below the "
                f"{SHED_FLOOR:.0%} floor"
            )
    if problems:
        return False, "; ".join(problems)
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; oracle-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())["scenarios"]
    for name, s in result["scenarios"].items():
        base = baseline.get(name)
        if base is None:
            continue  # new scenario: no envelope yet
        ceiling = max(base["loaded_p99_us"], P99_FLOOR_US) * (
            1.0 + P99_TOLERANCE
        )
        if s["loaded_p99_us"] > ceiling:
            problems.append(
                f"{name}: loaded p99 {s['loaded_p99_us']:.0f}us vs baseline "
                f"{base['loaded_p99_us']:.0f}us (ceiling {ceiling:.0f}us)"
            )
    if problems:
        return False, "; ".join(problems)
    return True, (
        f"{len(result['scenarios'])} scenarios within envelope "
        f"(p99 drift <= {P99_TOLERANCE:.0%} over baseline, floods shed "
        f">= {SHED_FLOOR:.0%})"
    )


# -- pytest entry -------------------------------------------------------------


def test_scenarios_benchmark():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_scenarios", format_result(result))
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_scenarios.json")
    p.add_argument("--check", action="store_true",
                   help="fail on oracle failures, a shed-rate floor breach, "
                        "or a loaded-p99 envelope blow-out vs the baseline")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
