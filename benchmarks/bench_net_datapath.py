"""Network-datapath benchmark: kernel fast path vs userspace fallback.

The paper's headline Memcached result (Fig. 2) is that serving GETs
from the XDP ingress hook beats forwarding them to the userspace server
because the fast path skips the rest of the network stack and the
kernel/user boundary.  The reproduction's datapath (:mod:`repro.net`)
makes that skip physically real over loopback:

* **kernel leg** — a :class:`~repro.net.service.ExtensionService`
  running the Memcached KFlex extension; every request is answered at
  the ingress hook (``XDP_TX``), one socket hop total;
* **userspace leg** — the same datapath with no extension; every
  request pays the modelled stack traversal
  (:meth:`~repro.kernel.net.NetStack.stack_deliver`) and a *second*
  real UDP hop (:class:`~repro.net.datapath.UserspaceBridge` ->
  :class:`~repro.net.datapath.UserspaceEndpoint`) to a stock server
  running the identical table bytecode as a bare KMod load — the
  ``XDP_PASS`` delivery path, costed by the same convention as the
  Fig. 2 models (``apps/memcached/userspace.py``).

Both legs serve the identical closed-loop GET-heavy workload from the
same wire-level load generator.  The gate: the kernel leg must sustain
at least ``SPEEDUP_FLOOR``x the userspace leg's throughput, and must
not regress more than ``REGRESSION_TOLERANCE`` against the committed
baseline ``benchmarks/results/BENCH_net.json``.

.. code-block:: console

    $ python benchmarks/bench_net_datapath.py            # print results
    $ python benchmarks/bench_net_datapath.py --update   # refresh baseline
    $ python benchmarks/bench_net_datapath.py --check    # gate (make bench-net)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_net.json"

#: Acceptance floor: kernel fast path >= 1.5x userspace fallback.
SPEEDUP_FLOOR = 1.5
#: Wall-clock socket benchmarks are noisy; gate loosely vs baseline.
REGRESSION_TOLERANCE = 0.50

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 400
N_KEYS = 128
SET_EVERY = 16  # GET-heavy: the Fig. 2 read-mostly mix
REPS = 3  # keep the best of N runs per leg (min wall-clock noise)


def _workload_and_matcher():
    from repro.apps.memcached import protocol as P

    def workload(cid, seq):
        key = (cid * 31 + seq) % N_KEYS
        if seq % SET_EVERY == 0:
            return key, P.encode_set(key, cid * 100_000 + seq)
        return key, P.encode_get(key)

    def matcher(req, rep):
        return len(rep) == P.PKT_SIZE and rep[8:40] == req[8:40]

    return workload, matcher


async def _run_leg(service, make_cleanup) -> dict:
    from repro.net import UdpDatapath, UdpLoadGenerator
    from repro.apps.memcached import protocol as P

    workload, matcher = _workload_and_matcher()
    dp = await UdpDatapath(service, cpu=0).start()

    # Warm the store over the wire so the timed runs are steady-state.
    warm = UdpLoadGenerator(
        [dp.port],
        lambda cid, seq: (seq, P.encode_set(seq, seq)),
        n_clients=1,
        requests_per_client=N_KEYS,
        matcher=matcher,
    )
    await warm.run()

    best = None
    for _ in range(REPS):
        gen = UdpLoadGenerator(
            [dp.port],
            workload,
            n_clients=N_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            matcher=matcher,
        )
        res = await gen.run()
        assert res.failures == 0, f"leg had {res.failures} failed requests"
        if best is None or res.throughput_rps > best.throughput_rps:
            best = res
    await dp.stop()
    await make_cleanup()
    return {
        "throughput_rps": round(best.throughput_rps, 1),
        "p50_us": round(best.latency.percentile(50) / 1e3, 1),
        "p99_us": round(best.latency.percentile(99) / 1e3, 1),
        "replies": best.replies,
        "service": {
            "kernel_tx": service.stats.kernel_tx,
            "userspace_pass": service.stats.userspace_pass,
        },
    }


async def _bench() -> dict:
    from repro.net import UserspaceBridge, UserspaceEndpoint, build_service
    from repro.apps.memcached.kflex_ext import KFlexMemcached
    from repro.core.runtime import KFlexRuntime

    # Kernel leg: extension answers everything at the ingress hook.
    # perf_mode matches the paper's Memcached configuration (§5.2's
    # performance mode: sparse cancellation checkpoints).
    kernel_svc = build_service("memcached", fallback="none", perf_mode=True)

    async def no_cleanup():
        pass

    kernel = await _run_leg(kernel_svc, no_cleanup)
    assert kernel_svc.stats.userspace_pass == 0, "kernel leg fell through"

    # Userspace leg: every request pays the real second hop, and the
    # stock server executes the *same table bytecode* as a bare KMod
    # load — the repo-wide comparison convention (see
    # apps/memcached/userspace.py): all legs' data-structure costs come
    # from one implementation and differ only in path.
    stock = KFlexMemcached(KFlexRuntime(), kmod=True)
    endpoint = await UserspaceEndpoint(stock.handle).start()
    bridge = await UserspaceBridge(endpoint.port).start()
    user_svc = build_service(
        "memcached", fallback="userspace", userspace=bridge.request
    )

    async def cleanup():
        bridge.close()
        endpoint.close()

    userspace = await _run_leg(user_svc, cleanup)
    assert user_svc.stats.kernel_tx == 0, "userspace leg used the fast path"

    return {
        "workload": (
            f"memcached UDP closed loop, {N_CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} reqs, 1/{SET_EVERY} sets"
        ),
        "kernel": kernel,
        "userspace": userspace,
        "speedup": round(
            kernel["throughput_rps"] / userspace["throughput_rps"], 2
        ),
    }


def run_benchmark() -> dict:
    return asyncio.run(_bench())


def format_result(result: dict) -> str:
    k, u = result["kernel"], result["userspace"]
    return "\n".join([
        "network datapath: kernel fast path vs userspace fallback",
        f"  ({result['workload']})",
        f"  kernel (XDP_TX)    {k['throughput_rps']:10,.0f} req/s   "
        f"p50 {k['p50_us']:7.1f} us   p99 {k['p99_us']:7.1f} us",
        f"  userspace (PASS)   {u['throughput_rps']:10,.0f} req/s   "
        f"p50 {u['p50_us']:7.1f} us   p99 {u['p99_us']:7.1f} us",
        f"  speedup            {result['speedup']:10.2f} x      "
        f"(floor {SPEEDUP_FLOOR}x)",
    ])


def check_result(result: dict) -> tuple[bool, str]:
    if result["speedup"] < SPEEDUP_FLOOR:
        return False, (
            f"kernel/userspace speedup {result['speedup']:.2f}x below "
            f"the {SPEEDUP_FLOOR}x acceptance floor"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; floor-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    ok = result["speedup"] >= floor
    msg = (
        f"speedup {result['speedup']:.2f}x vs baseline "
        f"{baseline['speedup']:.2f}x (floor {floor:.2f}x): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_net_datapath_speedup():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_net", format_result(result))
    assert result["speedup"] >= SPEEDUP_FLOOR, format_result(result)
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_net.json")
    p.add_argument("--check", action="store_true",
                   help="fail below the 1.5x floor or on >50%% baseline "
                        "regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
