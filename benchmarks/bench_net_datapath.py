"""Network-datapath benchmark: kernel fast path vs userspace fallback.

The paper's headline Memcached result (Fig. 2) is that serving GETs
from the XDP ingress hook beats forwarding them to the userspace server
because the fast path skips the rest of the network stack and the
kernel/user boundary.  The reproduction's datapath (:mod:`repro.net`)
makes that skip physically real over loopback:

* **kernel leg** — a :class:`~repro.net.service.ExtensionService`
  running the Memcached KFlex extension; every request is answered at
  the ingress hook (``XDP_TX``), one socket hop total;
* **userspace leg** — the same datapath with no extension; every
  request pays the modelled stack traversal
  (:meth:`~repro.kernel.net.NetStack.stack_deliver`) and a *second*
  real UDP hop (:class:`~repro.net.datapath.UserspaceBridge` ->
  :class:`~repro.net.datapath.UserspaceEndpoint`) to a stock server
  running the identical table bytecode as a bare KMod load — the
  ``XDP_PASS`` delivery path, costed by the same convention as the
  Fig. 2 models (``apps/memcached/userspace.py``).

Two measurements per leg:

* a **closed-loop** run (N clients, one outstanding request each) for
  latency percentiles and the per-request view;
* an **open-loop** run (burst offered load, bounded outstanding
  window) for sustainable packets-per-second — the measurement where
  batched ingress matters, because a backlog exists to amortize.  The
  kernel leg is swept across ``BATCH_SIZES`` to produce the
  pps-vs-batch-size curve; the userspace leg cannot batch away its
  per-packet bridge hop, so it runs unbatched.

The gate: best kernel open-loop pps must be at least ``SPEEDUP_FLOOR``
x the userspace leg's open-loop pps, and must not regress more than
``REGRESSION_TOLERANCE`` against the committed baseline
``benchmarks/results/BENCH_net.json``.

.. code-block:: console

    $ python benchmarks/bench_net_datapath.py            # print results
    $ python benchmarks/bench_net_datapath.py --update   # refresh baseline
    $ python benchmarks/bench_net_datapath.py --check    # gate (make bench-net)
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_net.json"

#: Acceptance floor: kernel fast path >= 3x userspace fallback
#: (open-loop pps, batched ingress + fused engine).
SPEEDUP_FLOOR = 3.0
#: Wall-clock socket benchmarks are noisy; gate loosely vs baseline.
REGRESSION_TOLERANCE = 0.50

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 400
N_KEYS = 128
SET_EVERY = 16  # GET-heavy: the Fig. 2 read-mostly mix
REPS = 3  # keep the best of N runs per leg (min wall-clock noise)

#: Open-loop sweep: ingress batch sizes for the pps curve.
BATCH_SIZES = (1, 4, 16, 64)
#: Ingress time budget while batching (seconds).
BATCH_TIMEOUT = 0.002
OPEN_LOOP = {"duration_s": 0.8}
OPEN_REPS = 3


def _open_loop_params(batch: int) -> dict:
    # The outstanding window must scale with the batch size or large
    # batches can never fill (window=128 at batch=64 leaves at most two
    # batches of backlog in front of the server).
    return {
        **OPEN_LOOP,
        "window": max(128, 4 * batch),
        "burst": max(16, batch),
    }


def _workload_and_matcher():
    from repro.apps.memcached import protocol as P

    def workload(cid, seq):
        key = (cid * 31 + seq) % N_KEYS
        if seq % SET_EVERY == 0:
            return key, P.encode_set(key, cid * 100_000 + seq)
        return key, P.encode_get(key)

    def matcher(req, rep):
        return len(rep) == P.PKT_SIZE and rep[8:40] == req[8:40]

    return workload, matcher


async def _warm(dp):
    """Seed the store over the wire so timed runs are steady-state."""
    from repro.net import UdpLoadGenerator
    from repro.apps.memcached import protocol as P

    _, matcher = _workload_and_matcher()
    warm = UdpLoadGenerator(
        [dp.port],
        lambda cid, seq: (seq, P.encode_set(seq, seq)),
        n_clients=1,
        requests_per_client=N_KEYS,
        matcher=matcher,
    )
    await warm.run()


async def _closed_loop(dp) -> dict:
    from repro.net import UdpLoadGenerator

    workload, matcher = _workload_and_matcher()
    best = None
    for _ in range(REPS):
        gen = UdpLoadGenerator(
            [dp.port],
            workload,
            n_clients=N_CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            matcher=matcher,
        )
        res = await gen.run()
        assert res.failures == 0, f"leg had {res.failures} failed requests"
        if best is None or res.throughput_rps > best.throughput_rps:
            best = res
    return {
        "throughput_rps": round(best.throughput_rps, 1),
        "p50_us": round(best.latency.percentile(50) / 1e3, 1),
        "p99_us": round(best.latency.percentile(99) / 1e3, 1),
        "replies": best.replies,
    }


async def _open_loop(dp, batch: int = 1) -> float:
    from repro.net import OpenLoopUdpGenerator
    from repro.apps.memcached import protocol as P

    # Pre-encoded GETs: a pps generator does not re-marshal per packet.
    pkts = [P.encode_get(k) for k in range(N_KEYS)]
    best = 0.0
    for _ in range(OPEN_REPS):
        gen = OpenLoopUdpGenerator(
            [dp.port],
            lambda cid, seq: (seq % N_KEYS, pkts[seq % N_KEYS]),
            **_open_loop_params(batch),
        )
        res = await gen.run()
        best = max(best, res.pps)
    return best


def _kernel_service():
    # perf_mode matches the paper's Memcached configuration (§5.2's
    # performance mode: sparse cancellation checkpoints).
    from repro.net import build_service

    return build_service("memcached", fallback="none", perf_mode=True)


async def _userspace_setup():
    # The stock server executes the *same table bytecode* as a bare
    # KMod load — the repo-wide comparison convention (see
    # apps/memcached/userspace.py): all legs' data-structure costs come
    # from one implementation and differ only in path.  It runs as a
    # real separate process (repro.net.userspace_proc), the way stock
    # Memcached does: the PASS path pays genuine scheduler handoffs,
    # not a same-event-loop shortcut.
    from repro.net import UserspaceBridge, build_service
    from repro.net.userspace_proc import spawn

    server = spawn()
    bridge = await UserspaceBridge(server.port).start()
    svc = build_service(
        "memcached", fallback="userspace", userspace=bridge.request
    )

    def cleanup():
        bridge.close()
        server.close()

    return svc, cleanup


async def _bench() -> dict:
    from repro.net import UdpDatapath

    # Kernel leg, closed loop (unbatched: one request outstanding per
    # client leaves nothing to batch; this run is the latency view).
    kernel_svc = _kernel_service()
    dp = await UdpDatapath(kernel_svc, cpu=0).start()
    await _warm(dp)
    kernel = await _closed_loop(dp)
    kernel["service"] = {
        "kernel_tx": kernel_svc.stats.kernel_tx,
        "userspace_pass": kernel_svc.stats.userspace_pass,
    }
    await dp.stop()
    assert kernel_svc.stats.userspace_pass == 0, "kernel leg fell through"
    gc.collect()

    # Kernel leg, open loop: pps vs ingress batch size.
    curve = {}
    mean_batches = {}
    for batch in BATCH_SIZES:
        svc = _kernel_service()
        dp = await UdpDatapath(
            svc, cpu=0, batch_size=batch, batch_timeout=BATCH_TIMEOUT
        ).start()
        await _warm(dp)
        curve[str(batch)] = round(await _open_loop(dp, batch), 1)
        mean_batches[str(batch)] = round(dp.stats.mean_batch(), 1)
        await dp.stop()
        assert svc.stats.userspace_pass == 0, "kernel leg fell through"
        # Each leg retires a full service graph (kernel, heaps, engine
        # closures) that is cyclic and only dies in a gen2 collection;
        # collect now so GC pauses can't bleed into the next leg.
        del svc, dp
        gc.collect()

    # Userspace leg: closed loop + open loop (unbatched — every packet
    # pays the bridge hop regardless of ingress batching).
    user_svc, cleanup = await _userspace_setup()
    dp = await UdpDatapath(user_svc, cpu=0).start()
    await _warm(dp)
    userspace = await _closed_loop(dp)
    userspace["service"] = {
        "kernel_tx": user_svc.stats.kernel_tx,
        "userspace_pass": user_svc.stats.userspace_pass,
    }
    userspace_pps = round(await _open_loop(dp), 1)
    await dp.stop()
    cleanup()
    assert user_svc.stats.kernel_tx == 0, "userspace leg used the fast path"

    best_batch = max(curve, key=lambda k: curve[k])
    return {
        "workload": (
            f"memcached UDP, {N_CLIENTS} clients x "
            f"{REQUESTS_PER_CLIENT} reqs closed loop + "
            f"{OPEN_LOOP['duration_s']}s open loop, 1/{SET_EVERY} sets"
        ),
        "kernel": kernel,
        "userspace": userspace,
        "open_loop": {
            **OPEN_LOOP,
            "window": "max(128, 4*batch)",
            "burst": "max(16, batch)",
            "batch_timeout_s": BATCH_TIMEOUT,
            "kernel_pps": curve,
            "kernel_mean_batch": mean_batches,
            "userspace_pps": userspace_pps,
            "best_batch": int(best_batch),
        },
        "speedup": round(curve[best_batch] / userspace_pps, 2),
        "closed_loop_speedup": round(
            kernel["throughput_rps"] / userspace["throughput_rps"], 2
        ),
    }


def run_benchmark() -> dict:
    return asyncio.run(_bench())


def format_result(result: dict) -> str:
    k, u, ol = result["kernel"], result["userspace"], result["open_loop"]
    lines = [
        "network datapath: kernel fast path vs userspace fallback",
        f"  ({result['workload']})",
        f"  kernel (XDP_TX)    {k['throughput_rps']:10,.0f} req/s   "
        f"p50 {k['p50_us']:7.1f} us   p99 {k['p99_us']:7.1f} us",
        f"  userspace (PASS)   {u['throughput_rps']:10,.0f} req/s   "
        f"p50 {u['p50_us']:7.1f} us   p99 {u['p99_us']:7.1f} us",
        "  open-loop pps vs ingress batch size:",
    ]
    for batch, pps in ol["kernel_pps"].items():
        lines.append(
            f"    batch {batch:>3}        {pps:10,.0f} pps    "
            f"(mean batch {ol['kernel_mean_batch'][batch]:.1f})"
        )
    lines += [
        f"    userspace        {ol['userspace_pps']:10,.0f} pps    (unbatched)",
        f"  speedup            {result['speedup']:10.2f} x      "
        f"(open loop, batch {ol['best_batch']}; floor {SPEEDUP_FLOOR}x; "
        f"closed loop {result['closed_loop_speedup']:.2f}x)",
    ]
    return "\n".join(lines)


def check_result(result: dict) -> tuple[bool, str]:
    if result["speedup"] < SPEEDUP_FLOOR:
        return False, (
            f"kernel/userspace speedup {result['speedup']:.2f}x below "
            f"the {SPEEDUP_FLOOR}x acceptance floor"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; floor-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    ok = result["speedup"] >= floor
    msg = (
        f"speedup {result['speedup']:.2f}x vs baseline "
        f"{baseline['speedup']:.2f}x (floor {floor:.2f}x): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_net_datapath_speedup():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_net", format_result(result))
    assert result["speedup"] >= SPEEDUP_FLOOR, format_result(result)
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_net.json")
    p.add_argument("--check", action="store_true",
                   help="fail below the 3x floor or on >50%% baseline "
                        "regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
