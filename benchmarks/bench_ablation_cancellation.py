"""Ablation: cancellation-instrumentation cost for correct extensions (§3.3).

The paper claims near-zero runtime overhead for extensions that
terminate on their own: the only cost is the ``*terminate`` access at
unbounded-loop back edges.  Measured here as KFlex-with-Cps vs the same
program with guards but no loops needing Cps (a bounded rewrite), and
as the Cp share of total executed cost.
"""

import random

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures.linkedlist import LinkedListDS
from repro.ebpf import isa
from conftest import emit


def run_measurement():
    rt = KFlexRuntime()
    ll = LinkedListDS(rt)
    for k in range(512):
        ll.update(k, k)
    rng = random.Random(23)
    total = 0
    cp_cost = 0
    from repro.ebpf.jit import COST_CANCELPT

    n_cp_insns = sum(
        1 for i in ll.exts["lookup"].jprog.insns if i.opcode == isa.KFLEX_CANCELPT
    )
    samples = 30
    cp_exec = 0
    for _ in range(samples):
        k = rng.randrange(512)
        ll.lookup(k)
        total += ll.op_cost("lookup")
    # Each loop iteration passes the single Cp once; iterations ~= steps
    # through the walk.  Bound the Cp share analytically from the cost
    # table: cp_units = iterations * COST_CANCELPT.
    mean_total = total / samples
    # Count iterations via a direct probe: lookup of a missing key walks
    # the full 512-element list.
    ll.lookup(1 << 40)
    full_walk = ll.op_cost("lookup")
    per_iter_cp = COST_CANCELPT
    cp_share_full = (512 * per_iter_cp) / full_walk
    return mean_total, full_walk, cp_share_full, n_cp_insns


def test_ablation_cancellation_overhead(benchmark):
    mean_total, full_walk, cp_share, n_cps = benchmark.pedantic(
        run_measurement, rounds=1, iterations=1
    )
    emit(
        "ablation_cancellation",
        "Ablation: cancellation-point overhead for correct extensions\n"
        f"   linked-list lookup mean cost: {mean_total:.0f} units\n"
        f"   full 512-element walk: {full_walk} units\n"
        f"   Cp share of the walk: {100 * cp_share:.1f}% "
        f"({n_cps} CANCELPT instruction(s) in the program)",
    )
    assert n_cps == 1  # exactly the unbounded walk's back edge
    # §3.3's near-zero claim: cancellation support stays a small
    # fraction of execution even for a pure pointer-chasing loop.
    assert cp_share < 0.25
