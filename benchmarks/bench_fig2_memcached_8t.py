"""Figure 2: Memcached (8 threads) — user space vs BMC vs KFlex (§5.1).

Paper result: KFlex sustains 1.23-2.83x BMC and 2.33-3.01x user space,
with the BMC gap widening as the SET share grows (BMC offloads only
GETs); p99 is 1.41-1.95x (BMC) and 1.95-9.35x (user) lower.
"""

from repro.figures.memcached_figs import format_rows, run_memcached_comparison
from conftest import emit


def test_fig2_memcached_8threads(benchmark):
    results = benchmark.pedantic(
        lambda: run_memcached_comparison(n_servers=8, total_requests=10_000),
        rounds=1,
        iterations=1,
    )
    text = format_rows(results, title="Figure 2: Memcached, 8 server threads")
    emit("fig2_memcached_8t", text)

    for mix, by in results.items():
        kf, bm, us = by["KFlex"], by["BMC"], by["User space"]
        # Shape assertions from the paper: KFlex wins against both.
        assert kf.throughput_mops > bm.throughput_mops
        assert kf.throughput_mops > us.throughput_mops
        assert kf.p99_us < us.p99_us
    # BMC's advantage over user space collapses as SETs dominate.
    gap_90 = results["90:10"]["BMC"].throughput_mops / results["90:10"]["User space"].throughput_mops
    gap_10 = results["10:90"]["BMC"].throughput_mops / results["10:90"]["User space"].throughput_mops
    assert gap_90 > gap_10
