"""Practicality metrics: load-time verification + instrumentation cost.

Not a paper figure, but the property §2.1 calls *practicality* made
measurable: how much work the Fig. 1 pipeline does for each evaluation
extension — verifier effort (instructions processed, the kernel
verifier's own complexity metric), instrumentation added, and wall
load time in this Python implementation.
"""

import time

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures import ALL_STRUCTURES
from repro.apps.memcached.kflex_ext import KFlexMemcached
from repro.apps.redis.kflex_ext import KFlexRedis
from conftest import emit


def run_load_census():
    rows = []

    def add(name, ext, dt):
        an = ext.iprog.analysis
        st = ext.iprog.stats
        rows.append((
            name,
            len(ext.program.insns),
            len(ext.iprog.insns),
            an.insns_processed if an else 0,
            st.guards_emitted,
            st.cancel_points,
            dt * 1000,
        ))

    for ds_name, cls in ALL_STRUCTURES.items():
        rt = KFlexRuntime()
        t0 = time.perf_counter()
        ds = cls(rt)
        dt = time.perf_counter() - t0
        for op, ext in ds.exts.items():
            add(f"{ds_name}.{op}", ext, dt / len(ds.exts))

    rt = KFlexRuntime()
    t0 = time.perf_counter()
    mc = KFlexMemcached(rt, use_locks=True)
    add("memcached", mc.ext, time.perf_counter() - t0)

    rt = KFlexRuntime()
    t0 = time.perf_counter()
    rd = KFlexRedis(rt)
    add("redis", rd.ext, time.perf_counter() - t0)
    return rows


def test_verification_cost_census(benchmark):
    rows = benchmark.pedantic(run_load_census, rounds=1, iterations=1)
    lines = [
        "Load-pipeline census (verify -> instrument -> lower)",
        f"{'extension':<20s} {'insns':>6s} {'inst.':>6s} {'verif.':>8s} "
        f"{'guards':>7s} {'Cps':>4s} {'load ms':>8s}",
    ]
    for name, n, ni, effort, guards, cps, ms in rows:
        lines.append(
            f"{name:<20s} {n:>6d} {ni:>6d} {effort:>8d} {guards:>7d} "
            f"{cps:>4d} {ms:>8.1f}"
        )
    emit("verification_cost", "\n".join(lines))

    for name, n, ni, effort, guards, cps, ms in rows:
        # Verification effort stays polynomial-ish in program size for
        # every real extension (the kernel's 1M budget would never trip).
        assert effort < 250_000, (name, effort)
        # Instrumentation grows programs only modestly.
        assert ni <= n * 1.6 + 8, (name, n, ni)
