"""Ablation: performance mode (§4.2) by data-structure class.

The paper reports 3-4% latency recovery for pointer-chasing structures
(linked list, skip list), 1-2% for hashmap/rbtree, and none for the
sketches.  This measures where the read guards actually are.
"""

import random

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures import ALL_STRUCTURES
from conftest import emit

GROUPS = {
    "pointer-chasing": ["linkedlist", "skiplist"],
    "tree/table": ["hashmap", "rbtree"],
    "sketch": ["countmin", "countsketch"],
}
N_ELEMS = 1024


def _mean_lookup(ds, rng, samples=25) -> float:
    total = 0
    for _ in range(samples):
        ds.lookup(rng.randrange(N_ELEMS))
        total += ds.op_cost("lookup")
    return total / samples


def run_perfmode():
    out = {}
    for group, names in GROUPS.items():
        for name in names:
            normal = ALL_STRUCTURES[name](KFlexRuntime())
            pm = ALL_STRUCTURES[name](KFlexRuntime(), perf_mode=True)
            for ds in (normal, pm):
                for k in range(N_ELEMS):
                    ds.update(k, k)
            n = _mean_lookup(normal, random.Random(31))
            p = _mean_lookup(pm, random.Random(31))
            out[name] = (group, n, p)
    return out


def test_ablation_perfmode(benchmark):
    results = benchmark.pedantic(run_perfmode, rounds=1, iterations=1)
    lines = ["Ablation: performance mode lookup-cost recovery by class"]
    recovery = {}
    for name, (group, n, p) in results.items():
        rec = (n - p) / n if n else 0.0
        recovery.setdefault(group, []).append(rec)
        lines.append(
            f"   {name:<12s} ({group:<15s}) normal {n:8.1f} -> PM {p:8.1f} "
            f"(recovered {100 * rec:4.1f}%)"
        )
    emit("ablation_perfmode", "\n".join(lines))

    avg = {g: sum(v) / len(v) for g, v in recovery.items()}
    # Shape: pointer chasing benefits most, sketches not at all.
    assert avg["pointer-chasing"] >= avg["tree/table"] - 1e-9
    assert avg["sketch"] == 0.0
