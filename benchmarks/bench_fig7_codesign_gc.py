"""Figure 7: co-designed Memcached with user-space GC (§5.3).

Paper result: 2.2-2.9x throughput vs user space (slightly below the
GC-less 2.33-3.01x of Fig. 2, due to fast-path/GC contention) and a
42.8-89.5% p99 reduction.
"""

from repro.figures.codesign_fig import run_codesign_comparison
from repro.figures.memcached_figs import run_memcached_comparison
from conftest import emit


def test_fig7_codesign_gc(benchmark):
    results = benchmark.pedantic(
        lambda: run_codesign_comparison(n_servers=8, total_requests=10_000),
        rounds=1,
        iterations=1,
    )
    lines = ["Figure 7: co-designed Memcached (kernel fast path + user-space GC)"]
    for mix, by in results.items():
        lines.append(f"-- GETs:SETs = {mix}")
        for name, res in by.items():
            lines.append("   " + res.row(name))
        ratio = by["KFlex+GC"].throughput_mops / by["User space"].throughput_mops
        p99_cut = 1 - by["KFlex+GC"].p99_us / by["User space"].p99_us
        lines.append(
            f"   speedup = {ratio:.2f}x, p99 reduction = {100 * p99_cut:.1f}%"
        )
        assert ratio > 1.5
        assert p99_cut > 0.2
    emit("fig7_codesign_gc", "\n".join(lines))


def test_fig7_gc_costs_vs_plain_kflex(benchmark):
    """The co-designed fast path (locks + GC contention) gives up a
    little throughput relative to Fig. 2's lock-free KFlex."""

    def run():
        plain = run_memcached_comparison(total_requests=8_000, mixes=["90:10"])
        codesign = run_codesign_comparison(total_requests=8_000, mixes=["90:10"])
        return plain, codesign

    plain, codesign = benchmark.pedantic(run, rounds=1, iterations=1)
    kf = plain["90:10"]["KFlex"].throughput_mops
    gc = codesign["90:10"]["KFlex+GC"].throughput_mops
    emit(
        "fig7_gc_vs_plain",
        f"Fig 7 sanity: plain KFlex {kf:.3f} MOps/s vs co-designed {gc:.3f} MOps/s",
    )
    assert gc <= kf * 1.02  # co-design never (meaningfully) exceeds plain
    assert gc >= kf * 0.75  # ...and the cost of co-design is modest
