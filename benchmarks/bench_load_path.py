"""Load-path benchmark: cold vs warm (cache-hit) extension loads.

The staged compilation pipeline (:mod:`repro.ebpf.pipeline`) memoizes
verification analyses and lowered programs in a content-addressed
cache, so repeated loads of the same bytecode — per-CPU deployments,
supervisor re-admission after quarantine — skip the symbolic-execution
verifier entirely.  This benchmark measures what that buys: wall-clock
latency of a *cold* load (empty cache; the verifier runs) vs a *warm*
load (same program, same heap; every cacheable stage hits).

The workload program is deliberately verification-heavy: several
unbounded pointer-chasing loops (each forces loop widening and a
cancellation point) plus a block of heap stores for the range analysis
to chew on — the shape of a realistic KFlex data-structure extension.

Run under pytest (``pytest benchmarks/bench_load_path.py``) or
standalone:

.. code-block:: console

    $ python benchmarks/bench_load_path.py            # print results
    $ python benchmarks/bench_load_path.py --update   # refresh baseline
    $ python benchmarks/bench_load_path.py --check    # gate vs baseline

``--check`` enforces the acceptance floor (warm >= 5x faster than
cold) and compares the measured ratio against the committed baseline
``benchmarks/results/BENCH_load.json`` with 50% tolerance (load
latency ratios are noisier than steady-state throughput).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

HERE = pathlib.Path(__file__).parent
BASELINE_JSON = HERE / "results" / "BENCH_load.json"

#: Hard floor from the acceptance criteria: a cache-hit load must be at
#: least this much faster than a cold load.
SPEEDUP_FLOOR = 5.0
#: Additional gate vs the committed baseline ratio.
REGRESSION_TOLERANCE = 0.50

COLD_REPS = 5
WARM_REPS = 50
N_LOOPS = 4
N_HEAP_STORES = 24
HEAP_SIZE = 1 << 16


def build_program():
    """A verification-heavy extension: N unbounded list walks plus a
    run of heap stores (guards subject to range-analysis elision)."""
    from repro.ebpf.isa import Reg
    from repro.ebpf.macroasm import MacroAsm
    from repro.ebpf.program import Program

    R = Reg
    m = MacroAsm()
    m.mov(R.R0, 0)
    for i in range(N_LOOPS):
        m.heap_addr(R.R6, 0x40 + 8 * i)  # &head_i
        m.ldx(R.R7, R.R6)                # e = head_i
        with m.while_("!=", R.R7, 0):    # unbounded: widened, gets a Cp
            m.ldx(R.R2, R.R7, 0)
            m.add(R.R0, R.R2)
            m.ldx(R.R7, R.R7, 8)         # e = e->next
    for i in range(N_HEAP_STORES):
        m.heap_addr(R.R3, 0x200 + 8 * i)
        m.stx(R.R3, R.R0)
    m.exit()
    return Program("loadbench", m.assemble(), hook="bench",
                   heap_size=HEAP_SIZE)


def _time_load(rt, prog, heap) -> float:
    t0 = time.perf_counter()
    rt.load(prog, attach=False, heap=heap)
    return time.perf_counter() - t0


def run_benchmark() -> dict:
    from repro.core.runtime import KFlexRuntime

    prog = build_program()

    # Cold: a fresh runtime (empty program cache) per repetition.
    cold = float("inf")
    for _ in range(COLD_REPS):
        rt = KFlexRuntime()
        heap = rt.create_heap(HEAP_SIZE, name="loadbench")
        cold = min(cold, _time_load(rt, prog, heap))

    # Warm: one runtime, one heap; every load after the first is a
    # content-addressed cache hit across verify/instrument/lower.
    rt = KFlexRuntime()
    heap = rt.create_heap(HEAP_SIZE, name="loadbench")
    rt.load(prog, attach=False, heap=heap)  # prime the cache
    warm = float("inf")
    for _ in range(WARM_REPS):
        warm = min(warm, _time_load(rt, prog, heap))

    stats = rt.pipeline.stats
    assert stats.warm_loads == WARM_REPS, (
        f"expected {WARM_REPS} warm loads, pipeline saw {stats.warm_loads}"
    )
    return {
        "workload": "load-path cold vs warm",
        "program_insns": len(prog.insns),
        "cold_ms": round(cold * 1e3, 4),
        "warm_ms": round(warm * 1e3, 4),
        "speedup": round(cold / warm, 2),
        "stages_ms": {
            name: round(st.total_ns / 1e6, 3)
            for name, st in stats.stages.items()
        },
        "cache": rt.pipeline.cache.stats.as_dict(),
    }


def format_result(result: dict) -> str:
    return "\n".join([
        f"load-path benchmark ({result['program_insns']} insns)",
        f"  cold load  {result['cold_ms']:9.3f} ms   (verifier runs)",
        f"  warm load  {result['warm_ms']:9.3f} ms   (cache hit)",
        f"  speedup    {result['speedup']:9.2f} x   (floor {SPEEDUP_FLOOR}x)",
    ])


def check_result(result: dict) -> tuple[bool, str]:
    if result["speedup"] < SPEEDUP_FLOOR:
        return False, (
            f"warm-load speedup {result['speedup']:.2f}x below the "
            f"{SPEEDUP_FLOOR}x acceptance floor"
        )
    if not BASELINE_JSON.exists():
        return True, f"no baseline at {BASELINE_JSON}; floor-only gate passed"
    baseline = json.loads(BASELINE_JSON.read_text())
    floor = baseline["speedup"] * (1.0 - REGRESSION_TOLERANCE)
    ok = result["speedup"] >= floor
    msg = (
        f"speedup {result['speedup']:.2f}x vs baseline "
        f"{baseline['speedup']:.2f}x (floor {floor:.2f}x): "
        + ("OK" if ok else "REGRESSION")
    )
    return ok, msg


# -- pytest entry -------------------------------------------------------------


def test_load_path_speedup():
    from conftest import emit

    result = run_benchmark()
    emit("BENCH_load", format_result(result))
    assert result["speedup"] >= SPEEDUP_FLOOR, format_result(result)
    ok, msg = check_result(result)
    assert ok, msg


# -- standalone entry ---------------------------------------------------------


def main(argv=None) -> int:
    sys.path.insert(0, str(HERE.parent / "src"))
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--update", action="store_true",
                   help="rewrite the committed baseline BENCH_load.json")
    p.add_argument("--check", action="store_true",
                   help="fail below the 5x floor or on >50%% baseline "
                        "regression")
    args = p.parse_args(argv)

    result = run_benchmark()
    print(format_result(result))
    if args.update:
        BASELINE_JSON.parent.mkdir(exist_ok=True)
        BASELINE_JSON.write_text(json.dumps(result, indent=2) + "\n")
        print(f"baseline updated: {BASELINE_JSON}")
    if args.check:
        ok, msg = check_result(result)
        print(msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
