"""Ablation: guard-page fragmentation vs MPK heap-domain striping (§4.1, §6).

The paper notes that size-aligned heaps plus guard pages fragment the
vmalloc space (two 4 GB heaps cannot be adjacent), and sketches MPK
striping as the fix.  This measures address-space overhead for fleets
of same-size heaps under both arenas, plus the relative guard cost of
the two SFI schemes of §4.5.
"""

from repro.core.sfi import (
    ARENA32_SFI,
    KFLEX_SFI,
    guard_arena_overhead,
    striped_arena_overhead,
)
from conftest import emit


def run_fragmentation_sweep():
    rows = []
    for n_heaps, size in ((4, 1 << 22), (8, 1 << 24), (16, 1 << 26)):
        g = guard_arena_overhead(n_heaps, size)
        s = striped_arena_overhead(n_heaps, size)
        rows.append((n_heaps, size, g, s))
    return rows


def test_ablation_heap_striping(benchmark):
    rows = benchmark.pedantic(run_fragmentation_sweep, rounds=1, iterations=1)
    lines = ["Ablation: vmalloc fragmentation — guard pages vs MPK striping (§6)"]
    for n, size, g, s in rows:
        lines.append(
            f"   {n:>3d} heaps x {size >> 20:>4d} MB: guard arena +{100 * g:6.2f}% "
            f"address space, striped arena +{100 * s:6.2f}%"
        )
        assert g > 0.0  # §4.1's fragmentation is real
        assert s == 0.0  # striping removes it entirely
    lines.append("")
    lines.append("SFI schemes (§4.5):")
    lines.append(
        f"   {KFLEX_SFI.name}: guard = {KFLEX_SFI.guard_cost} insn, "
        f"max heap = unlimited"
    )
    lines.append(
        f"   {ARENA32_SFI.name}: guard = {ARENA32_SFI.guard_cost} insn, "
        f"max heap = {ARENA32_SFI.max_heap_size >> 30} GB (the upstream limit "
        "KFlex's scheme lifts)"
    )
    emit("ablation_striping", "\n".join(lines))
