#!/usr/bin/env python3
"""Quickstart: load and run your first KFlex extension.

Demonstrates the full Fig. 1 pipeline on a tiny extension:

1. write an extension against the structured assembler;
2. the verifier checks kernel-interface compliance and runs its range
   analysis; Kie instruments the bytecode (SFI guards, cancellation
   points); the JIT lowers it;
3. the runtime executes it — including one run that loops forever and
   is safely cancelled by the watchdog.

Run:  python examples/quickstart.py
"""

from repro.core.runtime import KFlexRuntime
from repro.ebpf.isa import Reg, disasm
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.program import Program
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_FREE

R0, R6, R7 = Reg.R0, Reg.R6, Reg.R7


def build_extension() -> Program:
    """An extension that allocates a node in its heap, stores a counter
    there across invocations, and frees it when asked."""
    m = MacroAsm()
    # The heap's static area holds our counter cell at offset 0x40.
    m.heap_addr(R6, 0x40)
    m.ldx(R7, R6, 0, 8)
    m.add(R7, 1)
    m.stx(R6, R7, 0, 8)
    # Scratch allocation just to show kflex_malloc (Table 2).
    m.call_helper(KFLEX_MALLOC, 64)
    with m.if_("!=", R0, 0):
        m.st_imm(R0, 0, 0xC0FFEE, 8)
        m.call_helper(KFLEX_FREE, R0)
    m.mov(R0, R7)
    m.exit()
    # kflex_heap(64 KB): the heap declaration of §3.1.
    return Program("quickstart", m.assemble(), hook="bench", heap_size=1 << 16)


def build_buggy_extension() -> Program:
    """An extension with an infinite loop — eBPF would reject it at
    load time; KFlex loads it and cancels it at runtime (§3.3)."""
    m = MacroAsm()
    m.mov(R6, 1)
    with m.while_("!=", R6, 0):
        m.add(R6, 1)
    m.mov(R0, 0)
    m.exit()
    return Program("spinner", m.assemble(), hook="bench", heap_size=1 << 16)


def main() -> None:
    rt = KFlexRuntime()

    print("== loading the counter extension")
    ext = rt.load(build_extension(), attach=False)
    stats = ext.iprog.stats
    print(f"   verified; guards emitted={stats.guards_emitted}, "
          f"elided={stats.guards_elided}, cancel points={stats.cancel_points}")

    ctx = rt.make_ctx(0, [0] * 8)
    for i in range(3):
        ret = ext.invoke(ctx)
        print(f"   invocation {i + 1}: counter = {ret} "
              f"({ext.stats.last_cost_units} cost units)")

    print("\n== loading an extension with an unbounded loop")
    spinner = rt.load(build_buggy_extension(), attach=False, quantum_units=50_000)
    print(f"   loaded anyway: {spinner.iprog.stats.cancel_points} cancellation "
          "point(s) instrumented at the loop back edge")
    ret = spinner.invoke(ctx)
    reason = next(iter(spinner.stats.cancellations_by_reason))
    print(f"   invocation returned default code {ret} after a "
          f"{reason!r} cancellation — the kernel is fine")

    print("\n== disassembly of the instrumented spinner")
    print("\n".join("   " + line for line in
                    disasm(spinner.jprog.insns).splitlines()))


if __name__ == "__main__":
    main()
