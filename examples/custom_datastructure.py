#!/usr/bin/env python3
"""Define your own kernel data structure (§5.2's flexibility claim).

eBPF forces extensions onto kernel-provided maps; KFlex lets you build
whatever layout you want in the extension heap.  This example writes a
bounded ring-buffer (SPSC queue) extension from scratch: push and pop
operations over a heap-resident ring with head/tail cursors — a
structure vanilla eBPF cannot express because consumers index the ring
with runtime values.

Run:  python examples/custom_datastructure.py
"""

from repro.core.runtime import KFlexRuntime
from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.program import Program

R0, R1, R2, R3, R6, R7, R8 = (
    Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R6, Reg.R7, Reg.R8,
)

# Heap layout (static area):
#   0x40: head (next slot to pop)
#   0x48: tail (next slot to push)
#   0x50: ring of SLOTS u64 entries
HEAD = 0x40
TAIL = 0x48
RING = 0x50
SLOTS = 256  # power of two

HEAP = 1 << 16
EMPTY = (1 << 64) - 1


def build_push() -> Program:
    m = MacroAsm()
    m.ldx(R6, R1, 0, 8)      # value to push
    m.heap_addr(R7, TAIL)
    m.ldx(R2, R7, 0, 8)      # tail
    m.heap_addr(R8, HEAD)
    m.ldx(R3, R8, 0, 8)      # head
    # full if tail - head == SLOTS
    m.mov(R0, R2)
    m.sub(R0, R3)
    full = m.fresh_label("full")
    m.jcc(">=", R0, SLOTS, full)
    # ring[tail & (SLOTS-1)] = value   (bounded index -> guard elided!)
    m.mov(R3, R2)
    m.and_(R3, SLOTS - 1)
    m.lsh(R3, 3)
    m.heap_addr(R8, RING)
    m.add(R3, R8)
    m.stx(R3, R6, 0, 8)
    m.add(R2, 1)
    m.stx(R7, R2, 0, 8)      # tail++
    m.mov(R0, 1)
    m.exit()
    m.label(full)
    m.mov(R0, 0)
    m.exit()
    return Program("ring_push", m.assemble(), hook="bench", heap_size=HEAP)


def build_pop() -> Program:
    m = MacroAsm()
    m.heap_addr(R7, HEAD)
    m.ldx(R2, R7, 0, 8)      # head
    m.heap_addr(R8, TAIL)
    m.ldx(R3, R8, 0, 8)      # tail
    empty = m.fresh_label("empty")
    m.jcc("==", R2, R3, empty)
    m.mov(R3, R2)
    m.and_(R3, SLOTS - 1)
    m.lsh(R3, 3)
    m.heap_addr(R8, RING)
    m.add(R3, R8)
    m.ldx(R0, R3, 0, 8)      # value
    m.add(R2, 1)
    m.stx(R7, R2, 0, 8)      # head++
    m.exit()
    m.label(empty)
    m.ld_imm64(R0, EMPTY)
    m.exit()
    return Program("ring_pop", m.assemble(), hook="bench", heap_size=HEAP)


def main() -> None:
    rt = KFlexRuntime()
    heap = rt.create_heap(HEAP, name="ring")
    heap.reserve_static(RING - 0x40 + SLOTS * 8)
    push = rt.load(build_push(), heap=heap, attach=False)
    pop = rt.load(build_pop(), heap=heap, attach=False)

    for ext, name in ((push, "push"), (pop, "pop")):
        st = ext.iprog.stats
        print(f"{name}: guards emitted={st.guards_emitted}, "
              f"elided={st.guards_elided} — the masked ring index is "
              "provably in bounds, so SFI costs nothing here")

    def do_push(v):
        return push.invoke(rt.make_ctx(0, [v] + [0] * 7))

    def do_pop():
        return pop.invoke(rt.make_ctx(0, [0] * 8))

    print("\npushing 1..5, popping three:")
    for v in (1, 2, 3, 4, 5):
        assert do_push(v) == 1
    print("   popped:", [do_pop() for _ in range(3)])
    print("pushing until full:")
    pushed = 0
    while do_push(100 + pushed) == 1:
        pushed += 1
    print(f"   accepted {pushed} more (capacity {SLOTS}), then reported full")
    drained = 0
    while do_pop() != EMPTY:
        drained += 1
    print(f"   drained {drained} entries, then reported empty")
    assert drained == pushed + 2


if __name__ == "__main__":
    main()
