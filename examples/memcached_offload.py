#!/usr/bin/env python3
"""Offloading Memcached with KFlex vs BMC vs user space (§5.1, Fig. 2).

Loads all three systems, verifies they agree functionally, then runs a
miniature version of the Fig. 2 experiment (one GET:SET mix) and prints
throughput/p99 rows.

Run:  python examples/memcached_offload.py
"""

from repro.core.runtime import KFlexRuntime
from repro.apps.memcached import protocol as P
from repro.apps.memcached.bmc import BmcCache
from repro.apps.memcached.kflex_ext import KFlexMemcached
from repro.apps.memcached.userspace import UserspaceMemcached
from repro.ebpf.program import XDP_PASS, XDP_TX
from repro.figures.memcached_figs import (
    build_bmc_model,
    build_kflex_model,
    build_userspace_model,
)
from repro.sim.loadgen import ClosedLoopSim


def functional_demo() -> None:
    print("== functional agreement across the three systems")
    rt = KFlexRuntime()
    kflex = KFlexMemcached(rt)
    bmc = BmcCache(rt)
    behind_bmc = UserspaceMemcached()
    plain = UserspaceMemcached()

    for k, v in ((1, 11), (2, 22), (3, 33)):
        kflex.set(k, v)
        plain.set(k, v)
        # SETs bypass BMC (invalidate + pass to user space).
        verdict = bmc.probe(P.encode_set(k, v))
        assert verdict == XDP_PASS
        behind_bmc.set(k, v)

    for k in (1, 2, 3, 99):
        want = plain.get(k)
        got_kflex = kflex.get(k)
        # BMC: miss falls through to user space, then fills the cache.
        verdict = bmc.probe(P.encode_get(k))
        if verdict == XDP_TX:
            got_bmc = P.decode_reply(bmc.read_reply())
        else:
            got_bmc = behind_bmc.get(k)
            if got_bmc[0]:
                bmc.fill_from_response(k, got_bmc[1])
        assert got_kflex == want == got_bmc, (k, got_kflex, want, got_bmc)
        print(f"   GET {k}: all three agree -> {want}")
    # Second GET of a filled key is now a BMC hit.
    assert bmc.probe(P.encode_get(1)) == XDP_TX
    print(f"   BMC hit rate so far: {bmc.hit_rate:.0%}")


def mini_benchmark() -> None:
    print("\n== miniature Fig. 2 run (90:10 GETs:SETs, 8 server threads)")
    ratio = 0.9
    for model in (
        build_userspace_model(ratio),
        build_bmc_model(ratio),
        build_kflex_model(ratio),
    ):
        sim = ClosedLoopSim(
            n_clients=64,
            n_servers=8,
            service_fn=model.sampler(ratio),
            total_requests=5_000,
        )
        print("   " + sim.run().row(model.name))


if __name__ == "__main__":
    functional_demo()
    mini_benchmark()
