#!/usr/bin/env python3
"""Co-designing an extension with user space (§5.3, Fig. 7).

The Memcached fast path runs as a KFlex extension in the kernel; a
user-space garbage collector walks the *same* hash table through the
mmap'd heap (shared pointers, §3.4).  Because the extension stores
chain pointers translate-on-store, every pointer the GC reads is
already a user-space address — the application needs no translation
logic at all.

Run:  python examples/codesign_gc.py
"""

from repro.core.runtime import KFlexRuntime
from repro.apps.memcached.gc_codesign import GarbageCollectedMemcached


def main() -> None:
    rt = KFlexRuntime()
    gcm = GarbageCollectedMemcached(rt)

    print("== filling the store through the in-kernel fast path")
    for k in range(300):
        gcm.set(k, k)  # value doubles as an "age" stamp
    print(f"   {gcm.allocator.live_objects()} entries live, "
          f"{gcm.mc.heap.populated_bytes // 1024} KB of heap populated")
    print(f"   heap mapped into user space at {gcm.mc.heap.user_base:#x} "
          f"(kernel view {gcm.mc.heap.base:#x})")

    print("\n== user-space GC sweep: evict entries older than 150")
    evicted = gcm.run_gc(expire_below=150)
    st = gcm.stats
    print(f"   scanned {st.scanned} entries under {st.stripes_locked} stripe "
          f"locks, evicted {evicted}")
    print(f"   entries live now: {gcm.allocator.live_objects()}")

    print("\n== fast path keeps working on the GC'd table")
    assert gcm.get(100) == (False, None)   # evicted
    assert gcm.get(200) == (True, 200)     # survived
    assert gcm.set(100, 1000)              # reinsert through the kernel
    assert gcm.get(100) == (True, 1000)
    print("   evicted key misses, survivor hits, reinsert works")

    print("\n== rseq time-slice extension accounting (§4.4)")
    t = gcm.thread
    sched = rt.kernel.sched
    view = gcm.view
    lock = gcm.mc.stripe_lock_addr(0)
    view.spin_lock(lock)
    granted = sched.on_quantum_expiry(t)
    print(f"   quantum expired inside a critical section -> extension of "
          f"{granted} ns granted")
    view.spin_unlock(lock)
    assert sched.on_quantum_expiry(t) == 0
    print("   outside the critical section -> no extension")


if __name__ == "__main__":
    main()
