#!/usr/bin/env python3
"""Listing 1 from the paper: a linked-list key-value store at XDP.

The extension parses incoming UDP packets, walks a linked list of
key-value pairs under a KFlex spin lock, and serves *update* and
*delete* requests — acquiring a socket reference (``bpf_sk_lookup_udp``)
that it must release on every path.  This exact shape is rejected by
eBPF (unbounded list walk); KFlex loads it and, if a request ever spins
too long, cancels it while releasing the lock and socket reference.

Run:  python examples/kv_store_xdp.py
"""

import struct

from repro.core.runtime import KFlexRuntime
from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.program import Program, XDP_DROP
from repro.ebpf.helpers import (
    BPF_SK_LOOKUP_UDP,
    BPF_SK_RELEASE,
    KFLEX_FREE,
    KFLEX_MALLOC,
    KFLEX_SPIN_LOCK,
    KFLEX_SPIN_UNLOCK,
)
from repro.kernel.net import udp_tuple

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

# struct elem { int key; int value; struct elem *next, *prev; } (Listing 1)
ELEM = Struct(key=4, value=4, next=8, prev=8)

HEAD_OFF = 0x40  # list head pointer (extension global)
LOCK_OFF = 0x48  # kflex_spinlock_t lock

# Request packet: [req_type u32][key u32][value u32] after a 16-byte
# "header" standing in for the IPv4/UDP headers the real code parses.
REQ_UPDATE = 0
REQ_DELETE = 1
HDR = 16


def build_listing1() -> Program:
    m = MacroAsm()
    # if (!check_ipv4_udp(ctx)) return XDP_DROP;  -- bounds check here.
    m.stx(R10, R1, -32, 8)  # keep ctx for bpf_sk_lookup_udp
    m.ldx(R6, R1, 0, 8)   # data
    m.ldx(R3, R1, 8, 8)   # data_end
    m.mov(R2, R6)
    m.add(R2, HDR + 12)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_DROP)
    m.exit()
    m.label(ok)

    # init_sock_tuple(ctx, &tup): build the 12-byte tuple on the stack.
    m.stack_zero(-16, 16)
    m.st_imm(R10, -16, 0x0A000001, 4)
    m.st_imm(R10, -12, 0x0A000002, 4)
    m.st_imm(R10, -8, 53, 2)
    m.st_imm(R10, -6, 11211, 2)

    m.ldx(R8, R6, HDR + 4, 4)  # key = get_key(ctx)

    # kflex_spin_lock(&lock);
    m.heap_addr(R7, LOCK_OFF)
    m.call_helper(KFLEX_SPIN_LOCK, R7)

    # struct elem *e = head;  while (e != NULL) { ... }
    m.heap_addr(R2, HEAD_OFF)
    m.ldx(R9, R2, 0, 8)
    done = m.fresh_label("done")
    with m.while_("!=", R9, 0):
        m.ldf(R3, R9, ELEM.key)  # guarded pointer chase
        nxt = m.fresh_label("next")
        m.jcc("!=", R3, R8, nxt)
        # Only handle packets for existing UDP sockets (lines 33-35).
        m.ldx(R4, R10, -32, 8)  # ctx
        m.mov(R2, R10)
        m.add(R2, -16)
        m.call_helper(BPF_SK_LOOKUP_UDP, R4, R2, 12, 0, 0)
        m.jcc("==", R0, 0, done)
        m.mov(R5, R0)  # sk (held reference)
        m.stx(R10, R5, -24, 8)
        # switch (get_request_type(ctx))
        m.ldx(R3, R6, HDR, 4)
        with m.if_else("==", R3, REQ_UPDATE) as orelse:
            m.ldx(R4, R6, HDR + 8, 4)
            m.stf(R9, ELEM.value, R4)  # e->value = get_value(ctx)
            orelse()
            # list_delete(head, e); kflex_free(e);
            m.ldf(R4, R9, ELEM.next)
            m.ldf(R5, R9, ELEM.prev)
            with m.if_else("!=", R5, 0) as orelse2:
                m.stf(R5, ELEM.next, R4)
                orelse2()
                m.heap_addr(R2, HEAD_OFF)
                m.stx(R2, R4, 0, 8)
            with m.if_("!=", R4, 0):
                m.stf(R4, ELEM.prev, R5)
            m.call_helper(KFLEX_FREE, R9)
        m.ldx(R1, R10, -24, 8)
        m.call(BPF_SK_RELEASE)  # bpf_sk_release(sk)
        m.jmp(done)
        m.label(nxt)
        m.ldf(R9, R9, ELEM.next)
    m.label(done)
    m.heap_addr(R7, LOCK_OFF)
    m.call_helper(KFLEX_SPIN_UNLOCK, R7)
    m.mov(R0, XDP_DROP)
    m.exit()

    # kflex_heap(16) in the paper is 16 GB; 16 MB keeps the demo light.
    return Program("listing1", m.assemble(), hook="xdp", heap_size=1 << 24)


def make_packet(req: int, key: int, value: int = 0) -> bytes:
    return bytes(HDR) + struct.pack("<III", req, key, value)


def main() -> None:
    rt = KFlexRuntime()
    rt.kernel.net.create_udp_socket(udp_tuple(0x0A000001, 0x0A000002, 53, 11211))

    prog = build_listing1()
    ext = rt.load(prog, attach=False, quantum_units=200_000)
    ext.heap.reserve_static(0x100)
    st = ext.iprog.stats
    print(f"Listing 1 loaded: {st.guards_emitted} guards emitted, "
          f"{st.guards_elided} elided, {st.cancel_points} cancellation point(s)")

    # Seed the list from the outside (an init extension would normally
    # do this; we use the allocator directly for brevity).
    alloc = rt.allocator_for(ext.heap)
    asp = rt.kernel.aspace
    prev = 0
    for key, value in ((1, 10), (2, 20), (3, 30)):
        node = alloc.malloc(ELEM.size)
        asp.write_int(node + ELEM.key.off, key, 4)
        asp.write_int(node + ELEM.value.off, value, 4)
        asp.write_int(node + ELEM.next.off, prev, 8)
        asp.write_int(node + ELEM.prev.off, 0, 8)
        if prev:
            asp.write_int(prev + ELEM.prev.off, node, 8)
        prev = node
    asp.write_int(ext.heap.base + HEAD_OFF, prev, 8)

    def value_of(key):
        cur = asp.read_int(ext.heap.base + HEAD_OFF, 8)
        while cur:
            if asp.read_int(cur + ELEM.key.off, 4) == key:
                return asp.read_int(cur + ELEM.value.off, 4)
            cur = asp.read_int(cur + ELEM.next.off, 8)
        return None

    print("before:", {k: value_of(k) for k in (1, 2, 3)})
    ext.invoke(ext.xdp_ctx(make_packet(REQ_UPDATE, 2, 222)))
    print("after update(2, 222):", {k: value_of(k) for k in (1, 2, 3)})
    ext.invoke(ext.xdp_ctx(make_packet(REQ_DELETE, 1)))
    print("after delete(1):     ", {k: value_of(k) for k in (1, 2, 3)})
    print("socket refs leaked:", rt.kernel.net.total_extension_refs())
    print("lock owner after requests:", ext.locks.owner(LOCK_OFF))


if __name__ == "__main__":
    main()
