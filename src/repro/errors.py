"""Exception hierarchy for the KFlex reproduction.

Errors are split along the same boundary the paper draws (§3): static
verification failures (kernel-interface compliance, raised at load time)
versus runtime faults in extension execution (extension correctness,
handled by the cancellation machinery rather than propagating).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Static (load-time) errors
# ---------------------------------------------------------------------------


class VerificationError(ReproError):
    """The verifier rejected the extension.

    Carries the instruction index at which verification failed, mirroring
    the eBPF verifier's log output.
    """

    def __init__(self, message: str, insn_idx: int | None = None):
        self.insn_idx = insn_idx
        if insn_idx is not None:
            message = f"insn {insn_idx}: {message}"
        super().__init__(message)


class EncodingError(ReproError):
    """Malformed bytecode: unknown opcode, bad register, truncated stream."""


class AssemblerError(ReproError):
    """Error while assembling a program (unknown label, bad operand)."""


class LoadError(ReproError):
    """The runtime could not load an extension (e.g. no heap declared)."""


# ---------------------------------------------------------------------------
# Runtime faults (caught by the KFlex runtime, not user-visible normally)
# ---------------------------------------------------------------------------


class ExtensionFault(ReproError):
    """Base class for faults raised during extension execution."""

    def __init__(self, message: str, insn_idx: int | None = None):
        self.insn_idx = insn_idx
        super().__init__(message)


class PageFault(ExtensionFault):
    """Access to an unmapped or unpopulated page.

    In KFlex this is a cancellation trigger: the runtime catches it,
    unwinds via the object table of the faulting cancellation point and
    returns the hook's default code (§3.3).
    """

    def __init__(self, addr: int, message: str = "", insn_idx: int | None = None):
        self.addr = addr
        super().__init__(message or f"page fault at {addr:#x}", insn_idx)


class CancellationRequested(ExtensionFault):
    """Internal signal: the watchdog zeroed the terminate cell and the
    extension reached a cancellation point."""


class DivisionFault(ExtensionFault):
    """Division or modulo by zero.

    Real eBPF defines div-by-zero as returning 0 (the JIT emits a check);
    this fault is only raised by the raw interpreter when configured to
    trap instead of following eBPF semantics.
    """


class HelperFault(ExtensionFault):
    """A kernel helper was invoked with arguments that violate its
    contract at runtime (should have been prevented by the verifier)."""


class LockStall(ExtensionFault):
    """A spin-lock acquisition cannot make progress (§4.4): the holder
    is a preempted user thread or the extension itself (self-deadlock).
    The runtime converts this into a cancellation."""


class SleepStall(ExtensionFault):
    """A sleepable helper blocked indefinitely (e.g. a user page that
    will never arrive).  Detected by the background checker the runtime
    keeps for sleepable extensions (§4.3) and converted into a
    cancellation."""


class StackFault(ExtensionFault):
    """Out-of-bounds access to the extension stack frame."""


# ---------------------------------------------------------------------------
# Simulated-kernel errors
# ---------------------------------------------------------------------------


class KernelPanic(ReproError):
    """An invariant of the simulated kernel was violated.

    This is the failure KFlex exists to prevent; tests assert that no
    sequence of extension behaviours can raise it through the runtime.
    """


class QuiescenceViolation(KernelPanic):
    """The quiescence invariant failed after a cancellation unwind:
    a held lock, a live socket reference, or an orphaned allocation
    survived the dead invocation (§3.3).  A subclass of
    :class:`KernelPanic` because a non-quiescent kernel is exactly the
    failure KFlex's cancellation machinery exists to prevent — chaos
    campaigns assert none is ever raised.
    """


class OutOfMemory(ReproError):
    """vmalloc arena or cgroup limit exhausted."""


class FrameError(ReproError, ValueError):
    """A wire frame or datagram could not be decoded: short, oversized,
    or garbled (bad op byte, corrupted key salt).

    Subclasses :class:`ValueError` so callers that guarded the old
    ``decode_reply`` behaviour with ``except ValueError`` keep working;
    network servers catch it to drop the offending frame instead of
    crashing the datapath.
    """


class MapFull(ReproError):
    """An eBPF map reached max_entries (BMC's preallocated cache)."""


# ---------------------------------------------------------------------------
# Durable state & crash simulation
# ---------------------------------------------------------------------------


class StateError(ReproError):
    """Durable-state subsystem misuse (bad pin path, double attach,
    unreadable manifest) — programming errors, not crash outcomes.
    Crash outcomes (torn WAL tails, corrupt snapshots) never raise:
    recovery degrades to the last consistent prefix instead (§3.4
    extended to host failure)."""


class SimulatedCrash(ReproError):
    """An injected process death at a durable-state crash point.

    Raised by :class:`repro.sim.faults.CrashInjector` inside the
    WAL/snapshot/recovery code.  Campaign drivers catch it, discard all
    volatile state (as a real ``kill -9`` would) and run recovery; it
    must never be caught by the durable-state code itself — swallowing
    it would mean pretending a dead process kept executing.
    """

    def __init__(self, site: str, message: str = ""):
        self.site = site
        super().__init__(message or f"simulated crash at {site}")


class ShardCrashed(ReproError):
    """A request was routed to a shard worker that has crashed.

    The router treats this as the trigger for failover: recover the
    shard's pinned state into a replacement worker and retry there.
    """

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        super().__init__(f"shard {shard_id} crashed")


# ---------------------------------------------------------------------------
# Replication (repro.state.replication)
# ---------------------------------------------------------------------------


class ReplicationError(ReproError):
    """Base class for WAL-shipping / quorum replication failures.

    Unlike :class:`StateError` these are *runtime* conditions (a
    follower died, a quorum is unreachable, an epoch was superseded),
    not programming errors; callers handle them by shedding the write
    or triggering repair, never by acknowledging it."""


class ChannelDown(ReplicationError):
    """The shipping channel to one follower is unusable (connect
    refused, send/recv failure, or the follower died mid-frame).  The
    shipper marks the channel dead and counts the follower out of the
    quorum until anti-entropy brings it back."""

    def __init__(self, node_id: str, message: str = ""):
        self.node_id = node_id
        super().__init__(message or f"follower channel {node_id} down")


class QuorumLost(ReplicationError):
    """Fewer than ``sync_replicas`` followers acknowledged a shipped
    record.  The write is durable locally but MUST NOT be acked to the
    client — the service drops the reply and the client retries."""

    def __init__(self, pin: str, seq: int, acked: int, needed: int):
        self.pin = pin
        self.seq = seq
        self.acked = acked
        self.needed = needed
        super().__init__(
            f"quorum lost shipping {pin!r} seq {seq}: "
            f"{acked}/{needed} follower acks"
        )


class PrimaryFenced(ReplicationError):
    """A follower rejected this primary's frames because it has seen a
    higher epoch: a promotion happened and this primary is deposed.
    Every subsequent ship fails immediately; nothing it journals may be
    acknowledged again."""

    def __init__(self, epoch: int, newer_epoch: int):
        self.epoch = epoch
        self.newer_epoch = newer_epoch
        super().__init__(
            f"primary at epoch {epoch} fenced by epoch {newer_epoch}"
        )
