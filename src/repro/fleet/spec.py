"""Desired fleet state: the declarative input to the reconciler.

A `FleetSpec` says what the operator wants — how many shards, which
artifact version serves, what each tenant may consume — and nothing
about how to get there; the reconciler derives the ordered actions.
Specs round-trip through JSON so `kflexctl fleet apply` can take a
file and `fleet status` can show the persisted desired state next to
the observed one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource bounds, enforced with existing machinery.

    ``memory_bytes`` becomes a memcg limit on every shard's
    :class:`~repro.kernel.cgroup.CgroupController` (heap pages charged
    to the tenant's group fault with OutOfMemory past the limit);
    ``max_inflight`` becomes a per-tenant
    :class:`~repro.net.backpressure.AdmissionControl` at the router —
    over-budget requests are shed before they touch a shard.  Tenancy
    of a request is by key range: ``key_lo <= key_id < key_hi``.
    """

    key_lo: int = 0
    key_hi: int = 0
    memory_bytes: int | None = None
    max_inflight: int | None = None

    def to_dict(self) -> dict:
        return {
            "key_lo": self.key_lo,
            "key_hi": self.key_hi,
            "memory_bytes": self.memory_bytes,
            "max_inflight": self.max_inflight,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TenantQuota":
        return cls(
            key_lo=int(d.get("key_lo", 0)),
            key_hi=int(d.get("key_hi", 0)),
            memory_bytes=d.get("memory_bytes"),
            max_inflight=d.get("max_inflight"),
        )


@dataclass(frozen=True)
class CanaryPolicy:
    """How long to watch a canary and how much worse it may be.

    The observation window is demand-driven: the judge refuses to rule
    until the canary shard has served ``min_requests`` *new* requests
    (or ``timeout_s`` elapses — in which case the verdict is NO_DATA:
    a canary that saw no traffic has proven nothing, so the rollout
    neither promotes nor rolls back).  ``fault_margin`` is the
    allowance on the canary's fault ratio (drops + quarantines per
    request) over the non-canary baseline before rollback fires.
    """

    min_requests: int = 200
    fault_margin: float = 0.01
    poll_s: float = 0.05
    timeout_s: float = 10.0

    def to_dict(self) -> dict:
        return {
            "min_requests": self.min_requests,
            "fault_margin": self.fault_margin,
            "poll_s": self.poll_s,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CanaryPolicy":
        return cls(
            min_requests=int(d.get("min_requests", 200)),
            fault_margin=float(d.get("fault_margin", 0.01)),
            poll_s=float(d.get("poll_s", 0.05)),
            timeout_s=float(d.get("timeout_s", 10.0)),
        )


@dataclass(frozen=True)
class FleetSpec:
    """The whole desired state of one fleet."""

    #: Desired shard count; shard ids are always ``0..shards-1`` so a
    #: scale-in always removes the highest ids (deterministic plans).
    shards: int = 2
    #: Artifact version every shard should serve (a name in the
    #: :class:`~repro.fleet.rollout.ArtifactRegistry`).
    version: str = "stable"
    tenants: dict = field(default_factory=dict)  # name -> TenantQuota
    canary: CanaryPolicy = field(default_factory=CanaryPolicy)
    #: Named verifier profile (:mod:`repro.verify.profiles`) every
    #: shard verifies its artifacts under; "" = the built-in default.
    verify_profile: str = ""

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("spec needs at least one shard")

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "version": self.version,
            "tenants": {n: q.to_dict() for n, q in self.tenants.items()},
            "canary": self.canary.to_dict(),
            "verify_profile": self.verify_profile,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict) -> "FleetSpec":
        return cls(
            shards=int(d.get("shards", 2)),
            version=str(d.get("version", "stable")),
            tenants={
                n: TenantQuota.from_dict(q)
                for n, q in (d.get("tenants") or {}).items()
            },
            canary=CanaryPolicy.from_dict(d.get("canary") or {}),
            verify_profile=str(d.get("verify_profile", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))
