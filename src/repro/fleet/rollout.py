"""Artifact registry + canary judge: the rollout half of the fleet.

Artifacts are *versions* mapped to program builders; identity on the
wire is the content digest
(:func:`~repro.ebpf.pipeline.program_digest`), the same key the
compilation pipeline's :class:`~repro.ebpf.pipeline.ProgramCache`
uses — so a canary build and the stable build are distinct cache
entries by construction, and quarantining an artifact pins the exact
bytecode that misbehaved, not just its name.

The judge is deliberately dumb and counter-driven: it sees two stat
deltas (canary shard vs. the rest of the fleet) over the observation
window and rules PROMOTE, ROLLBACK or NO_DATA.  Every input it uses —
drops, supervisor quarantines, request counts — already existed as
:class:`~repro.net.service.ServiceStats` /
:class:`~repro.core.supervisor.SupervisorStats` counters; the fleet
layer adds judgment, not instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.spec import CanaryPolicy

PROMOTE = "promote"
ROLLBACK = "rollback"
NO_DATA = "no_data"


class RolloutError(Exception):
    pass


class ArtifactRegistry:
    """Named program builders + the quarantine list.

    ``register(version, builder)`` with ``builder(map) -> Program``.
    Quarantine is by version *and* digest: a rolled-back artifact's
    version can never be applied again, and its digest is kept so an
    operator re-registering the same bytecode under a new name is
    detectable.
    """

    def __init__(self):
        self._builders: dict[str, object] = {}
        self.quarantined_versions: set[str] = set()
        self.quarantined_digests: set[str] = set()
        #: version -> last observed content digest (filled on load).
        self.digests: dict[str, str] = {}

    def register(self, version: str, builder) -> None:
        self._builders[version] = builder

    def versions(self) -> list[str]:
        return sorted(self._builders)

    def builder(self, version: str):
        try:
            return self._builders[version]
        except KeyError:
            raise RolloutError(f"unknown artifact version {version!r}") from None

    def note_digest(self, version: str, digest: str) -> None:
        self.digests[version] = digest
        if digest in self.quarantined_digests:
            self.quarantined_versions.add(version)

    def quarantine(self, version: str, digest: str | None = None) -> None:
        self.quarantined_versions.add(version)
        if digest is None:
            digest = self.digests.get(version)
        if digest is not None:
            self.quarantined_digests.add(digest)

    def is_quarantined(self, version: str, digest: str | None = None) -> bool:
        if version in self.quarantined_versions:
            return True
        d = digest if digest is not None else self.digests.get(version)
        return d is not None and d in self.quarantined_digests


def default_registry() -> ArtifactRegistry:
    """Built-in artifacts for the durable-memcached fleet.

    ``stable`` is the production program; ``v2`` is a behaviourally
    identical build with distinct bytecode (a tag instruction), i.e. a
    rollout that *should* promote; ``flaky-demo`` verifies clean but
    drops a quarter of the key-space — the rollout that must be caught
    by the canary window and rolled back.
    """
    from repro.apps.memcached.durable_ext import (
        build_durable_memcached_program,
        build_flaky_memcached_program,
    )

    reg = ArtifactRegistry()
    reg.register("stable", build_durable_memcached_program)
    reg.register(
        "v2",
        lambda cache: build_durable_memcached_program(
            cache, "durable-memcached-v2", tag=2
        ),
    )
    reg.register("flaky-demo", build_flaky_memcached_program)
    return reg


@dataclass(frozen=True)
class CanaryReading:
    """A stat snapshot (or delta) for one scope: the canary shard, or
    the summed non-canary baseline."""

    requests: int = 0
    dropped: int = 0
    quarantines: int = 0
    bad_frames: int = 0

    def delta(self, earlier: "CanaryReading") -> "CanaryReading":
        return CanaryReading(
            requests=self.requests - earlier.requests,
            dropped=self.dropped - earlier.dropped,
            quarantines=self.quarantines - earlier.quarantines,
            bad_frames=self.bad_frames - earlier.bad_frames,
        )

    @property
    def fault_ratio(self) -> float:
        if self.requests <= 0:
            return 0.0
        return (self.dropped + self.quarantines) / self.requests

    @classmethod
    def of_stats(cls, stats) -> "CanaryReading":
        return cls(
            requests=stats.requests,
            dropped=stats.dropped,
            quarantines=stats.quarantines,
            bad_frames=stats.bad_frames,
        )


class CanaryJudge:
    """Rule on a finished observation window.

    * zero canary traffic → NO_DATA (promoting or rolling back on an
      empty window would be deciding from noise);
    * any supervisor quarantine on the canary → ROLLBACK (the fleet
      baseline running stable bytecode has none, so even one is
      attributable to the new artifact);
    * canary fault ratio more than ``fault_margin`` above the
      baseline's → ROLLBACK;
    * otherwise → PROMOTE.
    """

    def __init__(self, policy: CanaryPolicy | None = None):
        self.policy = policy or CanaryPolicy()

    def judge(
        self, canary: CanaryReading, baseline: CanaryReading
    ) -> str:
        if canary.requests <= 0:
            return NO_DATA
        if canary.quarantines > 0:
            return ROLLBACK
        if canary.fault_ratio > baseline.fault_ratio + self.policy.fault_margin:
            return ROLLBACK
        return PROMOTE
