"""Pure reconciliation: desired spec − observed state → ordered actions.

No I/O, no awaits — ``plan`` is a function from two values to a list,
which is what makes convergence testable: the controller executes the
actions, re-observes, and a converged fleet must plan to an empty
list (idempotence).

Action ordering is load-bearing:

1. **quotas** first — tightening a tenant before growing the fleet
   means the new capacity can never be consumed by a tenant the spec
   just bounded;
2. **scale-out** before rollout — a canary window judged over the
   final topology, and extra headroom before any risky change;
3. **rollout** next — one canary shard, judged, then fleet-wide;
4. **scale-in** last — shrinking is the only destructive step, so it
   runs after everything else proved healthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.spec import FleetSpec, TenantQuota


@dataclass(frozen=True)
class ShardView:
    """What the controller observed about one live shard."""

    shard_id: int
    version: str
    digest: str | None = None
    healthy: bool = True
    requests: int = 0


@dataclass
class FleetObservation:
    """Observed fleet state, as the controller sees it."""

    shards: dict = field(default_factory=dict)  # sid -> ShardView
    ring_nodes: list = field(default_factory=list)
    topology_epoch: int = 0
    quotas: dict = field(default_factory=dict)  # tenant -> TenantQuota


@dataclass(frozen=True)
class ApplyQuota:
    tenant: str
    quota: TenantQuota

    def __str__(self):
        return f"quota {self.tenant}"


@dataclass(frozen=True)
class AddShard:
    shard_id: int

    def __str__(self):
        return f"scale-out +shard {self.shard_id}"


@dataclass(frozen=True)
class RemoveShard:
    shard_id: int

    def __str__(self):
        return f"scale-in -shard {self.shard_id}"


@dataclass(frozen=True)
class RolloutVersion:
    version: str

    def __str__(self):
        return f"rollout {self.version}"


@dataclass(frozen=True)
class BlockedRollout:
    """The spec asks for a quarantined artifact; the reconciler refuses
    to plan it and surfaces the refusal instead of silently skipping."""

    version: str
    reason: str = "quarantined"

    def __str__(self):
        return f"rollout {self.version} BLOCKED ({self.reason})"


def plan(
    spec: FleetSpec,
    obs: FleetObservation,
    *,
    quarantined=frozenset(),
) -> list:
    """Ordered convergence actions from observed state to the spec."""
    actions: list = []

    for tenant in sorted(spec.tenants):
        quota = spec.tenants[tenant]
        if obs.quotas.get(tenant) != quota:
            actions.append(ApplyQuota(tenant, quota))

    desired = set(range(spec.shards))
    current = set(obs.ring_nodes)
    for sid in sorted(desired - current):
        actions.append(AddShard(sid))

    versions = {v.version for v in obs.shards.values()}
    if versions != {spec.version} or not versions:
        if spec.version in quarantined:
            actions.append(BlockedRollout(spec.version))
        elif versions - {spec.version} or not versions:
            actions.append(RolloutVersion(spec.version))

    for sid in sorted(current - desired, reverse=True):
        actions.append(RemoveShard(sid))

    return actions
