"""repro.fleet: a reconciling control plane over the sharded runtime.

The paper stops at one fast, safe runtime; operating *many* of them is
where real eBPF deployments spend their lives (see "The eBPF Runtime
in the Linux Kernel" and Rex in PAPERS.md): shipping new bytecode to a
serving fleet, rebalancing shards without dropping traffic, rolling
back a bad extension before it takes the fleet down.  This package is
that layer, built strictly *on top of* the existing machinery:

* :mod:`repro.fleet.spec` — the desired state (`FleetSpec`): shard
  count, artifact version, per-tenant quotas, canary policy.
* :mod:`repro.fleet.reconciler` — pure planning: observed fleet state
  diffed against the spec yields an ordered list of convergence
  actions (quotas → scale-out → rollout → scale-in).
* :mod:`repro.fleet.rollout` — artifact registry (content-addressed,
  quarantine list) and the canary judge that decides promote /
  rollback / no-data from supervisor + service counters.
* :mod:`repro.fleet.migrate` — live pinned-map migration between
  shards: segment snapshot install + WAL-tail catch-up over the
  replication frame codec, with an atomic ring cutover.
* :mod:`repro.fleet.controller` — the running control plane: owns the
  ring, the failover table and the TCP front, and executes plans.
"""

from repro.fleet.spec import CanaryPolicy, FleetSpec, TenantQuota
from repro.fleet.reconciler import (
    AddShard,
    ApplyQuota,
    BlockedRollout,
    FleetObservation,
    RemoveShard,
    RolloutVersion,
    ShardView,
    plan,
)
from repro.fleet.rollout import (
    ArtifactRegistry,
    CanaryJudge,
    CanaryReading,
    NO_DATA,
    PROMOTE,
    ROLLBACK,
    default_registry,
)
from repro.fleet.migrate import (
    MigrationReport,
    SegmentMigration,
    inline_call,
    memcached_key_id,
    worker_call,
)
from repro.fleet.controller import FleetController

__all__ = [
    "AddShard",
    "ApplyQuota",
    "ArtifactRegistry",
    "BlockedRollout",
    "CanaryJudge",
    "CanaryPolicy",
    "CanaryReading",
    "FleetController",
    "FleetObservation",
    "FleetSpec",
    "MigrationReport",
    "NO_DATA",
    "PROMOTE",
    "ROLLBACK",
    "RemoveShard",
    "RolloutVersion",
    "SegmentMigration",
    "ShardView",
    "TenantQuota",
    "default_registry",
    "inline_call",
    "memcached_key_id",
    "plan",
    "worker_call",
]
