"""Live pinned-map migration: snapshot install + WAL-tail catch-up.

Moving a ring segment between shards reuses the durable-state stack as
the transport, exactly as PR 7's replication does:

* the **segment image** is cut with the snapshot codec
  (:func:`~repro.state.snapshot.encode_snapshot`) and shipped as
  chunked ``MSG_SNAPSHOT`` replication frames;
* the **tail** — writes the source accepted while the image shipped —
  is the source's own CRC-framed WAL records, shipped verbatim as
  ``MSG_APPEND`` frames and applied *journaled* on the target, so
  every caught-up record is durable on the target before cutover;
* the **cutover** happens under the router's pause gate: with no
  request in flight, one final tail read is complete by construction,
  the ring flips, and the router resumes — requests were held, never
  failed.

The migration itself is topology-agnostic: it talks to each side
through a ``call(fn)`` that runs ``fn(service)`` in that shard's
execution context.  ``worker_call`` adapts a threaded
:class:`~repro.net.shard.ShardWorker` (cross-loop, blocking);
``inline_call`` adapts an in-process service (tests, chaos campaigns).

A WAL that compacted away mid-handoff (the source snapshotted and
truncated past our catch-up cursor) is detected as a sequence gap and
degrades to a full segment re-scan — slower, never wrong.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.state.replication import (
    MSG_APPEND,
    MSG_SNAPSHOT,
    SNAP_CHUNK,
    decode_frame,
    encode_frame,
)
from repro.state.snapshot import decode_snapshot, encode_snapshot
from repro.state.wal import OP_DELETE, OP_UPDATE, encode_record, scan_wal


class MigrationError(Exception):
    pass


def memcached_key_id(map_key: bytes) -> int:
    """Routing key of a memcached map key: the 8-byte LE id prefix
    (see :func:`repro.apps.memcached.protocol.key_bytes`)."""
    return struct.unpack_from("<Q", map_key)[0]


def worker_call(worker):
    """``call(fn)`` adapter for a threaded ShardWorker."""
    return lambda fn: worker.call(fn)


def inline_call(service):
    """``call(fn)`` adapter for an in-process service."""
    return lambda fn: fn(service)


@dataclass
class MigrationReport:
    pin: str = ""
    entries_moved: int = 0
    tail_records: int = 0
    catchup_rounds: int = 0
    rescans: int = 0
    base_seq: int = 0
    final_seq: int = 0
    source_cleaned: int = 0
    snapshot_frames: int = 0
    append_frames: int = 0


class SegmentMigration:
    """Ship one shard's slice of a pinned map to another shard.

    ``moved(key_id) -> bool`` decides segment membership — typically
    "the *new* ring owns this key at the target" — so the same
    predicate serves scale-out (many sources, one new target) and
    scale-in (one source, many surviving targets).

    Call order: :meth:`bulk_install`, :meth:`catch_up` (repeatable),
    then — with the router paused — :meth:`final_tail`, the ring flip,
    resume, and :meth:`cleanup_source`.
    """

    def __init__(
        self,
        source_call,
        target_call,
        *,
        pin: str,
        moved,
        route_key=memcached_key_id,
        crash=None,
    ):
        self.source_call = source_call
        self.target_call = target_call
        self.pin = pin
        self.moved = moved
        self.route_key = route_key
        self.crash = crash
        self.report = MigrationReport(pin=pin)
        #: Highest source WAL sequence whose effects are installed on
        #: the target (via the image or an applied tail record).
        self.last_seq = 0

    # -- stage 1: segment image ------------------------------------------

    def _read_segment(self, svc):
        if self.crash is not None:
            self.crash.at("migrate.snapshot")
        wal = svc.store.wal(self.pin)
        entries = [
            (k, v)
            for k, v in svc.cache.entries()
            if self.moved(self.route_key(k))
        ]
        return wal.seq, svc.cache.meta(), entries

    def bulk_install(self) -> int:
        """Cut the segment image on the source, ship it as chunked
        MSG_SNAPSHOT frames, install it on the target behind one
        durable barrier (a target-side snapshot: N entries, one
        fsync-analog, not N)."""
        seq, meta, entries = self.source_call(self._read_segment)
        blob = encode_snapshot(seq, meta, entries)
        frames = []
        total = len(blob)
        for off in range(0, total or 1, SNAP_CHUNK):
            chunk = blob[off : off + SNAP_CHUNK]
            body = struct.pack("<II", total, off) + chunk
            frames.append(encode_frame(MSG_SNAPSHOT, 0, seq, self.pin, body))
        self.report.snapshot_frames = len(frames)

        def install(svc):
            if self.crash is not None:
                self.crash.at("migrate.install")
            buf = bytearray(total)
            for fblob in frames:
                fr = decode_frame(fblob)
                if fr.kind != MSG_SNAPSHOT or fr.pin != self.pin:
                    raise MigrationError("unexpected frame in segment stream")
                ftotal, foff = struct.unpack_from("<II", fr.body)
                if ftotal != total:
                    raise MigrationError("segment stream length mismatch")
                chunk = fr.body[8:]
                buf[foff : foff + len(chunk)] = chunk
            _, got_meta, got = decode_snapshot(bytes(buf))
            mine = svc.cache.meta()
            if (got_meta["key_size"], got_meta["value_size"]) != (
                mine["key_size"],
                mine["value_size"],
            ):
                raise MigrationError("segment image map geometry mismatch")
            svc.cache.load_entries(got)
            # One durable barrier for the whole image; the target's own
            # snapshot covers the bulk entries without journaling each.
            svc.store.snapshot(svc.pin)
            return len(got)

        n = self.target_call(install)
        self.last_seq = seq
        self.report.entries_moved = n
        self.report.base_seq = seq
        return n

    # -- stage 2: WAL tail catch-up ---------------------------------------

    def _read_tail(self, svc):
        wal = svc.store.wal(self.pin)
        blob = svc.store.storage.read(f"{self.pin}/wal") or b""
        records, _, _ = scan_wal(blob)
        fresh = [r for r in records if r.seq > self.last_seq]
        # Sequence-gap detection: the WAL only reaches back to its last
        # compaction point.  If our cursor predates it, the missing
        # records were folded into a full-map snapshot we cannot slice
        # a segment out of incrementally — signal a re-scan.
        if fresh:
            if fresh[0].seq > self.last_seq + 1:
                return None
        elif wal.seq > self.last_seq:
            return None
        frames = [
            encode_frame(
                MSG_APPEND,
                0,
                r.seq,
                self.pin,
                encode_record(r.seq, r.op, r.key, r.value),
            )
            for r in fresh
            if self.moved(self.route_key(r.key))
        ]
        top = fresh[-1].seq if fresh else self.last_seq
        return top, frames

    def _apply_tail(self, frames, *, site: str) -> int:
        def apply(svc):
            if self.crash is not None:
                self.crash.at(site)
            n = 0
            for fblob in frames:
                fr = decode_frame(fblob)
                if fr.kind != MSG_APPEND or fr.pin != self.pin:
                    raise MigrationError("unexpected frame in tail stream")
                recs, _, torn = scan_wal(fr.body)
                if torn or len(recs) != 1:
                    raise MigrationError("corrupt tail record")
                rec = recs[0]
                # Journaled apply: each record is durable on the target
                # before the cutover can possibly happen.
                if rec.op == OP_UPDATE:
                    svc.cache.update(rec.key, rec.value)
                elif rec.op == OP_DELETE:
                    svc.cache.delete(rec.key)
                n += 1
            return n

        return self.target_call(apply)

    def _one_round(self, *, site: str) -> int:
        """One catch-up round; returns frames applied, or -1 when the
        tail compacted away and a full re-scan was performed."""
        tail = self.source_call(self._read_tail)
        if tail is None:
            self.report.rescans += 1
            self.bulk_install()
            return -1
        top, frames = tail
        applied = self._apply_tail(frames, site=site) if frames else 0
        self.last_seq = max(self.last_seq, top)
        self.report.tail_records += applied
        self.report.append_frames += len(frames)
        return applied

    def catch_up(self, max_rounds: int = 50) -> int:
        """Repeat tail rounds until one ships nothing (the source is
        momentarily caught up; only the paused final round makes that
        durable truth)."""
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            self.report.catchup_rounds += 1
            if self._one_round(site="migrate.tail") == 0:
                break
        return rounds

    # -- stage 3: cutover (caller holds the router pause) ------------------

    def final_tail(self) -> int:
        """The last tail, read with the router quiesced: nothing can be
        mid-write on the source, so after this the target holds every
        acknowledged record of the segment."""
        n = self._one_round(site="migrate.cutover")
        while n != 0:
            # A re-scan (-1) restarts the cursor; drain whatever the
            # fresh image's tail shows.  Under the pause this converges
            # immediately — the source WAL cannot grow.
            n = self._one_round(site="migrate.cutover")
        self.report.final_seq = self.last_seq
        return self.report.tail_records

    # -- stage 4: post-cutover source cleanup ------------------------------

    def cleanup_source(self) -> int:
        """Journaled deletes of the moved keys on the source — the ring
        no longer routes them here, and leaving them would double-count
        memory and resurrect stale values on a later scale-in."""

        def clean(svc):
            keys = [
                k
                for k, _ in svc.cache.entries()
                if self.moved(self.route_key(k))
            ]
            for k in keys:
                svc.cache.delete(k)
            return len(keys)

        n = self.source_call(clean)
        self.report.source_cleaned = n
        return n
