"""The running control plane: observe, plan, converge.

`FleetController` owns the live topology — the consistent-hash ring,
the :class:`~repro.net.shard.ShardFailover` table (dict-keyed, so
shard ids survive scale-in holes), the TCP front router — and executes
reconciler plans against it:

* **scale-out**: boot the worker, register it (unreachable until the
  ring knows it), migrate every existing shard's slice of the new
  segment via snapshot + WAL-tail, then flip the ring under the
  router's pause gate — requests are held, never failed;
* **scale-in**: migrate the leaving shard's segments to their new
  owners, flip, then drain and retire the worker;
* **rollout**: verify + load the new artifact on one canary shard,
  watch fault counters against the fleet baseline for the policy
  window, then promote fleet-wide or roll back and quarantine the
  artifact (by version *and* content digest);
* **quotas**: memcg limits on every shard runtime + per-tenant
  admission control at the router.

Control-plane state (desired spec, last status, quarantine list)
persists through the same storage abstraction the durable stores use,
so `kflexctl fleet status` works offline against a fleet root.
"""

from __future__ import annotations

import asyncio
import json

from repro.apps.memcached import protocol as P
from repro.errors import FrameError
from repro.fleet.migrate import SegmentMigration, worker_call
from repro.fleet.reconciler import (
    AddShard,
    ApplyQuota,
    BlockedRollout,
    FleetObservation,
    RemoveShard,
    RolloutVersion,
    ShardView,
    plan,
)
from repro.fleet.rollout import (
    CanaryJudge,
    CanaryReading,
    NO_DATA,
    PROMOTE,
    ROLLBACK,
    default_registry,
)
from repro.fleet.spec import FleetSpec
from repro.verify import VerificationService, VerifyJob
from repro.net.backpressure import AdmissionControl, AdmissionPolicy
from repro.net.datapath import TcpDatapath
from repro.net.service import DurableMemcachedService
from repro.net.shard import ConsistentHashRing, ShardFailover, ShardRouterService, ShardWorker
from repro.state.storage import DirStorage, MemStorage
from repro.state.store import DurableStore

SPEC_NAME = "fleet/spec"
STATUS_NAME = "fleet/status"
QUARANTINE_NAME = "fleet/quarantine"


def route_key(payload: bytes) -> int:
    return P.decode_request(payload)[1]


class FleetController:
    def __init__(
        self,
        *,
        root: str | None = None,
        registry=None,
        host: str = "127.0.0.1",
        policy: AdmissionPolicy | None = None,
        pin: str = "memcached/cache",
        capacity: int = 4096,
        vnodes: int = 64,
        stable_version: str = "stable",
        backoff=None,
        verify_profile: str = "",
        verify_workers: int = 0,
    ):
        self.root = root
        self.registry = registry or default_registry()
        self.host = host
        self.policy = policy
        self.pin = pin
        self.capacity = capacity
        self.vnodes = vnodes
        self.stable_version = stable_version
        self.backoff = backoff
        #: Verifier profile every shard loads artifacts under; the spec
        #: (`FleetSpec.verify_profile`) overrides it on apply().
        self.verify_profile = verify_profile
        #: The controller-side verification service: rollout candidates
        #: are batch pre-verified through it (``verify_workers`` forked
        #: workers; 0 = inline) before any shard is asked to swap.
        self.verify_service = VerificationService(verify_workers)
        #: Per-shard artifact version (what the factory builds — also
        #: what a failover replacement comes back serving).
        self.versions: dict[int, str] = {}
        self._storages: dict[int, object] = {}
        self.control = DirStorage(root) if root is not None else MemStorage()
        self._load_quarantine()
        self._tenant_ranges: list[tuple[str, int, int]] = []
        self._quota_specs: dict = {}
        self.quotas: dict[str, object] = {}
        self.ring: ConsistentHashRing | None = None
        self.failover: ShardFailover | None = None
        self.router: ShardRouterService | None = None
        self.front: TcpDatapath | None = None
        self.last_actions: list[str] = []
        self.pending_canary: dict | None = None

    # -- storage plumbing --------------------------------------------------

    def _storage(self, sid: int):
        st = self._storages.get(sid)
        if st is None:
            st = (
                DirStorage(f"{self.root}/shard-{sid}")
                if self.root is not None
                else MemStorage()
            )
            self._storages[sid] = st
        return st

    def _load_quarantine(self) -> None:
        blob = self.control.read(QUARANTINE_NAME)
        if blob:
            data = json.loads(blob.decode())
            self.registry.quarantined_versions |= set(data.get("versions", ()))
            self.registry.quarantined_digests |= set(data.get("digests", ()))

    def _save_quarantine(self) -> None:
        self.control.write_atomic(
            QUARANTINE_NAME,
            json.dumps(
                {
                    "versions": sorted(self.registry.quarantined_versions),
                    "digests": sorted(self.registry.quarantined_digests),
                }
            ).encode(),
        )

    # -- service / worker factories ---------------------------------------

    def _service_factory(self, shard_id: int) -> DurableMemcachedService:
        version = self.versions.get(shard_id, self.stable_version)
        builder = self.registry.builder(version)
        store = DurableStore(storage=self._storage(shard_id))
        svc = DurableMemcachedService(
            store=store,
            pin=self.pin,
            capacity=self.capacity,
            program_builder=builder,
            verify_profile=self.verify_profile,
        )
        digest = svc.program_digest
        if digest is not None:
            self.registry.note_digest(version, digest)
        return svc

    async def _spawn(self, sid: int) -> ShardWorker:
        w = ShardWorker(
            sid,
            self._service_factory,
            host=self.host,
            policy=self.policy,
        )
        w.start()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, w.wait_ready)
        return w

    def _tenant_of(self, payload: bytes) -> str | None:
        try:
            key_id = P.decode_request(payload)[1]
        except (ValueError, FrameError):
            return None
        for name, lo, hi in self._tenant_ranges:
            if lo <= key_id < hi:
                return name
        return None

    # -- lifecycle ---------------------------------------------------------

    async def start(self, n_shards: int = 2) -> "FleetController":
        """Boot the initial topology at the stable version."""
        workers: dict[int, ShardWorker] = {}
        for sid in range(n_shards):
            workers[sid] = await self._spawn(sid)
        self.ring = ConsistentHashRing(sorted(workers), vnodes=self.vnodes)
        self.failover = ShardFailover(
            workers,
            self._service_factory,
            host=self.host,
            policy=self.policy,
            backoff=self.backoff,
        )
        self.router = ShardRouterService(
            self.failover.workers,
            self.ring,
            route_key,
            failover=self.failover,
            tenant_fn=self._tenant_of,
        )
        self.front = TcpDatapath(self.router, host=self.host, policy=self.policy)
        await self.front.start()
        return self

    @property
    def port(self) -> int | None:
        return self.front.port if self.front is not None else None

    async def stop(self) -> dict:
        report = {}
        if self.front is not None:
            report["front"] = await self.front.stop()
        if self.failover is not None:
            loop = asyncio.get_running_loop()
            report["shards"] = await loop.run_in_executor(
                None, self.failover.shutdown_all
            )
        self.verify_service.close()
        self._persist_status()
        return report

    # -- observation + reconciliation --------------------------------------

    def observe(self) -> FleetObservation:
        obs = FleetObservation(
            ring_nodes=list(self.ring.nodes) if self.ring else [],
            topology_epoch=self.failover.topology_epoch if self.failover else 0,
            quotas={
                name: q for name, q in (self._quota_specs or {}).items()
            },
        )
        for sid in obs.ring_nodes:
            version = self.versions.get(sid, self.stable_version)
            obs.shards[sid] = ShardView(
                shard_id=sid,
                version=version,
                digest=self.registry.digests.get(version),
                healthy=not getattr(self.failover.worker(sid), "crashed", False),
            )
        return obs

    async def apply(self, spec: FleetSpec) -> dict:
        """Converge the live fleet onto ``spec``; returns an action
        report (executed actions + per-action outcomes)."""
        self.control.write_atomic(SPEC_NAME, spec.to_json().encode())
        if spec.verify_profile:
            # New shards (and every rollout pre-verification) pick the
            # profile up immediately; already-running shards keep their
            # loaded artifacts but re-verify under the new profile at
            # their next swap.
            self.verify_profile = spec.verify_profile
            if self.failover is not None and self.ring is not None:
                for sid in self.ring.nodes:
                    w = self.failover.worker(sid)
                    if w is None or getattr(w, "crashed", False):
                        continue
                    w.call(
                        lambda svc, p=spec.verify_profile: setattr(
                            svc, "verify_profile", p
                        )
                    )
        actions = plan(
            spec,
            self.observe(),
            quarantined=self.registry.quarantined_versions,
        )
        report = {"actions": [], "rollout": None, "migrations": []}
        for act in actions:
            if isinstance(act, ApplyQuota):
                self._apply_quota(act.tenant, act.quota)
                self._quota_specs[act.tenant] = act.quota
                report["actions"].append(str(act))
            elif isinstance(act, AddShard):
                migs = await self.scale_out(act.shard_id)
                report["actions"].append(str(act))
                report["migrations"].extend(migs)
            elif isinstance(act, RemoveShard):
                migs = await self.scale_in(act.shard_id)
                report["actions"].append(str(act))
                report["migrations"].extend(migs)
            elif isinstance(act, RolloutVersion):
                verdict = await self.rollout(act.version, policy=spec.canary)
                report["actions"].append(f"{act} -> {verdict['verdict']}")
                report["rollout"] = verdict
            elif isinstance(act, BlockedRollout):
                report["actions"].append(str(act))
        self.last_actions = report["actions"]
        self._persist_status()
        return report

    # -- quotas ------------------------------------------------------------

    def _apply_quota(self, tenant: str, quota) -> None:
        self._tenant_ranges = [
            (n, q.key_lo, q.key_hi)
            for n, q in sorted({**dict(self._quota_specs), tenant: quota}.items())
        ]
        if quota.max_inflight is not None:
            self.router.tenant_admission[tenant] = AdmissionControl(
                AdmissionPolicy(max_inflight=quota.max_inflight)
            )
        else:
            self.router.tenant_admission.pop(tenant, None)
        if quota.memory_bytes is not None:
            for sid in self.ring.nodes:
                w = self.failover.worker(sid)
                if w is None or getattr(w, "crashed", False):
                    continue
                w.call(
                    lambda svc, t=tenant, b=quota.memory_bytes: (
                        svc.runtime.kernel.cgroups.group(t, limit_bytes=b)
                    )
                )
        self.quotas[tenant] = quota

    # -- elastic scale -----------------------------------------------------

    async def scale_out(self, sid: int) -> list:
        """Add a shard: migrate its ring segment in from every current
        owner, then cut the ring over atomically."""
        w = await self._spawn(sid)
        self.failover.register(sid, w)
        new_ring = self.ring.copy()
        new_ring.add_node(sid)
        migs = [
            SegmentMigration(
                worker_call(self.failover.worker(src)),
                worker_call(w),
                pin=self.pin,
                moved=lambda kid, r=new_ring, t=sid: r.shard_of(kid) == t,
            )
            for src in self.ring.nodes
        ]
        await self._rebalance(new_ring, migs)
        return [m.report for m in migs]

    async def scale_in(self, sid: int) -> list:
        """Remove a shard: migrate its segments to their new owners,
        flip the ring, then drain and retire the worker."""
        src = self.failover.worker(sid)
        new_ring = self.ring.copy()
        new_ring.remove_node(sid)
        migs = [
            SegmentMigration(
                worker_call(src),
                worker_call(self.failover.worker(t)),
                pin=self.pin,
                moved=lambda kid, r=new_ring, t=t: r.shard_of(kid) == t,
            )
            for t in new_ring.nodes
        ]
        await self._rebalance(new_ring, migs, cleanup=False)
        self.failover.deregister(sid)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, src.shutdown)
        self.versions.pop(sid, None)
        self._storages.pop(sid, None)
        return [m.report for m in migs]

    async def _rebalance(self, new_ring, migs, *, cleanup: bool = True) -> None:
        loop = asyncio.get_running_loop()
        for mig in migs:
            await loop.run_in_executor(None, mig.bulk_install)
            await loop.run_in_executor(None, mig.catch_up)
        await self.router.pause()
        try:
            for mig in migs:
                await loop.run_in_executor(None, mig.final_tail)
            # The flip: one assignment on the router's own loop while
            # it is provably idle — no request ever sees a half-moved
            # segment.
            self.ring = new_ring
            self.router.ring = new_ring
            self.failover.bump_topology()
        finally:
            self.router.resume()
        if cleanup:
            for mig in migs:
                await loop.run_in_executor(None, mig.cleanup_source)

    # -- canary rollout ----------------------------------------------------

    def _preverify(self, builder, sids) -> None:
        """Batch pre-verification of one artifact across shards.

        Each shard materialises the candidate over its own live map
        (placement differs per shard, so each is a distinct artifact),
        the whole set goes through the verification service as one
        batch, and every admitted analysis is seeded back into its
        shard's pipeline cache.  A single rejection raises — no shard
        swaps to a program that failed verification anywhere.
        """
        from repro.errors import VerificationError

        cands = []
        for sid in sids:
            w = self.failover.worker(sid)
            if w is None or getattr(w, "crashed", False):
                continue
            program, config = w.call(
                lambda svc: (svc.build_candidate(builder), svc.verify_config())
            )
            cands.append((w, program, config))
        outs = self.verify_service.submit_batch(
            [VerifyJob(program, config) for _w, program, config in cands]
        )
        for (w, program, _config), out in zip(cands, outs):
            if out.error is not None:
                raise VerificationError(out.error)
            w.call(
                lambda svc, p=program, a=out.analysis: svc.adopt_analysis(p, a)
            )

    def _read_stats(self, sid: int) -> CanaryReading:
        w = self.failover.worker(sid)
        return w.call(lambda svc: CanaryReading.of_stats(svc.stats))

    def _sum_readings(self, sids) -> CanaryReading:
        total = CanaryReading()
        for sid in sids:
            r = self._read_stats(sid)
            total = CanaryReading(
                requests=total.requests + r.requests,
                dropped=total.dropped + r.dropped,
                quarantines=total.quarantines + r.quarantines,
                bad_frames=total.bad_frames + r.bad_frames,
            )
        return total

    async def rollout(self, version: str, *, policy=None) -> dict:
        """Canary rollout of ``version``; returns a verdict report."""
        if self.registry.is_quarantined(version):
            return {"version": version, "verdict": "blocked", "reason": "quarantined"}
        builder = self.registry.builder(version)
        judge = CanaryJudge(policy)
        canary_sid = min(self.ring.nodes)
        others = [s for s in self.ring.nodes if s != canary_sid]
        loop = asyncio.get_running_loop()
        canary_w = self.failover.worker(canary_sid)
        prev_version = self.versions.get(canary_sid, self.stable_version)

        canary0 = self._read_stats(canary_sid)
        base0 = self._sum_readings(others)
        try:
            # Pre-verify the canary's candidate through the service
            # before the shard is asked to do anything: a rejected
            # artifact is quarantined without the serving path ever
            # seeing it, and an admitted analysis seeds the shard's
            # pipeline so the swap below is a warm (verify-free) load.
            await loop.run_in_executor(
                None, lambda: self._preverify(builder, [canary_sid])
            )
            digest = await loop.run_in_executor(
                None, lambda: canary_w.call(lambda svc: svc.swap_program(builder))
            )
        except Exception as exc:
            # Verification / load failure: nothing was swapped, the
            # stable program kept serving.  Quarantine the artifact.
            self.registry.quarantine(version)
            self._save_quarantine()
            return {
                "version": version,
                "verdict": ROLLBACK,
                "reason": f"load failed: {exc}",
            }
        self.registry.note_digest(version, digest)
        self.versions[canary_sid] = version
        self.pending_canary = {"version": version, "shard": canary_sid}

        # Observation window: wait for enough canary traffic or the
        # policy timeout, whichever first.
        pol = judge.policy
        deadline = loop.time() + pol.timeout_s
        while True:
            canary_d = self._read_stats(canary_sid).delta(canary0)
            if canary_d.requests >= pol.min_requests:
                break
            if loop.time() >= deadline:
                break
            await asyncio.sleep(pol.poll_s)
        base_d = self._sum_readings(others).delta(base0)

        verdict = judge.judge(canary_d, base_d)
        report = {
            "version": version,
            "digest": digest,
            "verdict": verdict,
            "canary_shard": canary_sid,
            "canary": canary_d.__dict__,
            "baseline": base_d.__dict__,
        }
        if verdict == PROMOTE:
            # One service batch pre-verifies every remaining shard's
            # candidate (each shard's artifact differs by map placement
            # even when the bytecode template is shared), so the swap
            # fan-out below runs verify-free.
            if others:
                await loop.run_in_executor(
                    None, lambda: self._preverify(builder, others)
                )
            for sid in others:
                w = self.failover.worker(sid)
                await loop.run_in_executor(
                    None, lambda w=w: w.call(lambda svc: svc.swap_program(builder))
                )
                self.versions[sid] = version
            self.stable_version = version
            self.pending_canary = None
        elif verdict == ROLLBACK:
            stable_builder = self.registry.builder(prev_version)
            await loop.run_in_executor(
                None,
                lambda: canary_w.call(lambda svc: svc.swap_program(stable_builder)),
            )
            self.versions[canary_sid] = prev_version
            self.registry.quarantine(version, digest)
            self._save_quarantine()
            self.pending_canary = None
        # NO_DATA: the canary stays canarying — promoting or rolling
        # back on zero traffic would be a coin flip; the next apply()
        # re-opens the window.
        report["verify"] = self.verify_service.stats_dict()
        return report

    # -- status ------------------------------------------------------------

    def status(self) -> dict:
        return {
            "ring": list(self.ring.nodes) if self.ring else [],
            "topology_epoch": self.failover.topology_epoch if self.failover else 0,
            "stable_version": self.stable_version,
            "versions": {
                str(sid): self.versions.get(sid, self.stable_version)
                for sid in (self.ring.nodes if self.ring else [])
            },
            "quarantined": sorted(self.registry.quarantined_versions),
            "verify_profile": self.verify_profile,
            "tenants": {
                name: q.to_dict() for name, q in self.quotas.items()
            },
            # Per-tenant shed attribution: without it a flood victim
            # is indistinguishable from a flood source in the report.
            "tenant_sheds": dict(self.router.tenant_sheds)
            if self.router else {},
            "pending_canary": self.pending_canary,
            "last_actions": list(self.last_actions),
            "failover": self.failover.telemetry() if self.failover else {},
        }

    def _persist_status(self) -> None:
        self.control.write_atomic(
            STATUS_NAME, json.dumps(self.status(), indent=2, sort_keys=True).encode()
        )


def read_status(root: str) -> dict | None:
    """Offline status read for ``kflexctl fleet status``."""
    blob = DirStorage(root).read(STATUS_NAME)
    return json.loads(blob.decode()) if blob else None


def read_spec(root: str) -> FleetSpec | None:
    blob = DirStorage(root).read(SPEC_NAME)
    return FleetSpec.from_json(blob.decode()) if blob else None


def rollback_spec(root: str, *, to: str | None = None) -> dict:
    """Offline rollback for ``kflexctl fleet rollback``: rewrite the
    persisted desired spec to the last known-good version and add the
    rolled-back version to the durable quarantine list."""
    control = DirStorage(root)
    status_blob = control.read(STATUS_NAME)
    spec_blob = control.read(SPEC_NAME)
    if spec_blob is None:
        raise FileNotFoundError(f"no persisted fleet spec under {root!r}")
    spec = FleetSpec.from_json(spec_blob.decode())
    status = json.loads(status_blob.decode()) if status_blob else {}
    target = to or status.get("stable_version", "stable")
    bad = spec.version
    qblob = control.read(QUARANTINE_NAME)
    q = json.loads(qblob.decode()) if qblob else {"versions": [], "digests": []}
    if bad != target and bad not in q["versions"]:
        q["versions"].append(bad)
    control.write_atomic(QUARANTINE_NAME, json.dumps(q).encode())
    new_spec = FleetSpec(
        shards=spec.shards,
        version=target,
        tenants=spec.tenants,
        canary=spec.canary,
    )
    control.write_atomic(SPEC_NAME, new_spec.to_json().encode())
    return {"rolled_back": bad, "to": target, "quarantined": q["versions"]}
