"""Measurement infrastructure: cost model, closed-loop simulator, metrics.

The paper's testbed (§5, RFC 2544: two Xeon 8468 machines, 10 Gbps NIC,
closed-loop load generator with 64 threads x 16 clients) is modelled as
a discrete-event simulation whose per-request service times come from
*executing the actual implementations* — extensions run through the
interpreter with JIT cost accounting; kernel-path costs come from the
calibrated constants in :mod:`repro.sim.costs`.
"""

from repro.sim.costs import PathCosts, UNITS_TO_NS
from repro.sim.metrics import LatencyStats
from repro.sim.loadgen import ClosedLoopSim, SimResult

__all__ = ["PathCosts", "UNITS_TO_NS", "LatencyStats", "ClosedLoopSim", "SimResult"]
