"""Latency/throughput statistics matching the paper's reporting.

The paper reports throughput in MOps/sec and 99th-percentile latency;
experiments run 30 s and discard the first 10% of samples as warm-up
(§5 Testbed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Streaming-ish latency collector (nanoseconds)."""

    samples_ns: list = field(default_factory=list)

    def record(self, ns: float) -> None:
        self.samples_ns.append(ns)

    def discard_warmup(self, fraction: float = 0.1) -> None:
        self.discard_first(int(len(self.samples_ns) * fraction))

    def discard_first(self, count: int) -> None:
        """Drop exactly ``count`` leading samples (warm-up by count).

        The explicit-count twin of :meth:`discard_warmup`, for callers
        that already decided how many completions were warm-up and must
        not discard a second time on re-derived fractions.
        """
        if count > 0:
            self.samples_ns = self.samples_ns[count:]

    def merge(self, other: "LatencyStats") -> "LatencyStats":
        """Fold another collector's samples into this one (in place).

        Per-worker shard statistics are combined by concatenation, so
        percentiles over the merged collector are exactly the
        percentiles of the pooled sample set — no re-recording, no
        approximation.  Returns ``self`` for chaining.
        """
        self.samples_ns.extend(other.samples_ns)
        return self

    @classmethod
    def merged(cls, parts) -> "LatencyStats":
        """Pool an iterable of collectors into a fresh one."""
        out = cls()
        for part in parts:
            out.merge(part)
        return out

    def percentile(self, p: float) -> float:
        if not self.samples_ns:
            return 0.0
        data = sorted(self.samples_ns)
        k = (len(data) - 1) * (p / 100.0)
        lo = math.floor(k)
        hi = math.ceil(k)
        if lo == hi:
            return data[lo]
        return data[lo] + (data[hi] - data[lo]) * (k - lo)

    @property
    def p50_us(self) -> float:
        return self.percentile(50) / 1000.0

    @property
    def p99_us(self) -> float:
        return self.percentile(99) / 1000.0

    @property
    def mean_ns(self) -> float:
        return sum(self.samples_ns) / len(self.samples_ns) if self.samples_ns else 0.0

    def __len__(self) -> int:
        return len(self.samples_ns)


def mops(completed: int, duration_ns: float) -> float:
    """Throughput in million operations per second."""
    if duration_ns <= 0:
        return 0.0
    return completed / duration_ns * 1000.0


@dataclass
class StageStats:
    """Wall-clock accounting for one pipeline stage (load path, Fig. 1).

    ``runs`` counts every time the stage executed for a load; ``cached``
    counts how many of those were satisfied from the program cache
    (a cached run still costs the key lookup, so it is timed too).
    """

    runs: int = 0
    cached: int = 0
    total_ns: float = 0.0
    max_ns: float = 0.0

    def record(self, ns: float, *, cached: bool = False) -> None:
        self.runs += 1
        if cached:
            self.cached += 1
        self.total_ns += ns
        if ns > self.max_ns:
            self.max_ns = ns

    def merge(self, other: "StageStats") -> "StageStats":
        """Combine another stage's counters into this one (in place).

        Sums are additive and ``max_ns`` is the pooled maximum, so
        merging per-worker stage stats equals having recorded every
        sample into one collector.  Returns ``self`` for chaining.
        """
        self.runs += other.runs
        self.cached += other.cached
        self.total_ns += other.total_ns
        if other.max_ns > self.max_ns:
            self.max_ns = other.max_ns
        return self

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.runs if self.runs else 0.0

    def as_dict(self) -> dict:
        return {
            "runs": self.runs,
            "cached": self.cached,
            "total_ns": self.total_ns,
            "mean_ns": self.mean_ns,
            "max_ns": self.max_ns,
        }
