"""Calibrated kernel-path cost constants.

All values are in *native-instruction cost units* (~cycles on the
paper's 2.30 GHz Xeon 8468; 1 unit = 1/2.3 ns).  Extension and
data-structure costs are **measured** by executing the bytecode; only
the kernel paths that our simulator does not execute instruction-by-
instruction (the Linux network stack, syscalls, context switches) are
constants, with values in line with published measurements of Linux
I/O-path overheads (IX [22], Arrakis [63], BMC [42]).

These constants are shared by every system under comparison, so the
relative results (the shapes of Figs. 2-7) are driven by what actually
differs between systems: which path a request takes and how many
instructions the extension or application executes.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Nanoseconds per cost unit (2.30 GHz).
UNITS_TO_NS = 1.0 / 2.3


@dataclass(frozen=True)
class PathCosts:
    """Per-request fixed path costs, in cost units."""

    #: NIC RX + driver + XDP dispatch (the part every request pays).
    xdp_entry: int = 700
    #: XDP_TX transmit back out of the NIC.
    xdp_tx: int = 900
    #: Linux UDP RX path above XDP: IP + UDP + socket demux + skb.
    udp_stack: int = 3400
    #: Linux TCP RX path above XDP (heavier: reassembly, ACK clocking).
    tcp_stack: int = 5800
    #: KFlex's TCP fast path handled at the XDP hook (§5.1): a trimmed
    #: header/ACK handling sequence instead of the full stack.
    tcp_fastpath_xdp: int = 1400
    #: Socket wakeup + skb copyout to user space.
    socket_wakeup: int = 2300
    #: One syscall entry/exit (recvmsg/sendmsg).
    syscall: int = 1100
    #: Context switch to the woken server thread.
    context_switch: int = 2800
    #: TX down the kernel stack from user space (sendmsg path body).
    tx_stack: int = 2600
    #: User-space request parse + response format (the part of the app
    #: that is not the data-structure work we measure directly).
    user_app_overhead: int = 900
    #: In-extension parse + response build (measured programs include
    #: their own parsing; this covers checksum/header fixup we do not
    #: emit as bytecode).
    ext_fixup: int = 250

    # -- composite paths ---------------------------------------------------

    def userspace_udp_request(self, app_units: int) -> int:
        """Full user-space round trip for a UDP request (Memcached GET)."""
        return (
            self.xdp_entry
            + self.udp_stack
            + self.socket_wakeup
            + self.context_switch
            + self.syscall  # recv
            + self.user_app_overhead
            + app_units
            + self.syscall  # send
            + self.tx_stack
        )

    def userspace_tcp_request(self, app_units: int) -> int:
        """Full user-space round trip for a TCP request (SET, Redis)."""
        return (
            self.xdp_entry
            + self.tcp_stack
            + self.socket_wakeup
            + self.context_switch
            + self.syscall
            + self.user_app_overhead
            + app_units
            + self.syscall
            + self.tx_stack
        )

    def xdp_extension_request(self, ext_units: int, *, tcp: bool = False) -> int:
        """KFlex/eBPF extension handling entirely at XDP (§5.1)."""
        path = self.xdp_entry + ext_units + self.ext_fixup + self.xdp_tx
        if tcp:
            path += self.tcp_fastpath_xdp
        return path

    def skskb_extension_request(self, ext_units: int) -> int:
        """Extension at the sk_skb hook: the TCP stack is always paid
        (§5.1's explanation for Redis's smaller gains)."""
        return (
            self.xdp_entry
            + self.tcp_stack
            + ext_units
            + self.ext_fixup
            + self.tx_stack
        )


DEFAULT_COSTS = PathCosts()


def units_to_ns(units: float) -> float:
    return units * UNITS_TO_NS


def units_to_us(units: float) -> float:
    return units * UNITS_TO_NS / 1000.0
