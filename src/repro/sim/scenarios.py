"""Adversarial scenario matrix: seeded, replayable hostile-traffic runs.

The chaos suites (:mod:`repro.sim.chaos`) attack the *runtime* —
faults, crashes, corrupted WALs.  This matrix attacks the *datapath*:
every scenario stands up a real :mod:`repro.net` server (UDP or TCP
sockets on loopback), offers a seeded mix of legitimate and hostile
traffic, and judges the outcome against a pass/fail oracle:

* **acked writes are never lost** — every SET a client saw
  acknowledged reads back with the same value afterwards;
* **shed is graceful** — overload turns into bounded, attributed
  drops (admission sheds, shedder verdicts), never errors or hangs;
* **recovery is bounded** — queues drain, adaptive limits relax back
  to their ceiling, and connection/inflight accounting returns to
  zero within a deadline.

Replayability contract: the *offered traffic* is a pure function of
``(scenario, seed)``.  Each runner precomputes its traffic plan from a
seeded RNG before opening a socket, and the report's ``digest`` is a
hash of that plan — the same seed always offers byte-identical load.
Latencies and shed counts are wall-clock artifacts and are judged by
the oracles, not digested.

The matrix:

================== ====================================================
``flash_crowd``    legitimate client ramp against adaptive admission
``syn_flood``      spoofed SYN blast vs the token-bucket shedder
``udp_flood``      DATA + wire-garbage flood vs bucket + heavy-hitter
``slow_loris``     TCP clients pinned against the pipeline budget
``hot_key_migration`` skew flips shards mid-run on a consistent ring
``burst_drain``    open-loop burst/idle cycles vs AIMD admission
``l4lb_failover``  backend crash + durable rebuild behind the L4LB
================== ====================================================
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import hashlib
import random
import time
from dataclasses import dataclass, field

from repro.apps import l4lb as L4
from repro.apps.memcached import protocol as P
from repro.apps.memcached.userspace import UserspaceMemcached
from repro.apps.ratelimit import (
    RateLimitConfig,
    RateLimitedService,
    wrap,
    wrap_syn,
)
from repro.core.runtime import KFlexRuntime
from repro.net.backpressure import (
    AdaptiveAdmission,
    AdaptiveConfig,
    AdmissionPolicy,
)
from repro.net.client import (
    OpenLoopUdpGenerator,
    TcpLoadGenerator,
    UdpLoadGenerator,
)
from repro.net.datapath import FRAME_HDR, TcpDatapath, UdpDatapath
from repro.net.service import DurableMemcachedService, ExtensionService
from repro.net.shard import ShardedUdpDatapath
from repro.state import DurableStore, MemStorage


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------


@dataclass
class ScenarioReport:
    """Outcome of one seeded scenario run."""

    name: str
    seed: int
    #: Hash of the offered-traffic plan: same seed → same digest.
    digest: str
    requests: int = 0
    failures: int = 0
    retries: int = 0
    baseline_p99_us: float = 0.0
    loaded_p99_us: float = 0.0
    #: Hostile datagrams offered / left unanswered (open-loop floods).
    attack_offered: int = 0
    attack_shed: int = 0
    shed_rate: float = 0.0
    #: Seconds to drain/quiesce after the hostile phase.
    recovery_s: float = 0.0
    #: Acked SETs whose readback was verified.
    acked_checked: int = 0
    extra: dict = field(default_factory=dict)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        head = (
            f"[scenario] {self.name:<18} seed={self.seed:<3} "
            f"{'OK ' if self.ok else 'FAIL'} reqs={self.requests} "
            f"fail={self.failures} retry={self.retries} "
            f"p99={self.baseline_p99_us:.0f}us→{self.loaded_p99_us:.0f}us "
            f"shed={self.shed_rate:.1%} acked={self.acked_checked} "
            f"recover={self.recovery_s:.2f}s digest={self.digest}"
        )
        if self.errors:
            head += "".join(f"\n    error: {e}" for e in self.errors)
        return head


# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def _digest(name: str, seed: int, plan) -> str:
    h = hashlib.sha256()
    h.update(f"{name}:{seed}".encode())
    h.update(repr(plan).encode())
    return h.hexdigest()[:16]


def _plan_workload(plan):
    """Closed-loop workload indexing a precomputed per-client plan."""

    def workload(cid, seq):
        return plan[cid][seq]

    return workload


def _cycle_workload(cycle):
    """Open-loop workload cycling a precomputed payload list."""

    def workload(_cid, seq):
        return cycle[seq % len(cycle)]

    return workload


def _mc_matcher(sent: bytes, data: bytes) -> bool:
    return len(data) == P.PKT_SIZE and data[8:40] == sent[8:40]


def _env_matcher(hdr: int):
    """Matcher for enveloped requests whose replies are inner packets."""

    def match(sent: bytes, data: bytes) -> bool:
        return len(data) == P.PKT_SIZE and data[8:40] == sent[hdr + 8:hdr + 40]

    return match


def _raw_get(key: bytes) -> bytes:
    """A GET packet for a raw 32-byte key (readback oracle)."""
    pkt = bytearray(P.PKT_SIZE)
    pkt[0] = P.OP_GET
    pkt[P.KEY_OFF:P.KEY_OFF + P.KEY_SIZE] = key
    return bytes(pkt)


def _acked_sets(log, hdr: int = 0) -> dict:
    """``key bytes -> value bytes`` for every acknowledged SET.

    SET keys are unique per request in every scenario plan, so the
    oracle is exact: an acked key must read back *its* value — no
    last-write-wins ambiguity from retried/duplicated datagrams.
    """
    acked = {}
    for _cid, _seq, payload, reply in log:
        inner = payload[hdr:]
        if inner[0] != P.OP_SET or reply is None:
            continue
        hit, _ = P.decode_reply(reply)
        if hit:
            key = bytes(inner[P.KEY_OFF:P.KEY_OFF + P.KEY_SIZE])
            acked[key] = bytes(inner[P.VAL_OFF:P.VAL_OFF + P.VAL_SIZE])
    return acked


def _verify_acked(acked: dict, get_fn, errors: list, label: str) -> int:
    """Every acked SET must read back with its exact value."""
    lost = 0
    for key, val in acked.items():
        reply = get_fn(key)
        if (
            reply is None
            or len(reply) != P.PKT_SIZE
            or reply[1] != P.STATUS_HIT
            or bytes(reply[P.VAL_OFF:P.VAL_OFF + P.VAL_SIZE]) != val
        ):
            lost += 1
    if lost:
        errors.append(f"{label}: {lost}/{len(acked)} acked writes lost")
    return len(acked)


def _p99_limit_us(base_us: float, factor: float = 3.0,
                  base_floor_us: float = 2500.0) -> float:
    """The acceptance oracle: p99 within ``factor``× of unloaded.

    Baselines below ``base_floor_us`` are clamped up before the factor
    applies — a sub-millisecond loopback baseline would otherwise turn
    scheduler jitter into failures while proving nothing about the
    shedder."""
    return factor * max(base_us, base_floor_us)


async def _probe_with_retry(make_probe, base_p99_us: float) -> list:
    """Run the post-recovery probe, and once more if *only* the p99
    bound tripped.

    A single multi-ms OS/scheduler stall lands in every concurrent
    client's latency sample at once, so no sample count can dilute it
    out of p99.  A genuinely unrecovered datapath fails both
    attempts; request failures are never retried away.  Returns every
    probe result (the last one is the measurement)."""
    runs = []
    for _attempt in range(2):
        probe = await make_probe()
        runs.append(probe)
        if probe.failures or probe.latency.p99_us <= _p99_limit_us(
            base_p99_us
        ):
            break
        await asyncio.sleep(0.1)
    return runs


async def _observe_loop(adm: AdaptiveAdmission, dp, stop: asyncio.Event,
                        interval: float = 0.02) -> None:
    """The overload-telemetry loop: queue depth → admission limit."""
    while not stop.is_set():
        adm.observe(dp.queue_depth())
        await asyncio.sleep(interval)


async def _wait_drained(adm, dp, bound_s: float) -> float:
    """Seconds until queue and inflight hit zero; -1 on deadline."""
    t0 = time.monotonic()
    while time.monotonic() - t0 < bound_s:
        if dp.queue_depth() == 0 and adm.inflight == 0:
            return time.monotonic() - t0
        await asyncio.sleep(0.01)
    return -1.0


def _mc_plan(rng, n_clients: int, n_reqs: int, key_base: int,
             envelope=None, src_of=None):
    """Closed-loop memcached plan: unique-key SETs alternating with
    GETs on the client's own earlier keys.

    ``envelope(cid, inner) -> payload`` wraps each packet (shedder /
    L4LB headers); ``src_of(cid)`` only feeds the digest when the
    envelope embeds a source id.
    """
    plan = []
    for cid in range(n_clients):
        reqs = []
        keys = []
        for seq in range(n_reqs):
            if seq % 2 == 0 or not keys:
                key_id = key_base + cid * 100_000 + seq
                inner = P.encode_set(key_id, seq ^ 0x5A5A)
                keys.append(key_id)
            else:
                key_id = rng.choice(keys)
                inner = P.encode_get(key_id)
            payload = inner if envelope is None else envelope(cid, inner)
            reqs.append((key_id, payload))
        plan.append(reqs)
    return plan


# ---------------------------------------------------------------------------
# 1. flash_crowd — legitimate ramp vs adaptive admission
# ---------------------------------------------------------------------------


async def _flash_crowd(seed: int) -> ScenarioReport:
    rng = random.Random(f"flash_crowd:{seed}")
    # 2x50 baseline/probe: 100 samples keeps p99 one step below the
    # max, so a single OS-scheduler stall cannot fail the oracle.
    base_plan = _mc_plan(rng, 2, 50, 0)
    crowd_plan = _mc_plan(rng, 24, 25, 1_000_000)
    probe_plan = _mc_plan(rng, 2, 50, 2_000_000)
    rep = ScenarioReport(
        "flash_crowd", seed,
        _digest("flash_crowd", seed, (base_plan, crowd_plan, probe_plan)),
    )

    runtime = KFlexRuntime()
    usm = UserspaceMemcached()

    async def userspace(payload):
        # 4ms service time → ~1000 rps capacity across 4 workers; the
        # crowd below offers ~4× that, so overload is decisive.
        await asyncio.sleep(0.004)
        return usm.handle(payload)

    service = ExtensionService(runtime, ext=None, userspace=userspace)
    adm = AdaptiveAdmission(
        AdmissionPolicy(max_inflight=16, max_queue=16),
        AdaptiveConfig(floor=4, increase=4, queue_high=0.5),
    )
    dp = UdpDatapath(service, admission=adm, n_workers=4)
    await dp.start()
    stop = asyncio.Event()
    observer = asyncio.get_running_loop().create_task(
        _observe_loop(adm, dp, stop)
    )
    try:
        base = await UdpLoadGenerator(
            [dp.port], _plan_workload(base_plan), n_clients=2,
            requests_per_client=50, timeout=0.3, retries=12,
            matcher=_mc_matcher, keep_log=True, think_s=0.01,
        ).run()
        base.latency.discard_first(2)  # cold-start spikes are not load
        crowd = await UdpLoadGenerator(
            [dp.port], _plan_workload(crowd_plan), n_clients=24,
            requests_per_client=25, timeout=0.2, retries=12,
            matcher=_mc_matcher, keep_log=True, think_s=0.002,
        ).run()
        rep.recovery_s = await _wait_drained(adm, dp, 2.0)
        if rep.recovery_s < 0:
            rep.errors.append("queue did not drain within 2s of crowd end")
            rep.recovery_s = 2.0
        await asyncio.sleep(0.3)  # let the observer relax the limit
        probe_runs = await _probe_with_retry(
            lambda: UdpLoadGenerator(
                [dp.port], _plan_workload(probe_plan), n_clients=2,
                requests_per_client=50, timeout=0.3, retries=12,
                matcher=_mc_matcher, keep_log=True, think_s=0.01,
            ).run(),
            base.latency.p99_us,
        )
        probe = probe_runs[-1]

        rep.requests = base.requests + crowd.requests + probe.requests
        rep.failures = base.failures + crowd.failures + probe.failures
        rep.retries = base.retries + crowd.retries + probe.retries
        rep.baseline_p99_us = base.latency.p99_us
        rep.loaded_p99_us = crowd.latency.p99_us
        sheds = adm.stats.shed_inflight + adm.stats.shed_queue
        rep.attack_offered = crowd.requests
        rep.attack_shed = sheds
        rep.shed_rate = sheds / max(1, crowd.requests + sheds)
        rep.extra = {
            "sheds": sheds,
            "tightenings": adm.adaptive.tightenings,
            "relaxations": adm.adaptive.relaxations,
            "min_limit": adm.adaptive.min_limit,
            "final_limit": adm.limit,
            "top_shed_sources": adm.stats.top_shed_sources(3),
            "probe_attempts": len(probe_runs),
        }

        if rep.failures:
            rep.errors.append(f"{rep.failures} legitimate requests failed")
        if sheds == 0:
            rep.errors.append("crowd never pressed admission (under-load)")
        if adm.adaptive.tightenings == 0:
            rep.errors.append("adaptive admission never tightened")
        if adm.limit != adm.ceiling:
            rep.errors.append(
                f"limit stuck at {adm.limit} after drain (ceiling "
                f"{adm.ceiling})"
            )
        limit = _p99_limit_us(rep.baseline_p99_us)
        if probe.latency.p99_us > limit:
            rep.errors.append(
                f"post-crowd p99 {probe.latency.p99_us:.0f}us > "
                f"{limit:.0f}us bound"
            )
        acked = {}
        for res in (base, crowd, *probe_runs):
            acked.update(_acked_sets(res.log))
        rep.acked_checked = _verify_acked(
            acked, lambda key: usm.handle(_raw_get(key)), rep.errors,
            "flash_crowd",
        )
    finally:
        stop.set()
        await asyncio.gather(observer, return_exceptions=True)
        await dp.stop(1.0)
    return rep


# ---------------------------------------------------------------------------
# 2/3. Floods — spoofed-source blasts vs the XDP shedder
# ---------------------------------------------------------------------------


async def _flood_scenario(name: str, seed: int, *, config: RateLimitConfig,
                          attack_cycle_fn, n_attack_srcs: int,
                          expect_garbage: bool = False,
                          legit_think_s: float = 0.01) -> ScenarioReport:
    """Shared harness for ``syn_flood`` / ``udp_flood``.

    Legitimate clients are *paced* (think time) — they model real
    users inside the shedder's per-source rate — while the attack is
    an open-loop blast from spoofed source ids.  The shedder must keep
    the legit p99 within 3× of unloaded while answering at most 10% of
    the attack.
    """
    rng = random.Random(f"{name}:{seed}")
    legit_srcs = [1, 2, 3, 4]

    def envelope(cid, inner):
        return wrap(legit_srcs[cid], inner)

    base_plan = _mc_plan(rng, 4, 15, 0, envelope=envelope)
    load_plan = _mc_plan(rng, 4, 30, 500_000, envelope=envelope)
    attack_srcs = sorted(rng.sample(range(10_000, 60_000), n_attack_srcs))
    attack_cycle = attack_cycle_fn(rng, attack_srcs)
    rep = ScenarioReport(
        name, seed,
        _digest(name, seed, (base_plan, load_plan, attack_cycle, config)),
    )

    store = DurableStore(storage=MemStorage())
    inner = DurableMemcachedService(store=store, pin="mc")
    svc = RateLimitedService(inner, config=config)
    dp = UdpDatapath(svc, n_workers=2)
    await dp.start()
    try:
        base = await UdpLoadGenerator(
            [dp.port], _plan_workload(base_plan), n_clients=4,
            requests_per_client=15, timeout=0.4, retries=8,
            matcher=_env_matcher(8), keep_log=True, think_s=legit_think_s,
        ).run()
        base.latency.discard_first(2)  # cold-start spikes are not load
        acked_runs = [base]
        attempts = 0
        for _attempt in range(2):
            attempts += 1
            legit_gen = UdpLoadGenerator(
                [dp.port], _plan_workload(load_plan), n_clients=4,
                requests_per_client=30, timeout=0.4, retries=8,
                matcher=_env_matcher(8), keep_log=True,
                think_s=legit_think_s,
            )
            # Outstanding-window pacing: replies are mostly shed, so the
            # offered rate settles near window/stall_s (~4k pps) — enough
            # to swamp the per-source allowance ~10×, low enough that the
            # loopback event loop (which is also the "NIC") keeps up.  The
            # window is kept small: every stall write-off re-opens it all
            # at once, and a large window would land as a multi-ms clump
            # that head-of-line-blocks legitimate datagrams.
            flood_gen = OpenLoopUdpGenerator(
                [dp.port], _cycle_workload(attack_cycle), duration_s=0.6,
                window=32, burst=8, stall_s=0.008, grace_s=0.1,
            )
            legit, flood = await asyncio.gather(
                legit_gen.run(), flood_gen.run()
            )
            acked_runs.append(legit)
            t0 = time.monotonic()
            await _wait_drained(dp.admission, dp, 1.0)
            rep.recovery_s = time.monotonic() - t0
            if legit.failures or legit.latency.p99_us <= _p99_limit_us(
                base.latency.p99_us
            ):
                break
            # Only the p99 bound tripped: a single multi-ms OS/scheduler
            # stall lands in every concurrent client's sample at once
            # and no sample count can dilute it out of p99.  Re-measure
            # once — a real shedder regression fails both attempts.

        rep.requests = base.requests + legit.requests
        rep.failures = base.failures + legit.failures
        rep.retries = base.retries + legit.retries
        rep.baseline_p99_us = base.latency.p99_us
        rep.loaded_p99_us = legit.latency.p99_us
        rep.attack_offered = flood.sent
        rep.attack_shed = flood.sent - flood.replies
        rep.shed_rate = flood.loss
        attack_drops = svc.drops_for(attack_srcs)
        legit_drops = svc.drops_for(legit_srcs)
        rep.extra = {
            "attack_pps": round(flood.pps),
            "attack_drops": attack_drops,
            "legit_drops": legit_drops,
            "syn_acks": svc.syn_acks,
            "garbage_drops": svc.garbage_drops,
            "attempts": attempts,
        }

        if rep.failures:
            rep.errors.append(f"{rep.failures} legitimate requests failed")
        limit = _p99_limit_us(rep.baseline_p99_us)
        if rep.loaded_p99_us > limit:
            rep.errors.append(
                f"legit p99 under flood {rep.loaded_p99_us:.0f}us > "
                f"{limit:.0f}us (3x unloaded) bound"
            )
        if rep.shed_rate < 0.9:
            rep.errors.append(
                f"shed only {rep.shed_rate:.1%} of attack (<90%)"
            )
        if attack_drops == 0:
            rep.errors.append("no drops attributed to attack sources")
        if legit_drops:
            rep.errors.append(
                f"{legit_drops} drops charged to legitimate sources"
            )
        if expect_garbage and svc.garbage_drops == 0:
            rep.errors.append("wire garbage was never dropped")
        acked = {}
        for res in acked_runs:  # every attempt's acks must persist
            acked.update(_acked_sets(res.log, hdr=8))
        rep.acked_checked = _verify_acked(
            acked, lambda key: inner.ingress(_raw_get(key))[0],
            rep.errors, name,
        )
    finally:
        await dp.stop(1.0)
    return rep


def _syn_cycle(_rng, srcs):
    return [(0, wrap_syn(src)) for src in srcs]


def _data_garbage_cycle(rng, srcs):
    """12 DATA packets from spoofed sources + 4 garbage frames."""
    cycle = []
    for i in range(12):
        src = srcs[i % len(srcs)]
        cycle.append((0, wrap(src, P.encode_get(rng.randrange(1 << 20)))))
    for _ in range(4):
        length = rng.randrange(3, 40)
        junk = bytearray(rng.randrange(256) for _ in range(length))
        junk[0] = 0x00  # never the shedder's magic
        cycle.append((0, bytes(junk)))
    rng.shuffle(cycle)
    return cycle


async def _syn_flood(seed: int) -> ScenarioReport:
    # SYNs cost 40× a DATA packet (80ms of bucket): ~12 SYN-ACKs/s per
    # source, so a spoofed blast is answered for its first burst and
    # starved after, while paced DATA clients (100/s vs 500/s allowed)
    # never touch their limit.
    return await _flood_scenario(
        "syn_flood", seed,
        config=RateLimitConfig(
            hh_limit=1 << 16, burst_ns=20_000_000, cost_ns=2_000_000,
            syn_weight=40, epoch_shift=27,
        ),
        attack_cycle_fn=_syn_cycle, n_attack_srcs=16,
    )


async def _udp_flood(seed: int) -> ScenarioReport:
    # Few sources, high per-source rate: the token bucket (~42/s/src
    # vs ~1.5k/s/src offered) and the count-min heavy-hitter limit
    # (100/window) both engage; runts and bad-magic frames exercise
    # the garbage path.  Legit clients pace at ~33/s, inside the
    # allowance with margin — and the attack's answered fraction
    # (refill × duration) sits ~93% shed, clear of the 90% oracle
    # instead of oscillating on it.
    return await _flood_scenario(
        "udp_flood", seed,
        config=RateLimitConfig(
            hh_limit=100, burst_ns=40_000_000, cost_ns=24_000_000,
            syn_weight=25, epoch_shift=27,
        ),
        attack_cycle_fn=_data_garbage_cycle, n_attack_srcs=2,
        expect_garbage=True, legit_think_s=0.03,
    )


# ---------------------------------------------------------------------------
# 4. slow_loris — TCP clients pinned against the pipeline budget
# ---------------------------------------------------------------------------


async def _slow_loris(seed: int) -> ScenarioReport:
    rng = random.Random(f"slow_loris:{seed}")
    kinds = [
        rng.choice(["silent", "partial_header", "partial_body", "drip"])
        for _ in range(12)
    ]
    base_plan = _mc_plan(rng, 2, 10, 0)
    legit_plan = _mc_plan(rng, 4, 30, 1_000_000)
    rep = ScenarioReport(
        "slow_loris", seed,
        _digest("slow_loris", seed, (kinds, base_plan, legit_plan)),
    )

    store = DurableStore(storage=MemStorage())
    service = DurableMemcachedService(store=store, pin="mc")
    policy = AdmissionPolicy(
        max_inflight=64, max_queue=64, per_conn_budget=4,
        max_connections=14, idle_timeout=0.15,
    )
    dp = TcpDatapath(service, policy=policy)
    await dp.start()
    adm = dp.admission
    stop = asyncio.Event()
    closed_by_server = [0]
    attempts = [0]

    async def attacker(kind: str) -> None:
        # Reconnect loop: each torn-down connection immediately grabs
        # a fresh slot, keeping the connection table contended for the
        # whole legit run — the loris shape.
        while not stop.is_set():
            attempts[0] += 1
            try:
                reader, writer = await asyncio.open_connection(
                    dp.host, dp.port
                )
            except OSError:
                await asyncio.sleep(0.05)
                continue
            try:
                if kind == "partial_header":
                    writer.write(b"\x00\x00")  # half a length prefix
                    await writer.drain()
                elif kind == "partial_body":
                    writer.write(FRAME_HDR.pack(P.PKT_SIZE) + b"\x00" * 36)
                    await writer.drain()
                elif kind == "drip":
                    pkt = P.encode_get(rng.randrange(64))
                    writer.write(FRAME_HDR.pack(len(pkt)) + pkt)
                    await writer.drain()
                # ... then hold the slot until the server reaps us.
                try:
                    async def to_eof():
                        while await reader.read(4096):
                            pass

                    await asyncio.wait_for(to_eof(), 1.0)
                    closed_by_server[0] += 1
                except asyncio.TimeoutError:
                    pass
                except (ConnectionError, OSError):
                    closed_by_server[0] += 1  # RST from the abort path
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            await asyncio.sleep(0.05)

    try:
        base = await TcpLoadGenerator(
            [dp.port], _plan_workload(base_plan), n_clients=2,
            requests_per_client=10, timeout=0.5, retries=8, keep_log=True,
        ).run()
        loop = asyncio.get_running_loop()
        attackers = [loop.create_task(attacker(k)) for k in kinds]
        await asyncio.sleep(0.25)  # let the loris saturate + first reap
        # A refused connection fails instantly; the backoff makes the
        # retry budget span several idle-reap cycles so a legitimate
        # client always finds a freed slot.
        legit = await TcpLoadGenerator(
            [dp.port], _plan_workload(legit_plan), n_clients=4,
            requests_per_client=30, timeout=0.5, retries=12,
            keep_log=True, think_s=0.005, retry_backoff_s=0.08,
        ).run()
        stop.set()
        await asyncio.gather(*attackers, return_exceptions=True)

        rep.requests = base.requests + legit.requests
        rep.failures = base.failures + legit.failures
        rep.retries = base.retries + legit.retries
        rep.baseline_p99_us = base.latency.p99_us
        rep.loaded_p99_us = legit.latency.p99_us
        rep.attack_offered = attempts[0]
        rep.attack_shed = (
            adm.stats.refused_connections + adm.stats.idle_closed
        )
        rep.shed_rate = min(1.0, rep.attack_shed / max(1, attempts[0]))
        rep.extra = {
            "idle_closed": adm.stats.idle_closed,
            "refused_connections": adm.stats.refused_connections,
            "closed_by_server": closed_by_server[0],
            "budget_stalls": adm.stats.budget_stalls,
        }

        if rep.failures:
            rep.errors.append(f"{rep.failures} legitimate requests failed")
        if adm.stats.idle_closed == 0:
            rep.errors.append("idle deadline never reaped a loris client")
        if closed_by_server[0] == 0:
            rep.errors.append("no attacker connection was closed by server")
        acked = {}
        for res in (base, legit):
            acked.update(_acked_sets(res.log))
        rep.acked_checked = _verify_acked(
            acked, lambda key: service.ingress(_raw_get(key))[0],
            rep.errors, "slow_loris",
        )
    finally:
        stop.set()
        t0 = time.monotonic()
        await dp.stop(1.0)
        rep.recovery_s = time.monotonic() - t0
    if adm.connections != 0:
        rep.errors.append(
            f"{adm.connections} connections permanently stuck after stop"
        )
    if adm.inflight != 0:
        rep.errors.append(f"{adm.inflight} requests stuck inflight")
    if adm.stats.forced_cancellations:
        rep.errors.append(
            f"{adm.stats.forced_cancellations} forced cancellations at stop"
        )
    return rep


# ---------------------------------------------------------------------------
# 5. hot_key_migration — skew flips shards mid-run
# ---------------------------------------------------------------------------


def _skewed_plan(rng, hot_keys, n_clients, n_reqs, key_base):
    """70% GETs on the hot set, 30% unique-key SETs."""
    plan = []
    for cid in range(n_clients):
        reqs = []
        for seq in range(n_reqs):
            if rng.random() < 0.7:
                key_id = rng.choice(hot_keys)
                reqs.append((key_id, P.encode_get(key_id)))
            else:
                key_id = key_base + cid * 100_000 + seq
                reqs.append((key_id, P.encode_set(key_id, seq ^ 0x5A5A)))
        plan.append(reqs)
    return plan


async def _hot_key_migration(seed: int) -> ScenarioReport:
    rng = random.Random(f"hot_key_migration:{seed}")

    def factory(i):
        return DurableMemcachedService(
            store=DurableStore(storage=MemStorage()), pin=f"mc{i}"
        )

    sharded = ShardedUdpDatapath(factory, 2, n_workers=2)
    await sharded.start()
    ring = sharded.ring
    hot_a = [k for k in range(1_000, 60_000) if ring.shard_of(k) == 0][:8]
    hot_b = [k for k in range(1_000, 60_000) if ring.shard_of(k) == 1][:8]
    plan_a = _skewed_plan(rng, hot_a, 4, 40, 2_000_000)
    plan_b = _skewed_plan(rng, hot_b, 4, 40, 3_000_000)
    rep = ScenarioReport(
        "hot_key_migration", seed,
        _digest("hot_key_migration", seed, (hot_a, hot_b, plan_a, plan_b)),
    )
    try:
        for k in hot_a + hot_b:  # warm so skewed GETs are hits
            sid = ring.shard_of(k)
            sharded.shards[sid].service.ingress(P.encode_set(k, k & 0xFFFF))

        def shard_received():
            return [s.datapath.stats.received for s in sharded.shards]

        before = shard_received()
        res_a = await UdpLoadGenerator(
            sharded.ports, _plan_workload(plan_a), ring=ring, n_clients=4,
            requests_per_client=40, timeout=0.4, retries=8,
            matcher=_mc_matcher, keep_log=True,
        ).run()
        mid = shard_received()
        res_b = await UdpLoadGenerator(
            sharded.ports, _plan_workload(plan_b), ring=ring, n_clients=4,
            requests_per_client=40, timeout=0.4, retries=8,
            matcher=_mc_matcher, keep_log=True,
        ).run()
        after = shard_received()

        split_a = [m - b for m, b in zip(mid, before)]
        split_b = [a - m for a, m in zip(after, mid)]
        rep.requests = res_a.requests + res_b.requests
        rep.failures = res_a.failures + res_b.failures
        rep.retries = res_a.retries + res_b.retries
        rep.baseline_p99_us = res_a.latency.p99_us
        rep.loaded_p99_us = res_b.latency.p99_us
        rep.extra = {"phase_a_split": split_a, "phase_b_split": split_b}

        if rep.failures:
            rep.errors.append(f"{rep.failures} requests failed")
        if not (split_a[0] > split_a[1] and split_b[1] > split_b[0]):
            rep.errors.append(
                f"hot-shard dominance did not flip: A={split_a} B={split_b}"
            )
        limit = _p99_limit_us(rep.baseline_p99_us)
        if rep.loaded_p99_us > limit:
            rep.errors.append(
                f"post-migration p99 {rep.loaded_p99_us:.0f}us > "
                f"{limit:.0f}us bound"
            )
        acked = {}
        for res in (res_a, res_b):
            acked.update(_acked_sets(res.log))

        # Keys route by their integer id, so readback needs the id a
        # raw key was encoded from: map key bytes -> id from the plan.
        key_ids = {}
        for plan in (plan_a, plan_b):
            for reqs in plan:
                for key_id, payload in reqs:
                    if payload[0] == P.OP_SET:
                        raw = bytes(
                            payload[P.KEY_OFF:P.KEY_OFF + P.KEY_SIZE]
                        )
                        key_ids[raw] = key_id

        def get_fn(key: bytes):
            sid = ring.shard_of(key_ids[key])
            return sharded.shards[sid].service.ingress(_raw_get(key))[0]

        rep.acked_checked = _verify_acked(
            acked, get_fn, rep.errors, "hot_key_migration"
        )
    finally:
        t0 = time.monotonic()
        await sharded.stop()
        rep.recovery_s = time.monotonic() - t0
    return rep


# ---------------------------------------------------------------------------
# 6. burst_drain — open-loop burst/idle cycles vs AIMD admission
# ---------------------------------------------------------------------------


async def _burst_drain(seed: int) -> ScenarioReport:
    rng = random.Random(f"burst_drain:{seed}")
    hot = list(range(64))
    burst_cycle = [(0, P.encode_get(rng.choice(hot))) for _ in range(64)]
    # 2x50 baseline/probe: 100 samples keeps p99 one step below the
    # max, so a single OS-scheduler stall cannot fail the oracle.
    base_plan = _mc_plan(rng, 2, 50, 0)
    probe_plan = _mc_plan(rng, 2, 50, 1_000_000)
    rep = ScenarioReport(
        "burst_drain", seed,
        _digest("burst_drain", seed, (burst_cycle, base_plan, probe_plan)),
    )

    runtime = KFlexRuntime()
    usm = UserspaceMemcached()
    usm.warm(64)

    async def userspace(payload):
        await asyncio.sleep(0.002)
        return usm.handle(payload)

    service = ExtensionService(runtime, ext=None, userspace=userspace)
    adm = AdaptiveAdmission(
        AdmissionPolicy(max_inflight=16, max_queue=16),
        AdaptiveConfig(floor=4, increase=4, queue_high=0.5),
    )
    dp = UdpDatapath(service, admission=adm, n_workers=4)
    await dp.start()
    stop = asyncio.Event()
    observer = asyncio.get_running_loop().create_task(
        _observe_loop(adm, dp, stop)
    )
    try:
        base = await UdpLoadGenerator(
            [dp.port], _plan_workload(base_plan), n_clients=2,
            requests_per_client=50, timeout=0.25, retries=12,
            matcher=_mc_matcher, keep_log=True, think_s=0.01,
        ).run()
        base.latency.discard_first(2)  # cold-start spikes are not load
        drains = []
        bursts = []
        for _cycle in range(3):
            flood = await OpenLoopUdpGenerator(
                [dp.port], _cycle_workload(burst_cycle), duration_s=0.25,
                window=64, burst=8, stall_s=0.02, grace_s=0.05,
            ).run()
            bursts.append(flood)
            drains.append(await _wait_drained(adm, dp, 1.0))
        await asyncio.sleep(0.3)  # idle: the observer relaxes the limit
        probe_runs = await _probe_with_retry(
            lambda: UdpLoadGenerator(
                [dp.port], _plan_workload(probe_plan), n_clients=2,
                requests_per_client=50, timeout=0.25, retries=12,
                matcher=_mc_matcher, keep_log=True, think_s=0.01,
            ).run(),
            base.latency.p99_us,
        )
        probe = probe_runs[-1]

        rep.requests = base.requests + probe.requests
        rep.failures = base.failures + probe.failures
        rep.retries = base.retries + probe.retries
        rep.baseline_p99_us = base.latency.p99_us
        rep.loaded_p99_us = probe.latency.p99_us
        rep.attack_offered = sum(f.sent for f in bursts)
        rep.attack_shed = sum(f.sent - f.replies for f in bursts)
        rep.shed_rate = rep.attack_shed / max(1, rep.attack_offered)
        rep.recovery_s = max(drains)
        rep.extra = {
            "drains_s": [round(d, 3) for d in drains],
            "burst_loss": [round(f.loss, 3) for f in bursts],
            "tightenings": adm.adaptive.tightenings,
            "min_limit": adm.adaptive.min_limit,
            "final_limit": adm.limit,
            "probe_attempts": len(probe_runs),
        }

        if rep.failures:
            rep.errors.append(f"{rep.failures} probe requests failed")
        if any(d < 0 for d in drains):
            rep.errors.append(f"burst backlog failed to drain: {drains}")
        if adm.adaptive.tightenings == 0:
            rep.errors.append("bursts never tightened the admission limit")
        if adm.limit != adm.ceiling:
            rep.errors.append(
                f"limit stuck at {adm.limit} after idle (ceiling "
                f"{adm.ceiling})"
            )
        limit = _p99_limit_us(rep.baseline_p99_us)
        if rep.loaded_p99_us > limit:
            rep.errors.append(
                f"post-drain p99 {rep.loaded_p99_us:.0f}us > "
                f"{limit:.0f}us bound"
            )
        acked = {}
        for res in (base, *probe_runs):
            acked.update(_acked_sets(res.log))
        rep.acked_checked = _verify_acked(
            acked, lambda key: usm.handle(_raw_get(key)), rep.errors,
            "burst_drain",
        )
    finally:
        stop.set()
        await asyncio.gather(observer, return_exceptions=True)
        await dp.stop(1.0)
    return rep


# ---------------------------------------------------------------------------
# 7. l4lb_failover — backend crash + durable rebuild behind the LB
# ---------------------------------------------------------------------------


def _l4lb_plan(rng, n_clients, n_reqs, key_base):
    """Plan + ``key bytes -> flow`` map (GETs reuse their SET's flow,
    because a key only lives on the backend its flow is bound to)."""
    plan = []
    key_flow = {}
    for cid in range(n_clients):
        flows = [100 + cid * 8 + i for i in range(6)]
        reqs = []
        written = []  # (key_id, flow, raw key)
        for seq in range(n_reqs):
            if seq % 2 == 0 or not written:
                flow = flows[seq % len(flows)]
                key_id = key_base + cid * 100_000 + seq
                inner = P.encode_set(key_id, seq ^ 0x5A5A)
                raw = bytes(inner[P.KEY_OFF:P.KEY_OFF + P.KEY_SIZE])
                written.append((key_id, flow, raw))
                key_flow[raw] = flow
            else:
                key_id, flow, _raw = rng.choice(written)
                inner = P.encode_get(key_id)
            reqs.append((key_id, L4.wrap(flow, inner)))
        plan.append(reqs)
    return plan, key_flow


async def _l4lb_failover(seed: int) -> ScenarioReport:
    rng = random.Random(f"l4lb_failover:{seed}")
    plan, key_flow = _l4lb_plan(rng, 4, 60, 0)
    rep = ScenarioReport(
        "l4lb_failover", seed, _digest("l4lb_failover", seed, plan)
    )

    storages = {i: MemStorage() for i in range(3)}
    backends = {
        i: DurableMemcachedService(
            store=DurableStore(storage=storages[i]), pin=f"b{i}"
        )
        for i in range(3)
    }
    lb = L4.L4LBService(store=DurableStore(storage=MemStorage()),
                        backends=backends)
    dp = UdpDatapath(lb, n_workers=2)
    await dp.start()
    chaos_log = {}

    async def chaos():
        await asyncio.sleep(0.12)
        bindings_pre = lb.conn_bindings()
        by_backend = {}
        for flow, bid in bindings_pre.items():
            by_backend.setdefault(bid, []).append(flow)
        victim = max(by_backend, key=lambda b: (len(by_backend[b]), b))
        chaos_log["victim"] = victim
        chaos_log["bindings_pre"] = bindings_pre
        crashed = lb.backends.pop(victim)  # kill -9: no ring change,
        crashed.store.crash_volatile()     # flows stay bound (sticky)
        await asyncio.sleep(0.15)
        rebuilt = DurableMemcachedService(
            store=DurableStore(storage=storages[victim]), pin=f"b{victim}"
        )
        chaos_log["recovered"] = rebuilt.recovered
        lb.add_backend(victim, rebuilt)
        chaos_log["rebuilt_at"] = time.monotonic()

    try:
        chaos_task = asyncio.get_running_loop().create_task(chaos())
        legit = await UdpLoadGenerator(
            [dp.port], _plan_workload(plan), n_clients=4,
            requests_per_client=60, timeout=0.25, retries=10,
            matcher=_env_matcher(L4.HDR_SIZE), keep_log=True,
            think_s=0.003,
        ).run()
        await asyncio.gather(chaos_task)

        rep.requests = legit.requests
        rep.failures = legit.failures
        rep.retries = legit.retries
        rep.loaded_p99_us = legit.latency.p99_us
        rep.attack_offered = lb.unrouted  # the failover window, measured
        rep.attack_shed = lb.unrouted
        bindings_post = lb.conn_bindings()
        rep.extra = {
            "victim": chaos_log.get("victim"),
            "unrouted": lb.unrouted,
            "forwarded": dict(sorted(lb.forwarded.items())),
            "recovered": chaos_log.get("recovered"),
        }

        if rep.failures:
            rep.errors.append(
                f"{rep.failures} requests failed across the failover"
            )
        if lb.unrouted == 0:
            rep.errors.append(
                "failover window never exercised (no unrouted drops)"
            )
        if not chaos_log.get("recovered"):
            rep.errors.append("rebuilt backend did not recover from store")
        moved = {
            flow: (bid, bindings_post.get(flow))
            for flow, bid in chaos_log.get("bindings_pre", {}).items()
            if bindings_post.get(flow) != bid
        }
        if moved:
            rep.errors.append(f"flows lost stickiness: {moved}")
        acked = _acked_sets(legit.log, hdr=L4.HDR_SIZE)

        def get_fn(key: bytes):
            reply, _path = lb.ingress(L4.wrap(key_flow[key], _raw_get(key)))
            return reply

        rep.acked_checked = _verify_acked(
            acked, get_fn, rep.errors, "l4lb_failover"
        )
    finally:
        t0 = time.monotonic()
        await dp.stop(1.0)
        rep.recovery_s = time.monotonic() - t0
    return rep


# ---------------------------------------------------------------------------
# Registry + CLI
# ---------------------------------------------------------------------------


SCENARIOS = {
    "flash_crowd": _flash_crowd,
    "syn_flood": _syn_flood,
    "udp_flood": _udp_flood,
    "slow_loris": _slow_loris,
    "hot_key_migration": _hot_key_migration,
    "burst_drain": _burst_drain,
    "l4lb_failover": _l4lb_failover,
}


def run_scenario(name: str, seed: int = 0) -> ScenarioReport:
    """Run one scenario to completion on a private event loop.

    The cyclic collector is quiesced for the duration: a gen-2 pass
    over the kernel/arena object graphs stalls the event loop ~15ms,
    which lands in *every* concurrent client's latency sample and
    swamps a 3x-of-baseline p99 oracle.  Scenarios run for a few
    seconds with bounded allocation, so deferring collection to the
    end is safe — and it is exactly what a latency-sensitive deploy
    of this stack would do.
    """
    gc.collect()
    gc.freeze()
    gc.disable()
    try:
        return asyncio.run(SCENARIOS[name](seed))
    finally:
        gc.enable()
        gc.unfreeze()
        gc.collect()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro.sim.scenarios",
        description="Adversarial scenario matrix over the repro.net "
        "datapath (seeded, replayable).",
    )
    ap.add_argument(
        "--scenarios", nargs="+", default=sorted(SCENARIOS),
        choices=sorted(SCENARIOS), metavar="NAME",
    )
    ap.add_argument("--seed", type=int, default=0,
                    help="first seed (runs use seed..seed+runs-1)")
    ap.add_argument("--runs", type=int, default=1,
                    help="seeded runs per scenario")
    ap.add_argument("--min-runs", type=int, default=0,
                    help="fail unless at least this many runs executed")
    args = ap.parse_args(argv)

    total = failures = 0
    for name in args.scenarios:
        for seed in range(args.seed, args.seed + args.runs):
            report = run_scenario(name, seed)
            total += 1
            print(report.describe(), flush=True)
            if not report.ok:
                failures += 1
    print(f"[scenario] {total} runs, {failures} failed")
    if args.min_runs and total < args.min_runs:
        print(f"[scenario] FAIL: {total} runs < floor {args.min_runs}")
        return 1
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
