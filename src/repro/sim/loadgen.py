"""Closed-loop load generation as a discrete-event simulation.

Models the paper's RFC 2544 testbed (§5): a client machine running a
closed-loop generator (64 threads x 16 clients) against a server with
``n_servers`` worker threads.  Each in-flight client issues a request,
waits for the response, and immediately issues the next.  Requests
queue FIFO at the server; per-request service times come from a
caller-provided sampler (which executes the real implementation or
draws from its measured cost profile).

Latency is measured at the client (issue -> response), including the
wire RTT, exactly as in the paper; the first 10% of samples is
discarded as warm-up.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.ebpf.engine import engine_scope
from repro.sim.metrics import LatencyStats

_ARRIVE = 0
_DONE = 1


@dataclass
class SimResult:
    throughput_mops: float
    p50_us: float
    p99_us: float
    mean_us: float
    completed: int
    duration_ms: float
    #: Completions dropped as warm-up — shared by BOTH reported metrics:
    #: latency percentiles exclude exactly these samples, and the
    #: throughput window opens at this completion.  Audited semantics
    #: (see the warm-up note in :meth:`ClosedLoopSim._run`): warm-up is
    #: discarded exactly once per metric, never twice.
    warmup_discarded: int = 0
    #: Latency samples the percentiles were computed over
    #: (``completed - warmup_discarded``).
    samples: int = 0

    def row(self, label: str) -> str:
        return (
            f"{label:<28s} {self.throughput_mops:8.3f} MOps/s   "
            f"p50 {self.p50_us:8.1f} us   p99 {self.p99_us:8.1f} us"
        )


class ClosedLoopSim:
    """One server, ``n_servers`` workers, ``n_clients`` closed-loop clients.

    ``service_fn(now_ns, rng) -> float`` returns the service time in
    nanoseconds for the request starting service at ``now_ns`` (time
    dependence supports periodic effects like the §5.3 GC thread).
    """

    def __init__(
        self,
        *,
        n_clients: int,
        n_servers: int,
        service_fn,
        total_requests: int = 20_000,
        rtt_ns: float = 14_000.0,
        warmup_frac: float = 0.1,
        seed: int = 1,
        engine: str | None = None,
    ):
        self.n_clients = n_clients
        self.n_servers = n_servers
        self.service_fn = service_fn
        self.total_requests = total_requests
        self.rtt_ns = rtt_ns
        self.warmup_frac = warmup_frac
        self.rng = random.Random(seed)
        #: Execution engine for extensions invoked by ``service_fn``
        #: runtimes constructed during the run; None = session default.
        self.engine = engine

    def run(self) -> SimResult:
        if self.engine is not None:
            with engine_scope(self.engine):
                return self._run()
        return self._run()

    def _run(self) -> SimResult:
        rng = self.rng
        events: list[tuple[float, int, int, float]] = []
        seq = 0
        # Stagger initial issues across a tiny window, as threads
        # starting up would.
        for c in range(self.n_clients):
            issue = rng.uniform(0, 2000.0)
            heapq.heappush(events, (issue + self.rtt_ns / 2, seq, _ARRIVE, issue))
            seq += 1

        queue: list[float] = []  # issue timestamps of queued requests
        busy = 0
        completed = 0
        issued = self.n_clients
        lat = LatencyStats()
        now = 0.0
        last_completion = 0.0
        # Warm-up semantics (audited): ``warmup_count`` completions are
        # treated as warm-up, with ONE discard per metric.  Latency is
        # recorded for every completion below and trimmed exactly once
        # at the end (``discard_first(warmup_count)`` — not a second
        # fractional discard over already-filtered samples); throughput
        # opens its measurement window at completion ``warmup_count``.
        # Both metrics therefore share this single count.
        warmup_count = int(self.total_requests * self.warmup_frac)
        window_start = None
        window_completed = 0

        while completed < self.total_requests and events:
            now, _, kind, issue_ts = heapq.heappop(events)
            if kind == _ARRIVE:
                if busy < self.n_servers:
                    busy += 1
                    service = self.service_fn(now, rng)
                    heapq.heappush(events, (now + service, seq, _DONE, issue_ts))
                    seq += 1
                else:
                    queue.append(issue_ts)
            else:  # _DONE
                completed += 1
                last_completion = now
                lat.record(now + self.rtt_ns / 2 - issue_ts)
                if completed == warmup_count:
                    window_start = now
                elif completed > warmup_count:
                    window_completed += 1
                # Serve the next queued request.
                if queue:
                    next_issue = queue.pop(0)
                    service = self.service_fn(now, rng)
                    heapq.heappush(events, (now + service, seq, _DONE, next_issue))
                    seq += 1
                else:
                    busy -= 1
                # The client loops around.
                if issued < self.total_requests + self.n_clients:
                    issued += 1
                    heapq.heappush(
                        events, (now + self.rtt_ns, seq, _ARRIVE, now + self.rtt_ns / 2)
                    )
                    seq += 1

        # The single latency warm-up discard: the same count the
        # throughput window already skipped, applied to the full sample
        # list collected above (one sample per completion).
        discarded = min(warmup_count, len(lat))
        lat.discard_first(warmup_count)
        if window_start is None or last_completion <= window_start:
            window_start, window_completed = 0.0, completed
        duration = last_completion - window_start
        tput = window_completed / duration * 1000.0 if duration > 0 else 0.0
        return SimResult(
            throughput_mops=tput,
            p50_us=lat.p50_us,
            p99_us=lat.p99_us,
            mean_us=lat.mean_ns / 1000.0,
            completed=completed,
            duration_ms=last_completion / 1e6,
            warmup_discarded=discarded,
            samples=len(lat),
        )
