"""Deterministic fault injection for the KFlex runtime.

The paper's robustness story (§3.3, §4.3) is that *any* fault in an
executing extension — a wild access contained by SFI, an unpopulated
heap page, a failing helper, an exhausted allocator, a watchdog fire, a
lock that never comes — ends in the same place: a cancellation that
unwinds to a quiescent kernel.  This module provokes all of those on
purpose, at seeded random trigger points, so the cancellation machinery
is exercised at scale instead of only by hand-written fault cases.

Design constraints:

* **Deterministic.**  A :class:`FaultPlan` is (seed, per-kind rates);
  building it twice and running the same workload yields the same fire
  schedule, byte for byte.  Each fault kind draws from its own seeded
  RNG stream, so enabling one kind never perturbs another's schedule.
* **Engine-order identical.**  Injection decisions are made per
  *opportunity* (a CANCELPT execution, a helper invocation, a malloc, a
  lock acquire, a watchdog callback).  Both execution engines hit these
  opportunities in exactly the same order — the equivalence suite
  proves it — so an injected plan produces bit-identical ``ExecResult``
  under ``interp`` and ``threaded``.
* **Cheap when idle.**  Triggering uses a per-kind geometric countdown
  (inverse-CDF sampling of the gap between fires), so the per-
  opportunity cost is a dict lookup and a decrement, not an RNG draw.

Fault taxonomy (see DESIGN.md "Fault injection & supervision"):

========== ==========================================================
kind       injected at / models
========== ==========================================================
heap_page  CANCELPT: access to an unmapped heap guard page (§3.3 C2)
sfi_guard  CANCELPT: wild pointer contained by mask-and-add landing
           on an unpopulated page (§3.2 + §3.3 C2)
helper_fail helper invocation: contract violation / map-op error
alloc_fail kflex_malloc: allocation exhaustion (returns NULL)
wd_fire    watchdog callback: premature quantum expiry (§4.3)
lock_stall kflex_spin_lock: holder never releases (§4.4)
========== ==========================================================
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.errors import HelperFault, LockStall, PageFault, SimulatedCrash

#: Every fault kind the injector can provoke, in stream order.
FAULT_KINDS = (
    "heap_page",
    "sfi_guard",
    "helper_fail",
    "alloc_fail",
    "wd_fire",
    "lock_stall",
)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos schedule: seed + per-kind trigger rates.

    ``rates`` maps fault kind -> probability of firing at each
    opportunity of that kind; kinds absent from the dict never fire.
    ``max_fires`` optionally caps the number of fires per kind (the
    kind's stream goes quiet once the cap is reached).
    """

    seed: int = 0
    rates: dict = field(default_factory=dict)
    max_fires: dict = field(default_factory=dict)

    def __post_init__(self):
        unknown = set(self.rates) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds in plan: {sorted(unknown)}")

    def build(self) -> "FaultInjector":
        return FaultInjector(self)


class FaultInjector:
    """Executes a :class:`FaultPlan`: one seeded stream per fault kind.

    Hook points (all consulted by the runtime/helper layer, never by
    application code):

    * :meth:`at_cancelpt` — both engines, at every CANCELPT.
    * :meth:`at_helper` — :class:`~repro.ebpf.helpers.HelperTable`
      ``invoke``, the shared choke point of both engines.
    * :meth:`take_alloc_fail` — ``KflexAllocator.malloc``.
    * :meth:`at_lock` — ``LockManager.ext_lock``.
    * :meth:`take_wd_fire` — the watchdog's periodic callback.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng: dict[str, random.Random] = {}
        self._countdown: dict[str, int | None] = {}
        self.opportunities: dict[str, int] = {}
        self.fires: dict[str, int] = {}
        #: Chronological fire log: (kind, opportunity ordinal) — part of
        #: the deterministic-replay observable surface.
        self.log: list[tuple[str, int]] = []
        for kind in FAULT_KINDS:
            # Seed each stream from (plan seed, kind name).  String
            # seeds hash via SHA-512 inside random.Random, so this is
            # stable across processes and Python runs.
            self._rng[kind] = random.Random(f"faultplan:{plan.seed}:{kind}")
            self.opportunities[kind] = 0
            self.fires[kind] = 0
            self._countdown[kind] = self._draw_gap(kind)

    # -- trigger mechanics ------------------------------------------------

    def _draw_gap(self, kind: str) -> int | None:
        """Opportunities until the next fire (geometric), or None."""
        p = self.plan.rates.get(kind, 0.0)
        if p <= 0.0:
            return None
        if p >= 1.0:
            return 1
        u = self._rng[kind].random()
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - p))

    def take(self, kind: str) -> bool:
        """Count one opportunity for ``kind``; True when it fires."""
        self.opportunities[kind] += 1
        cd = self._countdown[kind]
        if cd is None:
            return False
        if cd > 1:
            self._countdown[kind] = cd - 1
            return False
        self.fires[kind] += 1
        self.log.append((kind, self.opportunities[kind]))
        cap = self.plan.max_fires.get(kind)
        if cap is not None and self.fires[kind] >= cap:
            self._countdown[kind] = None
        else:
            self._countdown[kind] = self._draw_gap(kind)
        return True

    # -- hook points ------------------------------------------------------

    def at_cancelpt(self, aspace, heap) -> None:
        """Consulted by both engines at every CANCELPT execution.

        ``heap_page`` models an extension access to a heap page that
        was never populated: the fault address is in the *guard* space
        below the heap base, which is never mapped, so the resulting
        :class:`PageFault` is exactly what the MMU would raise (§3.3
        C2).  ``sfi_guard`` models a wild pointer that mask-and-add
        contained back into the heap but onto an unpopulated page
        (§3.2): the advisory address is drawn inside the heap.
        """
        if self.take("heap_page"):
            addr = heap.base - 8
            raise PageFault(
                addr, f"injected heap fault: unmapped page at {addr:#x}"
            )
        if self.take("sfi_guard"):
            wild = self._rng["sfi_guard"].getrandbits(64)
            addr = heap.base + (wild & heap.mask)
            raise PageFault(
                addr,
                f"injected SFI guard violation: wild pointer contained "
                f"to {addr:#x}, page unpopulated",
            )

    def at_helper(self, hid: int, name: str) -> None:
        """Consulted by ``HelperTable.invoke`` before the implementation."""
        if self.take("helper_fail"):
            raise HelperFault(f"injected failure in helper {name} (id {hid})")

    def at_lock(self, lock_addr: int) -> None:
        """Consulted by ``LockManager.ext_lock`` before the acquire."""
        if self.take("lock_stall"):
            raise LockStall(
                f"injected stall: spin lock at {lock_addr:#x} never released"
            )

    def take_alloc_fail(self) -> bool:
        """Consulted by ``KflexAllocator.malloc``; True -> return NULL."""
        return self.take("alloc_fail")

    def take_wd_fire(self) -> bool:
        """Consulted by the watchdog callback; True -> arm early."""
        return self.take("wd_fire")

    # -- reporting --------------------------------------------------------

    def total_fires(self) -> int:
        return sum(self.fires.values())

    def kinds_fired(self) -> set[str]:
        return {k for k, n in self.fires.items() if n}

    def summary(self) -> dict:
        return {
            "seed": self.plan.seed,
            "opportunities": dict(self.opportunities),
            "fires": dict(self.fires),
            "log": list(self.log),
        }


# ---------------------------------------------------------------------------
# Crash-point injection (durable state, repro.state)
# ---------------------------------------------------------------------------

#: Named crash points inside the WAL/snapshot/recovery code, in stream
#: order.  Each models process death at a specific durability boundary:
#:
#: ============== ========================================================
#: site           dies...
#: ============== ========================================================
#: wal.append     after the record entered the volatile buffer, before
#:                the fsync-analog — the record is lost entirely
#: wal.flush      *mid*-fsync — a random prefix of the pending bytes
#:                reaches durable storage (the torn tail)
#: snapshot.write after encoding, before the atomic rename — no durable
#:                change at all
#: snapshot.commit after the rename, before old snapshots are deleted —
#:                two valid snapshots coexist
#: wal.compact    after old snapshots are deleted, before the WAL is
#:                truncated — snapshot and WAL double-cover a range
#: recovery.replay mid-recovery — recovery itself must be restartable
#: ship.send      primary dies before shipping a journaled record — the
#:                write is durable locally but never reached a follower
#: replica.append follower dies after a shipped record entered its
#:                volatile buffer, before its fsync-analog
#: replica.flush  follower dies *mid*-fsync of a shipped record — a torn
#:                tail on the receiving side
#: antientropy.send    primary dies at the start of a resync transfer
#: antientropy.install follower dies mid-snapshot-install, before the
#:                     epoch-verification marker — the pin stays dirty
#: promote.recover the follower chosen for promotion dies while
#:                 rebuilding its map from shipped state
#: migrate.snapshot migration source dies while cutting the segment
#:                  image (ring unchanged — migration aborts/restarts)
#: migrate.install  migration target dies mid-segment-install
#: migrate.tail     migration target dies applying a WAL-tail round
#: migrate.cutover  migration target dies inside the paused cutover
#:                  window, before the ring flip
#: rollout.load     canary shard dies right after loading new bytecode
#: rollout.window   canary shard dies mid-observation-window
#: rollout.promote  a shard dies while a promote sweeps the fleet
#: rollout.rollback the canary dies while being rolled back to stable
#: ============== ========================================================
CRASH_SITES = (
    "wal.append",
    "wal.flush",
    "snapshot.write",
    "snapshot.commit",
    "wal.compact",
    "recovery.replay",
    "ship.send",
    "replica.append",
    "replica.flush",
    "antientropy.send",
    "antientropy.install",
    "promote.recover",
    "migrate.snapshot",
    "migrate.install",
    "migrate.tail",
    "migrate.cutover",
    "rollout.load",
    "rollout.window",
    "rollout.promote",
    "rollout.rollback",
)


@dataclass(frozen=True)
class CrashPlan:
    """A reproducible crash schedule: seed + per-site rates.

    Sites absent from ``rates`` never fire.  ``max_crashes`` caps the
    *total* number of injected deaths (all sites combined) so a
    campaign can bound its crash count; streams go quiet at the cap.
    Crash streams are seeded from a ``crashplan:`` namespace, disjoint
    from :class:`FaultPlan`'s ``faultplan:`` streams — adding crash
    injection to an existing chaos campaign does not perturb its fault
    schedule.
    """

    seed: int = 0
    rates: dict = field(default_factory=dict)
    max_crashes: int | None = None

    def __post_init__(self):
        unknown = set(self.rates) - set(CRASH_SITES)
        if unknown:
            raise ValueError(f"unknown crash sites in plan: {sorted(unknown)}")

    def build(self) -> "CrashInjector":
        return CrashInjector(self)


class CrashInjector:
    """Executes a :class:`CrashPlan`: one seeded stream per crash site.

    The durable-state code consults :meth:`at` at each site (raises
    :class:`~repro.errors.SimulatedCrash` when the site fires) and
    :meth:`torn` at the fsync-analog (returns the surviving prefix
    length when a mid-flush death fires).  Campaign drivers catch the
    exception, discard volatile state, and run recovery — the injector
    itself stays armed across the "reboot", so recovery code is
    crash-tested too.
    """

    def __init__(self, plan: CrashPlan):
        self.plan = plan
        self._rng: dict[str, random.Random] = {}
        self._countdown: dict[str, int | None] = {}
        self.opportunities: dict[str, int] = {}
        self.crashes: dict[str, int] = {}
        self.log: list[tuple[str, int]] = []
        for site in CRASH_SITES:
            self._rng[site] = random.Random(f"crashplan:{plan.seed}:{site}")
            self.opportunities[site] = 0
            self.crashes[site] = 0
            self._countdown[site] = self._draw_gap(site)

    def _draw_gap(self, site: str) -> int | None:
        p = self.plan.rates.get(site, 0.0)
        if p <= 0.0:
            return None
        if p >= 1.0:
            return 1
        u = self._rng[site].random()
        return 1 + int(math.log(1.0 - u) / math.log(1.0 - p))

    def take(self, site: str) -> bool:
        self.opportunities[site] += 1
        if (
            self.plan.max_crashes is not None
            and self.total_crashes() >= self.plan.max_crashes
        ):
            return False
        cd = self._countdown[site]
        if cd is None:
            return False
        if cd > 1:
            self._countdown[site] = cd - 1
            return False
        self.crashes[site] += 1
        self.log.append((site, self.opportunities[site]))
        self._countdown[site] = self._draw_gap(site)
        return True

    def at(self, site: str) -> None:
        """Die here if the site's stream fires."""
        if self.take(site):
            raise SimulatedCrash(site)

    def torn(self, site: str, nbytes: int) -> int | None:
        """Mid-flush death: returns how many of ``nbytes`` pending
        bytes survive (drawn uniformly, torn tails included), or None
        when the site does not fire."""
        if not self.take(site):
            return None
        return self._rng[site].randint(0, max(0, nbytes))

    def disarm(self, site: str) -> None:
        """Stop a site from firing (used to bound recovery retries)."""
        self._countdown[site] = None

    def total_crashes(self) -> int:
        return sum(self.crashes.values())

    def sites_crashed(self) -> set[str]:
        return {s for s, n in self.crashes.items() if n}

    def summary(self) -> dict:
        return {
            "seed": self.plan.seed,
            "opportunities": dict(self.opportunities),
            "crashes": dict(self.crashes),
            "log": list(self.log),
        }
