"""Seeded chaos campaigns over the supervised applications.

A *campaign* drives hundreds of application requests through a KFlex
runtime with a :class:`~repro.sim.faults.FaultPlan` installed, and
checks the paper's end-to-end robustness claims (§3.3, §3.4, §4.3):

* **No panics.**  Every injected fault ends in a clean cancellation;
  a ``KernelPanic`` (including a ``QuiescenceViolation`` from the
  per-cancellation audit) escapes the campaign and fails it.
* **Quiescence.**  Quiescence auditing is forced on for the campaign's
  duration, so every cancellation is followed by a lock/sock/alloc
  audit, and a final :meth:`QuiescenceAuditor.sweep` checks the whole
  runtime after the last request.
* **Graceful degradation.**  The memcached/redis campaigns run through
  the supervised wrappers and oracle-check every result against a
  shadow store — correct answers are required *through* quarantine,
  via the userspace fallback and the surviving heap (§3.4).
* **Deterministic replay.**  The campaign folds every op, result and
  injector fire into a SHA-256 digest.  Same seed + same engine (or
  the other engine — injection points are engine-order identical)
  must reproduce the digest bit for bit.

Run from the command line (see ``make chaos-quick``)::

    python -m repro.sim.chaos --apps memcached redis --ops 200 --seed 7
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.core.audit import audit_enabled, enable_quiescence_audit
from repro.core.runtime import KFlexRuntime
from repro.core.supervisor import QuarantinePolicy
from repro.kernel.watchdog import DEFAULT_QUANTUM_UNITS
from repro.sim.faults import FaultPlan

#: Per-opportunity trigger rates tuned so a few-hundred-op campaign
#: sees every kind fire multiple times without drowning the service.
DEFAULT_RATES = {
    "heap_page": 0.004,
    "sfi_guard": 0.004,
    "helper_fail": 0.01,
    "alloc_fail": 0.02,
    "wd_fire": 0.02,
    "lock_stall": 0.01,
}

#: Campaign apps, in CLI order.
APPS = ("memcached", "redis", "datastructures")


def chaos_policy() -> QuarantinePolicy:
    """Quarantine knobs for chaos runs: trip fast, heal fast.

    Backoffs are short on the simulated clock (one request advances it
    by a few microseconds), so campaigns exercise the full
    quarantine → backoff → re-admission → replay cycle many times.
    """
    return QuarantinePolicy(
        window=32,
        max_faults=4,
        base_backoff_ns=50_000,
        backoff_factor=4,
        max_backoff_ns=5_000_000,
    )


@dataclass
class ChaosReport:
    """Observable outcome of one campaign (the determinism surface)."""

    app: str
    engine: str
    seed: int
    n_ops: int
    #: SHA-256 over every (op, result) pair and the injector fire log.
    digest: str = ""
    kinds_fired: tuple = ()
    total_fires: int = 0
    quarantines: int = 0
    readmissions: int = 0
    cancellations: int = 0
    kernel_ops: int = 0
    fallback_ops: int = 0
    #: Overlay entries never replayed (extension still quarantined at
    #: the end of the run) — informational, not an error.
    pending: int = 0
    #: Oracle mismatches: (op index, description).  Must be empty.
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} ERRORS"
        kinds = ",".join(self.kinds_fired) or "-"
        return (
            f"chaos[{self.app}/{self.engine}] seed={self.seed} "
            f"ops={self.n_ops} fires={self.total_fires} ({kinds}) "
            f"quar={self.quarantines} readmit={self.readmissions} "
            f"cancel={self.cancellations} kernel={self.kernel_ops} "
            f"fallback={self.fallback_ops} pending={self.pending} "
            f"digest={self.digest[:16]} {status}"
        )


def _mix(hasher, *parts) -> None:
    hasher.update("|".join(str(p) for p in parts).encode())
    hasher.update(b"\n")


def _finish(report: ChaosReport, rt, hasher, inj, stats=None) -> ChaosReport:
    """Common tail: runtime-wide sweep, stats, digest."""
    # Final quiescence sweep across every allocator/lock manager and
    # the global socket table — raises QuiescenceViolation on leaks.
    rt.auditor.sweep(rt)
    for kind, n in sorted(inj.fires.items()):
        _mix(hasher, "fire", kind, n)
    for kind, ordinal in inj.log:
        _mix(hasher, "log", kind, ordinal)
    report.digest = hasher.hexdigest()
    report.kinds_fired = tuple(sorted(inj.kinds_fired()))
    report.total_fires = inj.total_fires()
    report.quarantines = rt.supervisor.stats.quarantines
    report.readmissions = rt.supervisor.stats.readmissions
    if stats is not None:
        report.kernel_ops = stats[0]
        report.fallback_ops = stats[1]
    return report


def _record_error(report: ChaosReport, i: int, msg: str, cap: int = 20) -> None:
    if len(report.errors) < cap:
        report.errors.append((i, msg))


def _colliding_ids(bucket_of, encode, n_keys: int, per_bucket: int) -> list[int]:
    """Deterministic key ids that share hash buckets.

    Uniform keys over the 4096-bucket tables almost never collide, so
    bucket chains stay one entry long and the loop back-edge CANCELPTs
    never execute — which would starve the heap-fault kinds of
    opportunities.  Scanning ids in order and keeping the first
    ``per_bucket`` hits of the first ``n_keys / per_bucket`` buckets to
    fill up yields chains long enough to walk every request.
    """
    buckets: dict[int, list[int]] = {}
    full: list[int] = []
    cand = 0
    while len(full) * per_bucket < n_keys:
        b = bucket_of(encode(cand))
        ids = buckets.setdefault(b, [])
        if len(ids) < per_bucket:
            ids.append(cand)
            if len(ids) == per_bucket:
                full.append(b)
        cand += 1
    return [i for b in full for i in buckets[b]][:n_keys]


#: Simulated per-request interarrival time.  Fallback-served requests
#: never run the extension (which is what advances the cost-model
#: clock), so without this the clock freezes during quarantine and the
#: re-admission backoff would never elapse.
REQUEST_GAP_NS = 2_000


class _audit_forced:
    """Force quiescence auditing on for the campaign, then restore."""

    def __enter__(self):
        self._prev = audit_enabled()
        enable_quiescence_audit(True)

    def __exit__(self, *exc):
        enable_quiescence_audit(self._prev)


def _make_runtime(engine: str, policy: QuarantinePolicy | None):
    rt = KFlexRuntime(engine=engine, supervisor_policy=policy or chaos_policy())
    # Short watchdog period so injected premature fires actually get a
    # chance to trigger on ~100-step requests (the production period of
    # 4096 steps would make wd_fire unreachable for small extensions).
    rt.watchdog_period = 64
    return rt


# ---------------------------------------------------------------------------
# Memcached
# ---------------------------------------------------------------------------


def run_memcached_campaign(
    seed: int = 0,
    n_ops: int = 600,
    engine: str = "threaded",
    *,
    rates: dict | None = None,
    policy: QuarantinePolicy | None = None,
    key_space: int = 64,
) -> ChaosReport:
    """GET/SET storm through :class:`SupervisedMemcached` + oracle."""
    import random

    from repro.apps.memcached import protocol as P
    from repro.apps.memcached.supervised import SupervisedMemcached, _bucket_of

    report = ChaosReport("memcached", engine, seed, n_ops)
    hasher = hashlib.sha256()
    rng = random.Random(f"chaos:{seed}:memcached")
    keys = _colliding_ids(_bucket_of, P.key_bytes, key_space, per_bucket=8)
    with _audit_forced():
        rt = _make_runtime(engine, policy)
        inj = rt.install_injector(FaultPlan(seed, rates or DEFAULT_RATES))
        sm = SupervisedMemcached(
            rt,
            use_locks=True,
            heap_size=1 << 22,
            quantum_units=DEFAULT_QUANTUM_UNITS,
        )
        shadow: dict[int, int] = {}
        for i in range(n_ops):
            rt.kernel.advance_ns(REQUEST_GAP_NS)
            key = keys[rng.randrange(len(keys))]
            if rng.random() < 0.5:
                value = rng.getrandbits(63)
                ok = sm.set(key, value)
                if not ok:
                    _record_error(report, i, f"SET {key} refused")
                else:
                    shadow[key] = value
                _mix(hasher, i, "set", key, value, ok)
            else:
                got = sm.get(key)
                want = (
                    (True, shadow[key]) if key in shadow else (False, None)
                )
                if got != want:
                    _record_error(
                        report, i, f"GET {key}: got {got}, want {want}"
                    )
                _mix(hasher, i, "get", key, got)
        # End-to-end check: every key answers correctly, kernel path or
        # fallback alike.
        for key, want in sorted(shadow.items()):
            got = sm.get(key)
            if got != (True, want):
                _record_error(report, n_ops, f"final GET {key}: {got}")
            _mix(hasher, "final", key, got)
        report.cancellations = sm.ext.stats.cancellations
        report.pending = sm.pending
        stats = (
            sm.stats.kernel_gets + sm.stats.kernel_sets,
            sm.stats.fallback_gets + sm.stats.fallback_sets,
        )
        return _finish(report, rt, hasher, inj, stats)


# ---------------------------------------------------------------------------
# Redis
# ---------------------------------------------------------------------------


def run_redis_campaign(
    seed: int = 0,
    n_ops: int = 600,
    engine: str = "threaded",
    *,
    rates: dict | None = None,
    policy: QuarantinePolicy | None = None,
    key_space: int = 32,
    zset_keys: int = 4,
    member_space: int = 16,
) -> ChaosReport:
    """GET/SET/ZADD storm through :class:`SupervisedRedis` + oracle.

    String keys and zset keys live in disjoint id ranges.  Each
    (zset, member) pair always gets the same score, so repeated ZADDs
    are idempotent and the end-state check is a plain set comparison.
    """
    import random

    from repro.apps.redis import protocol as P
    from repro.apps.redis.supervised import SupervisedRedis, _bucket_of

    report = ChaosReport("redis", engine, seed, n_ops)
    hasher = hashlib.sha256()
    rng = random.Random(f"chaos:{seed}:redis")
    keys = _colliding_ids(_bucket_of, P.key_bytes, key_space, per_bucket=8)
    zbase = 1 << 20  # zset key ids, disjoint from string keys
    with _audit_forced():
        rt = _make_runtime(engine, policy)
        inj = rt.install_injector(FaultPlan(seed, rates or DEFAULT_RATES))
        sr = SupervisedRedis(
            rt, heap_size=1 << 22, quantum_units=DEFAULT_QUANTUM_UNITS
        )
        strings: dict[int, int] = {}
        zsets: dict[int, set] = {}
        for i in range(n_ops):
            rt.kernel.advance_ns(REQUEST_GAP_NS)
            roll = rng.random()
            if roll < 0.35:
                key = keys[rng.randrange(len(keys))]
                value = rng.getrandbits(63)
                ok = sr.set(key, value)
                if not ok:
                    _record_error(report, i, f"SET {key} refused")
                else:
                    strings[key] = value
                _mix(hasher, i, "set", key, value, ok)
            elif roll < 0.70:
                key = keys[rng.randrange(len(keys))]
                got = sr.get(key)
                want = (
                    (True, strings[key]) if key in strings else (False, None)
                )
                if got != want:
                    _record_error(
                        report, i, f"GET {key}: got {got}, want {want}"
                    )
                _mix(hasher, i, "get", key, got)
            else:
                key = zbase + rng.randrange(zset_keys)
                member = rng.randrange(member_space)
                score = member * 10  # fixed per member: idempotent
                ok = sr.zadd(key, score, member)
                if not ok:
                    _record_error(report, i, f"ZADD {key} refused")
                else:
                    zsets.setdefault(key, set()).add((score, member))
                _mix(hasher, i, "zadd", key, score, member, ok)
        for key, want in sorted(strings.items()):
            got = sr.get(key)
            if got != (True, want):
                _record_error(report, n_ops, f"final GET {key}: {got}")
            _mix(hasher, "final", key, got)
        for key, want in sorted(zsets.items()):
            got = sr.zset_members(key)
            if got != sorted(want):
                _record_error(
                    report, n_ops, f"final ZSET {key}: {got} != {sorted(want)}"
                )
            _mix(hasher, "final-zset", key, tuple(got))
        report.cancellations = sr.ext.stats.cancellations
        report.pending = sr.pending
        stats = (sr.stats.kernel_ops, sr.stats.fallback_ops)
        return _finish(report, rt, hasher, inj, stats)


# ---------------------------------------------------------------------------
# Data structures
# ---------------------------------------------------------------------------


def run_datastructures_campaign(
    seed: int = 0,
    n_ops: int = 400,
    engine: str = "threaded",
    *,
    rates: dict | None = None,
    policy: QuarantinePolicy | None = None,
    key_space: int = 48,
) -> ChaosReport:
    """Update/lookup/delete storm over hashmap + linkedlist.

    No userspace fallback wrapper exists for the raw data structures, so
    this campaign checks the robustness half only: no panics, quiescence
    after every cancellation, and a deterministic digest — a quarantined
    structure answering with its default return is acceptable.
    """
    import random

    from repro.apps.datastructures.hashmap import HashMapDS
    from repro.apps.datastructures.linkedlist import LinkedListDS

    report = ChaosReport("datastructures", engine, seed, n_ops)
    hasher = hashlib.sha256()
    rng = random.Random(f"chaos:{seed}:datastructures")
    with _audit_forced():
        rt = _make_runtime(engine, policy)
        inj = rt.install_injector(FaultPlan(seed, rates or DEFAULT_RATES))
        structures = [HashMapDS(rt), LinkedListDS(rt)]
        for i in range(n_ops):
            rt.kernel.advance_ns(REQUEST_GAP_NS)
            ds = structures[rng.randrange(len(structures))]
            key = rng.randrange(key_space)
            roll = rng.random()
            if roll < 0.5:
                ret = ds.update(key, rng.getrandbits(32))
                op = "update"
            elif roll < 0.85:
                ret = ds.lookup(key)
                op = "lookup"
            else:
                ret = ds.delete(key)
                op = "delete"
            _mix(hasher, i, ds.NAME, op, key, ret)
        report.cancellations = sum(
            ext.stats.cancellations
            for ds in structures
            for ext in ds.exts.values()
        )
        return _finish(report, rt, hasher, inj)


# ---------------------------------------------------------------------------
# Crash recovery (repro.state)
# ---------------------------------------------------------------------------

#: Per-opportunity crash rates for the recovery fuzz.  WAL sites see an
#: opportunity per mutation, snapshot sites one per compaction, so the
#: snapshot rates are higher to get comparable coverage.
DEFAULT_CRASH_RATES = {
    "wal.append": 0.010,
    "wal.flush": 0.010,
    "snapshot.write": 0.120,
    "snapshot.commit": 0.120,
    "wal.compact": 0.120,
    "recovery.replay": 0.003,
}


@dataclass
class RecoveryChaosReport:
    """Outcome of one crash-recovery fuzz run."""

    seed: int
    n_ops: int
    digest: str = ""
    crashes: int = 0
    sites_crashed: tuple = ()
    recoveries: int = 0
    torn_recoveries: int = 0
    snapshot_fallbacks: int = 0
    replayed_total: int = 0
    ops_applied: int = 0
    ops_lost: int = 0
    #: Oracle violations: (op index, description).  Must be empty.
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} ERRORS"
        sites = ",".join(self.sites_crashed) or "-"
        return (
            f"chaos[recovery] seed={self.seed} ops={self.n_ops} "
            f"crashes={self.crashes} ({sites}) recoveries={self.recoveries} "
            f"torn={self.torn_recoveries} replayed={self.replayed_total} "
            f"applied={self.ops_applied} lost={self.ops_lost} "
            f"digest={self.digest[:16]} {status}"
        )


def run_recovery_campaign(
    seed: int = 0,
    n_ops: int = 1500,
    *,
    storage=None,
    crash_rates: dict | None = None,
    sync_every: int = 1,
    snapshot_every: int | None = 64,
    key_space: int = 48,
    max_entries: int = 64,
) -> RecoveryChaosReport:
    """Seeded crash-recovery fuzz over a journaled hash map.

    Random update/delete churn runs against a pinned, WAL-journaled
    :class:`~repro.ebpf.maps.HashMap` with a :class:`CrashPlan` armed
    inside the durable-state code.  Every injected death is followed by
    full recovery into a *fresh* kernel, and the recovered contents are
    checked against a shadow oracle with the **prefix-consistency**
    rule: the recovered map must equal the shadow after *exactly*
    ``recovered_seq`` journaled operations — never a corrupted or
    reordered state — and ``recovered_seq`` must be at least the last
    durability barrier (an acknowledged flush never rolls back).
    """
    import random

    from repro.ebpf.maps import HashMap
    from repro.errors import SimulatedCrash
    from repro.kernel.machine import Kernel
    from repro.sim.faults import CrashPlan
    from repro.state import DurableStore, MemStorage

    PIN = "chaos/map"
    KEY_SIZE, VALUE_SIZE = 8, 16
    report = RecoveryChaosReport(seed, n_ops)
    hasher = hashlib.sha256()
    rng = random.Random(f"chaos:{seed}:recovery")
    crash = CrashPlan(seed, crash_rates or DEFAULT_CRASH_RATES).build()
    if storage is None:
        storage = MemStorage()

    kernel = Kernel()
    store = DurableStore(
        storage=storage,
        sync_every=sync_every,
        snapshot_every=snapshot_every,
        crash=crash,
    )
    m = HashMap(
        kernel.aspace,
        kernel.vmalloc,
        key_size=KEY_SIZE,
        value_size=VALUE_SIZE,
        max_entries=max_entries,
        name="chaos",
    )
    store.attach(PIN, m)

    # Shadow oracle: the journaled ops in sequence order.  shadow[i]
    # carries seq i+1; values are the canonical post-write slot bytes.
    shadow: list[tuple[str, bytes, bytes]] = []
    durable_floor = 0

    def apply_prefix(k: int) -> list[tuple[bytes, bytes]]:
        d: dict[bytes, bytes] = {}
        for op, key, value in shadow[:k]:
            if op == "u":
                d[key] = value
            else:
                d.pop(key, None)
        return sorted(d.items())

    def recover_after_crash(i: int):
        nonlocal kernel, store, m, durable_floor, shadow
        store.crash_volatile()
        kernel = Kernel()
        store = DurableStore(
            storage=storage,
            sync_every=sync_every,
            snapshot_every=snapshot_every,
            crash=crash,
        )
        attempts = 0
        while True:
            try:
                m, rep = store.recover_map(PIN, kernel.aspace, kernel.vmalloc)
                break
            except SimulatedCrash:
                # Recovery died mid-replay; a restarted recovery must
                # succeed from the same durable bytes.
                report.recoveries += 1
                attempts += 1
                if attempts > 50:  # rates near 1.0 would livelock
                    crash.disarm("recovery.replay")
        report.recoveries += 1
        report.replayed_total += rep.replayed
        if rep.torn is not None:
            report.torn_recoveries += 1
        report.snapshot_fallbacks += rep.snapshots_discarded
        seq_rec = rep.recovered_seq
        if seq_rec < durable_floor:
            _record_error(
                report, i,
                f"recovery rolled back past durability barrier: "
                f"seq {seq_rec} < floor {durable_floor}",
            )
        if seq_rec > len(shadow):
            _record_error(
                report, i,
                f"recovered seq {seq_rec} beyond {len(shadow)} shadow ops",
            )
            seq_rec = len(shadow)
        want = apply_prefix(seq_rec)
        got = m.entries()
        if got != want:
            _record_error(
                report, i,
                f"recovered state is not the seq-{seq_rec} prefix: "
                f"{len(got)} entries vs {len(want)} expected",
            )
        report.ops_lost += len(shadow) - seq_rec
        shadow = shadow[:seq_rec]
        durable_floor = seq_rec
        _mix(hasher, "recover", i, seq_rec, rep.torn or "-", rep.replayed)

    for i in range(n_ops):
        key = rng.randrange(key_space).to_bytes(KEY_SIZE, "little")
        do_delete = rng.random() < 0.25
        value = (
            b"" if do_delete else rng.getrandbits(8 * VALUE_SIZE).to_bytes(
                VALUE_SIZE, "little"
            )
        )
        try:
            rc = m.delete(key) if do_delete else m.update(key, value)
        except SimulatedCrash as e:
            # The in-memory mutation and its WAL append both happened
            # before any crash site can fire, so the op joins the
            # shadow before recovery rules on how much history survived.
            if do_delete:
                shadow.append(("d", key, b""))
            else:
                canonical = m.aspace.read_bytes(m.lookup(key), VALUE_SIZE)
                shadow.append(("u", key, canonical))
            report.crashes += 1
            _mix(hasher, i, "crash", e.site)
            recover_after_crash(i)
            continue
        if rc == 0:
            if do_delete:
                shadow.append(("d", key, b""))
            else:
                canonical = m.aspace.read_bytes(m.lookup(key), VALUE_SIZE)
                shadow.append(("u", key, canonical))
            report.ops_applied += 1
            durable_floor = max(durable_floor, store.wal(PIN).durable_seq)
        _mix(hasher, i, "d" if do_delete else "u", key.hex(), value.hex(), rc)

    # Final pass: flush, restart with injection off, expect *exact*
    # convergence — nothing pending, nothing torn, full history.
    try:
        store.flush()
    except SimulatedCrash as e:
        report.crashes += 1
        _mix(hasher, n_ops, "crash", e.site)
        recover_after_crash(n_ops)
        store.flush()
    store.crash_volatile()
    kernel = Kernel()
    clean_store = DurableStore(storage=storage, sync_every=sync_every)
    m, rep = clean_store.recover_map(PIN, kernel.aspace, kernel.vmalloc)
    if rep.recovered_seq != len(shadow):
        _record_error(
            report, n_ops,
            f"clean recovery lost acknowledged ops: seq {rep.recovered_seq} "
            f"!= {len(shadow)}",
        )
    if m.entries() != apply_prefix(len(shadow)):
        _record_error(report, n_ops, "clean recovery state mismatch")
    if rep.torn is not None:
        _record_error(report, n_ops, f"clean recovery saw torn WAL: {rep.torn}")
    report.recoveries += 1

    report.crashes = crash.total_crashes()
    report.sites_crashed = tuple(sorted(crash.sites_crashed()))
    for site, ordinal in crash.log:
        _mix(hasher, "crashlog", site, ordinal)
    report.digest = hasher.hexdigest()
    return report


DEFAULT_REPLICATION_RATES = {
    # primary-side durability sites (kept mild: each fires a promotion)
    "wal.append": 0.003,
    "wal.flush": 0.003,
    "snapshot.write": 0.030,
    "snapshot.commit": 0.030,
    "wal.compact": 0.030,
    "recovery.replay": 0.002,
    # shipping / follower / anti-entropy / promotion sites
    "ship.send": 0.006,
    "replica.append": 0.008,
    "replica.flush": 0.008,
    "antientropy.send": 0.030,
    "antientropy.install": 0.060,
    "promote.recover": 0.120,
}


@dataclass
class ReplicationChaosReport:
    """Outcome of one replicated-durability fuzz run."""

    seed: int
    n_ops: int
    sync_replicas: int = 1
    digest: str = ""
    deaths: int = 0
    sites_crashed: tuple = ()
    primary_deaths: int = 0
    follower_deaths: int = 0
    promotion_deaths: int = 0
    promotions: int = 0
    epoch: int = 1
    recoveries: int = 0
    follower_restarts: int = 0
    acked_ops: int = 0
    quorum_losses: int = 0
    resyncs: int = 0
    snapshots_shipped: int = 0
    fence_checks: int = 0
    #: Oracle violations: (op index, description).  Must be empty.
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} ERRORS"
        sites = ",".join(self.sites_crashed) or "-"
        return (
            f"chaos[replication] seed={self.seed} ops={self.n_ops} "
            f"k={self.sync_replicas} deaths={self.deaths} ({sites}) "
            f"primary={self.primary_deaths} follower={self.follower_deaths} "
            f"promotions={self.promotions} epoch={self.epoch} "
            f"acked={self.acked_ops} qlost={self.quorum_losses} "
            f"resyncs={self.resyncs} fences={self.fence_checks} "
            f"digest={self.digest[:16]} {status}"
        )


def run_replication_campaign(
    seed: int = 0,
    n_ops: int = 1200,
    *,
    n_followers: int = 2,
    sync_replicas: int = 1,
    crash_rates: dict | None = None,
    snapshot_every: int | None = 64,
    key_space: int = 48,
    max_entries: int = 64,
) -> ReplicationChaosReport:
    """Seeded fuzz over a full replica set: primary + N followers.

    Random churn runs against a journaled map whose WAL is shipped to
    ``n_followers`` in-process replicas at write quorum
    ``sync_replicas``.  Crash injection kills the primary (wal/snapshot
    /ship sites), followers (replica.* and antientropy.install fire
    *inside* the follower's frame handler — a death the primary sees as
    a dead channel), the promotion itself (``promote.recover``) and the
    anti-entropy sender.  Every primary death runs a real promotion:
    watermark query, most-caught-up pick, epoch bump, recovery on the
    promoted storage, deposed node rejoining dirty.

    The oracle is **linearizability of acked writes**: a write whose
    quorum ack-set intersects the followers alive at promotion time
    must be covered by the promoted node's recovered seq — acked data
    survives any crash sequence that leaves an acker alive — and the
    recovered state must be byte-identical to the shadow history's
    prefix at that seq.  The final convergence pass then requires every
    node's durable bytes to recover to the *exact* full history.
    """
    import random

    from repro.ebpf.maps import HashMap
    from repro.errors import PrimaryFenced, QuorumLost, SimulatedCrash
    from repro.kernel.machine import Kernel
    from repro.sim.faults import CRASH_SITES, CrashPlan
    from repro.state import DurableStore, MemStorage
    from repro.state.replication import (
        MSG_APPEND,
        ST_FENCED,
        LocalChannel,
        QuorumShipper,
        ReplicaSession,
        decode_frame,
        encode_frame,
    )

    PIN = "chaos/map"
    KEY_SIZE, VALUE_SIZE = 8, 16
    report = ReplicationChaosReport(seed, n_ops, sync_replicas=sync_replicas)
    hasher = hashlib.sha256()
    rng = random.Random(f"chaos:{seed}:replication")
    crash = CrashPlan(seed, crash_rates or DEFAULT_REPLICATION_RATES).build()

    n_nodes = n_followers + 1
    node_storage = [MemStorage() for _ in range(n_nodes)]
    primary = 0
    epoch = 1
    sessions: dict[int, ReplicaSession] = {}
    channels: dict[int, LocalChannel] = {}

    from repro.state.replication import ShipStats

    shadow: list[tuple[str, bytes, bytes]] = []
    #: seq -> follower node_ids that durably acked it (quorum evidence).
    acked: dict[int, tuple[str, ...]] = {}
    #: Shipping totals across every primary incarnation.
    total_ship = ShipStats()

    def follower_nodes() -> list[int]:
        return [n for n in range(n_nodes) if n != primary]

    def boot_followers() -> None:
        for n in follower_nodes():
            sess = sessions.get(n)
            if sess is None or sess.crashed:
                sessions[n] = ReplicaSession(
                    node_storage[n], node_id=f"n{n}", crash=crash
                )
                if sess is not None:
                    report.follower_restarts += 1
                ch = channels.get(n)
                if ch is not None:
                    ch.restart(sessions[n])

    def make_shipper() -> QuorumShipper:
        chans = []
        for n in follower_nodes():
            ch = LocalChannel(f"n{n}", sessions.get(n))
            channels[n] = ch
            chans.append(ch)
        return QuorumShipper(
            chans,
            sync_replicas=sync_replicas,
            epoch=epoch,
            crash=crash,
            maintenance_every=None,  # the harness repairs deterministically
        )

    def apply_prefix(k: int) -> list[tuple[bytes, bytes]]:
        d: dict[bytes, bytes] = {}
        for op, key, value in shadow[:k]:
            if op == "u":
                d[key] = value
            else:
                d.pop(key, None)
        return sorted(d.items())

    boot_followers()
    kernel = Kernel()
    shipper = make_shipper()
    store = DurableStore(
        storage=node_storage[primary],
        sync_every=1,
        snapshot_every=snapshot_every,
        crash=crash,
        shipper=shipper,
    )
    m = HashMap(
        kernel.aspace,
        kernel.vmalloc,
        key_size=KEY_SIZE,
        value_size=VALUE_SIZE,
        max_entries=max_entries,
        name="chaos-repl",
    )
    store.attach(PIN, m)

    def count_follower_deaths() -> None:
        # A follower death shows up as a crashed session; tally once.
        for n in follower_nodes():
            sess = sessions.get(n)
            if sess is not None and sess.crashed and not getattr(
                sess, "_counted", False
            ):
                sess._counted = True
                report.follower_deaths += 1

    def handle_primary_death(i: int, site: str) -> None:
        nonlocal primary, epoch, kernel, store, m, shipper, shadow, acked
        report.primary_deaths += 1
        _mix(hasher, i, "primary-death", site)
        store.crash_volatile()
        count_follower_deaths()
        attempts = 0
        floor = 0
        while True:
            live = {
                n: sessions[n]
                for n in follower_nodes()
                if sessions.get(n) is not None and not sessions[n].crashed
            }
            floor = 0
            for q, nodes in acked.items():
                if any(f"n{n}" in nodes for n in live):
                    floor = max(floor, q)
            wms = {n: live[n].watermark(PIN) for n in live}
            usable = {n: wm for n, wm in wms.items() if wm > 0}
            if usable:
                promoted = max(usable, key=lambda n: (usable[n], -n))
            else:
                # No follower holds a verified prefix (all down, or all
                # dirty/fresh): cold-restart the primary node from its
                # own durable bytes — the disk survived the process,
                # and the pre-ship WAL flush means it covers every
                # acked write.
                promoted = primary
            if promoted != primary:
                try:
                    crash.at("promote.recover")
                except SimulatedCrash:
                    # The chosen promotee died mid-promotion: its
                    # volatile state is gone, pick the next-best.
                    report.promotion_deaths += 1
                    sessions[promoted].crashed = True
                    node_storage[promoted].crash()
                    count_follower_deaths()
                    attempts += 1
                    if attempts > 10:
                        crash.disarm("promote.recover")
                    continue
            break
        old_primary = primary
        primary = promoted
        epoch += 1
        if promoted != old_primary:
            report.promotions += 1
            sessions.pop(promoted, None)
            # The deposed node rejoins as a follower over its surviving
            # storage; its unshipped WAL suffix is untrusted (dirty)
            # until a snapshot re-bases it under the new epoch.
            sessions[old_primary] = ReplicaSession(
                node_storage[old_primary], node_id=f"n{old_primary}",
                crash=crash,
            )
        boot_followers()
        kernel = Kernel()
        total_ship.merge(shipper.stats)
        shipper = make_shipper()
        store = DurableStore(
            storage=node_storage[primary],
            sync_every=1,
            snapshot_every=snapshot_every,
            crash=crash,
            shipper=shipper,
        )
        rattempts = 0
        while True:
            try:
                m, rep = store.recover_map(PIN, kernel.aspace, kernel.vmalloc)
                break
            except SimulatedCrash:
                report.recoveries += 1
                rattempts += 1
                if rattempts > 50:
                    crash.disarm("recovery.replay")
        report.recoveries += 1
        seq_rec = rep.recovered_seq
        if seq_rec < floor:
            _record_error(
                report, i,
                f"acked write lost in promotion: recovered seq {seq_rec} "
                f"< acked floor {floor}",
            )
        if seq_rec > len(shadow):
            _record_error(
                report, i,
                f"recovered seq {seq_rec} beyond {len(shadow)} shadow ops",
            )
            seq_rec = len(shadow)
        if m.entries() != apply_prefix(seq_rec):
            _record_error(
                report, i,
                f"promoted state is not the seq-{seq_rec} shadow prefix",
            )
        shadow = shadow[:seq_rec]
        acked = {q: v for q, v in acked.items() if q <= seq_rec}
        shipper.announce()  # fence survivors onto the new epoch
        _mix(hasher, "promote", i, primary, epoch, seq_rec)

    def repair_followers() -> None:
        """Restart dead followers and run one anti-entropy pass.  May
        raise SimulatedCrash (primary dies mid-anti-entropy)."""
        count_follower_deaths()
        boot_followers()
        shipper.maintenance()

    for i in range(n_ops):
        if report.promotions and i % 61 == 0:
            # A deposed primary's late frame must bounce: any follower
            # already at the current epoch answers ST_FENCED.
            for n in follower_nodes():
                sess = sessions.get(n)
                if sess is not None and not sess.crashed \
                        and sess.epoch >= epoch:
                    stale = encode_frame(MSG_APPEND, epoch - 1, 1 << 40,
                                         PIN, b"")
                    ack = decode_frame(sess.handle_frame(stale))
                    if ack.status != ST_FENCED:
                        _record_error(
                            report, i,
                            f"stale epoch {epoch - 1} frame not fenced "
                            f"(status {ack.status})",
                        )
                    report.fence_checks += 1
                    break

        key = rng.randrange(key_space).to_bytes(KEY_SIZE, "little")
        do_delete = rng.random() < 0.25
        value = (
            b"" if do_delete else rng.getrandbits(8 * VALUE_SIZE).to_bytes(
                VALUE_SIZE, "little"
            )
        )
        try:
            rc = m.delete(key) if do_delete else m.update(key, value)
        except SimulatedCrash as e:
            # Mutation + WAL append landed before the crash site fired;
            # the op joins the shadow and promotion rules on survival.
            if do_delete:
                shadow.append(("d", key, b""))
            else:
                canonical = m.aspace.read_bytes(m.lookup(key), VALUE_SIZE)
                shadow.append(("u", key, canonical))
            handle_primary_death(i, e.site)
            continue
        if rc == 0:
            if do_delete:
                shadow.append(("d", key, b""))
            else:
                canonical = m.aspace.read_bytes(m.lookup(key), VALUE_SIZE)
                shadow.append(("u", key, canonical))
        _mix(hasher, i, "d" if do_delete else "u", key.hex(), value.hex(), rc)

        try:
            for q, nodes in shipper.commit().items():
                acked[q] = nodes
                report.acked_ops += 1
        except SimulatedCrash as e:
            handle_primary_death(i, e.site)
            continue
        except QuorumLost:
            # Durable locally, NOT acked to the client; the shadow op
            # stays (it is history) but `acked` does not record it.
            report.quorum_losses += 1
        except PrimaryFenced:
            _record_error(report, i, "primary fenced without a promotion")

        if any(
            sessions.get(n) is None or sessions[n].crashed
            for n in follower_nodes()
        ):
            try:
                repair_followers()
            except SimulatedCrash as e:
                handle_primary_death(i, e.site)
                continue

    # Convergence: keep repairing (injection still armed) until every
    # follower's verified watermark reaches the full history, then
    # disarm and check each node's durable bytes recover exactly.
    converged = False
    for attempt in range(80):
        if attempt == 50:
            for site in CRASH_SITES:
                crash.disarm(site)
        try:
            repair_followers()
            store.flush()
            shipper.commit()
            target = store.wal(PIN).seq
            if all(
                sessions.get(n) is not None
                and not sessions[n].crashed
                and sessions[n].watermark(PIN) == target
                for n in follower_nodes()
            ):
                converged = True
                break
        except SimulatedCrash as e:
            handle_primary_death(n_ops, e.site)
        except (QuorumLost, PrimaryFenced):
            pass
    if not converged:
        _record_error(report, n_ops, "replica set failed to converge")
    else:
        target = len(shadow)
        want = apply_prefix(target)
        for n in range(n_nodes):
            fstore = DurableStore(storage=node_storage[n])
            fk = Kernel()
            try:
                fm, frep = fstore.recover_map(PIN, fk.aspace, fk.vmalloc)
            except Exception as exc:
                _record_error(report, n_ops, f"node {n} unrecoverable: {exc}")
                continue
            if frep.recovered_seq != target:
                _record_error(
                    report, n_ops,
                    f"node {n} converged to seq {frep.recovered_seq}, "
                    f"expected {target}",
                )
            elif fm.entries() != want:
                _record_error(
                    report, n_ops, f"node {n} state diverges at seq {target}"
                )

    count_follower_deaths()
    report.deaths = crash.total_crashes()
    report.sites_crashed = tuple(sorted(crash.sites_crashed()))
    report.epoch = epoch
    total_ship.merge(shipper.stats)
    report.resyncs = total_ship.resyncs
    report.snapshots_shipped = total_ship.snapshots_shipped
    for site, ordinal in crash.log:
        _mix(hasher, "crashlog", site, ordinal)
    report.digest = hasher.hexdigest()
    return report


# ---------------------------------------------------------------------------
# Fleet control plane (repro.fleet): migration + rollout crash fuzz
# ---------------------------------------------------------------------------

DEFAULT_FLEET_RATES = {
    # live-migration crash sites (source image cut, target install,
    # tail rounds, and the paused cutover window)
    "migrate.snapshot": 0.10,
    "migrate.install": 0.10,
    "migrate.tail": 0.08,
    "migrate.cutover": 0.08,
    # canary-rollout crash sites (swap, window, promote sweep, rollback)
    "rollout.load": 0.15,
    "rollout.window": 0.05,
    "rollout.promote": 0.12,
    "rollout.rollback": 0.20,
    # recovery itself stays crash-tested while shards rebuild
    "recovery.replay": 0.001,
}


@dataclass
class FleetChaosReport:
    """Outcome of one fleet-control-plane fuzz run."""

    seed: int
    n_ops: int
    digest: str = ""
    deaths: int = 0
    sites_crashed: tuple = ()
    migration_deaths: int = 0
    rollout_deaths: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    aborted_migrations: int = 0
    rollouts: int = 0
    promotes: int = 0
    rollbacks: int = 0
    no_datas: int = 0
    aborted_rollouts: int = 0
    recoveries: int = 0
    rescans: int = 0
    shards_final: int = 0
    acked_ops: int = 0
    #: Oracle violations: (op index, description).  Must be empty.
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} ERRORS"
        sites = ",".join(self.sites_crashed) or "-"
        return (
            f"chaos[fleet] seed={self.seed} ops={self.n_ops} "
            f"deaths={self.deaths} ({sites}) "
            f"mig={self.migration_deaths} roll={self.rollout_deaths} "
            f"out={self.scale_outs} in={self.scale_ins} "
            f"rollouts={self.rollouts} promote={self.promotes} "
            f"rollback={self.rollbacks} nodata={self.no_datas} "
            f"rescans={self.rescans} shards={self.shards_final} "
            f"acked={self.acked_ops} digest={self.digest[:16]} {status}"
        )


def run_fleet_campaign(
    seed: int = 0,
    ops: int = 400,
    *,
    n_shards: int = 2,
    n_keys: int = 512,
    report: FleetChaosReport | None = None,
) -> FleetChaosReport:
    """Seeded crash-point fuzz over the fleet control plane.

    An inline fleet (no threads, no sockets — every shard a full
    durable memcached service over its own MemStorage "disk") serves a
    seeded SET/GET stream while the campaign drives the real fleet
    machinery against it: scale-outs and scale-ins through
    :class:`~repro.fleet.migrate.SegmentMigration`, canary rollouts of
    good and known-flaky artifacts judged by the real
    :class:`~repro.fleet.rollout.CanaryJudge`.  A
    :class:`~repro.sim.faults.CrashPlan` kills the migration source or
    target and the canary shard at every fleet crash site; each death
    is followed by real crash recovery from the victim's durable state.

    Oracles, checked after every event and every death:

    * **acked writes preserved** — every SET that was acknowledged
      reads back bit-identical through the current ring, across
      migrations, cutovers, aborted events and shard deaths;
    * **misses are honest** — a key never acked never reads back;
    * **rollout safety** — a flaky artifact is never promoted
      fleet-wide, and a clean artifact is never rolled back.
    """
    import random as _random

    from repro.apps.memcached import protocol as P
    from repro.apps.memcached.durable_ext import (
        build_durable_memcached_program,
    )
    from repro.errors import SimulatedCrash
    from repro.fleet.migrate import SegmentMigration, inline_call
    from repro.fleet.rollout import (
        NO_DATA,
        PROMOTE,
        ROLLBACK,
        CanaryJudge,
        CanaryReading,
    )
    from repro.fleet.spec import CanaryPolicy
    from repro.net.service import DurableMemcachedService
    from repro.net.shard import ConsistentHashRing
    from repro.sim.faults import CrashPlan
    from repro.state.storage import MemStorage
    from repro.state.store import DurableStore

    report = report or FleetChaosReport(seed=seed, n_ops=ops)
    rng = _random.Random(f"fleetchaos:{seed}")
    hasher = hashlib.sha256()
    crash = CrashPlan(seed, rates=dict(DEFAULT_FLEET_RATES)).build()
    PIN = "memcached/cache"

    def builder_for(version: str):
        if version == "stable":
            return build_durable_memcached_program
        kind, _, num = version.partition("-")
        tag = 16 + int(num)
        mask = 0x03 if kind == "flaky" else None
        return lambda cache: build_durable_memcached_program(
            cache, f"durable-memcached-{version}", tag=tag, drop_mask=mask
        )

    shards: dict[int, dict] = {}
    versions: dict[int, str] = {}
    state = {"stable": "stable"}
    quarantined: set[str] = set()

    def build_svc(sid: int):
        """(Re)incarnate a shard's process over its surviving disk,
        retrying through injected recovery deaths."""
        attempts = 0
        while True:
            try:
                store = DurableStore(
                    storage=shards[sid]["storage"], crash=crash
                )
                return DurableMemcachedService(
                    store=store,
                    pin=PIN,
                    capacity=2048,
                    program_builder=builder_for(versions[sid]),
                )
            except SimulatedCrash:
                shards[sid]["storage"].crash()
                report.recoveries += 1
                attempts += 1
                if attempts >= 25:
                    crash.disarm("recovery.replay")

    def kill(sid: int) -> None:
        shards[sid]["svc"].store.crash_volatile()
        shards[sid]["svc"] = build_svc(sid)
        report.recoveries += 1

    for sid in range(n_shards):
        shards[sid] = {"storage": MemStorage()}
        versions[sid] = "stable"
        shards[sid]["svc"] = build_svc(sid)
    ring = ConsistentHashRing(sorted(shards))
    next_sid = n_shards
    vcounter = 0
    shadow: dict[int, int] = {}
    next_val = [1]
    #: While a flaky canary window is open: (canary sid, drop mask).
    flaky_window = [None]

    def tolerated_drop(sid: int, key_id: int) -> bool:
        fw = flaky_window[0]
        return fw is not None and fw[0] == sid and (key_id & fw[1]) == 0

    def do_request(i: int, key_id: int, set_val=None) -> None:
        sid = ring.shard_of(key_id)
        svc = shards[sid]["svc"]
        payload = (
            P.encode_set(key_id, set_val)
            if set_val is not None
            else P.encode_get(key_id)
        )
        reply, path = svc.ingress(payload, 0)
        _mix(hasher, "req", i, sid, key_id, set_val, path)
        if reply is None:
            if not tolerated_drop(sid, key_id):
                _record_error(
                    report, i,
                    f"request dropped outside a flaky window "
                    f"(shard {sid}, key {key_id}, path {path})",
                )
            return
        hit, value = P.decode_reply(reply)
        if set_val is not None:
            if hit:
                shadow[key_id] = set_val
                report.acked_ops += 1
            return
        expected = shadow.get(key_id)
        if expected is None:
            if hit:
                _record_error(
                    report, i, f"phantom hit for never-acked key {key_id}"
                )
        elif not hit or value != expected:
            _record_error(
                report, i,
                f"acked write lost: key {key_id} expected {expected}, "
                f"got hit={hit} value={value}",
            )

    def traffic(i: int, n: int) -> None:
        for _ in range(n):
            k = rng.randrange(n_keys)
            if rng.random() < 0.5:
                v = next_val[0]
                next_val[0] += 1
                do_request(i, k, set_val=v)
            else:
                do_request(i, k)

    def verify_all(i: int, ctx: str) -> None:
        for k in sorted(shadow):
            sid = ring.shard_of(k)
            reply, _ = shards[sid]["svc"].ingress(P.encode_get(k), 0)
            if reply is None:
                if tolerated_drop(sid, k):
                    continue
                _record_error(
                    report, i, f"[{ctx}] no reply for acked key {k}"
                )
                continue
            hit, value = P.decode_reply(reply)
            if not hit or value != shadow[k]:
                _record_error(
                    report, i,
                    f"[{ctx}] acked write lost: key {k} expected "
                    f"{shadow[k]}, got hit={hit} value={value}",
                )

    def victim_of(site: str, cur: dict) -> int:
        return cur["src"] if site == "migrate.snapshot" else cur["dst"]

    def run_migrations(i, mig_plan, new_ring, *, cleanup_sources) -> bool:
        """One attempt at a full rebalance; False -> a death aborted it
        (the victim was killed + recovered, the ring is unchanged)."""
        cur = {"src": None, "dst": None}
        migs = []
        try:
            for src, dst, moved in mig_plan:
                cur["src"], cur["dst"] = src, dst
                mig = SegmentMigration(
                    inline_call(shards[src]["svc"]),
                    inline_call(shards[dst]["svc"]),
                    pin=PIN,
                    moved=moved,
                    crash=crash,
                )
                migs.append((src, dst, mig))
                mig.bulk_install()
            # Writes keep landing while the image ships: these become
            # the WAL tail the catch-up rounds must drain.
            traffic(i, 12)
            if rng.random() < 0.3:
                # Source compaction mid-handoff: snapshot + WAL reset
                # on a source, forcing the sequence-gap rescan path.
                src = mig_plan[0][0]
                shards[src]["svc"].store.snapshot(PIN)
            for src, dst, mig in migs:
                cur["src"], cur["dst"] = src, dst
                mig.catch_up()
            traffic(i, 8)
            # Inline "pause": the driver is the only client, so simply
            # not sending is the quiesced router.
            for src, dst, mig in migs:
                cur["src"], cur["dst"] = src, dst
                mig.final_tail()
        except SimulatedCrash as exc:
            site = str(exc.args[0]) if exc.args else "?"
            _mix(hasher, "death", i, site, cur["src"], cur["dst"])
            kill(victim_of(site, cur))
            return False
        # Atomic cutover.
        ring.__dict__.update(new_ring.__dict__)
        report.rescans += sum(m.report.rescans for _, _, m in migs)
        if cleanup_sources:
            for src, dst, mig in migs:
                mig.cleanup_source()
        return True

    def event_scale_out(i) -> None:
        sid = next_sid_holder[0]
        next_sid_holder[0] += 1
        shards[sid] = {"storage": MemStorage()}
        versions[sid] = state["stable"]
        shards[sid]["svc"] = build_svc(sid)
        new_ring = ring.copy()
        new_ring.add_node(sid)
        moved = lambda kid, r=new_ring, t=sid: r.shard_of(kid) == t
        plan_ = [(src, sid, moved) for src in ring.nodes]
        for _ in range(10):
            if run_migrations(i, plan_, new_ring, cleanup_sources=True):
                report.scale_outs += 1
                return
        # Could not complete: the new shard never joined the ring, so
        # dropping it wholesale is invisible to clients.
        shards.pop(sid)
        versions.pop(sid)
        report.aborted_migrations += 1

    def event_scale_in(i) -> None:
        sid = rng.choice(ring.nodes)
        new_ring = ring.copy()
        new_ring.remove_node(sid)
        plan_ = [
            (sid, t, lambda kid, r=new_ring, t=t: r.shard_of(kid) == t)
            for t in new_ring.nodes
        ]
        for _ in range(10):
            if run_migrations(i, plan_, new_ring, cleanup_sources=False):
                shards.pop(sid)
                versions.pop(sid)
                report.scale_ins += 1
                return
        report.aborted_migrations += 1

    judge = CanaryJudge(CanaryPolicy(min_requests=1, fault_margin=0.01))

    def reading(sid) -> CanaryReading:
        return CanaryReading.of_stats(shards[sid]["svc"].stats)

    def sum_readings(sids) -> CanaryReading:
        rs = [reading(s) for s in sids]
        return CanaryReading(
            requests=sum(r.requests for r in rs),
            dropped=sum(r.dropped for r in rs),
            quarantines=sum(r.quarantines for r in rs),
            bad_frames=sum(r.bad_frames for r in rs),
        )

    def event_rollout(i) -> None:
        vcounter_holder[0] += 1
        flaky = rng.random() < 0.5
        version = (
            f"flaky-{vcounter_holder[0]}" if flaky else f"good-{vcounter_holder[0]}"
        )
        if version in quarantined:
            return
        report.rollouts += 1
        canary = min(ring.nodes)
        others = [s for s in ring.nodes if s != canary]
        canary0 = reading(canary)
        base0 = sum_readings(others)
        try:
            crash.at("rollout.load")
            shards[canary]["svc"].swap_program(builder_for(version))
        except SimulatedCrash:
            kill(canary)  # comes back serving its previous version
            report.aborted_rollouts += 1
            return
        versions[canary] = version
        if flaky:
            flaky_window[0] = (canary, 0x03)
        try:
            for _ in range(6):
                crash.at("rollout.window")
                traffic(i, 12)
        except SimulatedCrash:
            # The canary died mid-window: recovery restarts it on the
            # last converged (stable) artifact — the rollout aborts
            # with no promotion and no quarantine.
            versions[canary] = state["stable"]
            flaky_window[0] = None
            kill(canary)
            report.aborted_rollouts += 1
            return
        canary_d = reading(canary).delta(canary0)
        base_d = sum_readings(others).delta(base0)
        verdict = judge.judge(canary_d, base_d)
        _mix(hasher, "rollout", i, version, verdict,
             canary_d.requests, canary_d.dropped)
        if verdict == ROLLBACK:
            if not flaky:
                _record_error(
                    report, i,
                    f"clean artifact {version} rolled back "
                    f"(canary {canary_d}, baseline {base_d})",
                )
            flaky_window[0] = None
            try:
                crash.at("rollout.rollback")
                shards[canary]["svc"].swap_program(builder_for(state["stable"]))
                versions[canary] = state["stable"]
            except SimulatedCrash:
                versions[canary] = state["stable"]
                kill(canary)  # recovery rebuilds on stable: same outcome
            quarantined.add(version)
            report.rollbacks += 1
        elif verdict == PROMOTE:
            if flaky:
                _record_error(
                    report, i,
                    f"flaky artifact {version} promoted fleet-wide "
                    f"(canary {canary_d}, baseline {base_d})",
                )
            for sid in others:
                try:
                    crash.at("rollout.promote")
                    shards[sid]["svc"].swap_program(builder_for(version))
                    versions[sid] = version
                except SimulatedCrash:
                    # Recovery completes the promote: the rebuilt shard
                    # comes up on the new version.
                    versions[sid] = version
                    kill(sid)
            state["stable"] = version
            flaky_window[0] = None
            report.promotes += 1
        else:  # NO_DATA: neither promote nor roll back (nor quarantine)
            flaky_window[0] = None
            shards[canary]["svc"].swap_program(builder_for(state["stable"]))
            versions[canary] = state["stable"]
            report.no_datas += 1

    next_sid_holder = [next_sid]
    vcounter_holder = [vcounter]

    traffic(0, 40)  # seed the key-space before the first event
    for i in range(1, ops + 1):
        traffic(i, 8)
        if i % 6 == 0:
            n_live = len(ring.nodes)
            choices = ["rollout"]
            if n_live < 5:
                choices.append("out")
            if n_live > 2:
                choices.append("in")
            ev = rng.choice(choices)
            _mix(hasher, "event", i, ev)
            if ev == "out":
                event_scale_out(i)
            elif ev == "in":
                event_scale_in(i)
            else:
                event_rollout(i)
            verify_all(i, ev)

    flaky_window[0] = None
    verify_all(ops + 1, "final")
    report.deaths = crash.total_crashes()
    report.sites_crashed = tuple(sorted(crash.sites_crashed()))
    report.migration_deaths = sum(
        n for s, n in crash.crashes.items() if s.startswith("migrate.")
    )
    report.rollout_deaths = sum(
        n for s, n in crash.crashes.items() if s.startswith("rollout.")
    )
    report.shards_final = len(ring.nodes)
    for site, ordinal in crash.log:
        _mix(hasher, "crashlog", site, ordinal)
    report.digest = hasher.hexdigest()
    return report


# ---------------------------------------------------------------------------
# Verification-service chaos: worker kills mid-exploration
# ---------------------------------------------------------------------------


@dataclass
class VerifyChaosReport:
    """Outcome of one verification-service worker-kill run."""

    seed: int
    n_programs: int
    workers: int = 0
    kills: int = 0
    retries: int = 0
    regions_retried: int = 0
    #: Jobs whose merged analysis differed from the inline verifier.
    mismatches: int = 0
    #: Jobs that came back failed (must be zero: every program admits).
    failures: int = 0
    digest: str = ""
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def describe(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} ERRORS"
        return (
            f"chaos[verify] seed={self.seed} programs={self.n_programs} "
            f"workers={self.workers} kills={self.kills} "
            f"retries={self.retries} regions_retried={self.regions_retried} "
            f"digest={self.digest[:16]} {status}"
        )


def _verify_chaos_program(variant: int):
    """A multi-region program (loop, branch diamond, tail) whose
    analysis depends on ``variant`` — distinct artifacts per job."""
    from repro.ebpf.isa import Reg
    from repro.ebpf.macroasm import MacroAsm
    from repro.ebpf.program import Program

    m = MacroAsm()
    m.mov(Reg.R6, 0)
    m.label("loop")
    m.add(Reg.R6, 1)
    m.jcc("<", Reg.R6, 8 + (variant % 4), "loop")
    m.mov(Reg.R7, variant)
    m.jcc(">", Reg.R6, 4, "hi")
    m.add(Reg.R7, 1)
    m.label("hi")
    m.mov(Reg.R8, 0)
    m.label("loop2")
    m.add(Reg.R8, 2)
    m.jcc("<", Reg.R8, 6, "loop2")
    m.mov(Reg.R0, 0)
    m.exit()
    return Program(f"verify-chaos-{variant}", m.assemble(), hook="bench",
                   heap_size=4096)


def run_verify_campaign(
    seed: int = 0,
    n_programs: int = 12,
    *,
    workers: int = 2,
    profile: str = "default",
) -> VerifyChaosReport:
    """Kill verification workers mid-exploration and check the
    scheduler's story: every killed job is retried (with the kill
    stripped), every retry re-explores from scratch, and every merged
    analysis is *bit-identical* to the inline single-threaded verifier
    — a crashed worker's partial progress is never admitted.
    """
    import random

    from repro.ebpf.verifier import Verifier
    from repro.verify import VerificationService, VerifyJob
    from repro.verify.profiles import profile_config

    rng = random.Random(seed)
    config = profile_config(profile)
    report = VerifyChaosReport(seed, n_programs, workers=workers)
    hasher = hashlib.sha256()

    programs = [_verify_chaos_program(v) for v in range(n_programs)]
    jobs = []
    for i, prog in enumerate(programs):
        die = rng.randrange(1, 4) if rng.random() < 0.5 else None
        if die is not None:
            report.kills += 1
        jobs.append(VerifyJob(prog, config, die_after_regions=die))

    svc = VerificationService(workers=workers, poll_s=0.02)
    try:
        outs = svc.submit_batch(jobs)
    finally:
        stats = dict(svc.stats)
        svc.close()
    report.retries = stats["retries"]
    report.regions_retried = stats["regions_retried"]

    for i, (prog, out) in enumerate(zip(programs, outs)):
        if out.error is not None:
            report.failures += 1
            report.errors.append((i, f"job failed: {out.error}"))
            continue
        ref = Verifier(prog, config).verify()
        if out.analysis != ref:
            report.mismatches += 1
            report.errors.append(
                (i, "merged analysis differs from inline verifier")
            )
            continue
        _mix(hasher, "verify", i, sorted(ref.object_tables),
             ref.insns_processed)
    if report.retries < report.kills:
        report.errors.append(
            (-1, f"only {report.retries} retries for {report.kills} kills")
        )
    report.digest = hasher.hexdigest()
    return report


_CAMPAIGNS = {
    "memcached": run_memcached_campaign,
    "redis": run_redis_campaign,
    "datastructures": run_datastructures_campaign,
}


def run_campaign(app: str, *args, **kwargs) -> ChaosReport:
    return _CAMPAIGNS[app](*args, **kwargs)


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description="seeded chaos campaigns")
    ap.add_argument(
        "--apps", nargs="+", default=list(APPS), choices=(*APPS, "none"),
        help='campaign apps; "none" skips app campaigns (recovery-only runs)',
    )
    ap.add_argument("--engines", nargs="+", default=["interp", "threaded"])
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--ops", type=int, default=300)
    ap.add_argument(
        "--recovery", type=int, default=0, metavar="RUNS",
        help="also run RUNS crash-recovery fuzz runs (seeds seed..seed+RUNS-1)",
    )
    ap.add_argument(
        "--recovery-ops", type=int, default=1500,
        help="mutations per recovery fuzz run",
    )
    ap.add_argument(
        "--recovery-dir", default=None, metavar="DIR",
        help="file-backed recovery fuzz under DIR (default: in-memory)",
    )
    ap.add_argument(
        "--min-crashes", type=int, default=0,
        help="fail unless the recovery runs injected at least this many crashes",
    )
    ap.add_argument(
        "--replication", type=int, default=0, metavar="RUNS",
        help="also run RUNS replicated-durability fuzz runs "
             "(seeds seed..seed+RUNS-1, plus one sync_replicas=2 run)",
    )
    ap.add_argument(
        "--replication-ops", type=int, default=1200,
        help="mutations per replication fuzz run",
    )
    ap.add_argument(
        "--min-deaths", type=int, default=0,
        help="fail unless the replication runs injected at least this "
             "many node deaths",
    )
    ap.add_argument(
        "--fleet", type=int, default=0, metavar="RUNS",
        help="also run RUNS fleet-control-plane fuzz runs "
             "(live migration + canary rollouts under crash injection)",
    )
    ap.add_argument(
        "--fleet-ops", type=int, default=150,
        help="event-loop steps per fleet fuzz run",
    )
    ap.add_argument(
        "--min-fleet-deaths", type=int, default=0,
        help="fail unless the fleet runs injected at least this many "
             "shard deaths",
    )
    ap.add_argument(
        "--verify", type=int, default=0, metavar="RUNS",
        help="also run RUNS verification-service worker-kill runs "
             "(seeds seed..seed+RUNS-1)",
    )
    ap.add_argument(
        "--verify-programs", type=int, default=12,
        help="programs per verification-service chaos run",
    )
    args = ap.parse_args(argv)

    failed = False
    for app in [a for a in args.apps if a != "none"]:
        digests = {}
        for engine in args.engines:
            report = run_campaign(app, args.seed, args.ops, engine)
            print(report.describe())
            for idx, msg in report.errors:
                print(f"  op {idx}: {msg}")
            digests[engine] = report.digest
            failed |= not report.ok
        if len(set(digests.values())) > 1:
            print(f"  ENGINE DIVERGENCE in {app}: {digests}")
            failed = True

    total_crashes = 0
    for i in range(args.recovery):
        storage = None
        if args.recovery_dir is not None:
            from repro.state import DirStorage

            storage = DirStorage(f"{args.recovery_dir}/run{i}")
        report = run_recovery_campaign(
            args.seed + i, args.recovery_ops, storage=storage
        )
        print(report.describe())
        for idx, msg in report.errors:
            print(f"  op {idx}: {msg}")
        total_crashes += report.crashes
        failed |= not report.ok
    if args.recovery:
        print(f"recovery fuzz: {total_crashes} injected crashes total")
        if total_crashes < args.min_crashes:
            print(
                f"  INSUFFICIENT CRASH COVERAGE: {total_crashes} < "
                f"{args.min_crashes}"
            )
            failed = True

    total_deaths = 0
    phases_hit: set = set()
    if args.replication:
        runs = [
            (args.seed + i, args.replication_ops, 1)
            for i in range(args.replication)
        ]
        # One quorum-2 leg: every follower outage is then a quorum loss.
        runs.append((args.seed + 99, max(400, args.replication_ops // 2), 2))
        for run_seed, run_ops, k in runs:
            report = run_replication_campaign(
                run_seed, run_ops, sync_replicas=k
            )
            print(report.describe())
            for idx, msg in report.errors:
                print(f"  op {idx}: {msg}")
            total_deaths += report.deaths
            phases_hit |= set(report.sites_crashed)
            failed |= not report.ok
        print(f"replication fuzz: {total_deaths} injected deaths total")
        if total_deaths < args.min_deaths:
            print(
                f"  INSUFFICIENT DEATH COVERAGE: {total_deaths} < "
                f"{args.min_deaths}"
            )
            failed = True
        want_phases = {
            "ship.send", "replica.append", "replica.flush",
            "antientropy.install", "antientropy.send", "promote.recover",
        }
        missing = want_phases - phases_hit
        if missing:
            print(f"  REPLICATION PHASES NOT EXERCISED: {sorted(missing)}")
            failed = True

    fleet_deaths = 0
    fleet_sites: set = set()
    if args.fleet:
        for i in range(args.fleet):
            report = run_fleet_campaign(args.seed + i, args.fleet_ops)
            print(report.describe())
            for idx, msg in report.errors:
                print(f"  op {idx}: {msg}")
            fleet_deaths += report.deaths
            fleet_sites |= set(report.sites_crashed)
            failed |= not report.ok
        print(f"fleet fuzz: {fleet_deaths} injected deaths total")
        if fleet_deaths < args.min_fleet_deaths:
            print(
                f"  INSUFFICIENT FLEET DEATH COVERAGE: {fleet_deaths} < "
                f"{args.min_fleet_deaths}"
            )
            failed = True
        want = {
            "migrate.snapshot", "migrate.install", "migrate.tail",
            "migrate.cutover", "rollout.load", "rollout.window",
            "rollout.promote", "rollout.rollback",
        }
        missing = want - fleet_sites
        if missing:
            print(f"  FLEET PHASES NOT EXERCISED: {sorted(missing)}")
            failed = True

    verify_kills = 0
    if args.verify:
        for i in range(args.verify):
            report = run_verify_campaign(
                args.seed + i, args.verify_programs
            )
            print(report.describe())
            for idx, msg in report.errors:
                print(f"  job {idx}: {msg}")
            verify_kills += report.kills
            failed |= not report.ok
        print(f"verify fuzz: {verify_kills} injected worker kills total")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
