"""Developer tools: the ``kflexctl`` command-line interface."""
