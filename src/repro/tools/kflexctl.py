"""kflexctl — load, inspect and run extensions from the command line.

The workflow a practitioner has with ``bpftool``, over this repo's text
assembly (see :mod:`repro.ebpf.textasm` for the syntax):

.. code-block:: console

    $ python -m repro.tools.kflexctl verify prog.kasm --heap 65536
    $ python -m repro.tools.kflexctl disasm prog.kasm --instrumented
    $ python -m repro.tools.kflexctl run prog.kasm --ctx 5,10 --invoke 3
    $ python -m repro.tools.kflexctl stats prog.kasm --loads 3 --invoke 2

plus the network datapath (:mod:`repro.net`):

.. code-block:: console

    $ python -m repro.tools.kflexctl serve --app memcached --shards 2 --batch 16
    $ python -m repro.tools.kflexctl loadtest --app memcached --clients 8
    $ python -m repro.tools.kflexctl loadtest --batch 16 --open-loop 1.0

and durable state (:mod:`repro.state` — the bpffs analog):

.. code-block:: console

    $ python -m repro.tools.kflexctl pin maps/cache --store /tmp/kflex \\
          --max-entries 1024 --put 1=42 --put 2=43
    $ python -m repro.tools.kflexctl pins --store /tmp/kflex
    $ python -m repro.tools.kflexctl snapshot maps/cache --store /tmp/kflex
    $ python -m repro.tools.kflexctl recover --store /tmp/kflex
    $ python -m repro.tools.kflexctl serve --app memcached --store /tmp/kflex

and replicated durable state (:mod:`repro.state.replication` — WAL
shipping with quorum acks and replica promotion):

.. code-block:: console

    $ python -m repro.tools.kflexctl serve --store /tmp/kflex \\
          --replicas 2 --sync-replicas 1
    $ python -m repro.tools.kflexctl replication --store /tmp/kflex
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.errors import ReproError
from repro.core.runtime import KFlexRuntime
from repro.ebpf.engine import ENGINES
from repro.ebpf.isa import disasm
from repro.ebpf.program import Program, HOOKS
from repro.ebpf.textasm import assemble_text


def _effective_mode(args) -> str:
    """The verifier mode a load will actually run under: the profile's
    resolved ``mode`` wins over ``--mode`` (and validates the profile
    name early, so typos fail before any file parsing)."""
    profile = getattr(args, "profile", "")
    if profile:
        from repro.verify.profiles import resolve_profile

        return resolve_profile(profile).get("mode", "kflex")
    return args.mode


def _read_program(args) -> Program:
    with open(args.file) as f:
        source = f.read()
    insns = assemble_text(source)
    heap = args.heap if _effective_mode(args) == "kflex" else None
    return Program(args.name, insns, hook=args.hook, heap_size=heap)


def _make_verify_service(args):
    """A worker-pool verification service when ``--workers`` asks for
    one; None keeps the serial in-process verifier."""
    workers = getattr(args, "workers", 0)
    if not workers:
        return None
    from repro.verify import VerificationService

    return VerificationService(workers)


def _print_verify_service(svc) -> None:
    d = svc.stats_dict()
    print("verification service:")
    print(f"  workers:             {d['workers']} "
          f"({d['utilization'] * 100:.0f}% busy)")
    print(f"  jobs:                {d['jobs']} "
          f"({d['failures']} rejected, {d['retries']} retries)")
    print(f"  queue depth peak:    {d['queue_depth_peak']}")
    print(f"  regions:             {d['regions_total']} explored, "
          f"{d['regions_reused']} reused "
          f"({d['differential_saved'] * 100:.0f}% differential savings)")


def cmd_verify(args) -> int:
    prog = _read_program(args)
    svc = _make_verify_service(args)
    rt = KFlexRuntime(verify_service=svc)
    mode = _effective_mode(args)
    try:
        ext = rt.load(prog, mode=args.mode, attach=False,
                      perf_mode=args.perf_mode,
                      profile=args.profile or None)
        an = ext.iprog.analysis
        st = ext.iprog.stats
        tag = f"{mode} mode"
        if args.profile:
            tag += f", profile {args.profile}"
        print(f"{args.file}: OK ({tag})")
        print(f"  instructions:        {len(prog.insns)} -> "
              f"{len(ext.iprog.insns)} after instrumentation")
        if an is not None:
            print(f"  verifier effort:     {an.insns_processed} insns processed")
            print(f"  unbounded loops:     {len(an.cp_back_edges)}")
        print(f"  guards:              {st.guards_emitted} emitted "
              f"({st.formation_guards} formation), {st.guards_elided} elided")
        print(f"  cancellation points: {st.cancel_points}")
        print(f"  spilled resources:   {st.spills}")
        if svc is not None:
            _print_verify_service(svc)
    finally:
        if svc is not None:
            svc.close()
    return 0


def cmd_profiles(args) -> int:
    """List the named verifier profiles."""
    from repro.verify.profiles import list_profiles, resolve_profile

    for prof in list_profiles():
        base = f" (inherits {prof.inherit})" if prof.inherit else ""
        print(f"{prof.name}{base}: {prof.description}")
        resolved = resolve_profile(prof.name)
        if resolved:
            fields = ", ".join(f"{k}={v}" for k, v in sorted(resolved.items()))
            print(f"  {fields}")
    return 0


def cmd_disasm(args) -> int:
    prog = _read_program(args)
    if args.instrumented:
        rt = KFlexRuntime()
        ext = rt.load(prog, mode=args.mode, attach=False,
                      perf_mode=args.perf_mode)
        print(disasm(ext.iprog.insns))
    else:
        print(disasm(prog.insns))
    return 0


def cmd_run(args) -> int:
    prog = _read_program(args)
    rt = KFlexRuntime(engine=args.engine)
    ext = rt.load(prog, mode=args.mode, attach=False,
                  perf_mode=args.perf_mode, quantum_units=args.quantum)
    if ext.heap is not None and args.static:
        ext.heap.reserve_static(args.static)
    ctx_vals = [int(v, 0) for v in args.ctx.split(",")] if args.ctx else []
    ctx_vals += [0] * (8 - len(ctx_vals))
    for i in range(args.invoke):
        ctx = rt.make_ctx(0, ctx_vals)
        ret = ext.invoke(ctx)
        line = f"invocation {i + 1}: ret={ret} cost={ext.stats.last_cost_units}"
        if ext.stats.cancellations_by_reason:
            line += f" cancellations={dict(ext.stats.cancellations_by_reason)}"
        print(line)
        if ext.dead:
            print("extension was unloaded by a cancellation")
            break
    return 0


def cmd_stats(args) -> int:
    """Dump the compilation-pipeline statistics of a runtime.

    Loads the program ``--loads`` times (reusing one heap, so repeat
    loads are content-addressed cache hits) and invokes each loaded
    extension ``--invoke`` times, then prints the runtime's per-stage
    timings and cache hit/miss/eviction counters — the observability
    surface a practitioner would scrape from a running KFlex kernel.
    """
    prog = _read_program(args)
    svc = _make_verify_service(args)
    rt = KFlexRuntime(verify_service=svc)
    try:
        heap = None
        if prog.heap_size is not None:
            heap = rt.create_heap(prog.heap_size, name=args.name)
        ctx = rt.make_ctx(0, [0] * 8)
        for _ in range(max(1, args.loads)):
            ext = rt.load(prog, mode=args.mode, attach=False,
                          perf_mode=args.perf_mode, heap=heap,
                          profile=args.profile or None)
            for _ in range(args.invoke):
                ext.invoke(ctx)
                if ext.dead:
                    break
        print(rt.pipeline.format_stats())
        if svc is not None:
            _print_verify_service(svc)
    finally:
        if svc is not None:
            svc.close()
    return 0


# -- durable state (pin / pins / snapshot / recover) ------------------------


def _pack_int(text: str, size: int) -> bytes:
    """CLI ints become fixed-width little-endian map keys/values."""
    return int(text, 0).to_bytes(size, "little")


def cmd_pin(args) -> int:
    """Create a map, pin it into the store, optionally seed entries."""
    from repro.ebpf.maps import ArrayMap, HashMap
    from repro.kernel.machine import Kernel
    from repro.state import DurableStore

    store = DurableStore(args.store)
    k = Kernel()
    name = args.path.rsplit("/", 1)[-1]
    if args.map_type == "array":
        m = ArrayMap(k.aspace, k.vmalloc, value_size=args.value_size,
                     max_entries=args.max_entries, name=name)
    else:
        m = HashMap(k.aspace, k.vmalloc, key_size=args.key_size,
                    value_size=args.value_size,
                    max_entries=args.max_entries, name=name)
    store.attach(args.path, m)
    written = 0
    for spec in args.put:
        key_text, sep, val_text = spec.partition("=")
        if not sep:
            print(f"error: --put wants KEY=VALUE, got {spec!r}",
                  file=sys.stderr)
            return 1
        rc = m.update(_pack_int(key_text, m.key_size),
                      _pack_int(val_text, m.value_size))
        if rc != 0:
            print(f"error: put {spec!r} failed (rc={rc})", file=sys.stderr)
            return 1
        written += 1
    store.flush()
    store.close()
    print(f"pinned {args.path}: {args.map_type} map, "
          f"{args.max_entries} slots, {written} entries written")
    return 0


def cmd_pins(args) -> int:
    """List every pin in the store with its recovered state."""
    from repro.kernel.machine import Kernel
    from repro.state import DurableStore

    store = DurableStore(args.store)
    pins = store.pins()
    if not pins:
        print("no pins")
        return 0
    k = Kernel()
    for pin in pins:
        _m, rec = store.recover_map(pin, k.aspace, k.vmalloc)
        line = (f"{pin}: seq {rec.recovered_seq} "
                f"(snapshot {rec.snapshot_seq} + {rec.replayed} replayed), "
                f"{rec.entries} entries")
        if rec.torn:
            line += f", torn WAL repaired ({rec.torn}, " \
                    f"{rec.discarded_bytes}B discarded)"
        print(line)
    return 0


def cmd_snapshot(args) -> int:
    """Force a compacting snapshot of one pin (recover, then compact)."""
    from repro.kernel.machine import Kernel
    from repro.state import DurableStore

    store = DurableStore(args.store)
    k = Kernel()
    _m, rec = store.recover_map(args.path, k.aspace, k.vmalloc)
    seq = store.snapshot(args.path)
    store.close()
    print(f"snapshot {args.path}: seq {seq}, {rec.entries} entries, "
          f"WAL compacted")
    return 0


def cmd_recover(args) -> int:
    """Recover every pin (or one) and report what survived."""
    from repro.kernel.machine import Kernel
    from repro.state import DurableStore

    store = DurableStore(args.store)
    pins = [args.pin] if args.pin else store.pins()
    if not pins:
        print("nothing to recover")
        return 0
    k = Kernel()
    clean = True
    for pin in pins:
        _m, rec = store.recover_map(pin, k.aspace, k.vmalloc)
        status = "clean" if rec.torn is None else f"torn ({rec.torn})"
        if rec.torn is not None or rec.snapshots_discarded:
            clean = False
        print(f"{pin}: seq {rec.recovered_seq} "
              f"(snapshot {rec.snapshot_seq} + {rec.replayed} replayed), "
              f"{rec.entries} entries, {status}"
              + (f", {rec.snapshots_discarded} corrupt snapshot(s) skipped"
                 if rec.snapshots_discarded else ""))
    print("recovery " + ("clean" if clean else
                         "completed with crash damage repaired"))
    return 0


def _net_service_factory(args):
    """Per-shard service builder for serve/loadtest (late import: the
    file-based subcommands should not pay for the net package)."""
    store_dir = getattr(args, "store", "")
    fuse = not getattr(args, "no_fuse", False)
    profile = getattr(args, "profile", "")
    if profile:
        from repro.verify.profiles import resolve_profile

        resolve_profile(profile)  # fail fast on unknown names
        if not store_dir:
            raise ReproError(
                "--profile currently applies to durable (--store) "
                "serving only"
            )
    if store_dir:
        if args.app != "memcached":
            raise ReproError(
                "--store currently serves the durable memcached app only"
            )
        from repro.net.service import DurableMemcachedService
        from repro.state import DurableStore

        def durable_factory(shard_id: int):
            # Per-shard subdirectory: each shard owns its pin, so a
            # crashed shard's replacement recovers exactly its state.
            return DurableMemcachedService(
                KFlexRuntime(engine=args.engine, fuse=fuse),
                store=DurableStore(f"{store_dir}/shard{shard_id}"),
                verify_profile=profile,
            )

        return durable_factory

    from repro.net import build_service

    extra = {}
    if args.app == "l4lb":
        extra["n_backends"] = getattr(args, "backends", 3)

    def factory(shard_id: int):
        return build_service(
            args.app, fallback=args.fallback, engine=args.engine, fuse=fuse,
            **extra,
        )

    return factory


def _net_workload(app: str, keys: int, set_every: int):
    """Deterministic GET/SET(/ZADD) mix keyed per (client, seq)."""
    if app == "memcached":
        from repro.apps.memcached import protocol as P

        def workload(cid, seq):
            key = (cid * 7919 + seq) % keys
            if seq % set_every == 0:
                return key, P.encode_set(key, cid * 100_000 + seq)
            return key, P.encode_get(key)

        def matcher(req, rep):
            return len(rep) == P.PKT_SIZE and rep[8:40] == req[8:40]

        return workload, matcher
    if app == "redis":
        from repro.apps.redis import protocol as RP

        def workload(cid, seq):
            key = (cid * 7919 + seq) % keys
            if seq % set_every == 0:
                return key, RP.encode_set(key, cid * 100_000 + seq)
            if seq % set_every == 1:
                return key, RP.encode_zadd(key + keys, seq, cid)
            return key, RP.encode_get(key)

        return workload, None
    if app in ("ratelimit", "l4lb"):
        # Memcached traffic inside the app's 8-byte envelope.  Each
        # client is one source id (shedder) / one flow id (balancer);
        # replies come back as bare memcached packets, so the matcher
        # compares the key echo against the *inner* request.
        from repro.apps.memcached import protocol as P

        if app == "ratelimit":
            from repro.apps.ratelimit import wrap
        else:
            from repro.apps.l4lb import wrap

        def workload(cid, seq):
            key = (cid * 7919 + seq) % keys
            if seq % set_every == 0:
                inner = P.encode_set(key, cid * 100_000 + seq)
            else:
                inner = P.encode_get(key)
            return key, wrap(cid + 1, inner)

        hdr = 8

        def matcher(req, rep):
            return (len(rep) == P.PKT_SIZE
                    and rep[8:40] == req[hdr + 8:hdr + 40])

        return workload, matcher
    raise ValueError(f"unknown app {app!r}")


def _print_net_summary(stats, report, shed_sources=None) -> None:
    print(f"  requests:       {stats.requests}")
    print(f"  kernel fast path: {stats.kernel_tx}")
    print(f"  userspace path: {stats.userspace_pass}")
    print(f"  dropped:        {stats.dropped}  bad frames: {stats.bad_frames}")
    print(f"  quarantines:    {stats.quarantines}  "
          f"readmissions: {stats.readmissions}")
    if shed_sources:
        top = ", ".join(f"{src}={count}" for src, count in shed_sources)
        print(f"  shed by source: {top}")
    print(f"  quiescence:     sock_refs={report['sock_refs']} "
          f"held_locks={report['held_locks']}")


def _serve_replicated(args) -> int:
    """TCP front over replica sets: each shard is one primary plus N
    follower nodes with their own store roots; every acked SET waits
    for ``--sync-replicas`` follower acks, and a primary death promotes
    the most-caught-up follower behind the router."""
    from repro.apps.memcached import protocol as P
    from repro.net import TcpDatapath
    from repro.net.replica import ReplicatedFailover, ReplicatedShard
    from repro.net.shard import ConsistentHashRing, ShardRouterService

    if not args.store:
        raise ReproError(
            "--replicas requires --store (replication ships the durable WAL)"
        )
    if args.app != "memcached":
        raise ReproError(
            "--replicas currently serves the durable memcached app only"
        )

    async def run() -> int:
        loop = asyncio.get_running_loop()
        sets = [
            ReplicatedShard(
                i, f"{args.store}/shard{i}",
                n_replicas=args.replicas,
                sync_replicas=args.sync_replicas,
                engine=args.engine,
            )
            for i in range(args.shards)
        ]
        workers = []
        for rset in sets:
            await loop.run_in_executor(None, rset.start_followers)
            w = rset.build_primary()
            w.start()
            await loop.run_in_executor(None, w.wait_ready)
            workers.append(w)
        failover = ReplicatedFailover(workers, sets)
        ring = ConsistentHashRing(args.shards)
        router = ShardRouterService(
            workers, ring, lambda p: P.decode_request(p)[1],
            failover=failover,
            attempt_timeout=args.attempt_timeout or None,
        )
        front = await TcpDatapath(router).start()
        print(f"serving replicated {args.app} on TCP port {front.port} "
              f"({args.shards} shard(s) x (1 primary + {args.replicas} "
              f"follower(s)), quorum k={args.sync_replicas}, "
              f"store {args.store})")
        sys.stdout.flush()
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        tele = failover.telemetry()
        await front.stop()
        for w in failover.workers:
            await loop.run_in_executor(None, w.shutdown)
        for rset in sets:
            await loop.run_in_executor(None, rset.stop)
        print("server stopped")
        print(f"  promotions:     {failover.promotions}  "
              f"epochs: {tele['epochs']}")
        print(f"  failover:       attempts={tele['attempts']} "
              f"give_ups={tele['give_ups']} restarts={tele['restarts']}")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def _node_pin_status(storage, pin: str) -> tuple[int, int, bool]:
    """(local_seq, verified_watermark, clean) for one pin on one node.

    ``local_seq`` counts every durable byte (snapshot base + contiguous
    WAL prefix) regardless of epoch; ``verified`` is what the node
    would *ack* — zero while dirty, i.e. until anti-entropy re-bases it
    under the current epoch."""
    from repro.state.replication import ReplicaSession
    from repro.state.snapshot import snapshot_seq
    from repro.state.wal import scan_wal

    base = 0
    for name in storage.list(pin + "/"):
        s = snapshot_seq(name)
        if s is not None:
            base = max(base, s)
    records, _good, _torn = scan_wal(storage.read(f"{pin}/wal") or b"")
    seq = base
    for rec in records:
        if rec.seq <= seq:
            continue
        if rec.seq != seq + 1:
            break
        seq = rec.seq
    session = ReplicaSession(storage)
    return seq, session.watermark(pin), session.clean(pin)


def cmd_replication(args) -> int:
    """Offline replication status: epochs, watermarks, promotion picks.

    Reads the node storages under ``--store`` directly (the same bytes
    promotion trusts), so it works on a stopped cluster or a crashed
    one — no server required."""
    import os

    from repro.state import DirStorage
    from repro.state.replication import pick_promotee, read_epoch

    root = args.store
    shards = sorted(
        d for d in (os.listdir(root) if os.path.isdir(root) else [])
        if d.startswith("shard")
        and os.path.isdir(os.path.join(root, d, "node0"))
    )
    if not shards:
        print(f"no replicated shards under {root} "
              "(expected shard*/node* store roots)")
        return 1
    for shard in shards:
        shard_root = os.path.join(root, shard)
        nodes = sorted(
            d for d in os.listdir(shard_root) if d.startswith("node")
        )
        storages = {n: DirStorage(os.path.join(shard_root, n))
                    for n in nodes}
        epoch = max(read_epoch(s) for s in storages.values())
        print(f"{shard}: epoch {epoch}, {len(nodes)} nodes")
        pins = sorted({
            p for s in storages.values()
            for name in s.list()
            if "/" in name and not name.startswith("replication/")
            for p in [name.rsplit("/", 1)[0]]
        })
        for pin in pins:
            rows = {}
            for node, storage in storages.items():
                seq, verified, clean = _node_pin_status(storage, pin)
                rows[node] = (seq, verified, clean)
                state = "clean" if clean else "dirty"
                print(f"  {node} (epoch {read_epoch(storage)}) {pin}: "
                      f"seq {seq}, verified {verified} ({state})")
            candidates = {n: v for n, (_s, v, c) in rows.items()
                          if c and v > 0}
            pick = pick_promotee(candidates)
            if pick is not None:
                print(f"  promotion pick for {pin}: {pick} "
                      f"(watermark {candidates[pick]})")
            else:
                print(f"  promotion pick for {pin}: none verified — "
                      f"cold restart from the primary's own disk")
    return 0


# -- fleet control plane (apply / status / rollback) ------------------------


def cmd_fleet_apply(args) -> int:
    """Boot a fleet, converge it onto the spec, optionally keep serving.

    The spec file is the declarative input (see repro.fleet.spec):

    .. code-block:: json

        {"shards": 3, "version": "v2",
         "tenants": {"acme": {"key_lo": 0, "key_hi": 256,
                              "max_inflight": 64}}}
    """
    import json

    from repro.fleet import FleetController, FleetSpec

    with open(args.spec) as f:
        spec = FleetSpec.from_dict(json.load(f))

    async def run() -> int:
        fleet = FleetController(root=args.root)
        await fleet.start(n_shards=args.boot_shards)
        print(f"fleet up on TCP port {fleet.port} "
              f"({args.boot_shards} shard(s), root {args.root})")
        sys.stdout.flush()
        report = await fleet.apply(spec)
        for line in report["actions"] or ["(converged; nothing to do)"]:
            print(f"  {line}")
        for mig in report["migrations"]:
            print(f"  migrated {mig.entries_moved} entries + "
                  f"{mig.tail_records} tail records ({mig.pin})")
        if report["rollout"]:
            r = report["rollout"]
            print(f"  rollout {r['version']}: {r['verdict']}"
                  + (f" ({r['reason']})" if r.get("reason") else ""))
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            elif args.serve:
                await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        await fleet.stop()
        print("fleet stopped; status persisted")
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_fleet_status(args) -> int:
    """Offline fleet status: reads the persisted control-plane state
    under --root (works on a stopped fleet; no server required)."""
    from repro.fleet.controller import read_spec, read_status

    status = read_status(args.root)
    spec = read_spec(args.root)
    if status is None and spec is None:
        print(f"no fleet state under {args.root}")
        return 1
    if spec is not None:
        print(f"desired: {spec.shards} shard(s), version {spec.version}, "
              f"{len(spec.tenants)} tenant(s)")
    if status is not None:
        print(f"observed: ring {status['ring']}, "
              f"topology epoch {status['topology_epoch']}, "
              f"stable {status['stable_version']}")
        for sid, version in sorted(status["versions"].items()):
            print(f"  shard {sid}: {version}")
        if status["quarantined"]:
            print(f"  quarantined: {', '.join(status['quarantined'])}")
        if status["pending_canary"]:
            pc = status["pending_canary"]
            print(f"  pending canary: {pc['version']} on shard {pc['shard']}")
        sheds = status.get("tenant_sheds", {})
        for name, q in sorted(status.get("tenants", {}).items()):
            print(f"  tenant {name}: keys [{q['key_lo']}, {q['key_hi']}), "
                  f"max_inflight {q['max_inflight']}, "
                  f"memory {q['memory_bytes']}, "
                  f"sheds {sheds.get(name, 0)}")
        for line in status.get("last_actions", []):
            print(f"  last: {line}")
    return 0


def cmd_fleet_rollback(args) -> int:
    """Rewrite the persisted spec back to the last known-good version
    and quarantine the bad one; the next apply converges onto it."""
    from repro.fleet.controller import rollback_spec

    out = rollback_spec(args.root, to=args.to or None)
    print(f"rolled back {out['rolled_back']} -> {out['to']}")
    if out["quarantined"]:
        print(f"  quarantined: {', '.join(out['quarantined'])}")
    return 0


def cmd_serve(args) -> int:
    from repro.net import ShardedUdpDatapath

    if getattr(args, "replicas", 0) > 0:
        return _serve_replicated(args)

    async def run() -> int:
        sharded = ShardedUdpDatapath(
            _net_service_factory(args), args.shards, threaded=True,
            batch_size=args.batch, batch_timeout=args.batch_timeout,
        )
        await sharded.start()
        print(f"serving {args.app} on UDP ports "
              f"{','.join(map(str, sharded.ports))} "
              f"({args.shards} shard(s), fallback={args.fallback}, "
              f"batch={args.batch})")
        sys.stdout.flush()
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        stats = sharded.merged_service_stats()
        shed_sources = sharded.merged_shed_sources(5)
        report = await sharded.stop()
        print("server stopped")
        _print_net_summary(stats, report, shed_sources)
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_loadtest(args) -> int:
    from repro.net import (
        ConsistentHashRing,
        OpenLoopUdpGenerator,
        ShardedUdpDatapath,
        UdpLoadGenerator,
    )

    workload, matcher = _net_workload(args.app, args.keys, args.set_every)

    async def run() -> int:
        sharded = None
        if args.ports:
            ports = [int(p) for p in args.ports.split(",")]
            ring = ConsistentHashRing(len(ports))
        else:
            sharded = ShardedUdpDatapath(
                _net_service_factory(args), args.shards, threaded=True,
                batch_size=args.batch, batch_timeout=args.batch_timeout,
            )
            await sharded.start()
            ports, ring = sharded.ports, sharded.ring
        if args.open_loop:
            gen = OpenLoopUdpGenerator(
                ports,
                workload,
                ring=ring,
                duration_s=args.open_loop,
                window=args.window,
                burst=args.burst,
            )
            res = await gen.run()
            print(f"loadtest {args.app} (open loop): "
                  f"{res.replies}/{res.sent} replies, "
                  f"loss {res.loss:.1%}")
            print(f"  goodput:        {res.pps:,.0f} pps "
                  f"({res.duration_s:.2f}s offered, window {args.window}, "
                  f"burst {args.burst})")
            failures = 0
        else:
            gen = UdpLoadGenerator(
                ports,
                workload,
                ring=ring,
                n_clients=args.clients,
                requests_per_client=args.requests,
                matcher=matcher,
            )
            res = await gen.run()
            lat = res.latency
            print(f"loadtest {args.app}: "
                  f"{res.replies}/{res.requests} replies, "
                  f"{res.failures} failures, {res.retries} retries")
            print(f"  throughput:     {res.throughput_rps:,.0f} req/s "
                  f"({res.duration_s:.2f}s, {args.clients} clients)")
            if len(lat):
                print(f"  latency us:     p50={lat.percentile(50) / 1e3:.1f} "
                      f"p95={lat.percentile(95) / 1e3:.1f} "
                      f"p99={lat.percentile(99) / 1e3:.1f}")
            failures = res.failures
        if sharded is not None:
            stats = sharded.merged_service_stats()
            if args.batch > 1:
                dstats = sharded.merged_datapath_stats()
                print(f"  ingress batches: {dstats.batches} "
                      f"(mean size {dstats.mean_batch():.1f})")
            shed_sources = sharded.merged_shed_sources(5)
            report = await sharded.stop()
            _print_net_summary(stats, report, shed_sources)
        return 1 if failures else 0

    return asyncio.run(run())


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="kflexctl",
                                description=__doc__.splitlines()[0])
    sub = p.add_subparsers(dest="cmd", required=True)
    for name, fn in (("verify", cmd_verify), ("disasm", cmd_disasm),
                     ("run", cmd_run), ("stats", cmd_stats)):
        s = sub.add_parser(name)
        s.add_argument("file", help="text-assembly source (.kasm)")
        s.add_argument("--mode", choices=("kflex", "ebpf"), default="kflex")
        s.add_argument("--hook", choices=sorted(HOOKS), default="bench")
        s.add_argument("--heap", type=lambda v: int(v, 0), default=1 << 16,
                       help="extension heap size in bytes (kflex mode)")
        s.add_argument("--name", default="prog")
        s.add_argument("--perf-mode", action="store_true",
                       help="enable performance mode (unsanitised reads)")
        s.add_argument("--profile", default="",
                       help="named verifier profile (see `kflexctl "
                            "profiles`); overrides --mode/--perf-mode")
        s.set_defaults(fn=fn)
        if name in ("verify", "stats"):
            s.add_argument("--workers", type=int, default=0,
                           help="verification worker processes "
                                "(0 = in-process serial)")
        if name == "disasm":
            s.add_argument("--instrumented", action="store_true",
                           help="show post-Kie bytecode")
        if name == "run":
            s.add_argument("--ctx", default="",
                           help="comma-separated context values")
            s.add_argument("--invoke", type=int, default=1)
            s.add_argument("--quantum", type=int, default=1_000_000,
                           help="watchdog quantum in cost units")
            s.add_argument("--static", type=lambda v: int(v, 0), default=256,
                           help="static heap bytes to populate at load")
            s.add_argument("--engine", choices=sorted(ENGINES), default=None,
                           help="execution engine (default: threaded)")
        if name == "stats":
            s.add_argument("--loads", type=int, default=2,
                           help="times to load the program (repeats hit "
                                "the program cache; default 2 shows one "
                                "cold and one warm load)")
            s.add_argument("--invoke", type=int, default=2,
                           help="invocations per load (exercises engine "
                                "translation and pool reuse)")

    sp = sub.add_parser("profiles",
                        help="list named verifier profiles")
    sp.set_defaults(fn=cmd_profiles)

    for name, fn in (("serve", cmd_serve), ("loadtest", cmd_loadtest)):
        s = sub.add_parser(name)
        s.add_argument("--app",
                       choices=("memcached", "redis", "ratelimit", "l4lb"),
                       default="memcached",
                       help="ratelimit = token-bucket/SYN shedder over a "
                            "durable memcached; l4lb = Katran-style "
                            "balancer over --backends durable memcacheds")
        s.add_argument("--backends", type=int, default=3,
                       help="backend services behind the l4lb app "
                            "(default 3)")
        s.add_argument("--shards", type=int, default=1,
                       help="SO_REUSEPORT-style shard workers, one "
                            "runtime + pinned CPU each")
        s.add_argument("--engine", choices=sorted(ENGINES), default=None,
                       help="execution engine (default: threaded)")
        s.add_argument("--fallback",
                       choices=("supervised", "userspace", "none"),
                       default="supervised",
                       help="degradation story: supervised = kernel fast "
                            "path + §3.4 userspace fallback; userspace = "
                            "no extension; none = extension only")
        s.set_defaults(fn=fn)
        s.add_argument("--store", default="",
                       help="durable-state directory: shards persist "
                            "their maps (WAL + snapshots) under "
                            "DIR/shard{i} and recover them on restart "
                            "(memcached only)")
        s.add_argument("--batch", type=int, default=1,
                       help="ingress batch size: admitted datagrams "
                            "accumulate until this many are pending "
                            "(or --batch-timeout elapses) and drain "
                            "through one engine entry (default 1 = "
                            "unbatched)")
        s.add_argument("--batch-timeout", type=float, default=0.002,
                       help="ingress batching time budget in seconds "
                            "(default 0.002)")
        s.add_argument("--profile", default="",
                       help="verifier profile shards verify programs "
                            "under (durable --store serving only)")
        s.add_argument("--no-fuse", action="store_true",
                       help="disable superinstruction fusion in the "
                            "execution engine")
        if name == "serve":
            s.add_argument("--duration", type=float, default=0.0,
                           help="seconds to serve (0 = until Ctrl-C)")
            s.add_argument("--replicas", type=int, default=0,
                           help="follower replicas per shard: serve the "
                                "durable memcached app over TCP with "
                                "every journaled write shipped to this "
                                "many follower nodes (requires --store; "
                                "0 = no replication)")
            s.add_argument("--sync-replicas", type=int, default=1,
                           help="write quorum: follower acks required "
                                "before the client's reply is released "
                                "(default 1)")
            s.add_argument("--attempt-timeout", type=float, default=0.0,
                           help="per-attempt router deadline in seconds: "
                                "a request outstanding this long is "
                                "treated as a wedged worker and triggers "
                                "failover (0 = off; opt in with care — "
                                "queueing delay under a load spike will "
                                "also trip it)")
        else:
            s.add_argument("--ports", default="",
                           help="comma-separated UDP ports of a running "
                                "server (default: spin up a local one)")
            s.add_argument("--clients", type=int, default=4)
            s.add_argument("--requests", type=int, default=256,
                           help="requests per client (closed loop)")
            s.add_argument("--keys", type=int, default=512,
                           help="key-space size")
            s.add_argument("--set-every", type=int, default=4,
                           help="every Nth request per client is a "
                                "SET (plus a ZADD for redis)")
            s.add_argument("--open-loop", type=float, default=0.0,
                           metavar="SECONDS",
                           help="measure open-loop pps for this many "
                                "seconds instead of the closed loop "
                                "(burst offered load; the mode where "
                                "--batch pays off)")
            s.add_argument("--window", type=int, default=128,
                           help="open loop: max outstanding requests")
            s.add_argument("--burst", type=int, default=16,
                           help="open loop: datagrams per volley")

    # Durable state: the bpffs-analog workflow over a store directory.
    sp = sub.add_parser("pin", help="create a map and pin it durably")
    sp.add_argument("path", help="pin path, e.g. maps/cache")
    sp.add_argument("--store", required=True, help="store directory")
    sp.add_argument("--map-type", choices=("hash", "array"), default="hash")
    sp.add_argument("--key-size", type=int, default=8)
    sp.add_argument("--value-size", type=int, default=8)
    sp.add_argument("--max-entries", type=int, default=1024)
    sp.add_argument("--put", action="append", default=[], metavar="K=V",
                    help="seed an entry (ints, packed little-endian; "
                         "repeatable)")
    sp.set_defaults(fn=cmd_pin)

    sp = sub.add_parser("pins", help="list pins with recovered state")
    sp.add_argument("--store", required=True, help="store directory")
    sp.set_defaults(fn=cmd_pins)

    sp = sub.add_parser("snapshot",
                        help="force a compacting snapshot of one pin")
    sp.add_argument("path", help="pin path")
    sp.add_argument("--store", required=True, help="store directory")
    sp.set_defaults(fn=cmd_snapshot)

    sp = sub.add_parser("recover",
                        help="recover pinned maps, repairing crash damage")
    sp.add_argument("--store", required=True, help="store directory")
    sp.add_argument("--pin", default="", help="recover one pin only")
    sp.set_defaults(fn=cmd_recover)

    sp = sub.add_parser("replication",
                        help="offline replica-set status: epochs, "
                             "watermarks, promotion picks")
    sp.add_argument("--store", required=True,
                    help="replicated store directory (shard*/node* "
                         "roots, as written by serve --replicas)")
    sp.set_defaults(fn=cmd_replication)

    # Fleet control plane: declarative spec -> reconciled live fleet.
    sp = sub.add_parser("fleet",
                        help="fleet control plane: apply a declarative "
                             "spec, inspect status, roll back a version")
    fsub = sp.add_subparsers(dest="fleet_cmd", required=True)

    fa = fsub.add_parser("apply",
                         help="boot a fleet and converge it onto a "
                              "JSON spec (scale, rollout, quotas)")
    fa.add_argument("spec", help="fleet spec JSON file")
    fa.add_argument("--root", required=True,
                    help="fleet root directory (per-shard durable "
                         "stores + persisted control-plane state)")
    fa.add_argument("--boot-shards", type=int, default=2,
                    help="shards to boot before converging (default 2; "
                         "the spec's shard count is reached by live "
                         "migration)")
    fa.add_argument("--duration", type=float, default=0.0,
                    help="seconds to keep serving after convergence")
    fa.add_argument("--serve", action="store_true",
                    help="keep serving until Ctrl-C after convergence")
    fa.set_defaults(fn=cmd_fleet_apply)

    fs = fsub.add_parser("status",
                         help="offline fleet status from the persisted "
                              "control-plane state")
    fs.add_argument("--root", required=True, help="fleet root directory")
    fs.set_defaults(fn=cmd_fleet_status)

    fr = fsub.add_parser("rollback",
                         help="rewrite the desired spec to the last "
                              "known-good version and quarantine the "
                              "bad one")
    fr.add_argument("--root", required=True, help="fleet root directory")
    fr.add_argument("--to", default="",
                    help="explicit version to roll back to (default: "
                         "the persisted stable version)")
    fr.set_defaults(fn=cmd_fleet_rollback)
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
