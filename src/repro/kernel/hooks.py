"""Extension hook points.

Extensions are event handlers attached at kernel hooks (§2): XDP for
raw ingress packets (Memcached, Listing 1), sk_skb for post-transport
payloads (Redis), plus generic bench/tracepoint hooks.  Each hook knows
its default return code, used when a cancelled extension's own return
value is unavailable (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelPanic
from repro.ebpf.program import HOOKS


@dataclass
class HookPoint:
    name: str
    attached: list = field(default_factory=list)  # LoadedExtension objects

    @property
    def default_ret(self) -> int:
        return HOOKS[self.name]["default_ret"]


class HookRegistry:
    def __init__(self):
        self._hooks = {name: HookPoint(name) for name in HOOKS}

    def attach(self, ext) -> None:
        hook = self._hooks.get(ext.program.hook)
        if hook is None:
            raise KernelPanic(f"no such hook {ext.program.hook!r}")
        hook.attached.append(ext)

    def detach(self, ext) -> None:
        hook = self._hooks[ext.program.hook]
        if ext in hook.attached:
            hook.attached.remove(ext)

    def dispatch(self, name: str, ctx_addr: int, cpu: int = 0) -> int:
        """Run the extensions attached at ``name`` in order; the first
        non-default verdict wins (XDP semantics are single-program per
        device in practice; we run the chain for generality)."""
        hook = self._hooks[name]
        ret = hook.default_ret
        for ext in list(hook.attached):
            ret = ext.invoke(ctx_addr, cpu=cpu)
        return ret

    def hook(self, name: str) -> HookPoint:
        return self._hooks[name]
