"""Simulated Linux kernel substrate.

KFlex is implemented inside Linux v6.9 (paper §4); this package stands
in for the kernel facilities it relies on: a paged virtual address
space, the vmalloc arena (with the alignment and guard-page behaviour
of §4.1), extension hook points, a network stack cost model with
refcounted sockets, a thread scheduler with rseq-style time-slice
extension (§4.4), the softlockup watchdog (§4.3), and memcg accounting.
"""

from repro.kernel.addrspace import AddressSpace, PAGE_SIZE
from repro.kernel.vmalloc import VmallocArena

__all__ = ["AddressSpace", "PAGE_SIZE", "VmallocArena"]
