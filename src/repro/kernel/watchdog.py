"""Stall detection for running extensions (§4.3).

KFlex uses Linux's softlockup/hardlockup watchdogs to notice extensions
that exceed their execution quantum, then zeroes the ``*terminate``
cell so the next cancellation point faults.  Here the watchdog is
driven by the interpreter's periodic callback: once an invocation's
accumulated cost passes the quantum, the watchdog fires and arms the
cancellation (zeroing the terminate cell of the extension's heap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default quantum in native-instruction cost units.  The paper's
#: watchdogs run at seconds granularity; for tests and benchmarks we
#: default to ~1 ms of simulated execution (2.3 GHz * 1 ms).
DEFAULT_QUANTUM_UNITS = 2_300_000


@dataclass
class Watchdog:
    quantum_units: int = DEFAULT_QUANTUM_UNITS
    fires: int = 0
    premature_fires: int = 0  # injected (chaos) fires
    #: Optional :class:`repro.sim.faults.FaultInjector` — lets chaos
    #: campaigns model a watchdog firing before the quantum expired.
    injector: object = None
    #: extensions currently being monitored: heap -> armed flag
    _armed: dict = field(default_factory=dict)

    def make_callback(self, heap, aspace):
        """Produce the per-invocation callback the interpreter calls
        every few thousand instructions with the cost so far."""

        def cb(cost_units: int) -> None:
            if self._armed.get(heap):
                return
            fire = cost_units >= self.quantum_units
            if not fire and self.injector is not None \
                    and self.injector.take_wd_fire():
                fire = True
                self.premature_fires += 1
            if fire:
                self._armed[heap] = True
                self.fires += 1
                # Zero the terminate pointer: every back-edge Cp now
                # dereferences NULL and faults (§3.3).
                aspace.write_int(heap.terminate_cell, 0, 8)

        return cb

    def disarm(self, heap, aspace) -> None:
        """Restore the terminate cell after a cancellation completed.

        The paper's policy cancels the extension on *all* CPUs and
        unloads it (§4.3 "Cancellation scope"); re-arming is for tests
        and for the scoped-cancellation extension discussed as future
        work.
        """
        self._armed.pop(heap, None)
        aspace.write_int(heap.terminate_cell, heap.terminate_target, 8)

    def forget(self, heap) -> None:
        """Stop monitoring a heap without touching its memory.

        Called on extension unload so ``_armed`` does not leak an entry
        (and so a new extension over the same heap starts clean); the
        terminate cell is left as-is because the unloading path restores
        it via :meth:`disarm` when appropriate.
        """
        self._armed.pop(heap, None)

    def is_armed(self, heap) -> bool:
        return bool(self._armed.get(heap))

    def monitored(self) -> int:
        """Number of heaps with live ``_armed`` entries (leak check)."""
        return len(self._armed)
