"""Memory-cgroup accounting for extension heaps (§4.1).

Physical memory populated for a heap is charged to the owning
application's memcg, so resource limits on the app also bound what its
kernel extensions can allocate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OutOfMemory
from repro.kernel.addrspace import PAGE_SIZE


@dataclass
class MemCgroup:
    name: str
    limit_bytes: int | None = None
    charged_bytes: int = 0
    peak_bytes: int = 0

    def charge_pages(self, n_pages: int) -> None:
        add = n_pages * PAGE_SIZE
        if self.limit_bytes is not None and self.charged_bytes + add > self.limit_bytes:
            raise OutOfMemory(
                f"memcg {self.name!r}: charge of {add}B exceeds limit "
                f"({self.charged_bytes}/{self.limit_bytes})"
            )
        self.charged_bytes += add
        self.peak_bytes = max(self.peak_bytes, self.charged_bytes)

    def uncharge_pages(self, n_pages: int) -> None:
        self.charged_bytes = max(0, self.charged_bytes - n_pages * PAGE_SIZE)


@dataclass
class CgroupController:
    _groups: dict[str, MemCgroup] = field(default_factory=dict)

    def group(self, name: str, limit_bytes: int | None = None) -> MemCgroup:
        cg = self._groups.get(name)
        if cg is None:
            cg = MemCgroup(name, limit_bytes)
            self._groups[name] = cg
        elif limit_bytes is not None:
            cg.limit_bytes = limit_bytes
        return cg
