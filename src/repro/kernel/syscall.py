"""A ``bpf(2)``-style system-call facade (§4.1).

The paper's user-space workflow goes through the ``bpf(2)`` system
call: create maps and heaps by command, load programs against them,
mmap heap fds, attach to hooks.  This module provides that interface
over the simulated kernel so applications can be written the way a real
KFlex user would write them — fd-based, command-driven — instead of
poking runtime internals.

Commands (mirroring the kernel's ``bpf_cmd`` plus KFlex's additions):

* ``BPF_MAP_CREATE`` / ``BPF_MAP_LOOKUP_ELEM`` / ``BPF_MAP_UPDATE_ELEM``
  / ``BPF_MAP_DELETE_ELEM``
* ``BPF_PROG_LOAD`` (with ``mode`` kflex/ebpf and KFlex options)
* ``BPF_PROG_ATTACH`` / ``BPF_PROG_DETACH``
* ``KFLEX_HEAP_CREATE`` — heaps are map-like objects with an fd (§4.1)
* ``KFLEX_HEAP_MMAP`` — map a heap into "user space" (§3.4)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import LoadError
from repro.core.runtime import KFlexRuntime, LoadedExtension
from repro.core.sharing import SharedHeapView
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.program import Program


class Cmd(Enum):
    BPF_MAP_CREATE = auto()
    BPF_MAP_LOOKUP_ELEM = auto()
    BPF_MAP_UPDATE_ELEM = auto()
    BPF_MAP_DELETE_ELEM = auto()
    BPF_PROG_LOAD = auto()
    BPF_PROG_ATTACH = auto()
    BPF_PROG_DETACH = auto()
    KFLEX_HEAP_CREATE = auto()
    KFLEX_HEAP_MMAP = auto()


#: errno-style results, negative as the kernel returns them.
EINVAL = -22
ENOENT = -2
EBADF = -9


@dataclass
class BpfSyscall:
    """One process's view of the bpf() interface."""

    runtime: KFlexRuntime

    def __post_init__(self):
        self._progs: dict[int, LoadedExtension] = {}
        self._prog_fd = 1000

    # -- dispatch ----------------------------------------------------------

    def __call__(self, cmd: Cmd, **attr):
        handler = getattr(self, f"_do_{cmd.name.lower()}", None)
        if handler is None:
            return EINVAL
        return handler(**attr)

    # -- maps -----------------------------------------------------------------

    def _do_bpf_map_create(self, *, map_type: str, key_size: int = 4,
                           value_size: int = 8, max_entries: int = 1,
                           name: str = "map"):
        kernel = self.runtime.kernel
        if map_type == "hash":
            m = HashMap(kernel.aspace, kernel.vmalloc, key_size=key_size,
                        value_size=value_size, max_entries=max_entries,
                        name=name)
        elif map_type == "array":
            m = ArrayMap(kernel.aspace, kernel.vmalloc,
                         value_size=value_size, max_entries=max_entries,
                         name=name)
        else:
            return EINVAL
        self._maps = getattr(self, "_maps", {})
        self._maps[m.fd] = m
        return m.fd

    def map_by_fd(self, fd: int):
        return getattr(self, "_maps", {}).get(fd)

    def _do_bpf_map_lookup_elem(self, *, map_fd: int, key: bytes):
        m = self.map_by_fd(map_fd)
        if m is None:
            return EBADF
        addr = m.lookup(key)
        if addr == 0:
            return ENOENT
        return self.runtime.kernel.aspace.read_bytes(addr, m.value_size)

    def _do_bpf_map_update_elem(self, *, map_fd: int, key: bytes, value: bytes):
        m = self.map_by_fd(map_fd)
        if m is None:
            return EBADF
        return m.update(key, value)

    def _do_bpf_map_delete_elem(self, *, map_fd: int, key: bytes):
        m = self.map_by_fd(map_fd)
        if m is None:
            return EBADF
        return m.delete(key)

    # -- heaps (§4.1: heaps are eBPF-map-like objects with fds) -----------------

    def _do_kflex_heap_create(self, *, size: int, name: str = "heap",
                              cgroup: str | None = None):
        try:
            heap = self.runtime.create_heap(size, name=name, cgroup=cgroup)
        except LoadError:
            return EINVAL
        return heap.fd

    def heap_by_fd(self, fd: int):
        return self.runtime.heaps.get(fd)

    def _do_kflex_heap_mmap(self, *, heap_fd: int, thread=None):
        """mmap() the heap: returns a SharedHeapView (the user mapping)."""
        heap = self.heap_by_fd(heap_fd)
        if heap is None:
            return EBADF
        thread = thread or self.runtime.kernel.sched.spawn("mmap-user")
        return SharedHeapView(
            heap, self.runtime.locks_for(heap), thread
        )

    # -- programs --------------------------------------------------------------

    def _do_bpf_prog_load(self, *, insns, hook: str = "bench",
                          mode: str = "kflex", heap_fd: int | None = None,
                          map_fds: list | None = None, name: str = "prog",
                          perf_mode: bool = False, share_heap: bool = False,
                          quantum_units: int | None = None):
        maps = {}
        for fd in map_fds or []:
            m = self.map_by_fd(fd)
            if m is None:
                return EBADF
            maps[fd] = m
        heap = self.heap_by_fd(heap_fd) if heap_fd is not None else None
        if heap_fd is not None and heap is None:
            return EBADF
        prog = Program(
            name, list(insns), hook=hook, maps=maps,
            heap_size=heap.size if heap is not None else None,
        )
        ext = self.runtime.load(
            prog, mode=mode, heap=heap, attach=False, perf_mode=perf_mode,
            share_heap=share_heap, quantum_units=quantum_units,
        )
        self._prog_fd += 1
        self._progs[self._prog_fd] = ext
        return self._prog_fd

    def prog_by_fd(self, fd: int) -> LoadedExtension | None:
        return self._progs.get(fd)

    def _do_bpf_prog_attach(self, *, prog_fd: int):
        ext = self._progs.get(prog_fd)
        if ext is None:
            return EBADF
        self.runtime.kernel.hooks.attach(ext)
        return 0

    def _do_bpf_prog_detach(self, *, prog_fd: int):
        ext = self._progs.get(prog_fd)
        if ext is None:
            return EBADF
        self.runtime.kernel.hooks.detach(ext)
        return 0
