"""Thread scheduling with time-slice extension (§3.4, §4.4).

KFlex lets a user-space thread holding a spin lock that an extension
might also take request one temporary time-slice extension (50 us,
Symunix-style) via a counter in its rseq region: incremented on lock
acquisition, decremented on release, so nested locks account correctly.
When the quantum expires while the counter is positive, the scheduler
grants one extension; a thread that still holds the lock after the
extension is forcefully preempted (the non-cooperative case), leaving
waiting extensions to stall and be cancelled.

The discrete-event simulator consumes this policy when computing
contention between the Memcached fast path (in the kernel) and the
user-space GC thread (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default scheduler quantum and the §3.4 extension grant.
QUANTUM_NS = 1_000_000  # 1 ms CFS-ish slice
TIME_SLICE_EXTENSION_NS = 50_000  # 50 us


@dataclass
class RseqRegion:
    """Per-thread restartable-sequences area holding the critical-
    section counter (§4.4)."""

    cs_count: int = 0

    def enter_cs(self) -> None:
        self.cs_count += 1

    def leave_cs(self) -> None:
        if self.cs_count == 0:
            raise ValueError("rseq critical-section counter underflow")
        self.cs_count -= 1

    @property
    def in_cs(self) -> bool:
        return self.cs_count > 0


@dataclass
class UserThread:
    tid: int
    name: str = ""
    rseq: RseqRegion = field(default_factory=RseqRegion)
    #: Set when the scheduler already granted this thread its one
    #: extension for the current slice.
    extension_granted: bool = False
    preempted_in_cs: bool = False


class Scheduler:
    """Quantum accounting for user threads.

    This is *policy* modelling, not an execution engine: the functional
    runtime is single-threaded, and the DES uses `on_quantum_expiry` to
    decide whether a lock holder gets to finish its critical section.
    """

    def __init__(self):
        self._threads: dict[int, UserThread] = {}
        self._next_tid = 1
        self.extensions_granted = 0
        self.forced_preemptions = 0

    def spawn(self, name: str = "") -> UserThread:
        t = UserThread(self._next_tid, name)
        self._next_tid += 1
        self._threads[t.tid] = t
        return t

    def on_quantum_expiry(self, thread: UserThread) -> int:
        """Called when a thread's slice ends.  Returns extra nanoseconds
        granted (0 or TIME_SLICE_EXTENSION_NS)."""
        if thread.rseq.in_cs and not thread.extension_granted:
            thread.extension_granted = True
            self.extensions_granted += 1
            return TIME_SLICE_EXTENSION_NS
        if thread.rseq.in_cs:
            # Non-cooperative: still in the critical section after its
            # extension — forcefully preempted (§4.4).
            thread.preempted_in_cs = True
            self.forced_preemptions += 1
        thread.extension_granted = False
        return 0

    def on_reschedule(self, thread: UserThread) -> None:
        thread.extension_granted = False
        thread.preempted_in_cs = False
