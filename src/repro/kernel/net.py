"""Network objects: packets and refcounted sockets.

Provides what the paper's extensions touch: XDP-level packet buffers
(read via verified direct packet access), and UDP sockets looked up by
``bpf_sk_lookup_udp`` — an *acquiring* helper whose reference must be
released via ``bpf_sk_release`` (Listing 1, §3.3).  Socket refcounts are
the kernel invariant that extension cancellations must restore: tests
assert that a cancelled extension leaves every refcount at its
pre-invocation value.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import KernelPanic
from repro.kernel.addrspace import AddressSpace

#: Where socket objects live in the kernel address space.
SOCK_REGION_BASE = 0xFFFF_8880_0000_0000
SOCK_OBJ_SIZE = 128

#: Per-CPU packet buffer area (one slot per CPU, 4 KB each).
PKT_REGION_BASE = 0xFFFF_8890_0000_0000
PKT_SLOT_SIZE = 4096


class Socket:
    """A kernel socket with a reference count."""

    def __init__(self, addr: int, proto: str, tup: bytes):
        self.addr = addr
        self.proto = proto
        self.tup = tup
        self.refcount = 1  # the owning table's reference
        self.released = False

    def get_ref(self) -> None:
        if self.released:
            raise KernelPanic("get_ref on a destroyed socket")
        self.refcount += 1

    def put_ref(self) -> None:
        self.refcount -= 1
        if self.refcount < 0:
            raise KernelPanic(
                f"socket refcount underflow at {self.addr:#x} — double release"
            )
        if self.refcount == 0:
            self.released = True


@dataclass
class NetStack:
    """Socket table plus per-CPU packet staging buffers."""

    aspace: AddressSpace
    _socks: dict[int, Socket] = field(default_factory=dict)  # addr -> sock
    _by_tuple: dict[bytes, Socket] = field(default_factory=dict)
    _next_sock: int = SOCK_REGION_BASE
    _pkt_slots: dict[int, int] = field(default_factory=dict)  # cpu -> base

    def __post_init__(self):
        # One region backs all socket objects; extensions may read
        # socket fields through verified PTR_TO_SOCK accesses.
        self.aspace.map_region(
            SOCK_REGION_BASE, 1 << 20, "kernel:socktab", populated=True
        )

    # -- sockets ----------------------------------------------------------

    def create_udp_socket(self, tup: bytes) -> Socket:
        """Register a bound UDP socket reachable by tuple lookup."""
        addr = self._next_sock
        self._next_sock += SOCK_OBJ_SIZE
        sock = Socket(addr, "udp", bytes(tup))
        self._socks[addr] = sock
        self._by_tuple[bytes(tup)] = sock
        return sock

    def sk_lookup_udp(self, tup: bytes) -> Socket | None:
        sock = self._by_tuple.get(bytes(tup))
        if sock is not None and sock.released:
            return None
        return sock

    def sock_by_addr(self, addr: int) -> Socket | None:
        return self._socks.get(addr)

    def total_extension_refs(self) -> int:
        """Sum of references beyond the owning table's one — must be 0
        whenever no extension is mid-flight (quiescence check)."""
        return sum(max(0, s.refcount - 1) for s in self._socks.values() if not s.released)

    # -- packets ----------------------------------------------------------

    def _slot(self, cpu: int) -> int:
        """Map (once) and return the CPU's staging-slot base."""
        base = self._pkt_slots.get(cpu)
        if base is None:
            base = PKT_REGION_BASE + cpu * PKT_SLOT_SIZE
            self.aspace.map_region(base, PKT_SLOT_SIZE, f"kernel:pkt{cpu}")
            self._pkt_slots[cpu] = base
        return base

    def stage_packet(self, cpu: int, payload: bytes) -> tuple[int, int]:
        """Copy a packet into the CPU's staging buffer.

        Returns (data, data_end) addresses for the hook context.
        """
        if len(payload) > PKT_SLOT_SIZE:
            raise KernelPanic("packet larger than staging slot")
        base = self._slot(cpu)
        self.aspace.write_bytes(base, payload)
        return base, base + len(payload)

    def packet_stager(self, cpu: int):
        """Amortized :meth:`stage_packet` for batched ingress.

        Binds the CPU's slot once — region mapping, dict lookup and
        address translation all happen here instead of per packet — and
        returns a closure writing each payload straight into the slot's
        backing (the region is kernel-staged and fully populated, the
        same trusted-writer shortcut ``make_ctx`` takes).  The slot is
        reused across the batch: each packet overwrites the last, so
        callers must consume any in-place reply before staging the next.
        """
        base = self._slot(cpu)
        data, off = self.aspace.region_backing(base)
        slot_size = PKT_SLOT_SIZE

        def stage(payload: bytes) -> tuple[int, int]:
            n = len(payload)
            if n > slot_size:
                raise KernelPanic("packet larger than staging slot")
            data[off : off + n] = payload
            return base, base + n

        return stage

    def packet_reader(self, cpu: int):
        """Amortized :meth:`read_packet` twin of :meth:`packet_stager`."""
        base = self._slot(cpu)
        data, off = self.aspace.region_backing(base)

        def read(size: int) -> bytes:
            return bytes(data[off : off + min(size, PKT_SLOT_SIZE)])

        return read

    def read_packet(self, cpu: int, size: int) -> bytes:
        """Read back the CPU's staged packet (e.g. the reply an XDP_TX
        extension wrote in place).  The slot must have been staged."""
        base = self._pkt_slots.get(cpu)
        if base is None:
            raise KernelPanic(f"no packet staged on cpu {cpu}")
        return self.aspace.read_bytes(base, min(size, PKT_SLOT_SIZE))

    # -- receive path (XDP_PASS) ------------------------------------------

    def stack_deliver(self, cpu: int, payload: bytes, dport: int = 0) -> bytes:
        """The receive-path work an ``XDP_PASS`` packet incurs that an
        ``XDP_TX`` reply skips (the BMC/KFlex performance argument):

        1. skb allocation — the payload is copied out of the driver
           slot into kernel packet memory;
        2. L4 checksum validation over the full payload;
        3. socket-table lookup for the destination;
        4. copy-out to the socket receive queue (the buffer userspace
           will ``recvfrom``).

        Every step does its real work against the simulated kernel
        (address-space copies, a ones'-complement sum, the socket hash
        table); nothing is a sleep or a tuning constant.  Returns the
        delivered bytes.  Callers on the userspace-fallback path run
        this before handing the packet to the server, so measured
        fast-path speedups include the stack traversal they model.
        """
        # skb alloc + copy into kernel memory (reuse the CPU's slot
        # region at a fixed skb offset so delivery never grows state).
        if len(payload) > PKT_SLOT_SIZE // 2:
            raise KernelPanic("packet larger than skb slot")
        base = self._pkt_slots.get(cpu)
        if base is None:
            base = PKT_REGION_BASE + cpu * PKT_SLOT_SIZE
            self.aspace.map_region(base, PKT_SLOT_SIZE, f"kernel:pkt{cpu}")
            self._pkt_slots[cpu] = base
        skb = base + PKT_SLOT_SIZE // 2
        self.aspace.write_bytes(skb, payload)

        # L4 checksum: 16-bit ones'-complement sum, as udp_rcv would.
        data = payload if len(payload) % 2 == 0 else payload + b"\x00"
        csum = 0
        for i in range(0, len(data), 2):
            csum += (data[i] << 8) | data[i + 1]
            csum = (csum & 0xFFFF) + (csum >> 16)

        # Socket lookup; a miss is fine (the datapath's server socket
        # is not registered in the simulated table) — the lookup cost
        # is what is being modelled.
        self.sk_lookup_udp(udp_tuple(0, 0, 0, dport))

        # Copy-out to the receive queue / userspace buffer.
        return self.aspace.read_bytes(skb, len(payload))


def udp_tuple(saddr: int, daddr: int, sport: int, dport: int) -> bytes:
    """Pack an IPv4 UDP 4-tuple the way ``bpf_sock_tuple.ipv4`` lays
    it out (12 bytes)."""
    return struct.pack("<IIHH", saddr, daddr, sport, dport)
