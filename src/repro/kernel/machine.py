"""The simulated machine: one kernel instance aggregating every substrate.

A ``Kernel`` is what the paper's testbed server provides: address space,
vmalloc arena, network stack, hook points, scheduler, watchdog, cgroup
controller and a monotonic clock.  The KFlex runtime
(:class:`repro.core.runtime.KFlexRuntime`) is constructed over one of
these.
"""

from __future__ import annotations

from repro.kernel.addrspace import AddressSpace
from repro.kernel.cgroup import CgroupController
from repro.kernel.hooks import HookRegistry
from repro.kernel.net import NetStack
from repro.kernel.sched import Scheduler
from repro.kernel.vmalloc import VmallocArena
from repro.kernel.watchdog import Watchdog

#: Cycle time of the paper's testbed CPU (Intel Xeon 8468 @ 2.30 GHz);
#: converts native-instruction cost units to nanoseconds.
NS_PER_UNIT = 1.0 / 2.3


class Kernel:
    def __init__(self, *, n_cpus: int = 8, quantum_units: int | None = None):
        self.n_cpus = n_cpus
        self.aspace = AddressSpace()
        self.vmalloc = VmallocArena()
        self.net = NetStack(self.aspace)
        self.hooks = HookRegistry()
        self.sched = Scheduler()
        self.watchdog = Watchdog() if quantum_units is None else Watchdog(quantum_units)
        self.cgroups = CgroupController()
        self._clock_ns = 0

    # -- time --------------------------------------------------------------

    def now_ns(self) -> int:
        return self._clock_ns

    def advance_ns(self, ns: float) -> None:
        self._clock_ns += int(ns)

    def advance_units(self, units: int) -> None:
        self._clock_ns += int(units * NS_PER_UNIT)
