"""Paged 64-bit virtual address space.

Models the portion of kernel address-space behaviour KFlex depends on:

* regions mapped at arbitrary bases (vmalloc area, per-invocation
  extension stacks, map value arrays, packet buffers);
* demand paging — extension heaps are mapped with no populated pages,
  and the KFlex allocator populates them on demand (§3.2, §4.1).
  Access to an unpopulated page raises :class:`~repro.errors.PageFault`,
  which the KFlex runtime treats as a cancellation point (§3.3, C2);
* shared backings — the same physical pages mapped at a second base
  (the user-space mapping of an extension heap, §3.4), so stores via
  one mapping are visible through the other.

Addresses and values are plain ints; loads/stores are little-endian,
as on x86-64.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import PageFault, KernelPanic

PAGE_SIZE = 4096


class Backing:
    """Physical backing for a region: bytes plus a populated-page set.

    Shared between the kernel and user mappings of the same heap so
    both views observe the same stores and the same page population.
    """

    def __init__(self, size: int, populated: bool):
        self.size = size
        self.data = bytearray(size)
        self.n_pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        self.all_populated = populated
        self.populated: set[int] = set()

    def is_populated(self, page: int) -> bool:
        return self.all_populated or page in self.populated

    def populate(self, page: int) -> bool:
        """Populate one page; returns True if it was newly populated."""
        if self.all_populated or page in self.populated:
            return False
        if not 0 <= page < self.n_pages:
            raise KernelPanic(f"populate of page {page} outside backing")
        self.populated.add(page)
        return True

    @property
    def populated_pages(self) -> int:
        return self.n_pages if self.all_populated else len(self.populated)


@dataclass
class MemRegion:
    base: int
    size: int
    name: str
    backing: Backing
    writable: bool = True
    #: MPK protection key (§6 heap-domain striping); None = unkeyed,
    #: always accessible.
    pkey: int | None = None

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.end


@dataclass
class AddressSpace:
    """A set of non-overlapping mapped regions with paged access."""

    name: str = "kernel"
    _bases: list[int] = field(default_factory=list)
    _regions: list[MemRegion] = field(default_factory=list)
    #: When set (PKRU loaded for a striped-heap extension, §6), keyed
    #: regions whose pkey is not in this set fault on access.
    active_pkeys: set | None = None
    #: Bumped on every map/unmap; lets the execution engine's region
    #: handle cache (repro.ebpf.engine) detect that a cached
    #: base/backing pair may have gone stale.
    generation: int = 0

    # -- mapping ------------------------------------------------------

    def map_region(
        self,
        base: int,
        size: int,
        name: str,
        *,
        populated: bool = True,
        backing: Backing | None = None,
        writable: bool = True,
    ) -> MemRegion:
        """Map ``size`` bytes at ``base``.

        Passing an existing ``backing`` creates an alias mapping (used
        for the user-space view of extension heaps).
        """
        if size <= 0:
            raise KernelPanic(f"map of non-positive size {size}")
        if self._overlaps(base, size):
            raise KernelPanic(f"mapping {name} at {base:#x} overlaps existing region")
        if backing is None:
            backing = Backing(size, populated)
        elif backing.size != size:
            raise KernelPanic("alias mapping size differs from backing size")
        region = MemRegion(base, size, name, backing, writable)
        idx = bisect.bisect_left(self._bases, base)
        self._bases.insert(idx, base)
        self._regions.insert(idx, region)
        self.generation += 1
        return region

    def unmap(self, base: int) -> None:
        idx = bisect.bisect_left(self._bases, base)
        if idx >= len(self._bases) or self._bases[idx] != base:
            raise KernelPanic(f"unmap of unmapped base {base:#x}")
        del self._bases[idx]
        del self._regions[idx]
        self.generation += 1

    def _overlaps(self, base: int, size: int) -> bool:
        idx = bisect.bisect_right(self._bases, base)
        if idx > 0 and self._regions[idx - 1].end > base:
            return True
        if idx < len(self._regions) and self._regions[idx].base < base + size:
            return True
        return False

    def find_region(self, addr: int) -> MemRegion | None:
        """Region containing ``addr``, or None."""
        idx = bisect.bisect_right(self._bases, addr)
        if idx == 0:
            return None
        region = self._regions[idx - 1]
        return region if addr < region.end else None

    def region_by_name(self, name: str) -> MemRegion | None:
        for region in self._regions:
            if region.name == name:
                return region
        return None

    @property
    def regions(self) -> list[MemRegion]:
        return list(self._regions)

    # -- access -------------------------------------------------------

    def _translate(self, addr: int, size: int, *, write: bool) -> tuple[Backing, int]:
        region = self.find_region(addr)
        if region is None or not region.contains(addr, size):
            raise PageFault(addr, f"unmapped access of {size}B at {addr:#x}")
        if write and not region.writable:
            raise PageFault(addr, f"write to read-only region {region.name}")
        if (
            region.pkey is not None
            and self.active_pkeys is not None
            and region.pkey not in self.active_pkeys
        ):
            raise PageFault(
                addr, f"protection-key violation in {region.name} (pkey {region.pkey})"
            )
        off = addr - region.base
        first_page = off // PAGE_SIZE
        last_page = (off + size - 1) // PAGE_SIZE
        backing = region.backing
        for page in range(first_page, last_page + 1):
            if not backing.is_populated(page):
                raise PageFault(addr, f"access to unpopulated page in {region.name}")
        return backing, off

    def region_backing(self, addr: int) -> tuple[bytearray, int]:
        """Kernel-trusted backing handle: the raw backing bytes of the
        region containing ``addr`` plus the address's offset into them.

        For kernel-staged slots only (per-CPU packet/ctx staging —
        fully populated, unkeyed, never unmapped): the caller writes
        directly into the returned buffer, skipping per-access
        translation the way a driver writes its own DMA ring.
        """
        region = self.find_region(addr)
        if region is None:
            raise PageFault(addr, f"backing handle for unmapped {addr:#x}")
        return region.backing.data, addr - region.base

    def read_bytes(self, addr: int, size: int) -> bytes:
        backing, off = self._translate(addr, size, write=False)
        return bytes(backing.data[off : off + size])

    def write_bytes(self, addr: int, data: bytes) -> None:
        backing, off = self._translate(addr, len(data), write=True)
        backing.data[off : off + len(data)] = data

    def read_int(self, addr: int, size: int) -> int:
        """Little-endian unsigned load."""
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, value: int, size: int) -> None:
        """Little-endian store of the low ``size`` bytes of ``value``."""
        mask = (1 << (size * 8)) - 1
        self.write_bytes(addr, (value & mask).to_bytes(size, "little"))

    def is_mapped(self, addr: int, size: int = 1) -> bool:
        try:
            self._translate(addr, size, write=False)
            return True
        except PageFault:
            return False

    # -- demand paging --------------------------------------------------

    def populate(self, addr: int, size: int) -> int:
        """Populate all pages covering ``[addr, addr+size)``.

        Returns the number of newly populated pages (for memcg
        accounting).  Used by the KFlex allocator when handing out heap
        memory (§4.1).
        """
        region = self.find_region(addr)
        if region is None or not region.contains(addr, size):
            raise KernelPanic(f"populate of unmapped range at {addr:#x}")
        off = addr - region.base
        new = 0
        for page in range(off // PAGE_SIZE, (off + size - 1) // PAGE_SIZE + 1):
            if region.backing.populate(page):
                new += 1
        return new
