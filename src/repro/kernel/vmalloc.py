"""The vmalloc arena: aligned region allocation with guard pages.

KFlex allocates extension heaps in the kernel's vmalloc region with an
alignment request equal to the heap size, plus 32 KB guard pages on
either side (§4.1).  Size-alignment is what makes the SFI masking
scheme sound: ``base + (ptr & (size-1))`` always lands inside the heap,
and the guard pages absorb the signed 16-bit offsets eBPF load/store
instructions may add.

The paper notes this causes fragmentation (a 4 GB heap's guard pages
force the allocator to skip the next aligned 4 GB slot); this arena
reproduces that behaviour and exposes fragmentation statistics so the
effect can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemory, KernelPanic

# Linux x86-64 vmalloc space starts at 0xffffc90000000000.
VMALLOC_BASE = 0xFFFF_C900_0000_0000
VMALLOC_SIZE = 1 << 45  # 32 TiB, as on x86-64

#: Guard page span on each side of a heap.  eBPF load/store offsets are
#: signed 16-bit, so 2**15 bytes of guard on either side make any
#: ``[sanitised_ptr + off]`` access land in mapped (guard) space (§4.1).
GUARD_SIZE = 1 << 15


@dataclass
class VmallocRegion:
    base: int  # usable base (after leading guard)
    size: int  # usable size
    span_base: int  # including guards
    span_size: int
    name: str


class VmallocArena:
    """First-fit allocator over the vmalloc address range.

    Only address-space bookkeeping lives here; the actual byte storage
    is created by mapping the returned range into an
    :class:`~repro.kernel.addrspace.AddressSpace`.
    """

    def __init__(self, base: int = VMALLOC_BASE, size: int = VMALLOC_SIZE):
        self.base = base
        self.size = size
        self._allocs: dict[int, VmallocRegion] = {}  # span_base -> region
        # Fragmentation accounting (paper §4.1 discussion).
        self.bytes_requested = 0
        self.bytes_consumed = 0  # including guards and alignment skip

    # -- allocation -----------------------------------------------------

    def alloc(
        self, size: int, *, align: int = 1, guard: int = GUARD_SIZE, name: str = "heap"
    ) -> VmallocRegion:
        """Allocate ``size`` bytes aligned to ``align`` with guard pages.

        Scans for the first gap that can hold ``guard + size + guard``
        with the usable base aligned, mirroring the kernel's
        ``__get_vm_area`` search.
        """
        if size <= 0:
            raise KernelPanic("vmalloc of non-positive size")
        if align & (align - 1):
            raise KernelPanic(f"alignment {align} not a power of two")

        spans = sorted(
            (r.span_base, r.span_base + r.span_size) for r in self._allocs.values()
        )
        cursor = self.base
        for span_start, span_end in spans + [(self.base + self.size, 0)]:
            usable = _align_up(cursor + guard, align)
            span_base = usable - guard
            span_size = guard + size + guard
            if span_base >= cursor and span_base + span_size <= span_start:
                region = VmallocRegion(usable, size, span_base, span_size, name)
                self._allocs[span_base] = region
                self.bytes_requested += size
                self.bytes_consumed += span_size + (span_base - cursor)
                return region
            cursor = max(cursor, span_end)
        raise OutOfMemory(f"vmalloc arena exhausted for {size}B align={align}")

    def free(self, region: VmallocRegion) -> None:
        if region.span_base not in self._allocs:
            raise KernelPanic(f"vfree of unallocated region at {region.base:#x}")
        freed = self._allocs.pop(region.span_base)
        self.bytes_requested -= freed.size
        self.bytes_consumed -= freed.span_size

    # -- statistics -----------------------------------------------------

    @property
    def fragmentation_overhead(self) -> float:
        """Consumed-to-requested ratio minus one (0.0 = no waste)."""
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_consumed / self.bytes_requested - 1.0

    @property
    def live_regions(self) -> int:
        return len(self._allocs)


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)
