"""The KFlex runtime: load, attach, invoke (Fig. 1).

``KFlexRuntime.load`` drives the staged compilation pipeline
(:mod:`repro.ebpf.pipeline`): (1) the eBPF verifier checks
kernel-interface compliance and produces the range / loop / resource
analysis; (2) Kie instruments the bytecode (guards, cancellation
points, translations, spills); (3) the JIT lowering assigns native
costs; (4) the execution engine translates per CPU.  Every stage is a
registered pass over typed artifacts, and the expensive ones are
memoized in the runtime's content-addressed program cache — repeated
loads of the same bytecode (per-CPU deployments, supervisor
re-admission after quarantine) skip straight to cached artifacts.  The
result is a :class:`LoadedExtension` that executes on the simulated
machine with full cancellation support.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import LoadError, KernelPanic
from repro.ebpf.helpers import (
    HelperTable,
    bind_standard_helpers,
    DECLARATIONS,
    BPF_COPY_FROM_USER,
    KFLEX_MALLOC,
    KFLEX_FREE,
    KFLEX_SPIN_LOCK,
    KFLEX_SPIN_UNLOCK,
    BPF_SK_RELEASE,
)
from repro.ebpf.engine import default_engine
from repro.ebpf.interpreter import ExecEnv
from repro.ebpf.pipeline import CompilationPipeline, LoweredProgram
from repro.ebpf.program import Program, HOOKS
from repro.ebpf.verifier import VerifierConfig
from repro.core.allocator import KflexAllocator
from repro.core.audit import QuiescenceAuditor, audit_enabled, reclaim_orphans
from repro.core.cancellation import CancellationEngine
from repro.core.heap import ExtensionHeap
from repro.core.locks import LockManager
from repro.core.supervisor import ExtensionSupervisor, HARD_REASONS
from repro.kernel.machine import Kernel
from repro.state.pins import PinRegistry

#: Per-CPU hook context area (xdp_md / sk_skb / bench context).
CTX_REGION_BASE = 0xFFFF_88A0_0000_0000
CTX_SLOT_SIZE = 256

#: Cached little-endian u64 packers for make_ctx, by field count.
_CTX_PACKERS: dict[int, struct.Struct] = {}


@dataclass
class ExtStats:
    invocations: int = 0
    cancellations: int = 0
    cancellations_by_reason: dict = field(default_factory=dict)
    total_cost_units: int = 0
    last_cost_units: int = 0

    def mean_cost(self) -> float:
        return self.total_cost_units / self.invocations if self.invocations else 0.0


class LoadedExtension:
    """A verified, instrumented, JIT-lowered extension ready to run."""

    def __init__(
        self,
        runtime: "KFlexRuntime",
        program: Program,
        lowered: LoweredProgram,
        heap: ExtensionHeap | None,
        allocator: KflexAllocator | None,
        locks: LockManager | None,
        helpers: HelperTable,
        *,
        quantum_units: int | None,
        unload_on_fault: bool = False,
        cancel_scope: str = "global",
        engine: str | None = None,
    ):
        self.runtime = runtime
        self.kernel = runtime.kernel
        self.program = program
        self._install(lowered)
        self.heap = heap
        self.allocator = allocator
        self.locks = locks
        self.helpers = helpers
        self.quantum_units = quantum_units
        self.unload_on_fault = unload_on_fault
        #: "global": non-termination unloads the extension everywhere
        #: (the paper's policy, §4.3 "Cancellation scope").  "cpu": the
        #: future-work variant — only the faulting invocation dies.
        if cancel_scope not in ("global", "cpu"):
            raise LoadError(f"bad cancel_scope {cancel_scope!r}")
        self.cancel_scope = cancel_scope
        self.dead = False
        self.stats = ExtStats()

        self.cancellation = CancellationEngine(self.kernel.aspace)
        self._bind_destructors()

        allowed = ["stack:", "map:", "kernel:pkt"]
        if heap is not None:
            allowed.append(f"heap:{heap.name}")
        self._allowed_prefixes = tuple(allowed)
        self._envs: dict[int, ExecEnv] = {}
        #: Execution engine name ("interp" | "threaded"); resolved at
        #: load time so a later default change doesn't flip a loaded
        #: extension mid-flight.
        self.engine = engine or runtime.engine
        #: Per-CPU pooled :class:`~repro.ebpf.pipeline.TranslatedProgram`
        #: artifacts — translated once, reused across invocations.
        self._engines: dict[int, object] = {}
        #: Per-CPU cached batch invoker closures keyed on the pooled
        #: engine identity (dropped whenever the engine is retranslated).
        self._batch_cache: dict[int, tuple] = {}
        self._wd_callback = None
        #: ExecResult of the most recent run (parity/diagnostic surface).
        self.last_result = None
        #: Whether revive() should re-attach to the hook (set by load()).
        self._reattach_on_revive = False
        self.cancellation.on_unwound = self._post_unwind

    # -- plumbing ---------------------------------------------------------

    def _install(self, lowered: LoweredProgram) -> None:
        """Adopt pipeline output.  Initial load and supervisor
        re-admission both land here; ``iprog``/``jprog`` stay as the
        public inspection surface (tools, tests, figures)."""
        self.lowered = lowered
        self.iprog = lowered.kprog
        self.jprog = lowered.jprog

    @property
    def load_config(self) -> VerifierConfig | None:
        """The VerifierConfig this extension was compiled under
        (``None`` for unverified KMod loads)."""
        return self.lowered.raw.config

    def _bind_destructors(self) -> None:
        net = self.kernel.net

        def release_sock(value: int, cpu: int) -> None:
            sock = net.sock_by_addr(value)
            if sock is None:
                raise KernelPanic(
                    f"cancellation unwind: object table pointed at non-socket "
                    f"{value:#x}"
                )
            sock.put_ref()

        self.cancellation.bind_destructor(BPF_SK_RELEASE, release_sock)
        if self.locks is not None:
            self.cancellation.bind_destructor(
                KFLEX_SPIN_UNLOCK,
                lambda value, cpu: self.locks.force_release(value, cpu),
            )

    def _env(self, cpu: int) -> ExecEnv:
        env = self._envs.get(cpu)
        if env is None:
            env = ExecEnv(
                aspace=self.kernel.aspace,
                helpers=self.helpers,
                cpu=cpu,
                maps_by_addr={
                    m.region.base: m for m in self.program.maps.values()
                },
                heap=self.heap,
                allowed_store_regions=self._allowed_prefixes,
                injector=self.runtime.injector,
            )
            if self.runtime.watchdog_period is not None:
                env.watchdog_period = self.runtime.watchdog_period
            self._envs[cpu] = env
        return env

    def _engine(self, cpu: int):
        """Pooled per-CPU engine: translate once, reuse per invocation."""
        tp = self._engines.get(cpu)
        if tp is None or tp.engine.insns is not self.jprog.insns:
            # First use, or the program was re-instrumented/lowered
            # since translation (jprog swapped out underneath us).
            tp = self.runtime.pipeline.translate(
                self.lowered, self.engine, self._env(cpu), cpu
            )
            self._engines[cpu] = tp
        else:
            self.runtime.pipeline.stats.pool_hits += 1
        return tp.engine

    def invalidate_engines(self) -> None:
        """Drop pooled engines (call after re-instrumentation)."""
        self._engines.clear()
        self._batch_cache.clear()

    # -- execution ----------------------------------------------------------

    def invoke(self, ctx_addr: int = 0, cpu: int = 0) -> int:
        """Run the extension once at the given hook context."""
        if self.dead:
            # Quarantined extensions heal via exponential backoff: once
            # the penalty elapses the supervisor revives them (§4.3 +
            # the supervision layer).  Other dead states stay dead.
            if not self.runtime.supervisor.try_readmit(self):
                return self.program.default_ret
        env = self._env(cpu)
        if self.allocator is not None and audit_enabled():
            self.allocator.begin_invocation(cpu)
        if self.heap is not None and self.quantum_units is not None:
            wd = self.kernel.watchdog
            wd.quantum_units = self.quantum_units
            if self._wd_callback is None:
                # The callback reads quantum/armed state at fire time,
                # so one closure serves every invocation.
                self._wd_callback = wd.make_callback(self.heap, self.kernel.aspace)
            env.watchdog = self._wd_callback
        aspace = self.kernel.aspace
        if self.heap is not None and self.heap.pkey is not None:
            # Striped heap (§6): load this extension's protection key.
            aspace.active_pkeys = {self.heap.pkey}
        result = self._engine(cpu).run(ctx_addr)
        aspace.active_pkeys = None
        self.last_result = result
        cost = result.cost + self.jprog.prologue_cost
        self.stats.invocations += 1
        self.stats.total_cost_units += cost
        self.stats.last_cost_units = cost
        self.kernel.advance_units(cost)
        if result.ok:
            return result.ret
        return self._cancel(result, cpu)

    def _cancel(self, result, cpu: int) -> int:
        """The cancellation path (§3.3): unwind and return the default."""
        fault = result.fault
        table = self.iprog.object_tables.get(fault.orig_idx, ())
        armed = (
            self.heap is not None
            and self.kernel.aspace.read_int(self.heap.terminate_cell, 8) == 0
        )
        if fault.kind == "stall":
            reason = "hard_stall"
        elif fault.kind in ("lock_stall", "sleep_stall"):
            reason = fault.kind
        elif armed:
            reason = "watchdog"
        elif fault.kind == "page":
            reason = "page_fault"
        else:
            reason = fault.kind
        ret, record = self.cancellation.unwind(
            result,
            table,
            cpu=cpu,
            reason=reason,
            default_ret=self.program.default_ret,
            cancel_callback=self.program.cancel_callback,
        )
        self.stats.cancellations += 1
        self.stats.cancellations_by_reason[reason] = (
            self.stats.cancellations_by_reason.get(reason, 0) + 1
        )
        # Policy (§4.3): non-termination cancels the extension globally —
        # unload it; the heap survives for the user-space application.
        # With the future-work "cpu" scope, only this invocation dies.
        # The supervisor owns the decision: hard reasons quarantine
        # immediately (unload + backoff), soft faults count against the
        # fault-rate window and quarantine when persistent.
        hard = (
            reason in HARD_REASONS and self.cancel_scope == "global"
        ) or self.unload_on_fault
        self.runtime.supervisor.note_cancellation(self, reason, hard=hard)
        if self.heap is not None:
            self.kernel.watchdog.disarm(self.heap, self.kernel.aspace)
        return ret

    def _post_unwind(self, record, cpu: int) -> None:
        """Quiescence after every unwind (mandatory in tests): reclaim
        allocations the dead invocation never published — unreachable
        to the program forever — then audit that nothing leaked."""
        if not audit_enabled():
            return
        if self.allocator is not None and self.heap is not None:
            for addr in reclaim_orphans(self.allocator, self.heap, cpu):
                record.released.append(("heap_mem", addr))
        self.runtime.auditor.audit(self, record, cpu)

    def unload(self) -> None:
        self.dead = True
        self.kernel.hooks.detach(self)
        if self.heap is not None:
            # Stop monitoring: without this the watchdog's _armed dict
            # leaks an entry per armed-then-unloaded extension.
            self.kernel.watchdog.forget(self.heap)

    def revive(self) -> None:
        """Re-admit a quarantined extension (supervisor only): clear the
        dead flag, restore the terminate cell, re-attach if it was
        hook-attached at load.  The heap survived quarantine (§3.4), so
        the extension resumes over its existing data."""
        if not self.dead:
            return
        # Re-admission goes back through the compilation pipeline: the
        # program re-derives from the content-addressed cache (a warm
        # load — the verifier does not run again), and the pooled
        # engines stay valid iff the lowered artifact is unchanged
        # (the `is` check in _engine re-translates otherwise, e.g.
        # after a cache eviction produced a fresh lowering).
        self._install(
            self.runtime.pipeline.compile(
                self.program, config=self.load_config, heap=self.heap
            )
        )
        self.dead = False
        if self.heap is not None:
            self.kernel.watchdog.disarm(self.heap, self.kernel.aspace)
        if self._reattach_on_revive:
            self.kernel.hooks.attach(self)

    # -- context staging ---------------------------------------------------

    def xdp_ctx(self, payload: bytes, cpu: int = 0) -> int:
        """Stage a packet and build an xdp_md context; returns ctx addr."""
        data, data_end = self.kernel.net.stage_packet(cpu, payload)
        return self.runtime.make_ctx(cpu, [data, data_end])

    def sk_skb_ctx(self, payload: bytes, cpu: int = 0, sk_cookie: int = 0) -> int:
        data, data_end = self.kernel.net.stage_packet(cpu, payload)
        return self.runtime.make_ctx(cpu, [data, data_end, sk_cookie])

    # -- batched invocation (batched zero-copy ingress) --------------------

    def batch_invoker(self, cpu: int = 0):
        """Amortized invocation closure for one ingress batch.

        Hoists everything :meth:`invoke` repeats per call — pooled
        engine lookup, watchdog arming, pkey selection, attribute
        chasing for the stat counters — and returns
        ``run(ctx_addr) -> ret`` doing only the per-packet core: engine
        run, cost accounting, cancellation.  Per-packet semantics are
        identical to :meth:`invoke` (the cancellation path, supervisor
        escalation and allocation auditing all still run per
        invocation).  The closure is valid for one batch: callers must
        create it after checking ``dead`` and stop using it the moment
        ``dead`` flips (a mid-batch quarantine).
        """
        if self.dead:
            raise KernelPanic("batch_invoker on a dead extension")
        env = self._env(cpu)
        allocator = self.allocator if audit_enabled() else None
        if self.heap is not None and self.quantum_units is not None:
            wd = self.kernel.watchdog
            wd.quantum_units = self.quantum_units
            if self._wd_callback is None:
                self._wd_callback = wd.make_callback(self.heap, self.kernel.aspace)
            env.watchdog = self._wd_callback
        aspace = self.kernel.aspace
        pkeys = (
            {self.heap.pkey}
            if self.heap is not None and self.heap.pkey is not None
            else None
        )
        engine_run = self._engine(cpu).run
        stats = self.stats
        kernel = self.kernel
        prologue_cost = self.jprog.prologue_cost

        def run(ctx_addr: int) -> int:
            if allocator is not None:
                allocator.begin_invocation(cpu)
            if pkeys is not None:
                aspace.active_pkeys = pkeys
            result = engine_run(ctx_addr)
            if pkeys is not None:
                aspace.active_pkeys = None
            self.last_result = result
            cost = result.cost + prologue_cost
            stats.invocations += 1
            stats.total_cost_units += cost
            stats.last_cost_units = cost
            kernel.advance_units(cost)
            if result.ok:
                return result.ret
            return self._cancel(result, cpu)

        return run

    def xdp_batch_invoker(self, cpu: int = 0):
        """Batched XDP entry: ``run(payload) -> verdict``.

        Composes the amortized packet stager (slot bound once, payload
        bytes written straight into the staging backing), the amortized
        ctx writer (slot reused, only data/data_end rewritten per
        packet) and :meth:`batch_invoker`.  The staging slot is shared
        across the batch, so a caller wanting an ``XDP_TX`` reply must
        read it back before staging the next packet.
        """
        if self.dead:
            raise KernelPanic("batch_invoker on a dead extension")
        engine = self._engine(cpu)
        audit = audit_enabled()
        cached = self._batch_cache.get(cpu)
        if cached is not None and cached[0] is engine and cached[1] == audit:
            # Hot path: closures survive across batches; only the
            # watchdog quantum needs re-arming (it is a shared kernel
            # attribute another extension may have retargeted).
            if self.heap is not None and self.quantum_units is not None:
                self.kernel.watchdog.quantum_units = self.quantum_units
            return cached[2]
        stage = self.kernel.net.packet_stager(cpu)
        write_ctx = self.runtime.ctx_writer(cpu, 2)
        invoke_one = self.batch_invoker(cpu)

        def run(payload: bytes) -> int:
            data, data_end = stage(payload)
            return invoke_one(write_ctx(data, data_end))

        self._batch_cache[cpu] = (engine, audit, run)
        return run


def _copy_from_user(kernel, heap, dst: int, size: int, user_src: int) -> int:
    """bpf_copy_from_user for sleepable extensions (§4.3).

    Trusted kernel code: sanitises the destination, faults heap pages
    in, and copies from the user mapping.  A user page that can never
    arrive (unmapped source) blocks forever in the real kernel; the
    background checker the KFlex runtime keeps for sleepable extensions
    turns that into a cancellation, modelled here by raising SleepStall.
    """
    from repro.errors import PageFault, SleepStall

    size = max(0, min(int(size), heap.size))
    dst = heap.sanitize(dst)
    size = min(size, heap.base + heap.size - dst)
    if size == 0:
        return 0
    try:
        data = kernel.aspace.read_bytes(user_src, size)
    except PageFault as e:
        raise SleepStall(f"copy_from_user blocked: {e}") from None
    heap.populate(dst, size)
    kernel.aspace.write_bytes(dst, data)
    return 0


class KFlexRuntime:
    """One runtime per kernel; owns heaps and the load pipeline."""

    def __init__(
        self,
        kernel: Kernel | None = None,
        *,
        engine: str | None = None,
        supervisor_policy=None,
        fuse=None,
        verify_service=None,
    ):
        self.kernel = kernel or Kernel()
        #: Default execution engine for extensions loaded by this
        #: runtime; individual loads may override.  See repro.ebpf.engine.
        self.engine = engine or default_engine()
        self.heaps: dict[int, ExtensionHeap] = {}  # fd -> heap
        self.allocators: dict[int, KflexAllocator] = {}
        self.lock_managers: dict[int, LockManager] = {}
        #: cpu -> (ctx base addr, ctx backing bytearray)
        self._ctx_slots: dict[int, tuple[int, bytearray]] = {}
        self.extensions: list[LoadedExtension] = []
        #: Fault injector threaded through engines/helpers/allocator/
        #: locks/watchdog; installed by :meth:`install_injector`.
        self.injector = None
        #: Override for ExecEnv.watchdog_period (None = keep default);
        #: chaos campaigns shorten it so short invocations still give
        #: the watchdog — and wd_fire injection — opportunities to run.
        self.watchdog_period: int | None = None
        self.supervisor = ExtensionSupervisor(self.kernel, supervisor_policy)
        self.auditor = QuiescenceAuditor(self.kernel)
        #: bpffs analog: maps pinned by path, refcounted independently
        #: of the extensions using them (repro.state).
        self.pins = PinRegistry()
        #: The staged load path (verify → instrument → lower → fuse →
        #: translate) with its content-addressed program cache and
        #: per-stage statistics.  One per runtime: cache keys embed
        #: concrete heap/map addresses, which are only unique within
        #: one kernel address space.  ``fuse`` overrides the
        #: superinstruction config (False disables, a FuseConfig tunes).
        #: ``verify_service`` routes the verify stage through a
        #: :class:`repro.verify.VerificationService` (queue + workers +
        #: differential memo); None keeps the serial in-process path.
        self.pipeline = CompilationPipeline(
            fuse=fuse, verify_service=verify_service
        )

    # -- fault injection ------------------------------------------------------

    def install_injector(self, plan_or_injector) -> "object":
        """Thread a fault plan through every injection point.

        Accepts a :class:`repro.sim.faults.FaultPlan` or a built
        :class:`~repro.sim.faults.FaultInjector`; returns the injector.
        Pass ``None`` to remove injection everywhere.
        """
        inj = plan_or_injector
        if inj is not None and hasattr(inj, "build"):
            inj = inj.build()
        self.injector = inj
        self.kernel.watchdog.injector = inj
        for allocator in self.allocators.values():
            allocator.injector = inj
        for locks in self.lock_managers.values():
            locks.injector = inj
        for ext in self.extensions:
            for env in ext._envs.values():
                env.injector = inj
        return inj

    # -- heaps ---------------------------------------------------------------

    def create_heap(
        self,
        size: int,
        name: str = "heap",
        cgroup: str | None = None,
        *,
        sfi=None,
        striped_arena=None,
    ) -> ExtensionHeap:
        cg = self.kernel.cgroups.group(cgroup) if cgroup else None
        heap = ExtensionHeap(
            self.kernel, size, name, cg, sfi=sfi, striped_arena=striped_arena
        )
        self.heaps[heap.fd] = heap
        allocator = KflexAllocator(heap, self.kernel.n_cpus)
        allocator.injector = self.injector
        self.allocators[heap.fd] = allocator
        locks = LockManager(heap, self.kernel.aspace)
        locks.injector = self.injector
        self.lock_managers[heap.fd] = locks
        return heap

    def allocator_for(self, heap: ExtensionHeap) -> KflexAllocator:
        return self.allocators[heap.fd]

    def locks_for(self, heap: ExtensionHeap) -> LockManager:
        return self.lock_managers[heap.fd]

    # -- the load pipeline (Fig. 1) -------------------------------------------

    def load(
        self,
        program: Program,
        *,
        mode: str = "kflex",
        perf_mode: bool = False,
        heap: ExtensionHeap | None = None,
        share_heap: bool = False,
        quantum_units: int | None = None,
        attach: bool = True,
        cgroup: str | None = None,
        elision: bool = True,
        cancel_scope: str = "global",
        engine: str | None = None,
        profile: str | None = None,
    ) -> LoadedExtension:
        """Verify, instrument, lower and (optionally) attach a program.

        ``profile`` selects a named verifier profile
        (:mod:`repro.verify.profiles`); its resolved settings replace
        the per-knob arguments (``mode`` / ``perf_mode`` / ``elision``)
        entirely — only ``translate_on_store`` still follows the
        heap-sharing decision, which is a placement choice, not policy.
        """
        if profile is not None:
            from repro.verify.profiles import profile_config

            config = profile_config(
                profile, translate_on_store=share_heap
            )
        else:
            config = VerifierConfig(
                mode=mode,
                perf_mode=perf_mode,
                translate_on_store=share_heap,
                elision=elision,
            )
        if program.heap_size is not None and heap is None:
            heap = self.create_heap(
                program.heap_size, name=program.name, cgroup=cgroup
            )
        if heap is not None and config.mode == "ebpf":
            raise LoadError("eBPF mode cannot use extension heaps")
        if share_heap:
            if heap is None:
                raise LoadError("share_heap requires an extension heap")
            heap.map_user()

        lowered = self.pipeline.compile(program, config=config, heap=heap)

        helpers = HelperTable()
        bind_standard_helpers(helpers, self.kernel)
        allocator = locks = None
        if heap is not None:
            allocator, locks = self._bind_heap_helpers(helpers, heap)

        ext = LoadedExtension(
            self,
            program,
            lowered,
            heap,
            allocator,
            locks,
            helpers,
            quantum_units=quantum_units,
            cancel_scope=cancel_scope,
            engine=engine,
        )
        self.extensions.append(ext)
        if attach:
            self.kernel.hooks.attach(ext)
            ext._reattach_on_revive = True
        return ext

    def _bind_heap_helpers(
        self, helpers: HelperTable, heap: ExtensionHeap, *,
        copy_from_user: bool = True,
    ) -> tuple[KflexAllocator, LockManager]:
        """Bind the KFlex heap helper family (malloc/free/locks) for one
        heap; returns the heap's ``(allocator, lock manager)``.

        ``copy_from_user=False`` is the KMod baseline: that helper
        models KFlex's *checked* sleepable copy — destination
        sanitisation, demand population, and the background checker
        that turns an unmappable user page into a cancellation (§4.3).
        An unsafe kernel module has none of that machinery; it
        dereferences user memory directly (modelled by plain
        loads/stores).  Its absence from the kmod path is intentional,
        not an oversight.
        """
        allocator = self.allocators[heap.fd]
        locks = self.lock_managers[heap.fd]
        helpers.bind(
            KFLEX_MALLOC, lambda env, size, a=allocator: a.malloc(size, env.cpu)
        )
        helpers.bind(
            KFLEX_FREE,
            lambda env, ptr, a=allocator: (a.free(ptr, env.cpu), 0)[1],
        )
        helpers.bind(
            KFLEX_SPIN_LOCK,
            lambda env, addr, l=locks: (l.ext_lock(addr, env.cpu), 0)[1],
        )
        helpers.bind(
            KFLEX_SPIN_UNLOCK,
            lambda env, addr, l=locks: (l.ext_unlock(addr, env.cpu), 0)[1],
        )
        if copy_from_user:
            helpers.bind(
                BPF_COPY_FROM_USER,
                lambda env, dst, size, src, h=heap: _copy_from_user(
                    self.kernel, h, dst, size, src
                ),
            )
        return allocator, locks

    def load_kmod(
        self,
        program: Program,
        *,
        heap: ExtensionHeap | None = None,
        attach: bool = False,
        engine: str | None = None,
    ) -> LoadedExtension:
        """Load the same bytecode as an *unsafe kernel module* (§5.2's
        KMod baseline): no verification, no instrumentation, no
        watchdog.  Represents the maximum achievable performance; the
        difference to a KFlex load of the same program is exactly the
        safety overhead Fig. 5 measures.
        """
        if program.heap_size is not None and heap is None:
            heap = self.create_heap(program.heap_size, name=program.name)
        # config=None selects the pipeline's unverified flavour: the
        # verify pass admits everything, Kie degrades to the identity
        # (relocation-only) instrumentation, and lowering charges no
        # heap prologue — see repro.ebpf.pipeline.
        lowered = self.pipeline.compile(program, config=None, heap=heap)
        helpers = HelperTable()
        bind_standard_helpers(helpers, self.kernel)
        allocator = locks = None
        if heap is not None:
            allocator, locks = self._bind_heap_helpers(
                helpers, heap, copy_from_user=False
            )
        ext = LoadedExtension(
            self, program, lowered, heap, allocator, locks, helpers,
            quantum_units=None, engine=engine,
        )
        # Unsafe module: no SFI containment check either.
        ext._allowed_prefixes = None
        self.extensions.append(ext)
        if attach:
            self.kernel.hooks.attach(ext)
        return ext

    # -- durable state ----------------------------------------------------------

    def pin_map(self, path: str, m, store=None) -> None:
        """Pin a map by path (bpffs analog) and, when a
        :class:`repro.state.store.DurableStore` is given, start
        journaling its mutations for crash recovery."""
        self.pins.pin(path, m)
        if store is not None:
            store.attach(path, m)

    def recover(self, store, *, programs=None):
        """Rebuild pinned maps, reload programs, re-attach hooks and
        audit quiescence after a crash — see
        :func:`repro.state.recovery.recover_runtime`."""
        from repro.state.recovery import recover_runtime

        return recover_runtime(self, store, programs=programs)

    # -- quiescence ------------------------------------------------------------

    def quiescence_report(self) -> dict:
        """Snapshot of extension-held kernel resources — all zero when
        no extension is mid-flight.

        The network datapath's graceful drain calls this after the last
        in-flight invocation completes: every cancellation already ran
        the unwinder, so a non-zero entry here means a request was
        dropped mid-extension instead of being quiesced (§3.3).
        """
        return {
            "sock_refs": self.kernel.net.total_extension_refs(),
            "held_locks": sum(
                len(lm.held_ext_locks()) for lm in self.lock_managers.values()
            ),
            "live_extensions": sum(1 for e in self.extensions if not e.dead),
        }

    # -- hook context staging ---------------------------------------------------

    def make_ctx(self, cpu: int, fields: list[int]) -> int:
        """Write a flat 8-byte-per-field context into the CPU's ctx slot."""
        slot = self._ctx_slots.get(cpu)
        if slot is None:
            base = CTX_REGION_BASE + cpu * CTX_SLOT_SIZE
            region = self.kernel.aspace.map_region(
                base, CTX_SLOT_SIZE, f"kernel:ctx{cpu}"
            )
            # The slot is kernel-staged (fully populated, trusted
            # writer): cache the backing and skip the paged path on the
            # per-invocation hot path.
            slot = (base, region.backing.data)
            self._ctx_slots[cpu] = slot
        base, data = slot
        packer = _CTX_PACKERS.get(len(fields))
        if packer is None:
            packer = _CTX_PACKERS[len(fields)] = struct.Struct(f"<{len(fields)}Q")
        try:
            blob = packer.pack(*fields)
        except struct.error:  # out-of-range value: mask like write_int did
            mask = (1 << 64) - 1
            blob = packer.pack(*((v & mask) for v in fields))
        data[0 : len(blob)] = blob
        return base

    def ctx_writer(self, cpu: int, n_fields: int):
        """Amortized :meth:`make_ctx` for batched ingress.

        Resolves the CPU's ctx slot and the field packer once and
        returns ``write(*fields) -> ctx_addr``: per packet only the
        field u64s themselves are rewritten in place (for an xdp_md
        that is data/data_end — the slot address and layout never
        change across a batch).  Callers pass in-range values; the
        staged fields come from the kernel's own staging slots.
        """
        slot = self._ctx_slots.get(cpu)
        if slot is None:
            self.make_ctx(cpu, [0] * n_fields)  # map + cache the slot
            slot = self._ctx_slots[cpu]
        base, data = slot
        packer = _CTX_PACKERS.get(n_fields)
        if packer is None:
            packer = _CTX_PACKERS[n_fields] = struct.Struct(f"<{n_fields}Q")
        pack_into = packer.pack_into

        def write(*fields) -> int:
            pack_into(data, 0, *fields)
            return base

        return write
