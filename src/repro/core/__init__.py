"""KFlex core: the paper's primary contribution.

* :mod:`repro.core.heap` — extension heaps (§3.2, §4.1)
* :mod:`repro.core.allocator` — ``kflex_malloc``/``kflex_free`` (§4.1)
* :mod:`repro.core.kie` — the instrumentation engine (§3.2, §3.3)
* :mod:`repro.core.cancellation` — extension cancellations (§3.3, §4.3)
* :mod:`repro.core.locks` — the KFlex spin lock (§3.1, §3.4)
* :mod:`repro.core.sharing` — user-space heap sharing (§3.4, §4.4)
* :mod:`repro.core.runtime` — load/attach/invoke pipeline (Fig. 1)
"""

from repro.core.runtime import KFlexRuntime, LoadedExtension
from repro.core.heap import ExtensionHeap

__all__ = ["KFlexRuntime", "LoadedExtension", "ExtensionHeap"]
