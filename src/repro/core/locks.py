"""The KFlex spin lock (§3.1, §3.4).

A lock is an 8-byte word in the extension heap, so both extensions and
user-space code (through the mmap'd heap) operate on the same memory.
Unlike eBPF — where the verifier admits at most one held lock — KFlex
extensions may hold multiple lock instances simultaneously; safety
comes not from verification but from cancellation: a deadlocked or
starved extension stalls, the watchdog fires, and the object-table
unwind releases every lock the extension *does* hold (§3.3).

Functional simulation note: the runtime executes one extension at a
time, so a contended acquire can never succeed by waiting — the helper
models the runtime's spin loop by raising a stall, which the KFlex
runtime turns into a cancellation (exactly the paper's fate for an
extension spinning on a lock held by a preempted, non-cooperative user
thread, §4.4).  Contention *timing* is modelled by the discrete-event
simulator instead.  The paper's queue-based (MCS-style) ordering is
represented by a FIFO waiter count in the lock word's upper half, kept
so fairness-related statistics remain observable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HelperFault, LockStall

#: Lock word layout: low 32 bits = owner token (0 = free),
#: high 32 bits = waiter count (statistics / queue length).
OWNER_MASK = 0xFFFF_FFFF

#: Owner-token namespaces.
EXT_TOKEN_BASE = 0x100  # + cpu
USER_TOKEN_BASE = 0x1_0000  # + tid


@dataclass
class LockStats:
    acquisitions: int = 0
    contended: int = 0
    unlocks: int = 0
    forced_releases: int = 0  # via cancellation unwind


class LockManager:
    """All spin-lock operations for one heap, from both sides."""

    def __init__(self, heap, aspace):
        self.heap = heap
        self.aspace = aspace
        self.stats = LockStats()
        #: Optional :class:`repro.sim.faults.FaultInjector` — injected
        #: stalls model a holder that never releases (§4.4).
        self.injector = None
        #: Every lock word ever touched through this manager; the
        #: quiescence auditor walks it to assert no extension token is
        #: left behind after a cancellation.
        self._known: set[int] = set()

    # -- common --------------------------------------------------------------

    def _word(self, lock_addr: int) -> int:
        addr = self.heap.sanitize(lock_addr)
        # Helpers run as trusted kernel code: they fault heap pages in
        # rather than trapping (extensions' own accesses, by contrast,
        # cancel on unpopulated pages, §3.3 C2).
        self.heap.populate(addr, 8)
        self._known.add(addr)
        return addr

    def owner(self, lock_addr: int) -> int:
        return self.aspace.read_int(self._word(lock_addr), 8) & OWNER_MASK

    def init_lock(self, lock_addr: int) -> None:
        self.aspace.write_int(self._word(lock_addr), 0, 8)

    # -- extension side (helper implementations) --------------------------------

    def ext_lock(self, lock_addr: int, cpu: int) -> None:
        addr = self._word(lock_addr)
        if self.injector is not None:
            self.injector.at_lock(lock_addr)
        word = self.aspace.read_int(addr, 8)
        owner = word & OWNER_MASK
        token = EXT_TOKEN_BASE + cpu
        if owner == 0:
            self.aspace.write_int(addr, (word & ~OWNER_MASK) | token, 8)
            self.stats.acquisitions += 1
            return
        # Held (possibly by this very invocation: self-deadlock; or by a
        # preempted user thread).  The runtime's spin loop would never
        # make progress in the functional simulation -> stall.
        self.stats.contended += 1
        self.aspace.write_int(addr, word + (1 << 32), 8)  # queue a waiter
        raise LockStall(f"spin lock at {lock_addr:#x} held by token {owner:#x}")

    def ext_unlock(self, lock_addr: int, cpu: int) -> None:
        addr = self._word(lock_addr)
        word = self.aspace.read_int(addr, 8)
        owner = word & OWNER_MASK
        if owner != EXT_TOKEN_BASE + cpu:
            raise HelperFault(
                f"kflex_spin_unlock of lock at {lock_addr:#x} not held by "
                f"this CPU (owner {owner:#x})"
            )
        self.aspace.write_int(addr, word & ~OWNER_MASK, 8)
        self.stats.unlocks += 1

    def force_release(self, lock_addr: int, cpu: int) -> None:
        """Destructor used by the cancellation unwinder: release the
        lock regardless of waiter state (§3.3)."""
        addr = self._word(lock_addr)
        word = self.aspace.read_int(addr, 8)
        if word & OWNER_MASK == EXT_TOKEN_BASE + cpu:
            self.aspace.write_int(addr, word & ~OWNER_MASK, 8)
            self.stats.forced_releases += 1

    # -- auditing ------------------------------------------------------------

    def held_ext_locks(self, cpu: int | None = None) -> list[tuple[int, int]]:
        """``(lock word addr, owner token)`` for every known lock held
        by an extension (optionally: by the given CPU's token only).

        After a cancellation unwound, this must be empty for the dead
        invocation — the quiescence invariant (§3.3).
        """
        held = []
        for addr in sorted(self._known):
            owner = self.aspace.read_int(addr, 8) & OWNER_MASK
            if owner == 0 or owner >= USER_TOKEN_BASE:
                continue
            if cpu is not None and owner != EXT_TOKEN_BASE + cpu:
                continue
            held.append((addr, owner))
        return held

    # -- user side (§3.4) ---------------------------------------------------------

    def user_lock(self, lock_addr: int, thread) -> bool:
        """Try-acquire from user space; on success the thread's rseq
        critical-section counter is bumped so the scheduler knows to
        grant a time-slice extension (§4.4).  Returns False if held."""
        addr = self._word(lock_addr)
        word = self.aspace.read_int(addr, 8)
        if word & OWNER_MASK:
            self.stats.contended += 1
            return False
        self.aspace.write_int(
            addr, (word & ~OWNER_MASK) | (USER_TOKEN_BASE + thread.tid), 8
        )
        thread.rseq.enter_cs()
        self.stats.acquisitions += 1
        return True

    def user_unlock(self, lock_addr: int, thread) -> None:
        addr = self._word(lock_addr)
        word = self.aspace.read_int(addr, 8)
        if word & OWNER_MASK != USER_TOKEN_BASE + thread.tid:
            raise ValueError("user unlock of a lock this thread does not hold")
        self.aspace.write_int(addr, word & ~OWNER_MASK, 8)
        thread.rseq.leave_cs()
        self.stats.unlocks += 1
