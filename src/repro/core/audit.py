"""Quiescence auditing (§3.3): prove the kernel is clean after unwind.

The cancellation engine's contract is that after an unwind the kernel
is *quiescent*: every resource the dead invocation acquired has been
released.  The auditor turns that prose invariant into executable
checks, run after every cancellation when the debug flag is on
(mandatory in the test suite, opt-in elsewhere — the walk is O(heap
pages) and has no place on a production fast path):

1. **Locks** — no lock word in the extension's heap still carries an
   extension owner token.
2. **Sockets** — the net stack holds zero extension-owned references.
3. **Allocations** — every object malloc'd *by the cancelled
   invocation* that is still live must be reachable from the heap
   (linked into some structure before the fault).  A live allocation
   nothing references can never be freed by the program again, so the
   unwinder reclaims such orphans (:func:`reclaim_orphans` — the
   allocator acts as its own destructor) and the audit verifies none
   remain.
4. **Allocator metadata** — live-object bookkeeping is internally
   consistent with the heap bounds (the allocator's metadata lives
   outside the heap precisely so extensions cannot corrupt it).

Violations raise :class:`~repro.errors.QuiescenceViolation`, a
:class:`~repro.errors.KernelPanic` subclass, so any "no panic ever"
assertion also covers resource leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QuiescenceViolation

#: Module-level debug flag (see :func:`enable_quiescence_audit`): the
#: runtime consults it on every cancellation; tests force it on via an
#: autouse fixture.
_AUDIT_ENABLED = False


def enable_quiescence_audit(on: bool = True) -> None:
    global _AUDIT_ENABLED
    _AUDIT_ENABLED = bool(on)


def audit_enabled() -> bool:
    return _AUDIT_ENABLED


def find_orphans(allocator, heap, cpu: int) -> list[int]:
    """Live invocation-scoped allocations unreachable from the heap.

    An object the dead invocation malloc'd is fine if some heap
    structure points at it (the invocation published it — e.g. a
    memcached entry linked into its bucket before a later fault); live
    but referenced by nothing, it is a leak.  Reachability is a
    byte-scan of the populated heap pages for the object's
    little-endian address (pointers in extension structures are
    8-byte-aligned stores of full addresses).
    """
    candidates = [
        a for a in allocator.invocation_allocs(cpu) if allocator.is_live(a)
    ]
    if not candidates:
        return []
    data = heap.region.backing.data
    populated = heap.region.backing
    orphans = []
    for addr in candidates:
        needle = addr.to_bytes(8, "little")
        size = allocator.live_size(addr) or 0
        if _referenced(populated, data, heap.base, needle,
                       exclude=(addr, addr + size)):
            continue
        orphans.append(addr)
    return orphans


def reclaim_orphans(allocator, heap, cpu: int) -> list[int]:
    """Free orphaned invocation allocations; returns the freed addrs.

    Called from the unwind path (behind the audit flag): an allocation
    the cancelled invocation never published is unreachable to the
    program forever, so the runtime frees it — the allocator acting as
    the implicit destructor for ``kflex_malloc``.
    """
    orphans = find_orphans(allocator, heap, cpu)
    for addr in orphans:
        allocator.free(addr, cpu)
    return orphans


def _referenced(backing, data, base: int, needle: bytes,
                exclude: tuple[int, int]) -> bool:
    """Scan populated pages for ``needle`` outside ``exclude``."""
    from repro.kernel.addrspace import PAGE_SIZE

    if backing.all_populated:
        runs = [(0, len(data))]
    else:
        pages = sorted(backing.populated)
        runs = []
        for p in pages:
            start = p * PAGE_SIZE
            if runs and runs[-1][1] == start:
                runs[-1] = (runs[-1][0], start + PAGE_SIZE)
            else:
                runs.append((start, start + PAGE_SIZE))
    ex_lo, ex_hi = exclude[0] - base, exclude[1] - base
    for start, end in runs:
        # Overlap runs by 7 bytes so page-straddling pointers count.
        lo = max(0, start - 7)
        pos = data.find(needle, lo, end)
        while pos != -1:
            if not (ex_lo <= pos < ex_hi):
                return True
            pos = data.find(needle, pos + 1, end)
    return False


@dataclass
class QuiescenceReport:
    """Outcome of one post-cancellation audit."""

    reason: str
    cpu: int
    held_locks: list = field(default_factory=list)
    ext_sock_refs: int = 0
    orphaned_allocs: list = field(default_factory=list)
    metadata_errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.held_locks
            and self.ext_sock_refs == 0
            and not self.orphaned_allocs
            and not self.metadata_errors
        )

    def describe(self) -> str:
        problems = []
        if self.held_locks:
            problems.append(
                "held locks: "
                + ", ".join(f"{a:#x}(owner {o:#x})" for a, o in self.held_locks)
            )
        if self.ext_sock_refs:
            problems.append(f"{self.ext_sock_refs} live extension sock refs")
        if self.orphaned_allocs:
            problems.append(
                "orphaned allocations: "
                + ", ".join(f"{a:#x}" for a in self.orphaned_allocs)
            )
        if self.metadata_errors:
            problems.append("allocator metadata: " + "; ".join(self.metadata_errors))
        return "; ".join(problems) or "quiescent"


class QuiescenceAuditor:
    """Walks locks, sockets and the allocator after each cancellation."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.audits = 0
        self.violations = 0
        self.last_report: QuiescenceReport | None = None

    # -- entry points -----------------------------------------------------

    def audit(self, ext, record, cpu: int) -> QuiescenceReport:
        """Audit one extension right after its cancellation unwound.

        Raises :class:`QuiescenceViolation` when anything leaked.
        """
        report = QuiescenceReport(reason=record.reason, cpu=cpu)
        if ext.locks is not None:
            report.held_locks = ext.locks.held_ext_locks(cpu=cpu)
        report.ext_sock_refs = self.kernel.net.total_extension_refs()
        if ext.allocator is not None and ext.heap is not None:
            report.orphaned_allocs = self._orphans(ext.allocator, ext.heap, cpu)
            report.metadata_errors = self._metadata_errors(ext.allocator, ext.heap)
        self.audits += 1
        self.last_report = report
        if not report.ok:
            self.violations += 1
            raise QuiescenceViolation(
                f"non-quiescent after {record.reason} cancellation on "
                f"cpu {cpu}: {report.describe()}"
            )
        return report

    def sweep(self, runtime) -> QuiescenceReport:
        """End-of-campaign audit over a whole runtime: no extension
        lock tokens anywhere, no extension sock refs, metadata sane."""
        report = QuiescenceReport(reason="sweep", cpu=-1)
        for locks in runtime.lock_managers.values():
            report.held_locks.extend(locks.held_ext_locks())
        report.ext_sock_refs = self.kernel.net.total_extension_refs()
        for fd, allocator in runtime.allocators.items():
            heap = runtime.heaps[fd]
            report.metadata_errors.extend(self._metadata_errors(allocator, heap))
        self.audits += 1
        self.last_report = report
        if not report.ok:
            self.violations += 1
            raise QuiescenceViolation(f"sweep found leaks: {report.describe()}")
        return report

    # -- checks -----------------------------------------------------------

    def _orphans(self, allocator, heap, cpu: int) -> list[int]:
        return find_orphans(allocator, heap, cpu)

    @staticmethod
    def _metadata_errors(allocator, heap) -> list[str]:
        errors = []
        total = 0
        for addr in allocator.live_addrs():
            size = allocator.live_size(addr)
            total += size
            if not heap.contains(addr, size):
                errors.append(
                    f"live object {addr:#x}+{size} outside heap "
                    f"[{heap.base:#x}, {heap.base + heap.size:#x})"
                )
        if total != allocator.stats.live_bytes:
            errors.append(
                f"live_bytes {allocator.stats.live_bytes} != "
                f"sum of live objects {total}"
            )
        return errors
