"""The KFlex memory allocator: ``kflex_malloc`` / ``kflex_free`` (§4.1).

Mirrors the paper's structure: per-CPU caches of objects per size
class, refilled from a global free list, with heap pages populated on
demand as the bump pointer advances.  (The paper builds the backend on
jemalloc extent hooks and refills caches from a user-space thread; here
the refill path is ``maintain()``, which the runtime or an application
thread calls periodically, preserving the same cache/refill split.)

Object size metadata is kept in an allocator-side table — the moral
equivalent of slab metadata, deliberately *outside* the heap so that a
buggy or malicious extension scribbling over its own heap can corrupt
its data but never the allocator's invariants (extension correctness
vs. kernel safety, §3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelPanic
from repro.core.heap import ExtensionHeap, HEAP_HEADER_SIZE

SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)

#: Objects fetched from the global list per per-CPU cache refill.
REFILL_BATCH = 32

#: Low-water mark at which ``maintain()`` refills a per-CPU cache.
CACHE_LOW_WATER = 8


def _size_class(size: int) -> int | None:
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    return None


@dataclass
class AllocatorStats:
    allocs: int = 0
    frees: int = 0
    fast_path_allocs: int = 0  # served from the per-CPU cache
    refills: int = 0
    live_bytes: int = 0
    bump_bytes: int = 0


class KflexAllocator:
    """Size-class allocator over one extension heap."""

    def __init__(self, heap: ExtensionHeap, n_cpus: int = 8):
        self.heap = heap
        self.n_cpus = n_cpus
        #: cpu -> size class -> list of free object addresses
        self._cache: list[dict[int, list[int]]] = [
            {cls: [] for cls in SIZE_CLASSES} for _ in range(n_cpus)
        ]
        self._global: dict[int, list[int]] = {cls: [] for cls in SIZE_CLASSES}
        self._large_free: list[tuple[int, int]] = []  # (addr, size)
        self._bump = heap.base + HEAP_HEADER_SIZE
        self._sizes: dict[int, int] = {}  # live object addr -> class/size
        self.stats = AllocatorStats()
        #: Optional :class:`repro.sim.faults.FaultInjector` — injected
        #: allocation exhaustion makes malloc return NULL.
        self.injector = None
        #: cpu -> addresses handed out during the current invocation;
        #: activated per-CPU by :meth:`begin_invocation` (the quiescence
        #: auditor uses it to attribute allocations to a cancelled run).
        self._inv_allocs: dict[int, list[int]] = {}

    # -- allocation ----------------------------------------------------------

    def malloc(self, size: int, cpu: int = 0) -> int:
        """Allocate ``size`` bytes; returns a kernel heap address, or 0
        (NULL) when the heap is exhausted."""
        if size <= 0:
            return 0
        if self.injector is not None and self.injector.take_alloc_fail():
            # Injected exhaustion: same observable as a full heap.
            return 0
        cls = _size_class(size)
        self.stats.allocs += 1
        if cls is None:
            addr = self._malloc_large(size)
        else:
            cache = self._cache[cpu % self.n_cpus][cls]
            if cache:
                self.stats.fast_path_allocs += 1
                addr = cache.pop()
            else:
                addr = self._refill_and_pop(cpu % self.n_cpus, cls)
                if addr == 0:
                    return 0
            self._sizes[addr] = cls
            self.stats.live_bytes += cls
        if addr:
            track = self._inv_allocs.get(cpu % self.n_cpus)
            if track is not None:
                track.append(addr)
        return addr

    def _refill_and_pop(self, cpu: int, cls: int) -> int:
        self.stats.refills += 1
        cache = self._cache[cpu][cls]
        glob = self._global[cls]
        take = min(REFILL_BATCH, len(glob))
        if take:
            cache.extend(glob[-take:])
            del glob[-take:]
        while len(cache) < REFILL_BATCH:
            addr = self._bump_alloc(cls)
            if addr == 0:
                break
            cache.append(addr)
        return cache.pop() if cache else 0

    def _bump_alloc(self, size: int) -> int:
        # Never hand out the header or the static/global area; statics
        # may be reserved after the allocator is constructed (at
        # extension load), so re-check the floor on every bump.
        floor = self.heap.base + self.heap.static_end
        if self._bump < floor:
            self._bump = floor
        self.heap.alloc_started = True
        align = size if size & (size - 1) == 0 else 8
        addr = (self._bump + align - 1) & ~(align - 1)
        end = addr + size
        if end > self.heap.base + self.heap.size:
            return 0
        self.heap.populate(addr, size)
        self._bump = end
        self.stats.bump_bytes = self._bump - self.heap.base
        return addr

    def _malloc_large(self, size: int) -> int:
        size = (size + 4095) & ~4095
        for i, (addr, sz) in enumerate(self._large_free):
            if sz >= size:
                del self._large_free[i]
                if sz > size:
                    self._large_free.append((addr + size, sz - size))
                self._sizes[addr] = size
                self.stats.live_bytes += size
                return addr
        addr = self._bump_alloc(size)
        if addr:
            self._sizes[addr] = size
            self.stats.live_bytes += size
        return addr

    # -- free -----------------------------------------------------------------

    def free(self, addr: int, cpu: int = 0) -> None:
        """Release an object.  ``addr`` is sanitised first — a wild value
        from a buggy extension frees at worst one of its own objects."""
        if addr == 0:
            return
        addr = self.heap.sanitize(addr)
        size = self._sizes.pop(addr, None)
        if size is None:
            # Not a live object boundary: ignore, like a hardened
            # allocator would (the extension corrupted only itself).
            return
        self.stats.frees += 1
        self.stats.live_bytes -= size
        if size in SIZE_CLASSES:
            self._cache[cpu % self.n_cpus][size].append(addr)
        else:
            self._large_free.append((addr, size))

    # -- background maintenance (§4.1's refill thread) -------------------------

    def maintain(self) -> int:
        """Refill low per-CPU caches from the global list / bump region.

        Returns the number of objects moved; the paper runs this from a
        user-space thread spawned by the KFlex runtime.
        """
        moved = 0
        for cpu in range(self.n_cpus):
            for cls in SIZE_CLASSES:
                cache = self._cache[cpu][cls]
                while len(cache) < CACHE_LOW_WATER:
                    glob = self._global[cls]
                    if glob:
                        cache.append(glob.pop())
                    else:
                        addr = self._bump_alloc(cls)
                        if addr == 0:
                            break
                        cache.append(addr)
                    moved += 1
        return moved

    def is_live(self, addr: int) -> bool:
        return addr in self._sizes

    def live_objects(self) -> int:
        return len(self._sizes)

    def live_size(self, addr: int) -> int | None:
        """Size class of a live object, or None."""
        return self._sizes.get(addr)

    def live_addrs(self):
        return self._sizes.keys()

    # -- invocation attribution (quiescence auditing) ----------------------

    def begin_invocation(self, cpu: int = 0) -> None:
        """Start attributing allocations on ``cpu`` to a fresh invocation."""
        self._inv_allocs[cpu % self.n_cpus] = []

    def invocation_allocs(self, cpu: int = 0) -> list[int]:
        """Addresses malloc'd during the current invocation on ``cpu``."""
        return self._inv_allocs.get(cpu % self.n_cpus, [])
