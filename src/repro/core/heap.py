"""Extension heaps (§3.2, §4.1).

A heap is a power-of-two-sized region allocated in the vmalloc area
with an alignment request equal to its size — alignment is what makes
the SFI mask-and-add sanitisation sound — plus 32 KB guard pages on
each side, sized so that any 16-bit instruction offset added to a
sanitised pointer still lands in mapped (guard) space.

Physical pages are *not* preallocated: the allocator populates them on
demand and the pages are charged to the owning application's memcg.
Extension access to a still-unpopulated page raises a page fault, which
is a class-C2 cancellation point (§3.3).

Heaps are exposed as map-like file descriptors so user space can mmap
them (§3.4/§4.1); ``map_user()`` creates the user-space alias mapping
(also size-aligned, so translate-on-store composes with sanitisation).
"""

from __future__ import annotations

from repro.errors import KernelPanic, LoadError
from repro.kernel.addrspace import PAGE_SIZE
from repro.kernel.vmalloc import GUARD_SIZE
from repro.ebpf.maps import alloc_fd

#: Reserved header at the start of every heap.
#: [0:8)  terminate pointer cell (§3.3) — valid address, or 0 when the
#:        watchdog has armed a cancellation.
#: [8:16) the terminate target byte lives here.
HEAP_HEADER_SIZE = 64

#: Where user-space alias mappings are placed (size-aligned slots).
USER_MAP_BASE = 0x0000_4000_0000_0000


class ExtensionHeap:
    """One extension's fully-owned memory region."""

    def __init__(
        self,
        kernel,
        size: int,
        name: str = "heap",
        cgroup=None,
        *,
        sfi=None,
        striped_arena=None,
    ):
        from repro.core.sfi import KFLEX_SFI

        if size & (size - 1) or size < 2 * PAGE_SIZE:
            raise LoadError(
                f"heap size must be a power of two >= {2 * PAGE_SIZE}, got {size}"
            )
        self.kernel = kernel
        self.size = size
        self.mask = size - 1
        self.name = name
        self.cgroup = cgroup
        self.fd = alloc_fd()
        self.closed = False
        self.sfi = sfi or KFLEX_SFI
        self.sfi.check_heap_size(size)
        self.pkey = None

        if striped_arena is not None:
            # §6 heap-domain striping: dense packing, pkey isolation,
            # no guard pages.
            self._vm, self.pkey = striped_arena.alloc(size, name=name)
        else:
            self._vm = kernel.vmalloc.alloc(
                size, align=size, guard=GUARD_SIZE, name=name
            )
        self.base = self._vm.base
        if self.sfi.needs_alignment and self.base & self.mask:
            raise KernelPanic("arena returned unaligned heap")
        self.region = kernel.aspace.map_region(
            self.base, size, f"heap:{name}", populated=False
        )
        self.region.pkey = self.pkey
        self.user_base = 0
        self._user_region = None

        # Populate the header page and install the terminate pointer.
        self.populate(self.base, HEAP_HEADER_SIZE)
        self.terminate_cell = self.base
        self.terminate_target = self.base + 8
        kernel.aspace.write_int(self.terminate_cell, self.terminate_target, 8)
        self.static_end = HEAP_HEADER_SIZE
        #: Set by the allocator once dynamic objects exist; after that,
        #: growing the static area would corrupt live allocations.
        self.alloc_started = False

    def reserve_static(self, nbytes: int) -> int:
        """Reserve and populate a static/global area after the header.

        Extension globals (list heads, bucket arrays, locks — the
        ``.bss`` a compiler would emit) live here; the area is populated
        at load time exactly like the paper's load-time-initialised
        globals, while ``kflex_malloc`` objects stay demand-paged.
        Returns the base offset of the reserved area.
        """
        if self.alloc_started:
            raise LoadError(
                "static area cannot grow after kflex_malloc handed out objects"
            )
        off = (self.static_end + 7) & ~7
        if off + nbytes > self.size:
            raise LoadError("static area exceeds heap size")
        self.populate(self.base + off, nbytes)
        self.static_end = off + nbytes
        return off

    # -- SFI address math -------------------------------------------------

    def sanitize(self, addr: int) -> int:
        """The guard computation of the heap's SFI scheme (§3.2)."""
        return self.sfi.sanitize(self.base, self.size, addr)

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.base <= addr and addr + size <= self.base + self.size

    # -- demand paging ------------------------------------------------------

    def populate(self, addr: int, size: int) -> int:
        """Populate pages for [addr, addr+size); charges the memcg.

        Called by the KFlex allocator when handing out memory (§4.1),
        never by extensions directly.
        """
        new_pages = self.kernel.aspace.populate(addr, size)
        if new_pages and self.cgroup is not None:
            self.cgroup.charge_pages(new_pages)
        return new_pages

    @property
    def populated_bytes(self) -> int:
        return self.region.backing.populated_pages * PAGE_SIZE

    # -- user-space sharing (§3.4) -------------------------------------------

    def map_user(self) -> int:
        """Map the heap into the application's address range.

        The user base is aligned to the heap size so that
        ``user_base + (ptr & mask)`` and ``base + (ptr & mask)`` are
        consistent views of the same offset.
        """
        if self.user_base:
            return self.user_base
        base = USER_MAP_BASE
        while True:
            base = (base + self.size - 1) & ~self.mask
            if not self.kernel.aspace._overlaps(base, self.size):
                break
            base += self.size
        self._user_region = self.kernel.aspace.map_region(
            base, self.size, f"heap:{self.name}:user", backing=self.region.backing
        )
        self.user_base = base
        return base

    def kernel_to_user(self, addr: int) -> int:
        if not self.user_base:
            raise KernelPanic("heap not mapped into user space")
        return self.user_base + (addr & self.mask)

    def user_to_kernel(self, addr: int) -> int:
        return self.base + (addr & self.mask)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Drop the kernel side.  Matches §3.4: after a cancellation the
        heap survives until the fd is closed / the app exits."""
        if self.closed:
            return
        self.closed = True
        self.kernel.aspace.unmap(self.base)
        if self._user_region is not None:
            self.kernel.aspace.unmap(self.user_base)
        self.kernel.vmalloc.free(self._vm)
        if self.cgroup is not None:
            self.cgroup.uncharge_pages(self.region.backing.populated_pages)
