"""User-space views of extension heaps (§3.4, §4.4).

``SharedHeapView`` is what an application gets back from mmap'ing a
heap fd: typed loads/stores through the *user* mapping, pointer
translation both ways, and lock operations integrated with the rseq
time-slice-extension protocol.

With translate-on-store enabled (the default for shared heaps in this
repo, as in the paper's evaluation), every pointer the extension stores
into the heap is already a user-space address, so the application walks
extension-built data structures with zero translation effort — and the
extension's SFI guard maps user-space pointers back into the kernel
view on its next dereference, because both mappings are size-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelPanic
from repro.core.heap import ExtensionHeap
from repro.core.locks import LockManager


@dataclass
class SharedHeapView:
    """An application's handle on a shared extension heap."""

    heap: ExtensionHeap
    locks: LockManager
    thread: object  # kernel.sched.UserThread

    def __post_init__(self):
        if not self.heap.user_base:
            self.heap.map_user()

    # -- address translation ------------------------------------------------

    def to_user(self, ptr: int) -> int:
        """Translate any heap pointer (kernel or user view) to user VA."""
        return self.heap.kernel_to_user(ptr)

    def to_kernel(self, ptr: int) -> int:
        return self.heap.user_to_kernel(ptr)

    # -- typed access through the user mapping ---------------------------------

    def _user_addr(self, ptr: int) -> int:
        # Accept pointers in either view; normalise to the user mapping.
        addr = self.heap.user_base + (ptr & self.heap.mask)
        return addr

    def read(self, ptr: int, size: int) -> int:
        return self.heap.kernel.aspace.read_int(self._user_addr(ptr), size)

    def write(self, ptr: int, value: int, size: int) -> None:
        self.heap.kernel.aspace.write_int(self._user_addr(ptr), value, size)

    def read_bytes(self, ptr: int, size: int) -> bytes:
        return self.heap.kernel.aspace.read_bytes(self._user_addr(ptr), size)

    def write_bytes(self, ptr: int, data: bytes) -> None:
        self.heap.kernel.aspace.write_bytes(self._user_addr(ptr), data)

    # -- synchronisation (§3.4) ---------------------------------------------

    def spin_lock(self, lock_ptr: int, *, spin_limit: int = 1) -> bool:
        """Acquire a heap spin lock from user space.

        Acquisition bumps the thread's rseq counter so the scheduler
        grants a time-slice extension if the quantum expires inside the
        critical section (§4.4).
        """
        for _ in range(max(1, spin_limit)):
            if self.locks.user_lock(lock_ptr, self.thread):
                return True
        return False

    def spin_unlock(self, lock_ptr: int) -> None:
        self.locks.user_unlock(lock_ptr, self.thread)

    # -- lifetime --------------------------------------------------------------

    def close(self) -> None:
        """Drop the fd: only now may the heap itself be destroyed (§3.4)."""
        if self.thread.rseq.in_cs:
            raise KernelPanic("closing heap view while holding a spin lock")
        self.heap.close()
