"""Extension supervision: health tracking, quarantine, re-admission.

The paper's cancellation policy (§4.3) is binary: a non-terminating
extension is unloaded everywhere, for good.  A production runtime needs
the layer above that decision — which this module provides:

* **Health tracking** — per-extension cancellation counts by reason and
  a fault-rate window over recent invocations.
* **Quarantine** — an extension that stalls (watchdog / hard stall /
  lock or sleep stall) or faults too often inside the window is marked
  dead and unloaded; its heap survives (§3.4), so user space keeps
  serving from the shared data.
* **Exponential backoff re-admission** — each quarantine doubles the
  (simulated-clock) penalty; once it elapses, the next invocation
  attempt revives the extension.  Repeatedly-misbehaving extensions
  therefore spend asymptotically all their time quarantined without
  ever needing a permanent operator decision, and a transient fault
  storm (exactly what the chaos campaigns inject) heals on its own.

Graceful degradation is the application half of the story: the
``Supervised*`` wrappers in ``repro.apps`` route requests to the
userspace path while the extension is quarantined — the §3.4 semantics
(heap survives, service continues).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Reasons that quarantine immediately (the paper's global-cancellation
#: triggers): the extension provably cannot be trusted to terminate.
HARD_REASONS = ("watchdog", "hard_stall", "lock_stall", "sleep_stall")


@dataclass(frozen=True)
class QuarantinePolicy:
    """Knobs for the supervisor; defaults suit the test workloads."""

    #: Fault-rate window, in invocations.
    window: int = 64
    #: Faults within one window that trigger quarantine.
    max_faults: int = 8
    #: First-quarantine backoff, simulated nanoseconds.
    base_backoff_ns: int = 200_000
    #: Backoff multiplier per successive quarantine.
    backoff_factor: int = 4
    #: Backoff ceiling.
    max_backoff_ns: int = 1_000_000_000


@dataclass
class ExtHealth:
    """Supervisor-side state for one extension."""

    window_start: int = 0  # invocation count at window open
    window_faults: int = 0
    quarantines: int = 0
    readmissions: int = 0
    #: Re-admissions whose pipeline recompile was fully cache-served
    #: (the expected case: quarantine does not evict load artifacts).
    warm_readmissions: int = 0
    #: Simulated time at which re-admission is allowed; -1 = healthy.
    quarantined_until_ns: int = -1

    @property
    def quarantined(self) -> bool:
        return self.quarantined_until_ns >= 0


@dataclass
class SupervisorStats:
    quarantines: int = 0
    readmissions: int = 0
    warm_readmissions: int = 0  # recompile came entirely from the cache
    soft_faults: int = 0  # window-counted, below threshold
    reasons: dict = field(default_factory=dict)


class RestartBackoff:
    """Exponential backoff for *process-level* restarts (shard failover).

    The quarantine machinery above penalises a misbehaving extension on
    the simulated clock; a crashed shard worker is an OS-level event,
    so its restart penalty runs on the wall clock instead — but follows
    the same :class:`QuarantinePolicy` curve, so a restart storm (the
    same shard dying again and again) escalates exactly like a
    quarantine storm: base → ×factor → ... → ceiling.  A shard that
    stays up longer than ``storm_window_s`` between crashes resets its
    strike count, mirroring the fault-rate window.

    Each delay carries multiplicative jitter in ``[1, 1 + jitter)`` so
    simultaneous deaths (a replica set losing several nodes at once, or
    every shard of a host dying together) decorrelate instead of
    thundering back through the router's retry path in lockstep.

    ``clock`` and ``rng`` are injectable for deterministic tests.
    """

    def __init__(
        self,
        policy: QuarantinePolicy | None = None,
        *,
        storm_window_s: float = 30.0,
        jitter: float = 0.1,
        clock=None,
        rng=None,
    ):
        import random
        import time

        self.policy = policy or QuarantinePolicy()
        self.storm_window_s = storm_window_s
        self.jitter = jitter
        self.clock = clock or time.monotonic
        self.rng = rng or random.Random()
        self._strikes: dict[int, int] = {}
        self._last: dict[int, float] = {}
        self.restarts = 0

    def note_restart(self, shard_id: int) -> float:
        """Record one restart of ``shard_id``; returns the backoff delay
        (seconds) the restart must wait before coming back up."""
        now = self.clock()
        last = self._last.get(shard_id)
        if last is not None and now - last > self.storm_window_s:
            self._strikes[shard_id] = 0
        self._last[shard_id] = now
        strikes = self._strikes.get(shard_id, 0)
        self._strikes[shard_id] = strikes + 1
        self.restarts += 1
        delay_ns = min(
            self.policy.base_backoff_ns * self.policy.backoff_factor ** strikes,
            self.policy.max_backoff_ns,
        )
        if self.jitter > 0.0:
            delay_ns *= 1.0 + self.rng.uniform(0.0, self.jitter)
        return delay_ns / 1e9

    def strikes(self, shard_id: int) -> int:
        return self._strikes.get(shard_id, 0)


class ExtensionSupervisor:
    """Per-runtime supervisor; the runtime reports every cancellation."""

    def __init__(self, kernel, policy: QuarantinePolicy | None = None):
        self.kernel = kernel
        self.policy = policy or QuarantinePolicy()
        self._health: dict[int, ExtHealth] = {}  # id(ext) -> health
        self._exts: dict[int, object] = {}  # keep exts alive for id keys
        self.stats = SupervisorStats()
        #: Observers called as ``fn(event, ext, detail)`` with event
        #: ``"quarantine"`` (detail = reason) or ``"readmit"`` (detail =
        #: readmission count).  The network datapath subscribes to flip
        #: between fast-path and degraded serving without polling.
        self.listeners: list = []

    def _notify(self, event: str, ext, detail) -> None:
        for fn in list(self.listeners):
            fn(event, ext, detail)

    # -- bookkeeping ------------------------------------------------------

    def health(self, ext) -> ExtHealth:
        h = self._health.get(id(ext))
        if h is None:
            h = self._health[id(ext)] = ExtHealth()
            self._exts[id(ext)] = ext
        return h

    # -- cancellation intake ----------------------------------------------

    def note_cancellation(self, ext, reason: str, *, hard: bool = False) -> bool:
        """Record one cancellation; returns True if it quarantined.

        ``hard`` marks the paper's global-cancellation cases (the
        runtime passes it for :data:`HARD_REASONS` under the default
        global cancellation scope) — quarantine immediately.  Soft
        faults (contained page faults, helper errors) count against the
        fault-rate window and quarantine only when the extension
        misbehaves persistently.
        """
        self.stats.reasons[reason] = self.stats.reasons.get(reason, 0) + 1
        if hard:
            self.quarantine(ext, reason)
            return True
        h = self.health(ext)
        inv = ext.stats.invocations
        if inv - h.window_start >= self.policy.window:
            h.window_start = inv
            h.window_faults = 0
        h.window_faults += 1
        if h.window_faults >= self.policy.max_faults:
            self.quarantine(ext, reason)
            return True
        self.stats.soft_faults += 1
        return False

    # -- quarantine lifecycle ---------------------------------------------

    def quarantine(self, ext, reason: str = "") -> None:
        """Mark the extension dead with exponential-backoff re-admission."""
        h = self.health(ext)
        backoff = min(
            self.policy.base_backoff_ns
            * self.policy.backoff_factor ** h.quarantines,
            self.policy.max_backoff_ns,
        )
        h.quarantines += 1
        h.quarantined_until_ns = self.kernel.now_ns() + backoff
        h.window_faults = 0
        h.window_start = ext.stats.invocations
        self.stats.quarantines += 1
        if not ext.dead:
            ext.unload()
        self._notify("quarantine", ext, reason)

    def try_readmit(self, ext) -> bool:
        """Revive the extension if its backoff elapsed; False otherwise.

        Revival re-derives the extension's program through the staged
        compilation pipeline; since quarantine does not invalidate load
        artifacts, the recompile is normally served entirely from the
        content-addressed cache (counted as a *warm* re-admission).
        """
        h = self._health.get(id(ext))
        if h is None or not h.quarantined:
            return False
        if self.kernel.now_ns() < h.quarantined_until_ns:
            return False
        h.quarantined_until_ns = -1
        h.readmissions += 1
        self.stats.readmissions += 1
        pipeline = getattr(ext.runtime, "pipeline", None)
        warm_before = pipeline.stats.warm_loads if pipeline is not None else 0
        ext.revive()
        if pipeline is not None and pipeline.stats.warm_loads > warm_before:
            h.warm_readmissions += 1
            self.stats.warm_readmissions += 1
        self._notify("readmit", ext, h.readmissions)
        return True

    def status(self, ext) -> str:
        h = self._health.get(id(ext))
        if h is None:
            return "healthy"
        if h.quarantined:
            return f"quarantined until {h.quarantined_until_ns} ns"
        return "healthy" if not ext.dead else "dead"
