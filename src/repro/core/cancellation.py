"""Extension cancellations (§3.3, §4.3).

When an executing extension faults — at a back-edge ``*terminate``
access after the watchdog armed it (C1), or at a heap access to an
unpopulated page (C2), or inside a spinning lock helper — the runtime:

1. finds the object table of the faulting cancellation point (keyed by
   the *source* instruction the faulting instruction derives from);
2. walks the table, reading each recorded location (register or stack
   slot) from the faulted machine state and invoking the destructor for
   every non-NULL resource value — restoring the kernel to a quiescent
   state;
3. returns the hook's default code, optionally adjusted by the
   extension's cancel callback (restricted: a plain value-to-value
   function, no loops or further cancellation points).

Cancellation due to non-termination is global in scope: the extension
is marked dead and unloaded from all CPUs, but its heap survives until
user space closes the fd (§3.4, §4.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import KernelPanic
from repro.ebpf.interpreter import ExecResult, STACK_SIZE
from repro.ebpf.verifier.verifier import ObjTableEntry

#: Cancellation records kept per engine.  Long chaos campaigns cancel
#: thousands of times; the history is a diagnostic ring, not a ledger,
#: so it is bounded and overflow is counted instead of stored.
HISTORY_LIMIT = 256


@dataclass
class CancellationRecord:
    reason: str  # "watchdog" | "page_fault" | "lock_stall" | "hard_stall" | "helper"
    source_insn: int | None
    released: list[tuple[str, int]] = field(default_factory=list)  # (kind, value)
    default_ret: int = 0


@dataclass
class CancellationEngine:
    """Per-runtime unwinder; destructors are bound at load time."""

    aspace: object
    #: destructor helper id -> callable(value:int, cpu:int)
    destructors: dict[int, object] = field(default_factory=dict)
    #: Ring of the most recent records (maxlen HISTORY_LIMIT).
    history: deque = field(default_factory=lambda: deque(maxlen=HISTORY_LIMIT))
    #: Records evicted from the ring (total cancellations is
    #: ``len(history) + dropped``).
    dropped: int = 0
    #: Optional hook called as ``on_unwound(record, cpu)`` after every
    #: completed unwind — the quiescence auditor attaches here.
    on_unwound: object = None

    def bind_destructor(self, helper_id: int, fn) -> None:
        self.destructors[helper_id] = fn

    def unwind(
        self,
        result: ExecResult,
        table: tuple[ObjTableEntry, ...],
        *,
        cpu: int,
        reason: str,
        default_ret: int,
        cancel_callback=None,
    ) -> tuple[int, CancellationRecord]:
        """Release the resources in ``table`` from the faulted state and
        produce the value returned to the kernel."""
        if result.fault is None:
            raise KernelPanic("unwind of a successful execution")
        record = CancellationRecord(reason, result.fault.orig_idx, default_ret=default_ret)

        for entry in table:
            value = self._read_location(result, entry)
            if value == 0:
                continue  # NULL: the resource was never acquired on this path
            dtor = self.destructors.get(entry.destructor)
            if dtor is None:
                raise KernelPanic(
                    f"no destructor bound for helper {entry.destructor}"
                )
            dtor(value, cpu)
            record.released.append((entry.res_kind, value))

        ret = default_ret
        if cancel_callback is not None:
            ret = int(cancel_callback(default_ret))
        record.default_ret = ret
        if len(self.history) == self.history.maxlen:
            self.dropped += 1
        self.history.append(record)
        if self.on_unwound is not None:
            self.on_unwound(record, cpu)
        return ret, record

    def _read_location(self, result: ExecResult, entry: ObjTableEntry) -> int:
        if entry.loc_kind == "reg":
            return result.regs[entry.loc]
        if entry.loc_kind == "stack":
            addr = result.stack_base + STACK_SIZE + entry.loc
            return self.aspace.read_int(addr, 8)
        raise KernelPanic(f"unknown object-table location kind {entry.loc_kind!r}")
