"""SFI schemes: address-sanitisation strategies for extension heaps.

The paper's SFI (§3.2, §4.2) masks the pointer to a heap offset and
adds the size-aligned base — one ``AND`` against a reserved register,
with the base folded into indexed addressing.  §4.5 contrasts it with
the eBPF *arena* merged upstream in parallel, whose 32-bit-offset
scheme caps heaps at 4 GB; KFlex plans to upstream its own scheme to
lift that limit.  Both are implemented here so the ablation benchmarks
can compare them.

§6's "Scaling heap regions" sketch — Intel MPK protection keys marking
adjacent heap domains so guard pages (and their fragmentation) can be
dropped — is modelled by :class:`StripedHeapArena`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelPanic, LoadError, OutOfMemory
from repro.kernel.vmalloc import GUARD_SIZE, VMALLOC_BASE, VMALLOC_SIZE, VmallocRegion


@dataclass(frozen=True)
class SfiScheme:
    """One address-sanitisation strategy."""

    name: str
    #: Largest heap the scheme can express (None = unlimited).
    max_heap_size: int | None
    #: Native instructions per guard after JIT lowering.
    guard_cost: int
    #: Whether the heap base must be aligned to the heap size.
    needs_alignment: bool

    def sanitize(self, base: int, size: int, addr: int) -> int:
        raise NotImplementedError

    def check_heap_size(self, size: int) -> None:
        if self.max_heap_size is not None and size > self.max_heap_size:
            raise LoadError(
                f"{self.name}: heap of {size} bytes exceeds the scheme's "
                f"{self.max_heap_size}-byte limit"
            )


class KflexSfi(SfiScheme):
    """The paper's scheme: ``base + (addr & (size - 1))`` (§3.2).

    Works for any power-of-two size because the heap is allocated
    size-aligned; lowers to a single AND against reserved R9 with the
    base (R12) folded into the addressing mode (§4.2).
    """

    def __init__(self):
        super().__init__("kflex-mask", None, 1, True)

    def sanitize(self, base: int, size: int, addr: int) -> int:
        return base + (addr & (size - 1))


class Arena32Sfi(SfiScheme):
    """Upstream eBPF arena [19]: pointer arithmetic in 32 bits.

    The arena keeps user and kernel mappings 4 GB-aligned and truncates
    offsets to 32 bits, which bounds heaps at 4 GB (§4.5 — the
    limitation KFlex's scheme removes).  Guard cost is also one
    instruction (a 32-bit move zero-extends for free on x86-64).
    """

    MAX = 1 << 32

    def __init__(self):
        super().__init__("arena32", self.MAX, 1, True)

    def sanitize(self, base: int, size: int, addr: int) -> int:
        off = addr & 0xFFFF_FFFF
        # The arena is at most 4 GB and 4 GB-aligned: the 32-bit offset
        # can still escape a smaller arena, so the arena relies on its
        # surrounding guard region sized to the full 4 GB window.
        return base + (off & (size - 1))


KFLEX_SFI = KflexSfi()
ARENA32_SFI = Arena32Sfi()

SCHEMES = {s.name: s for s in (KFLEX_SFI, ARENA32_SFI)}


# ---------------------------------------------------------------------------
# MPK heap-domain striping (§6)
# ---------------------------------------------------------------------------

#: x86 MPK exposes 16 protection keys; key 0 is the kernel default.
N_PKEYS = 16


class StripedHeapArena:
    """Dense heap packing with MPK protection keys instead of guards.

    Same-size heaps are packed back-to-back (no guard pages, no
    alignment skip beyond the first), with adjacent heaps carrying
    distinct protection keys: a sanitised pointer plus a 16-bit
    instruction offset that lands in a neighbour trips the pkey check
    instead of a guard page.  Eliminates the §4.1 fragmentation at the
    cost of burning protection keys.
    """

    def __init__(self, base: int = VMALLOC_BASE + (VMALLOC_SIZE >> 1)):
        self.base = base
        #: size -> next free address within that size's stripe
        self._stripes: dict[int, int] = {}
        self._stripe_order: list[int] = []
        self._next_pkey = 1  # pkey 0 is the kernel's
        self.bytes_requested = 0
        self.bytes_consumed = 0

    def alloc(self, size: int, *, name: str = "heap") -> tuple[VmallocRegion, int]:
        """Returns (region, pkey).  Regions are size-aligned and packed
        contiguously within their size class."""
        if size & (size - 1):
            raise KernelPanic("striped arena wants power-of-two sizes")
        if size not in self._stripes:
            # Start a new stripe, aligned to the heap size.
            stripe_base = self.base + len(self._stripe_order) * (1 << 42)
            stripe_base = (stripe_base + size - 1) & ~(size - 1)
            self._stripes[size] = stripe_base
            self._stripe_order.append(size)
        addr = self._stripes[size]
        self._stripes[size] = addr + size  # dense: the next heap abuts
        pkey = self._next_pkey
        self._next_pkey += 1
        if self._next_pkey >= N_PKEYS:
            # Keys wrap: only *adjacent* heaps must differ, so reuse is
            # safe once the neighbourhood moved on.
            self._next_pkey = 1
        self.bytes_requested += size
        self.bytes_consumed += size
        region = VmallocRegion(addr, size, addr, size, name)
        return region, pkey

    @property
    def fragmentation_overhead(self) -> float:
        if self.bytes_requested == 0:
            return 0.0
        return self.bytes_consumed / self.bytes_requested - 1.0


def guard_arena_overhead(n_heaps: int, heap_size: int) -> float:
    """Address-space overhead of the guard-page arena for ``n_heaps``
    size-aligned heaps (the §4.1 fragmentation the striping removes)."""
    from repro.kernel.vmalloc import VmallocArena

    arena = VmallocArena()
    for i in range(n_heaps):
        arena.alloc(heap_size, align=heap_size, name=f"h{i}")
    return arena.fragmentation_overhead


def striped_arena_overhead(n_heaps: int, heap_size: int) -> float:
    arena = StripedHeapArena()
    for i in range(n_heaps):
        arena.alloc(heap_size, name=f"h{i}")
    return arena.fragmentation_overhead
