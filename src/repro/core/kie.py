"""Kie — the KFlex instrumentation engine (Fig. 1, step 2).

Consumes verified bytecode plus the verifier's analysis and produces
the instrumented program the JIT lowers:

* **SFI guards** (§3.2): a ``GUARD`` pseudo-instruction before every
  heap access the range analysis could not prove safe.  Guards on
  *loads* are skipped in performance mode (§4.2).
* **Cancellation points** (§3.3): a ``CANCELPT`` (the ``*terminate``
  heap access) before the back edge of every loop whose termination the
  verifier could not establish.
* **Translate-on-store** (§3.4): a ``TRANSLATE`` before stores of heap
  pointers when the heap is shared with user space.
* **Object-table spills** (§4.3): for acquisition sites whose object
  tables conflicted across paths, spill the resource to its designated
  stack slot on acquisition, zero the slot at entry and after release.
* **Relocations**: ``LD_IMM64`` map-fd and heap-offset pseudo
  immediates are concretised to runtime addresses, as the kernel does
  when loading eBPF programs.

Object tables are re-keyed so the runtime can unwind from a fault in
the *instrumented* program: every emitted instruction carries the index
of the source instruction it belongs to, and the tables stay keyed by
source index.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import LoadError
from repro.ebpf import isa
from repro.ebpf.isa import Insn
from repro.ebpf.program import Program, PSEUDO_HEAP_OFF, PSEUDO_MAP_FD
from repro.ebpf.rewrite import Rewriter
from repro.ebpf.verifier.verifier import Analysis, ObjTableEntry


@dataclass
class KieStats:
    guards_emitted: int = 0
    guards_elided: int = 0
    formation_guards: int = 0
    cancel_points: int = 0
    translates: int = 0
    spills: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class InstrumentedProgram:
    """Output of Kie, input to the JIT."""

    program: Program
    insns: list[Insn]
    analysis: Analysis
    #: source insn idx -> object table (for the cancellation unwinder).
    object_tables: dict[int, tuple[ObjTableEntry, ...]]
    stats: KieStats
    uses_heap: bool


def instrument(program: Program, analysis: Analysis, *, heap=None) -> InstrumentedProgram:
    """Run the full Kie pipeline over a verified program.

    Performance mode is decided during verification (it changes which
    accesses carry ``guard=True`` in the analysis), so Kie itself is
    mode-agnostic.
    """
    insns = _relocate(program, heap)
    rw = Rewriter(insns)
    stats = KieStats()

    # Tag original instructions with their own index so runtime faults
    # map back to source instructions (and thus object tables).
    for i, insn in enumerate(insns):
        rw.replace_insn(i, replace(insn, orig_idx=i))

    # Spill-slot prologue zeroing (§4.3).
    if analysis.spill_slots:
        prologue = [
            Insn(isa.BPF_ST | isa.BPF_MEM | isa.BPF_DW, 10, 0, off, 0)
            for off in sorted(analysis.spill_slots.values())
        ]
        rw.insert_before(0, prologue)

    for idx, insn in enumerate(insns):
        # SFI guards and translate-on-store.
        acc = analysis.accesses.get(idx)
        pre: list[Insn] = []
        if acc is not None and acc.guard:
            pre.append(Insn(isa.KFLEX_GUARD, acc.base_reg, orig_idx=idx))
            stats.guards_emitted += 1
            if acc.category == "formation":
                stats.formation_guards += 1
        elif acc is not None and acc.category == "elided":
            stats.guards_elided += 1
        if idx in analysis.translate_stores:
            pre.append(Insn(isa.KFLEX_TRANSLATE, insn.src, orig_idx=idx))
            stats.translates += 1
        # Back-edge cancellation points (C1, §3.3).
        if idx in analysis.cp_back_edges:
            pre.append(Insn(isa.KFLEX_CANCELPT, 0, 0, 0, idx, orig_idx=idx))
            stats.cancel_points += 1
        if pre:
            rw.insert_before(idx, pre)

        # Resource spills for conflicting object tables (§4.3).
        slot = analysis.spill_slots.get(idx)
        if slot is not None:
            from repro.ebpf.helpers import DECLARATIONS

            decl = DECLARATIONS[insn.imm]
            stats.spills += 1
            if decl.acquire_from == "ret":
                rw.insert_after(
                    idx,
                    [Insn(isa.BPF_STX | isa.BPF_MEM | isa.BPF_DW, 10, 0, slot,
                          orig_idx=idx)],
                )
            else:
                rw.insert_before(
                    idx,
                    [Insn(isa.BPF_STX | isa.BPF_MEM | isa.BPF_DW, 10, 1, slot,
                          orig_idx=idx)],
                )
        clears = analysis.release_clears.get(idx)
        if clears:
            if len(clears) == 1:
                # Single acquisition site: this release always frees it.
                rw.insert_after(
                    idx,
                    [Insn(isa.BPF_ST | isa.BPF_MEM | isa.BPF_DW, 10, 0,
                          clears[0], 0, orig_idx=idx)],
                )
            else:
                # Different paths release different spilled resources at
                # this call: clear exactly the slot holding the value
                # being released (in R1), before the call clobbers it.
                # R0 is dead here (the call overwrites it), so it serves
                # as scratch.
                seq: list[Insn] = []
                for off in clears:
                    seq.append(Insn(isa.BPF_LDX | isa.BPF_MEM | isa.BPF_DW,
                                    0, 10, off, 0, orig_idx=idx))
                    seq.append(Insn(isa.BPF_JMP | isa.BPF_JNE | isa.BPF_X,
                                    0, 1, 1, 0, orig_idx=idx))
                    seq.append(Insn(isa.BPF_ST | isa.BPF_MEM | isa.BPF_DW,
                                    10, 0, off, 0, orig_idx=idx))
                rw.insert_before(idx, seq)
                stats.spills += 0  # accounted at acquisition sites

    out = rw.resolve()
    return InstrumentedProgram(
        program=program,
        insns=out,
        analysis=analysis,
        object_tables=dict(analysis.object_tables),
        stats=stats,
        uses_heap=heap is not None,
    )


def uninstrumented(program: Program, *, heap=None) -> InstrumentedProgram:
    """The identity instrumentation: relocate pseudo-immediates, add
    nothing.

    This is the proper stage output for load flavours that skip
    verification (the §5.2 KMod baseline): no analysis, no guards, no
    cancellation points — and therefore empty object tables, because
    nothing will ever unwind.  Callers must use this instead of
    hand-rolling an :class:`InstrumentedProgram` with fabricated
    fields.
    """
    return InstrumentedProgram(
        program=program,
        insns=_relocate(program, heap),
        analysis=None,
        object_tables={},
        stats=KieStats(),
        uses_heap=heap is not None,
    )


def _relocate(program: Program, heap) -> list[Insn]:
    """Concretise LD_IMM64 pseudo immediates (map fds, heap offsets)."""
    out: list[Insn] = []
    for i, insn in enumerate(program.insns):
        if insn.is_ld_imm64 and insn.src == PSEUDO_MAP_FD:
            m = program.maps.get(insn.imm64)
            if m is None:
                raise LoadError(f"insn {i}: unknown map fd {insn.imm64}")
            out.append(replace(insn, src=0, imm64=m.region.base, orig_idx=i))
        elif insn.is_ld_imm64 and insn.src == PSEUDO_HEAP_OFF:
            if heap is None:
                raise LoadError(f"insn {i}: heap relocation without a heap")
            out.append(replace(insn, src=0, imm64=heap.base + (insn.imm64 or 0),
                               orig_idx=i))
        else:
            out.append(insn)
    return out
