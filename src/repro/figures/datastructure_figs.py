"""Figure 5: data-structure offload cost — KMod vs KFlex-PM vs KFlex (§5.2).

Single-threaded update/lookup/delete on five structures.  KMod is the
same bytecode loaded uninstrumented (the unsafe kernel module ceiling);
KFlex-PM is performance mode (§4.2: read guards elided).  Throughput is
1/mean-latency since operations are single-threaded and back-to-back.

Scale note: the paper's linked list holds 64 K elements; executing a
64 K-element traversal per sample in a Python interpreter is
prohibitive, so structures are warmed with ``n_elems`` (default 2048)
and costs scale linearly with traversal length — the KMod:KFlex ratio,
which is what Fig. 5 shows, is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures import ALL_STRUCTURES
from repro.sim.costs import UNITS_TO_NS


@dataclass
class OpResult:
    mean_ns: float

    @property
    def throughput_mops(self) -> float:
        return 1e3 / self.mean_ns if self.mean_ns else 0.0


VARIANTS = ("KMod", "KFlex-PM", "KFlex")


def _make(name: str, variant: str):
    rt = KFlexRuntime()
    cls = ALL_STRUCTURES[name]
    if variant == "KMod":
        return cls(rt, kmod=True)
    if variant == "KFlex-PM":
        return cls(rt, perf_mode=True)
    return cls(rt)


def measure_structure(
    name: str,
    *,
    n_elems: int = 2048,
    n_samples: int = 40,
    seed: int = 5,
    variants=VARIANTS,
) -> dict:
    """{variant: {op: OpResult}} for one structure."""
    out: dict[str, dict[str, OpResult]] = {}
    for variant in variants:
        ds = _make(name, variant)
        rng = random.Random(seed)
        is_sketch = name in ("countmin", "countsketch")
        for k in range(n_elems):
            ds.update(k, k ^ 0xABCD)
        per_op: dict[str, OpResult] = {}
        for op in ds.OPS:
            total_units = 0
            deleted: list[int] = []
            for _ in range(n_samples):
                k = rng.randrange(n_elems)
                if op == "update":
                    ds.update(k, rng.randrange(1 << 30))
                elif op == "lookup":
                    ds.lookup(k)
                else:
                    ds.delete(k)
                    deleted.append(k)
                total_units += ds.op_cost(op)
            # Keep occupancy stable for subsequent ops.
            for k in deleted:
                ds.update(k, k)
            per_op[op] = OpResult(total_units / n_samples * UNITS_TO_NS)
        out[variant] = per_op
    return out


def run_datastructure_comparison(
    *, structures=None, n_elems: int = 2048, n_samples: int = 40
) -> dict:
    """Regenerates Fig. 5: {structure: {variant: {op: OpResult}}}."""
    structures = structures or list(ALL_STRUCTURES)
    return {
        name: measure_structure(name, n_elems=n_elems, n_samples=n_samples)
        for name in structures
    }


def format_rows(results: dict) -> str:
    lines = ["Figure 5: single-threaded data-structure op latency (ns) / throughput (MOps/s)"]
    for name, by_variant in results.items():
        lines.append(f"-- {name}")
        ops = list(next(iter(by_variant.values())).keys())
        for op in ops:
            cells = []
            for variant in by_variant:
                r = by_variant[variant][op]
                cells.append(f"{variant}: {r.mean_ns:8.1f} ns ({r.throughput_mops:6.2f} M/s)")
            lines.append(f"   {op:<8s} " + "   ".join(cells))
        kmod = by_variant.get("KMod")
        kflex = by_variant.get("KFlex")
        if kmod and kflex:
            ratios = [
                kflex[op].mean_ns / kmod[op].mean_ns for op in ops if kmod[op].mean_ns
            ]
            avg = sum(ratios) / len(ratios)
            lines.append(f"   KFlex latency overhead vs KMod: {100 * (avg - 1):.1f}%")
    return "\n".join(lines)
