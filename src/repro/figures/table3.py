"""Table 3: SFI guards elided by the verifier's range analysis (§5.4).

For each data-structure operation, counts the guard *candidates* on
pointer manipulation (guards required at the formation of new heap
pointers are excluded, as in the paper — "those must not be optimized
away") and how many the range analysis elided.  Sketches are omitted
from the elision list for the same reason as the paper: every access
verifies statically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.runtime import KFlexRuntime
from repro.apps.datastructures import ALL_STRUCTURES


@dataclass
class TableRow:
    function: str
    total: int
    elided: int

    @property
    def pct(self) -> float:
        return 100.0 * self.elided / self.total if self.total else 100.0


def run_guard_elision_table(structures=None) -> list:
    structures = structures or ["linkedlist", "hashmap", "rbtree", "skiplist",
                                "countmin", "countsketch"]
    rows: list[TableRow] = []
    for name in structures:
        rt = KFlexRuntime()
        ds = ALL_STRUCTURES[name](rt)
        for op in ds.OPS:
            st = ds.op_stats(op)
            rows.append(TableRow(f"{name} {op}", st.guards_total, st.guards_elided))
    return rows


def format_table(rows: list) -> str:
    lines = [
        "Table 3: guard instructions elided by range analysis",
        f"{'Function':<24s} {'Total':>6s} {'Elided':>7s} {'%':>6s}",
    ]
    for r in rows:
        lines.append(f"{r.function:<24s} {r.total:>6d} {r.elided:>7d} {r.pct:>5.0f}%")
    pointer_rows = [r for r in rows if r.total]
    if pointer_rows:
        total = sum(r.total for r in pointer_rows)
        elided = sum(r.elided for r in pointer_rows)
        lines.append(f"{'average (pointer DS)':<24s} {total:>6d} {elided:>7d} "
                     f"{100.0 * elided / total:>5.0f}%")
    return "\n".join(lines)
