"""Experiment harnesses: one module per paper figure/table (§5).

Each harness builds the systems under comparison from scratch, measures
real per-request costs by executing the implementations, runs the
closed-loop simulator where the paper measures end-to-end, and returns
printable rows shaped like the paper's plots.  The ``benchmarks/``
tree wraps these in pytest-benchmark entry points.
"""

from repro.figures.memcached_figs import run_memcached_comparison
from repro.figures.redis_figs import run_redis_comparison, run_zadd_comparison
from repro.figures.datastructure_figs import run_datastructure_comparison
from repro.figures.codesign_fig import run_codesign_comparison
from repro.figures.table3 import run_guard_elision_table

__all__ = [
    "run_memcached_comparison",
    "run_redis_comparison",
    "run_zadd_comparison",
    "run_datastructure_comparison",
    "run_codesign_comparison",
    "run_guard_elision_table",
]
