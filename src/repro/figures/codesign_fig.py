"""Figure 7: co-designed Memcached with user-space GC (§5.3).

The fast path is identical to Fig. 2's KFlex-Memcached with stripe
locks; a user-space GC thread wakes every second and sweeps the shared
hash table stripe by stripe, holding the stripe's spin lock.  Requests
whose bucket stripe is currently locked wait for the GC to release it —
bounded by the time-slice-extension mechanics of §4.4.

The GC's per-stripe critical-section time is *measured* by running the
actual GC sweep (:class:`GarbageCollectedMemcached`) against a warmed
table; the simulator then applies that contention window every
GC period, with Zipf-skewed stripe weights (hot keys concentrate on a
few stripes).
"""

from __future__ import annotations

import random

from repro.core.runtime import KFlexRuntime
from repro.apps.memcached.gc_codesign import GarbageCollectedMemcached
from repro.kernel.sched import TIME_SLICE_EXTENSION_NS
from repro.sim.costs import PathCosts, UNITS_TO_NS
from repro.sim.loadgen import ClosedLoopSim, SimResult
from repro.workloads.kv import GET, KVWorkload, MIXES
from repro.figures.memcached_figs import (
    N_KEYS,
    WARM_FRACTION,
    N_COST_SAMPLES,
    SIGMA_XDP,
    ServiceModel,
    build_userspace_model,
)
from repro.apps.memcached.kflex_ext import N_STRIPES

GC_PERIOD_NS = 1_000_000_000  # Memcached's 1 s cadence

#: Python-interpreter execution is ~1000x slower than native; the GC
#: sweep cost is estimated from per-entry work instead: read + compare
#: + occasional unlink per entry, ~70 ns each on the testbed model.
GC_PER_ENTRY_NS = 70.0


def build_codesign_model(mix_ratio: float, *, seed: int = 51):
    """Measure the locked fast path and the real GC sweep."""
    rt = KFlexRuntime()
    gcm = GarbageCollectedMemcached(rt)
    gcm.warm(int(N_KEYS * WARM_FRACTION))
    wl = KVWorkload(n_keys=N_KEYS, get_ratio=mix_ratio, seed=seed)
    costs = PathCosts()
    get_ns, set_ns = [], []
    for _ in range(N_COST_SAMPLES):
        req = wl.next()
        if req.op == GET:
            gcm.get(req.key)
            units = costs.xdp_extension_request(gcm.mc.last_cost_units)
            get_ns.append(units * UNITS_TO_NS)
        else:
            gcm.set(req.key, req.value)
            units = costs.xdp_extension_request(gcm.mc.last_cost_units, tcp=True)
            set_ns.append(units * UNITS_TO_NS)
    # One real GC sweep to size the critical sections.
    evicted = gcm.run_gc(expire_below=0)  # scan-only sweep (nothing expires)
    entries_scanned = max(gcm.stats.scanned, 1)
    stripe_cs_ns = min(
        (entries_scanned / N_STRIPES) * GC_PER_ENTRY_NS,
        TIME_SLICE_EXTENSION_NS,  # §4.4 bounds a critical section
    )
    model = ServiceModel("KFlex+GC", get_ns or set_ns, set_ns or get_ns,
                         SIGMA_XDP, SIGMA_XDP)
    model.stripe_cs_ns = stripe_cs_ns
    return model


def _stripe_weights(seed: int = 9) -> list:
    """Zipf-ish probability that a request lands on each stripe: a few
    stripes carry the hot keys."""
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) for i in range(N_STRIPES)]
    rng.shuffle(weights)
    total = sum(weights)
    return [w / total for w in weights]


def gc_service_wrapper(base_fn, stripe_cs_ns: float, seed: int = 10):
    """Wrap a sampler with GC lock-contention windows."""
    weights = _stripe_weights(seed)
    gc_total_ns = stripe_cs_ns * N_STRIPES
    cum = []
    acc = 0.0
    for w in weights:
        acc += w
        cum.append(acc)

    def fn(now: float, rng: random.Random) -> float:
        service = base_fn(now, rng)
        phase = now % GC_PERIOD_NS
        if phase < gc_total_ns:
            gc_stripe = int(phase // stripe_cs_ns)
            # Which stripe does this request hash to?
            u = rng.random()
            lo, hi = 0, len(cum) - 1
            while lo < hi:
                mid = (lo + hi) // 2
                if cum[mid] < u:
                    lo = mid + 1
                else:
                    hi = mid
            if lo == gc_stripe:
                # Wait for the stripe's critical section to end.
                service += stripe_cs_ns - (phase % stripe_cs_ns)
        return service

    return fn


def run_codesign_comparison(
    *,
    n_servers: int = 8,
    n_clients: int = 64,
    total_requests: int = 12_000,
    mixes=None,
    seed: int = 4,
) -> dict:
    """Regenerates Fig. 7: {mix: {system: SimResult}}."""
    mixes = mixes or list(MIXES)
    out: dict[str, dict[str, SimResult]] = {}
    for mix in mixes:
        ratio = MIXES[mix]
        us = build_userspace_model(ratio)
        kf = build_codesign_model(ratio)
        out[mix] = {}
        for name, fn in (
            ("User space", us.sampler(ratio)),
            ("KFlex+GC", gc_service_wrapper(kf.sampler(ratio), kf.stripe_cs_ns)),
        ):
            sim = ClosedLoopSim(
                n_clients=n_clients,
                n_servers=n_servers,
                service_fn=fn,
                total_requests=total_requests,
                seed=seed,
            )
            out[mix][name] = sim.run()
    return out
