"""Figures 2 and 3: Memcached — user space vs BMC vs KFlex (§5.1).

Methodology mirrors the paper:

* three GET:SET mixes (90:10, 50:50, 10:90) over Zipfian(0.99) keys;
* 32 B keys and values (BMC cannot store values larger than keys);
* closed-loop clients against 8 (Fig 2) or 16 (Fig 3) server threads;
* throughput and p99 measured at the client.

Per-request costs are **measured**: each system's handler executes on
the simulated machine with JIT cost accounting; kernel-path constants
from :mod:`repro.sim.costs` complete the end-to-end service time:

* user space: full UDP (GET) / TCP (SET) stack + syscalls + context
  switch + the *same* table logic as uninstrumented bytecode (KMod);
* BMC: GET hits answered at XDP; GET misses and all SETs fall through
  to the user-space path (plus cache fill / invalidation);
* KFlex: everything at XDP, SETs via the TCP fast path (§5.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.runtime import KFlexRuntime
from repro.apps.memcached import protocol as P
from repro.apps.memcached.bmc import BmcCache
from repro.apps.memcached.kflex_ext import KFlexMemcached
from repro.apps.memcached.userspace import UserspaceMemcached
from repro.ebpf.program import XDP_TX
from repro.sim.costs import PathCosts, UNITS_TO_NS
from repro.sim.loadgen import ClosedLoopSim, SimResult
from repro.workloads.kv import GET, KVWorkload, MIXES

#: Log-normal service-time jitter: user-space paths see scheduler and
#: cache interference; XDP-resident paths are much steadier.
SIGMA_USER = 0.25
SIGMA_XDP = 0.08

N_KEYS = 4000
WARM_FRACTION = 0.6
BMC_CAPACITY = 1200  # look-aside cache smaller than the store
N_COST_SAMPLES = 400


@dataclass
class ServiceModel:
    """Empirical per-op service-time distributions (ns) for one system."""

    name: str
    get_ns: list
    set_ns: list
    sigma_get: float
    sigma_set: float

    def sampler(self, get_ratio: float):
        def fn(now: float, rng: random.Random) -> float:
            if rng.random() < get_ratio:
                base = rng.choice(self.get_ns)
                return base * rng.lognormvariate(0, self.sigma_get)
            base = rng.choice(self.set_ns)
            return base * rng.lognormvariate(0, self.sigma_set)

        return fn


def _sample_requests(workload: KVWorkload, n: int):
    return [workload.next() for _ in range(n)]


def build_kflex_model(
    mix_ratio: float, *, use_locks: bool = False, seed: int = 21
) -> ServiceModel:
    """Plain KFlex-Memcached (Fig. 2/3): per-RX-queue tables need no
    locks; the co-designed variant (Fig. 7) adds stripe locks to share
    the table with the GC thread."""
    rt = KFlexRuntime()
    mc = KFlexMemcached(rt, use_locks=use_locks)
    mc.warm(int(N_KEYS * WARM_FRACTION))
    wl = KVWorkload(n_keys=N_KEYS, get_ratio=mix_ratio, seed=seed)
    costs = PathCosts()
    get_ns, set_ns = [], []
    for req in _sample_requests(wl, N_COST_SAMPLES):
        if req.op == GET:
            mc.get(req.key)
            units = costs.xdp_extension_request(mc.last_cost_units)
            get_ns.append(units * UNITS_TO_NS)
        else:
            mc.set(req.key, req.value)
            units = costs.xdp_extension_request(mc.last_cost_units, tcp=True)
            set_ns.append(units * UNITS_TO_NS)
    return ServiceModel("KFlex", get_ns or set_ns, set_ns or get_ns,
                        SIGMA_XDP, SIGMA_XDP)


def build_userspace_model(mix_ratio: float, *, seed: int = 22) -> ServiceModel:
    """User-space Memcached: KMod table cost + full kernel I/O path."""
    rt = KFlexRuntime()
    app = KFlexMemcached(rt, kmod=True)  # the same table logic, bare
    app.warm(int(N_KEYS * WARM_FRACTION))
    wl = KVWorkload(n_keys=N_KEYS, get_ratio=mix_ratio, seed=seed)
    costs = PathCosts()
    get_ns, set_ns = [], []
    for req in _sample_requests(wl, N_COST_SAMPLES):
        if req.op == GET:
            app.get(req.key)
            units = costs.userspace_udp_request(app.last_cost_units)
            get_ns.append(units * UNITS_TO_NS)
        else:
            app.set(req.key, req.value)
            units = costs.userspace_tcp_request(app.last_cost_units)
            set_ns.append(units * UNITS_TO_NS)
    return ServiceModel("User space", get_ns or set_ns, set_ns or get_ns,
                        SIGMA_USER, SIGMA_USER)


def build_bmc_model(mix_ratio: float, *, seed: int = 23) -> ServiceModel:
    """BMC: hits at XDP; misses and SETs take the user-space path too."""
    rt = KFlexRuntime()
    bmc = BmcCache(rt, capacity=BMC_CAPACITY)
    us_rt = KFlexRuntime()
    us = KFlexMemcached(us_rt, kmod=True)  # user-space table behind BMC
    us.warm(int(N_KEYS * WARM_FRACTION))
    # Warm the look-aside cache with the hottest keys, as BMC's
    # response path would have.
    for k in range(BMC_CAPACITY):
        bmc.fill_from_response(k, k ^ 0x5A5A)
    wl = KVWorkload(n_keys=N_KEYS, get_ratio=mix_ratio, seed=seed)
    costs = PathCosts()
    get_ns, set_ns = [], []
    map_update_units = 110  # cache fill on the response path
    for req in _sample_requests(wl, N_COST_SAMPLES):
        if req.op == GET:
            verdict = bmc.probe(P.encode_get(req.key))
            probe_units = bmc.ext.stats.last_cost_units
            if verdict == XDP_TX:  # hit: answered from XDP
                units = costs.xdp_extension_request(probe_units)
            else:  # miss: full user-space path + cache fill
                us.get(req.key)
                units = (
                    costs.userspace_udp_request(us.last_cost_units)
                    + probe_units
                    + map_update_units
                )
                bmc.fill_from_response(req.key, req.key ^ 0x5A5A)
            get_ns.append(units * UNITS_TO_NS)
        else:
            bmc.probe(P.encode_set(req.key, req.value))  # invalidation
            probe_units = bmc.ext.stats.last_cost_units
            us.set(req.key, req.value)
            units = probe_units + costs.userspace_tcp_request(us.last_cost_units)
            set_ns.append(units * UNITS_TO_NS)
    model = ServiceModel("BMC", get_ns or set_ns, set_ns or get_ns,
                         SIGMA_XDP, SIGMA_USER)
    model.hit_rate = bmc.hit_rate
    return model


def run_memcached_comparison(
    *,
    n_servers: int = 8,
    n_clients: int = 64,
    total_requests: int = 12_000,
    mixes=None,
    seed: int = 1,
) -> dict:
    """Regenerates Fig. 2 (``n_servers=8``) / Fig. 3 (``n_servers=16``).

    Returns ``{mix: {system: SimResult}}``.
    """
    mixes = mixes or list(MIXES)
    out: dict[str, dict[str, SimResult]] = {}
    for mix in mixes:
        ratio = MIXES[mix]
        models = [
            build_userspace_model(ratio),
            build_bmc_model(ratio),
            build_kflex_model(ratio),
        ]
        out[mix] = {}
        for model in models:
            sim = ClosedLoopSim(
                n_clients=n_clients,
                n_servers=n_servers,
                service_fn=model.sampler(ratio),
                total_requests=total_requests,
                seed=seed,
            )
            out[mix][model.name] = sim.run()
    return out


def format_rows(results: dict, *, title: str) -> str:
    lines = [title]
    for mix, by_system in results.items():
        lines.append(f"-- GETs:SETs = {mix}")
        for name, res in by_system.items():
            lines.append("   " + res.row(name))
        kf = by_system.get("KFlex")
        us = by_system.get("User space")
        bm = by_system.get("BMC")
        if kf and us and bm:
            lines.append(
                f"   speedup: KFlex/BMC = {kf.throughput_mops / bm.throughput_mops:.2f}x, "
                f"KFlex/User = {kf.throughput_mops / us.throughput_mops:.2f}x; "
                f"p99: BMC/KFlex = {bm.p99_us / kf.p99_us:.2f}x, "
                f"User/KFlex = {us.p99_us / kf.p99_us:.2f}x"
            )
    return "\n".join(lines)
