"""Figures 4 and 6: Redis offload (§5.1, §5.2).

Fig. 4: GET/SET mixes — KFlex-Redis at sk_skb vs a parallel user-space
Redis (KeyDB).  All Redis requests run over TCP, so both systems pay
the TCP stack; KFlex saves the wakeup/syscall/copy tail, which is why
its gains are smaller than Memcached's.

Fig. 6: ZADD — single server thread (Redis's ZADD serialises on a
global hash-table lock), exercising on-demand skip-list allocation in
the fast path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.runtime import KFlexRuntime
from repro.apps.redis.kflex_ext import KFlexRedis
from repro.sim.costs import PathCosts, UNITS_TO_NS
from repro.sim.loadgen import ClosedLoopSim, SimResult
from repro.workloads.kv import GET, KVWorkload, MIXES
from repro.figures.memcached_figs import ServiceModel, SIGMA_USER, SIGMA_XDP

N_KEYS = 4000
WARM_FRACTION = 0.6
N_COST_SAMPLES = 400


def _build_model(
    *, kmod: bool, mix_ratio: float, name: str, seed: int
) -> ServiceModel:
    rt = KFlexRuntime()
    redis = KFlexRedis(rt, kmod=kmod)
    for k in range(int(N_KEYS * WARM_FRACTION)):
        redis.set(k, k ^ 0x5A5A)
    wl = KVWorkload(n_keys=N_KEYS, get_ratio=mix_ratio, seed=seed)
    costs = PathCosts()
    get_ns, set_ns = [], []
    for _ in range(N_COST_SAMPLES):
        req = wl.next()
        if req.op == GET:
            redis.get(req.key)
            units = redis.last_cost_units
        else:
            redis.set(req.key, req.value)
            units = redis.last_cost_units
        if kmod:  # user-space KeyDB: full TCP path both ways
            total = costs.userspace_tcp_request(units)
            sigma = SIGMA_USER
        else:  # extension at sk_skb: TCP stack, no user-space tail
            total = costs.skskb_extension_request(units)
            sigma = SIGMA_XDP
        (get_ns if req.op == GET else set_ns).append(total * UNITS_TO_NS)
    return ServiceModel(name, get_ns or set_ns, set_ns or get_ns, sigma, sigma)


def run_redis_comparison(
    *,
    n_servers: int = 8,
    n_clients: int = 64,
    total_requests: int = 12_000,
    mixes=None,
    seed: int = 2,
) -> dict:
    """Regenerates Fig. 4: {mix: {system: SimResult}}."""
    mixes = mixes or list(MIXES)
    out: dict[str, dict[str, SimResult]] = {}
    for mix in mixes:
        ratio = MIXES[mix]
        models = [
            _build_model(kmod=True, mix_ratio=ratio, name="User space", seed=31),
            _build_model(kmod=False, mix_ratio=ratio, name="KFlex", seed=32),
        ]
        out[mix] = {}
        for model in models:
            sim = ClosedLoopSim(
                n_clients=n_clients,
                n_servers=n_servers,
                service_fn=model.sampler(ratio),
                total_requests=total_requests,
                seed=seed,
            )
            out[mix][model.name] = sim.run()
    return out


def _build_zadd_model(*, kmod: bool, name: str, seed: int) -> ServiceModel:
    rt = KFlexRuntime()
    redis = KFlexRedis(rt, kmod=kmod)
    rng = random.Random(seed)
    # Warm: a few hundred sorted sets of mixed size.
    for zkey in range(200):
        for _ in range(rng.randint(1, 20)):
            redis.zadd(zkey, rng.randint(0, 1 << 20), rng.randint(0, 1 << 20))
    costs = PathCosts()
    samples = []
    for _ in range(N_COST_SAMPLES):
        zkey = rng.randint(0, 249)  # some new sets appear in the fast path
        redis.zadd(zkey, rng.randint(0, 1 << 20), rng.randint(0, 1 << 20))
        units = redis.last_cost_units
        if kmod:
            total = costs.userspace_tcp_request(units)
            sigma = SIGMA_USER
        else:
            total = costs.skskb_extension_request(units)
            sigma = SIGMA_XDP
        samples.append(total * UNITS_TO_NS)
    return ServiceModel(name, samples, samples, sigma, sigma)


def run_zadd_comparison(
    *, n_clients: int = 32, total_requests: int = 10_000, seed: int = 3
) -> dict:
    """Regenerates Fig. 6: ZADD on a single server thread."""
    out = {}
    for model in (
        _build_zadd_model(kmod=True, name="Redis", seed=41),
        _build_zadd_model(kmod=False, name="KFlex", seed=42),
    ):
        sim = ClosedLoopSim(
            n_clients=n_clients,
            n_servers=1,
            service_fn=model.sampler(0.0),
            total_requests=total_requests,
            seed=seed,
        )
        out[model.name] = sim.run()
    return out
