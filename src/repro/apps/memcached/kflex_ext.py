"""KFlex-Memcached: GET **and** SET handled at the XDP hook (§5.1).

The whole fast path lives in one extension: packet parse (verified
direct packet access), 32-byte key hash and compare, chained hash table
in the extension heap, and on-demand allocation of entries with
``kflex_malloc`` — the capability BMC lacks, which is why BMC cannot
offload SETs (§5.1).

Variants:

* ``use_locks`` — stripe spin locks protecting buckets, required when
  multiple server CPUs or a co-designed user-space thread (§5.3) touch
  the table.
* ``share_heap`` — maps the heap into user space with translate-on-
  store (§3.4), enabling the garbage-collection co-design.

SET requests arrive over TCP in the paper; the cost harness accounts
for that with the XDP TCP fast path (§5.1) when computing end-to-end
service times.
"""

from __future__ import annotations

from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.program import Program, XDP_TX, XDP_PASS
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_SPIN_LOCK, KFLEX_SPIN_UNLOCK
from repro.apps.memcached import protocol as P
from repro.apps.datastructures.common import HASH_CONST

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

ENTRY = Struct(k0=8, k1=8, k2=8, k3=8, v0=8, v1=8, v2=8, v3=8, next=8)

BUCKET_BITS = 12
N_STRIPES = 64
LOCKS_OFF = 0
BUCKETS_OFF = N_STRIPES * 8
STATIC_BYTES = BUCKETS_OFF + (1 << BUCKET_BITS) * 8

SLOT_BUCKET = -8
SLOT_HEAD = -16
SLOT_LOCK = -24

_KEY_FIELDS = (ENTRY.k0, ENTRY.k1, ENTRY.k2, ENTRY.k3)
_VAL_FIELDS = (ENTRY.v0, ENTRY.v1, ENTRY.v2, ENTRY.v3)


def build_memcached_program(
    static: int, *, use_locks: bool = False, heap_size: int = 1 << 26
) -> Program:
    m = MacroAsm()
    # Prologue: parse and bounds-check the packet.
    m.ldx(R6, R1, 0, 8)   # data
    m.ldx(R3, R1, 8, 8)   # data_end
    m.mov(R2, R6)
    m.add(R2, P.PKT_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_PASS)
    m.exit()
    m.label(ok)

    # Hash the 32-byte key: xor-fold then multiplicative hash.
    m.ldx(R9, R6, P.KEY_OFF, 8)
    for off in (8, 16, 24):
        m.ldx(R2, R6, P.KEY_OFF + off, 8)
        m.xor(R9, R2)
    m.ld_imm64(R2, HASH_CONST)
    m.mul(R9, R2)
    m.rsh(R9, 64 - BUCKET_BITS)

    if use_locks:
        # Stripe lock: bucket index low bits select one of 64 locks.
        m.mov(R2, R9)
        m.and_(R2, N_STRIPES - 1)
        m.lsh(R2, 3)
        m.heap_addr(R3, static + LOCKS_OFF)
        m.add(R2, R3)
        m.stx(R10, R2, SLOT_LOCK, 8)
        m.mov(R7, R2)
        m.call_helper(KFLEX_SPIN_LOCK, R7)

    # Bucket address and chain head.
    m.lsh(R9, 3)
    m.heap_addr(R2, static + BUCKETS_OFF)
    m.add(R9, R2)           # bucket cell (elided: static area)
    m.stx(R10, R9, SLOT_BUCKET, 8)
    m.ldx(R7, R9, 0, 8)     # chain head
    m.stx(R10, R7, SLOT_HEAD, 8)

    def emit_unlock():
        if use_locks:
            m.ldx(R1, R10, SLOT_LOCK, 8)
            m.call(KFLEX_SPIN_UNLOCK)

    def emit_reply(op_byte: int, status: int, ret: int):
        m.st_imm(R6, 0, op_byte, 1)
        m.st_imm(R6, 1, status, 1)
        emit_unlock()
        m.mov(R0, ret)
        m.exit()

    # Dispatch on the op byte.
    m.ldx(R2, R6, 0, 1)
    set_path = m.fresh_label("set")
    m.jcc("==", R2, P.OP_SET, set_path)

    # ---- GET ------------------------------------------------------------
    with m.while_("!=", R7, 0) as walk:
        nxt = m.fresh_label("next_get")
        for i, fld in enumerate(_KEY_FIELDS):
            m.ldf(R4, R7, fld)  # first load guards/sanitises R7
            m.ldx(R5, R6, P.KEY_OFF + 8 * i, 8)
            m.jcc("!=", R4, R5, nxt)
        # Hit: copy the value into the packet reply area.
        for i, fld in enumerate(_VAL_FIELDS):
            m.ldf(R4, R7, fld)
            m.stx(R6, R4, P.VAL_OFF + 8 * i, 8)
        emit_reply(P.REPLY_FLAG | P.OP_GET, P.STATUS_HIT, XDP_TX)
        m.label(nxt)
        m.ldf(R7, R7, ENTRY.next)
    emit_reply(P.REPLY_FLAG | P.OP_GET, P.STATUS_MISS, XDP_TX)

    # ---- SET ------------------------------------------------------------
    m.label(set_path)
    with m.while_("!=", R7, 0) as walk:
        nxt = m.fresh_label("next_set")
        for i, fld in enumerate(_KEY_FIELDS):
            m.ldf(R4, R7, fld)
            m.ldx(R5, R6, P.KEY_OFF + 8 * i, 8)
            m.jcc("!=", R4, R5, nxt)
        # In-place value update.
        for i, fld in enumerate(_VAL_FIELDS):
            m.ldx(R4, R6, P.VAL_OFF + 8 * i, 8)
            m.stf(R7, fld, R4)
        emit_reply(P.REPLY_FLAG | P.OP_SET, P.STATUS_HIT, XDP_TX)
        m.label(nxt)
        m.ldf(R7, R7, ENTRY.next)
    # Miss: allocate a new entry — the step eBPF cannot express (§5.1).
    m.call_helper(KFLEX_MALLOC, ENTRY.size)
    with m.if_("==", R0, 0):
        emit_reply(P.REPLY_FLAG | P.OP_SET, P.STATUS_MISS, XDP_TX)
    m.mov(R7, R0)
    for i, fld in enumerate(_KEY_FIELDS):
        m.ldx(R4, R6, P.KEY_OFF + 8 * i, 8)
        m.stf(R7, fld, R4)
    for i, fld in enumerate(_VAL_FIELDS):
        m.ldx(R4, R6, P.VAL_OFF + 8 * i, 8)
        m.stf(R7, fld, R4)
    m.ldx(R4, R10, SLOT_HEAD, 8)
    m.stf(R7, ENTRY.next, R4)
    m.ldx(R9, R10, SLOT_BUCKET, 8)
    m.stx(R9, R7, 0, 8)
    emit_reply(P.REPLY_FLAG | P.OP_SET, P.STATUS_HIT, XDP_TX)

    return Program(
        "kflex_memcached", m.assemble(), hook="xdp", heap_size=heap_size
    )


class KFlexMemcached:
    """Loaded KFlex-Memcached with Python-side request helpers."""

    def __init__(
        self,
        runtime,
        *,
        use_locks: bool = False,
        share_heap: bool = False,
        perf_mode: bool = False,
        kmod: bool = False,
        heap_size: int = 1 << 26,
        name: str = "kvmemc",
        quantum_units: int | None = None,
    ):
        self.runtime = runtime
        self.heap = runtime.create_heap(heap_size, name=name)
        self.static = self.heap.reserve_static(STATIC_BYTES)
        prog = build_memcached_program(
            self.static, use_locks=use_locks, heap_size=heap_size
        )
        if kmod:
            self.ext = runtime.load_kmod(prog, heap=self.heap)
        else:
            self.ext = runtime.load(
                prog,
                heap=self.heap,
                attach=False,
                perf_mode=perf_mode,
                share_heap=share_heap,
                quantum_units=quantum_units,
            )
        self.use_locks = use_locks

    # -- request plumbing ---------------------------------------------------

    def _roundtrip(self, pkt: bytes, cpu: int = 0) -> bytes:
        ctx = self.ext.xdp_ctx(pkt, cpu)
        verdict = self.ext.invoke(ctx, cpu=cpu)
        reply = self.runtime.kernel.net.read_packet(cpu, P.PKT_SIZE)
        self.last_verdict = verdict
        return reply

    def handle(self, pkt: bytes, cpu: int = 0) -> bytes:
        """Serve one wire packet, returning the reply bytes.

        Same signature as ``UserspaceMemcached.handle`` so a bare KMod
        load can stand in as the stock server behind a real socket —
        the userspace baseline then executes the identical table
        bytecode and differs from the fast path only in the path taken
        (the comparison convention of :mod:`repro.apps.memcached.userspace`).
        """
        return self._roundtrip(pkt, cpu)

    def get(self, key_id: int, cpu: int = 0):
        reply = self._roundtrip(P.encode_get(key_id), cpu)
        return P.decode_reply(reply)

    def set(self, key_id: int, value_id: int, cpu: int = 0) -> bool:
        reply = self._roundtrip(P.encode_set(key_id, value_id), cpu)
        hit, _ = P.decode_reply(reply)
        return hit

    def warm(self, n_keys: int, cpu: int = 0) -> None:
        for k in range(n_keys):
            self.set(k, k ^ 0x5A5A, cpu)

    @property
    def last_cost_units(self) -> int:
        return self.ext.stats.last_cost_units

    # -- co-design surface (§5.3) ----------------------------------------------

    def bucket_cell_user(self, idx: int) -> int:
        """User-space address of bucket ``idx`` (for the GC thread)."""
        return self.heap.user_base + self.static + BUCKETS_OFF + idx * 8

    def stripe_lock_addr(self, bucket_idx: int) -> int:
        return self.static + LOCKS_OFF + (bucket_idx & (N_STRIPES - 1)) * 8

    @property
    def n_buckets(self) -> int:
        return 1 << BUCKET_BITS
