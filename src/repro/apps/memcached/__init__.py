"""Memcached three ways (§5.1, §5.3).

* :mod:`~repro.apps.memcached.userspace` — the stock server.
* :mod:`~repro.apps.memcached.bmc` — BMC [42]: an eBPF look-aside cache
  that can only serve GETs from a preallocated kernel map.
* :mod:`~repro.apps.memcached.kflex_ext` — the full offload: GET *and*
  SET processed in a single KFlex extension at the XDP hook.
* :mod:`~repro.apps.memcached.gc_codesign` — §5.3's co-design: the fast
  path stays in the kernel while a user-space thread garbage-collects
  the shared heap through shared pointers.
"""

from repro.apps.memcached.protocol import (
    OP_GET,
    OP_SET,
    REPLY_FLAG,
    encode_get,
    encode_set,
    encode_reply,
    decode_reply,
    decode_request,
)
from repro.apps.memcached.kflex_ext import KFlexMemcached
from repro.apps.memcached.bmc import BmcCache
from repro.apps.memcached.userspace import UserspaceMemcached

__all__ = [
    "OP_GET",
    "OP_SET",
    "REPLY_FLAG",
    "encode_get",
    "encode_set",
    "encode_reply",
    "decode_reply",
    "decode_request",
    "KFlexMemcached",
    "BmcCache",
    "UserspaceMemcached",
]
