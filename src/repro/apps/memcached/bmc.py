"""BMC [42]: the eBPF baseline for Memcached (§5.1).

A look-aside cache at XDP built strictly within vanilla eBPF's limits,
verified here in **eBPF mode** (no heap, no malloc, no unbounded loops):

* GETs probe a *preallocated* kernel hash map; hits answer from XDP
  (XDP_TX), misses fall through to user space (XDP_PASS), which serves
  the request and refreshes the cache from the response path.
* SETs cannot be offloaded — processing them needs dynamic allocation,
  which eBPF does not provide (§5.1) — so the extension only
  *invalidates* the cached entry and passes the packet up.
* Values must not exceed keys (the paper shrinks values to 32 B for
  exactly this reason); the cache map stores fixed 32 B values.
"""

from __future__ import annotations

from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.maps import HashMap
from repro.ebpf.program import Program, XDP_TX, XDP_PASS
from repro.ebpf.helpers import BPF_MAP_LOOKUP_ELEM, BPF_MAP_DELETE_ELEM
from repro.apps.memcached import protocol as P

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10


def build_bmc_program(cache: HashMap) -> Program:
    m = MacroAsm()
    # Parse + bounds check.
    m.ldx(R6, R1, 0, 8)
    m.ldx(R3, R1, 8, 8)
    m.mov(R2, R6)
    m.add(R2, P.PKT_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_PASS)
    m.exit()
    m.label(ok)

    # Copy the 32-byte key to the stack (map key argument).
    for i in range(4):
        m.ldx(R4, R6, P.KEY_OFF + 8 * i, 8)
        m.stx(R10, R4, -32 + 8 * i, 8)

    m.ldx(R7, R6, 0, 1)  # op byte
    set_path = m.fresh_label("set")
    m.jcc("==", R7, P.OP_SET, set_path)

    # ---- GET: look-aside probe ------------------------------------------
    m.map_ptr(R1, cache)
    m.mov(R2, R10)
    m.add(R2, -32)
    m.call(BPF_MAP_LOOKUP_ELEM)
    miss = m.fresh_label("miss")
    m.jcc("==", R0, 0, miss)
    # Hit: copy the cached value into the reply and transmit from XDP.
    for i in range(4):
        m.ldx(R4, R0, 8 * i, 8)
        m.stx(R6, R4, P.VAL_OFF + 8 * i, 8)
    m.st_imm(R6, 0, P.REPLY_FLAG | P.OP_GET, 1)
    m.st_imm(R6, 1, P.STATUS_HIT, 1)
    m.mov(R0, XDP_TX)
    m.exit()
    m.label(miss)
    m.mov(R0, XDP_PASS)  # user space serves the miss
    m.exit()

    # ---- SET: invalidate-and-pass ------------------------------------------
    m.label(set_path)
    m.map_ptr(R1, cache)
    m.mov(R2, R10)
    m.add(R2, -32)
    m.call(BPF_MAP_DELETE_ELEM)
    m.mov(R0, XDP_PASS)
    m.exit()

    return Program("bmc", m.assemble(), hook="xdp", maps={cache.fd: cache})


class BmcCache:
    """BMC loaded in eBPF mode, plus the user-space cache-fill path."""

    def __init__(self, runtime, *, capacity: int = 4096, name: str = "bmc"):
        self.runtime = runtime
        kernel = runtime.kernel
        self.cache = HashMap(
            kernel.aspace,
            kernel.vmalloc,
            key_size=P.KEY_SIZE,
            value_size=P.VAL_SIZE,
            max_entries=capacity,
            name=name,
        )
        self.ext = runtime.load(build_bmc_program(self.cache), mode="ebpf",
                                attach=False)
        self.hits = 0
        self.misses = 0

    def probe(self, pkt: bytes, cpu: int = 0) -> int:
        """Run the extension on one packet; returns the XDP verdict."""
        ctx = self.ext.xdp_ctx(pkt, cpu)
        verdict = self.ext.invoke(ctx, cpu=cpu)
        if pkt[0] == P.OP_GET:
            if verdict == XDP_TX:
                self.hits += 1
            else:
                self.misses += 1
        return verdict

    def read_reply(self, cpu: int = 0) -> bytes:
        net = self.runtime.kernel.net
        return self.runtime.kernel.aspace.read_bytes(
            net._pkt_slots[cpu], P.PKT_SIZE
        )

    def fill_from_response(self, key_id: int, value_id: int) -> bool:
        """The user-space response path refreshes the cache (BMC §3)."""
        return self.cache.update_or_full(
            P.key_bytes(key_id), P.value_bytes(value_id)
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
