"""Wire format for the Memcached experiments (§5.1).

A fixed-layout binary protocol with 32 B keys and 32 B values (the
paper reduces value size to the key size because BMC cannot handle
larger values):

====== ====== =====================================
offset size   field
====== ====== =====================================
0      1      op (0 = GET, 1 = SET; reply sets 0x80)
1      7      pad / status
8      32     key
40     32     value (SET request, GET reply)
====== ====== =====================================

Keys are derived from integer ids: the id in the first 8 bytes, a salt
pattern in the rest, so extensions exercise full 32-byte compares.
"""

from __future__ import annotations

import struct

OP_GET = 0
OP_SET = 1
REPLY_FLAG = 0x80
STATUS_HIT = 1
STATUS_MISS = 0

PKT_SIZE = 72
KEY_OFF = 8
VAL_OFF = 40
KEY_SIZE = 32
VAL_SIZE = 32

_SALT = bytes(range(24))


def key_bytes(key_id: int) -> bytes:
    return struct.pack("<Q", key_id & (1 << 64) - 1) + _SALT


def value_bytes(value_id: int) -> bytes:
    return struct.pack("<Q", value_id & (1 << 64) - 1) + bytes(24)


def encode_get(key_id: int) -> bytes:
    return bytes([OP_GET]) + bytes(7) + key_bytes(key_id) + bytes(VAL_SIZE)


def encode_set(key_id: int, value_id: int) -> bytes:
    return bytes([OP_SET]) + bytes(7) + key_bytes(key_id) + value_bytes(value_id)


def decode_reply(pkt: bytes) -> tuple[bool, int | None]:
    """Returns (hit, value_id or None) from a reply packet."""
    if len(pkt) < PKT_SIZE or not pkt[0] & REPLY_FLAG:
        raise ValueError("not a reply packet")
    hit = pkt[1] == STATUS_HIT
    if not hit:
        return False, None
    return True, struct.unpack_from("<Q", pkt, VAL_OFF)[0]
