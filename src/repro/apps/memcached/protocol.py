"""Wire format for the Memcached experiments (§5.1).

A fixed-layout binary protocol with 32 B keys and 32 B values (the
paper reduces value size to the key size because BMC cannot handle
larger values):

====== ====== =====================================
offset size   field
====== ====== =====================================
0      1      op (0 = GET, 1 = SET; reply sets 0x80)
1      7      pad / status
8      32     key
40     32     value (SET request, GET reply)
====== ====== =====================================

Keys are derived from integer ids: the id in the first 8 bytes, a salt
pattern in the rest, so extensions exercise full 32-byte compares.
"""

from __future__ import annotations

import struct

from repro.errors import FrameError

OP_GET = 0
OP_SET = 1
REPLY_FLAG = 0x80
STATUS_HIT = 1
STATUS_MISS = 0

PKT_SIZE = 72
KEY_OFF = 8
VAL_OFF = 40
KEY_SIZE = 32
VAL_SIZE = 32

_SALT = bytes(range(24))


def key_bytes(key_id: int) -> bytes:
    return struct.pack("<Q", key_id & (1 << 64) - 1) + _SALT


def value_bytes(value_id: int) -> bytes:
    return struct.pack("<Q", value_id & (1 << 64) - 1) + bytes(24)


def encode_get(key_id: int) -> bytes:
    return bytes([OP_GET]) + bytes(7) + key_bytes(key_id) + bytes(VAL_SIZE)


def encode_set(key_id: int, value_id: int) -> bytes:
    return bytes([OP_SET]) + bytes(7) + key_bytes(key_id) + value_bytes(value_id)


def _check_frame(pkt: bytes, what: str) -> None:
    """Exact-size framing: stream transports can deliver short reads
    and oversized garbage; both are :class:`FrameError`, never a crash
    deeper in the stack."""
    if len(pkt) < PKT_SIZE:
        raise FrameError(f"short {what} frame: {len(pkt)} < {PKT_SIZE} bytes")
    if len(pkt) > PKT_SIZE:
        raise FrameError(f"oversized {what} frame: {len(pkt)} > {PKT_SIZE} bytes")


def decode_reply(pkt: bytes) -> tuple[bool, int | None]:
    """Returns (hit, value_id or None) from a reply packet."""
    _check_frame(pkt, "reply")
    if not pkt[0] & REPLY_FLAG:
        raise FrameError("not a reply packet (REPLY_FLAG clear)")
    hit = pkt[1] == STATUS_HIT
    if not hit:
        return False, None
    return True, struct.unpack_from("<Q", pkt, VAL_OFF)[0]


def decode_request(pkt: bytes) -> tuple[int, int, int | None]:
    """Parse a request back into ``(op, key_id, value_id)`` — the
    round-trip inverse of :func:`encode_get` / :func:`encode_set`
    (``value_id`` is ``None`` for GET).

    Raises :class:`FrameError` for anything a wire client could not
    have produced: wrong size, reply bit set, unknown op, or a key
    whose salt pattern is corrupted (proving the id portion garbage).
    """
    _check_frame(pkt, "request")
    op = pkt[0]
    if op & REPLY_FLAG:
        raise FrameError("request frame has REPLY_FLAG set")
    if op not in (OP_GET, OP_SET):
        raise FrameError(f"unknown op {op}")
    if pkt[KEY_OFF + 8 : KEY_OFF + KEY_SIZE] != _SALT:
        raise FrameError("garbled key (salt pattern mismatch)")
    key_id = struct.unpack_from("<Q", pkt, KEY_OFF)[0]
    if op == OP_GET:
        return OP_GET, key_id, None
    return OP_SET, key_id, struct.unpack_from("<Q", pkt, VAL_OFF)[0]


def encode_reply(op: int, key_id: int, hit: bool, value_id: int | None = None) -> bytes:
    """Build the reply packet a conforming server sends for ``op``.

    Byte-identical to what :class:`~repro.apps.memcached.userspace.
    UserspaceMemcached` (and the XDP fast path) produce for
    protocol-conforming traffic — the key echoes the request, a hit
    carries the value — so fallback paths can synthesise replies
    without holding the original request bytes.
    """
    status = STATUS_HIT if hit else STATUS_MISS
    val = value_bytes(value_id) if hit and value_id is not None else bytes(VAL_SIZE)
    return (
        bytes([REPLY_FLAG | op, status])
        + bytes(6)
        + key_bytes(key_id)
        + val
    )
