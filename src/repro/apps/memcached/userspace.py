"""User-space Memcached: the stock baseline of §5.1.

Functionally a hash table behind the full kernel I/O path.  The
*functional* store is Python; the *cost* of the application's table
work is measured by executing the same table logic as uninstrumented
bytecode (a KMod load of the Memcached program), so all three systems'
data-structure costs come from one implementation and differ only in
path and instrumentation — the comparison the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.memcached import protocol as P


@dataclass
class UserspaceMemcached:
    """Dict-backed store with optional per-op cost sampling hooks."""

    store: dict = field(default_factory=dict)
    gets: int = 0
    sets: int = 0

    def handle(self, pkt: bytes) -> bytes:
        op = pkt[0]
        key = bytes(pkt[P.KEY_OFF : P.KEY_OFF + P.KEY_SIZE])
        if op == P.OP_GET:
            self.gets += 1
            value = self.store.get(key)
            status = P.STATUS_HIT if value is not None else P.STATUS_MISS
            out = bytearray(pkt)
            out[0] = P.REPLY_FLAG | P.OP_GET
            out[1] = status
            if value is not None:
                out[P.VAL_OFF : P.VAL_OFF + P.VAL_SIZE] = value
            return bytes(out)
        if op == P.OP_SET:
            self.sets += 1
            self.store[key] = bytes(pkt[P.VAL_OFF : P.VAL_OFF + P.VAL_SIZE])
            out = bytearray(pkt)
            out[0] = P.REPLY_FLAG | P.OP_SET
            out[1] = P.STATUS_HIT
            return bytes(out)
        raise ValueError(f"bad op {op}")

    def get(self, key_id: int):
        return P.decode_reply(self.handle(P.encode_get(key_id)))

    def set(self, key_id: int, value_id: int) -> bool:
        hit, _ = P.decode_reply(self.handle(P.encode_set(key_id, value_id)))
        return hit

    def warm(self, n_keys: int) -> None:
        for k in range(n_keys):
            self.set(k, k ^ 0x5A5A)

    def __len__(self):
        return len(self.store)
