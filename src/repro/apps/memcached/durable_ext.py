"""Map-backed Memcached: the kernel table IS the durable store.

BMC (:mod:`repro.apps.memcached.bmc`) uses its map as a look-aside
cache — misses and SETs fall to userspace, so map loss is only a perf
event.  This extension inverts that: the pinned hash map is the
*authoritative* store.  GETs answer from XDP on hit **and** miss; SETs
insert into the map and reply from XDP.  Every mutation flows through
the map's journal hook into the WAL (:mod:`repro.state`), so the reply
the client sees is only sent after the write is durable — which is the
invariant the shard-failover test leans on: any acknowledged SET
survives a ``kill -9`` of the serving shard bit-identically.

The only XDP_PASS left is a full map (``-E2BIG``), the same capacity
cliff BMC has; with a capacity-sized workload it never fires.
"""

from __future__ import annotations

from repro.apps.memcached import protocol as P
from repro.ebpf.helpers import BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM
from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.maps import HashMap
from repro.ebpf.program import Program, XDP_DROP, XDP_PASS, XDP_TX

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10


def build_durable_memcached_program(
    cache: HashMap,
    name: str = "durable-memcached",
    *,
    tag: int = 0,
    drop_mask: int | None = None,
) -> Program:
    """Build the map-authoritative memcached program.

    ``tag`` stamps an inert instruction into the prologue so two
    otherwise-identical builds have distinct bytecode — and therefore
    distinct content digests, which is how the fleet's rollout layer
    tells artifact versions apart.  ``drop_mask`` compiles in a
    deterministic defect (DROP every request whose key-id low bits
    mask to zero) used to exercise canary rollback: the program
    verifies clean but bleeds requests, exactly the failure a rollout
    judge must catch from counters rather than from the verifier.
    """
    m = MacroAsm()
    if tag:
        m.mov(R0, tag & 0x7FFFFFFF)  # inert: R0 is dead until exit
    # Parse + bounds check (identical prologue to BMC).
    m.ldx(R6, R1, 0, 8)
    m.ldx(R3, R1, 8, 8)
    m.mov(R2, R6)
    m.add(R2, P.PKT_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_PASS)
    m.exit()
    m.label(ok)
    if drop_mask is not None:
        served = m.fresh_label("served")
        m.ldx(R4, R6, P.KEY_OFF, 1)  # key-id low byte (LE)
        m.and_(R4, drop_mask)
        m.jcc("!=", R4, 0, served)
        m.mov(R0, XDP_DROP)
        m.exit()
        m.label(served)

    # Key to the stack at R10-32 (map key argument).
    for i in range(4):
        m.ldx(R4, R6, P.KEY_OFF + 8 * i, 8)
        m.stx(R10, R4, -32 + 8 * i, 8)

    m.ldx(R7, R6, 0, 1)  # op byte
    set_path = m.fresh_label("set")
    m.jcc("==", R7, P.OP_SET, set_path)

    # ---- GET: authoritative probe, reply from XDP either way ------------
    m.map_ptr(R1, cache)
    m.mov(R2, R10)
    m.add(R2, -32)
    m.call(BPF_MAP_LOOKUP_ELEM)
    miss = m.fresh_label("miss")
    m.jcc("==", R0, 0, miss)
    for i in range(4):
        m.ldx(R4, R0, 8 * i, 8)
        m.stx(R6, R4, P.VAL_OFF + 8 * i, 8)
    m.st_imm(R6, 0, P.REPLY_FLAG | P.OP_GET, 1)
    m.st_imm(R6, 1, P.STATUS_HIT, 1)
    m.mov(R0, XDP_TX)
    m.exit()
    m.label(miss)
    # The map is the store: a miss is a definitive answer, not a
    # fall-through.  Zero the value field and transmit STATUS_MISS.
    for i in range(4):
        m.st_imm(R6, P.VAL_OFF + 8 * i, 0, 8)
    m.st_imm(R6, 0, P.REPLY_FLAG | P.OP_GET, 1)
    m.st_imm(R6, 1, P.STATUS_MISS, 1)
    m.mov(R0, XDP_TX)
    m.exit()

    # ---- SET: insert + ack from XDP -------------------------------------
    m.label(set_path)
    # Value to the stack at R10-64 (map value argument).
    for i in range(4):
        m.ldx(R4, R6, P.VAL_OFF + 8 * i, 8)
        m.stx(R10, R4, -64 + 8 * i, 8)
    m.map_ptr(R1, cache)
    m.mov(R2, R10)
    m.add(R2, -32)
    m.mov(R3, R10)
    m.add(R3, -64)
    m.mov(R4, 0)  # flags: BPF_ANY
    m.call(BPF_MAP_UPDATE_ELEM)
    full = m.fresh_label("full")
    m.jcc("!=", R0, 0, full)
    m.st_imm(R6, 0, P.REPLY_FLAG | P.OP_SET, 1)
    m.st_imm(R6, 1, P.STATUS_HIT, 1)
    m.mov(R0, XDP_TX)
    m.exit()
    m.label(full)
    m.mov(R0, XDP_PASS)  # -E2BIG: let userspace (if any) decide
    m.exit()

    return Program(name, m.assemble(), hook="xdp", maps={cache.fd: cache})


def build_flaky_memcached_program(
    cache: HashMap, name: str = "durable-memcached-flaky"
) -> Program:
    """A known-faulty artifact for rollout drills: verifies clean,
    serves correctly for 3/4 of the key-space, silently DROPs the
    rest.  A canary shard running it shows a drop-rate the fleet
    baseline does not have — the judge's rollback trigger."""
    return build_durable_memcached_program(
        cache, name, tag=0x7E57BAD, drop_mask=0x03
    )
