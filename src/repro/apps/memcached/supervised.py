"""Supervised Memcached: kernel fast path with userspace fallback (§3.4).

The paper's degradation story is that cancelling an extension does not
lose data or stop the service: the extension heap is a map-like fd the
application mmaps, so when the XDP fast path dies the request simply
falls through to the normal stack and user space answers — consulting
the *surviving heap* through its own mapping for values only the
extension ever stored.

``SupervisedMemcached`` implements that co-design around the
supervisor's quarantine/backoff lifecycle:

* extension healthy → requests served at the (simulated) XDP hook;
* extension quarantined → GET falls back to a userspace overlay store,
  then to a heap walk through the user mapping; SET lands in the
  overlay;
* extension re-admitted → overlay writes are *replayed* into the
  kernel table, so the fast path catches up with everything that
  happened during quarantine.

Consistency rule: a key present in the overlay always holds the newest
value (a successful kernel SET removes the overlay copy), so reads
check the overlay before the kernel path.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import PageFault
from repro.ebpf.program import XDP_TX
from repro.apps.memcached import protocol as P
from repro.apps.memcached.kflex_ext import (
    BUCKET_BITS,
    BUCKETS_OFF,
    ENTRY,
    KFlexMemcached,
)
from repro.apps.datastructures.common import HASH_CONST

#: Safety bound for Python-side chain walks (a cancelled SET can leave
#: at most one partially-linked entry, never a cycle, but the walker is
#: defensive anyway).
_MAX_CHAIN = 1 << 16


def _bucket_of(key: bytes) -> int:
    h = 0
    for i in range(4):
        h ^= int.from_bytes(key[8 * i : 8 * i + 8], "little")
    h = (h * HASH_CONST) & ((1 << 64) - 1)
    return h >> (64 - BUCKET_BITS)


@dataclass
class FallbackStats:
    kernel_gets: int = 0
    kernel_sets: int = 0
    fallback_gets: int = 0
    fallback_sets: int = 0
    heap_hits: int = 0  # fallback GETs answered from the surviving heap
    replays: int = 0  # overlay entries replayed into the kernel table


class SupervisedMemcached:
    """Memcached front-end that survives extension quarantine."""

    def __init__(self, runtime, **kflex_kwargs):
        self.runtime = runtime
        self.kflex = KFlexMemcached(runtime, **kflex_kwargs)
        self.ext = self.kflex.ext
        #: Userspace overlay: key bytes -> 32-byte value (newest value
        #: for every key the kernel path could not store).
        self.overlay: dict[bytes, bytes] = {}
        self.stats = FallbackStats()
        #: Which path answered the most recent request: "kernel" (XDP
        #: fast path) or "userspace" (overlay / surviving heap).  The
        #: network datapath maps this onto its XDP-verdict accounting.
        self.last_path = "kernel"
        # §3.4: user space mmaps the heap so it can read extension-
        # written values after a cancellation.
        self.kflex.heap.map_user()
        self._user_delta = self.kflex.heap.user_base - self.kflex.heap.base

    # -- supervisor plumbing ------------------------------------------------

    def _kernel_alive(self, cpu: int) -> bool:
        """True when the fast path can serve (reviving it if due)."""
        if not self.ext.dead:
            return True
        return self.runtime.supervisor.try_readmit(self.ext)

    def _replay(self, cpu: int) -> None:
        """Push overlay writes back into the kernel table (re-admission)."""
        for key in list(self.overlay):
            if self.ext.dead:
                break
            pkt = bytes([P.OP_SET]) + bytes(7) + key + self.overlay[key]
            reply = self.kflex._roundtrip(pkt, cpu)
            if self.kflex.last_verdict == XDP_TX and reply[1] == P.STATUS_HIT:
                del self.overlay[key]
                self.stats.replays += 1

    # -- request API --------------------------------------------------------

    def get(self, key_id: int, cpu: int = 0):
        key = P.key_bytes(key_id)
        if self._kernel_alive(cpu):
            if self.overlay:
                self._replay(cpu)
            if key not in self.overlay:
                reply = self.kflex._roundtrip(P.encode_get(key_id), cpu)
                if self.kflex.last_verdict == XDP_TX:
                    self.stats.kernel_gets += 1
                    self.last_path = "kernel"
                    return P.decode_reply(reply)
        # Fallback: the extension is quarantined or this request's
        # invocation was cancelled mid-flight.
        self.last_path = "userspace"
        self.stats.fallback_gets += 1
        val = self.overlay.get(key)
        if val is None:
            val = self._heap_lookup(key)
            if val is not None:
                self.stats.heap_hits += 1
        if val is None:
            return (False, None)
        return (True, struct.unpack_from("<Q", val, 0)[0])

    def set(self, key_id: int, value_id: int, cpu: int = 0) -> bool:
        key = P.key_bytes(key_id)
        if self._kernel_alive(cpu):
            if self.overlay:
                self._replay(cpu)
            reply = self.kflex._roundtrip(P.encode_set(key_id, value_id), cpu)
            if self.kflex.last_verdict == XDP_TX and reply[1] == P.STATUS_HIT:
                # Kernel holds the newest value now; drop any overlay copy.
                self.overlay.pop(key, None)
                self.stats.kernel_sets += 1
                self.last_path = "kernel"
                return True
        # Quarantined, cancelled mid-flight, or heap exhausted: the
        # overlay is authoritative until a later replay succeeds.
        self.last_path = "userspace"
        self.stats.fallback_sets += 1
        self.overlay[key] = (
            struct.pack("<Q", value_id & (1 << 64) - 1) + bytes(P.VAL_SIZE - 8)
        )
        return True

    def serve(self, pkt: bytes, cpu: int = 0) -> bytes:
        """Packet-level request entry for the network datapath.

        Decodes a wire request, routes it through the supervised
        GET/SET paths (kernel fast path with overlay/heap fallback),
        and re-encodes the reply.  ``last_path`` reports which side
        answered.  Raises :class:`~repro.errors.FrameError` for frames
        no conforming client produces — the datapath drops those.
        """
        op, key_id, value_id = P.decode_request(pkt)
        if op == P.OP_GET:
            hit, vid = self.get(key_id, cpu)
            return P.encode_reply(P.OP_GET, key_id, hit, vid)
        self.set(key_id, value_id, cpu)
        return P.encode_reply(P.OP_SET, key_id, True, value_id)

    def warm(self, n_keys: int, cpu: int = 0) -> None:
        for k in range(n_keys):
            self.set(k, k ^ 0x5A5A, cpu)

    @property
    def pending(self) -> int:
        """Overlay entries not yet replayed into the kernel table."""
        return len(self.overlay)

    # -- heap reads through the user mapping (§3.4) -------------------------

    def _heap_lookup(self, key: bytes) -> bytes | None:
        """Walk the bucket chain exactly like the extension, but from
        user space through the mmap'd heap (pointers stored in entries
        are kernel heap addresses; the size-aligned user alias maps
        them with a constant delta)."""
        heap = self.kflex.heap
        asp = self.runtime.kernel.aspace
        delta = self._user_delta
        cell = heap.base + self.kflex.static + BUCKETS_OFF + _bucket_of(key) * 8
        try:
            cur = asp.read_int(cell + delta, 8)
            for _ in range(_MAX_CHAIN):
                if not cur:
                    return None
                if asp.read_bytes(cur + delta + ENTRY.k0.off, 32) == key:
                    return asp.read_bytes(cur + delta + ENTRY.v0.off, 32)
                cur = asp.read_int(cur + delta + ENTRY.next.off, 8)
        except PageFault:
            # A wild next pointer from a corrupted entry: treat as miss,
            # like a defensive userspace reader would.
            return None
        return None
