"""Co-designed Memcached: in-kernel fast path + user-space GC (§5.3).

Garbage collection runs sporadically (every 1 s in Memcached) and does
not belong in the kernel — it would steal CPU at elevated privilege.
KFlex's shared pointers (§3.4) let a user-space thread walk the very
hash table the extension builds:

* the heap is mmap'd into the application (size-aligned alias);
* the extension stores chain pointers translate-on-store, so every
  pointer the GC reads is already a valid user-space address;
* stripe spin locks in the heap synchronise both sides, with the rseq
  time-slice extension protecting the GC's critical sections (§4.4).

The GC here evicts entries whose value has "expired" (value-id below a
moving floor — a stand-in for Memcached's TTL scan) and returns their
memory to the shared allocator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sharing import SharedHeapView
from repro.apps.memcached.kflex_ext import (
    ENTRY,
    KFlexMemcached,
    N_STRIPES,
    BUCKETS_OFF,
)


@dataclass
class GcStats:
    runs: int = 0
    scanned: int = 0
    evicted: int = 0
    lock_failures: int = 0
    stripes_locked: int = 0


class GarbageCollectedMemcached:
    """KFlex-Memcached plus the §5.3 user-space GC thread."""

    GC_PERIOD_NS = 1_000_000_000  # 1 s, Memcached's default cadence

    def __init__(self, runtime, *, heap_size: int = 1 << 26, name: str = "kvgc"):
        self.runtime = runtime
        self.mc = KFlexMemcached(
            runtime,
            use_locks=True,
            share_heap=True,
            heap_size=heap_size,
            name=name,
        )
        self.thread = runtime.kernel.sched.spawn("memcached-gc")
        self.view = SharedHeapView(
            self.mc.heap, runtime.locks_for(self.mc.heap), self.thread
        )
        self.allocator = runtime.allocator_for(self.mc.heap)
        self.stats = GcStats()

    # Fast-path API passes straight through.
    def get(self, key_id: int, cpu: int = 0):
        return self.mc.get(key_id, cpu)

    def set(self, key_id: int, value_id: int, cpu: int = 0):
        return self.mc.set(key_id, value_id, cpu)

    def warm(self, n_keys: int) -> None:
        self.mc.warm(n_keys)

    # -- the GC pass (runs on the user thread) -------------------------------

    def run_gc(self, *, expire_below: int) -> int:
        """One GC sweep: evict entries whose v0 qword is < floor.

        Walks every bucket through the user mapping.  Each stripe is
        locked for the duration of its buckets' scan, mirroring how the
        paper's GC contends with the fast path.
        """
        view = self.view
        heap = self.mc.heap
        evicted = 0
        self.stats.runs += 1
        for stripe in range(N_STRIPES):
            lock_ptr = self.mc.stripe_lock_addr(stripe)
            if not view.spin_lock(lock_ptr, spin_limit=4):
                self.stats.lock_failures += 1
                continue
            self.stats.stripes_locked += 1
            try:
                for bucket in range(stripe, self.mc.n_buckets, N_STRIPES):
                    evicted += self._sweep_bucket(bucket, expire_below)
            finally:
                view.spin_unlock(lock_ptr)
        self.stats.evicted += evicted
        return evicted

    def _sweep_bucket(self, bucket: int, floor: int) -> int:
        view = self.view
        cell = self.mc.bucket_cell_user(bucket)  # user VA of the head cell
        prev_cell = cell
        cur = view.read(cell, 8)  # user VA (translate-on-store!)
        evicted = 0
        while cur:
            self.stats.scanned += 1
            v0 = view.read(cur + ENTRY.v0.off, 8)
            nxt = view.read(cur + ENTRY.next.off, 8)
            if v0 < floor:
                view.write(prev_cell, nxt, 8)
                self.allocator.free(self.mc.heap.user_to_kernel(cur))
                evicted += 1
            else:
                prev_cell = cur + ENTRY.next.off
            cur = nxt
        return evicted
