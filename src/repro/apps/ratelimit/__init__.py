"""``repro.apps.ratelimit`` — token-bucket rate limiter / SYN-flood
shedder at the XDP hook.

The first non-KV workload: a *protective* extension that sits in front
of another service and spends a few hundred nanoseconds per packet to
decide whether the engine should spend microseconds on it.  See
:mod:`repro.apps.ratelimit.ext` for the verdict pipeline and
:mod:`repro.apps.ratelimit.service` for the datapath wrapper.
"""

from repro.apps.ratelimit.ext import (
    HDR_SIZE,
    MAGIC,
    TYPE_DATA,
    TYPE_SYN,
    TYPE_SYNACK,
    RateLimitConfig,
    build_ratelimit_program,
    wrap,
    wrap_syn,
)
from repro.apps.ratelimit.service import RateLimitedService

__all__ = [
    "HDR_SIZE",
    "MAGIC",
    "RateLimitConfig",
    "RateLimitedService",
    "TYPE_DATA",
    "TYPE_SYN",
    "TYPE_SYNACK",
    "build_ratelimit_program",
    "wrap",
    "wrap_syn",
]
