"""The shedder extension: sketch + token buckets, verdict at ingress.

Hostile traffic must be refused *before* the engine burns per-request
budget on it — the XDP analog of DDoS mitigation boxes, and the reason
rate limiting is a flagship XDP workload.  Every packet carries an
8-byte envelope in front of the inner application payload:

====== ====== ==================================================
offset size   field
====== ====== ==================================================
0      1      magic (0xF1; anything else is wire garbage → DROP)
1      1      type: 0 = DATA, 1 = SYN, 2 = SYN-ACK (reply only)
2      2      pad
4      4      source id, u32 LE (client identity / spoofed origin)
====== ====== ==================================================

The verdict pipeline, entirely inside one extension invocation:

1. **Heavy-hitter sketch** — a per-source count-min estimate over the
   current time window (the same 4×4096 counter matrix as
   :mod:`repro.apps.datastructures.sketch`, addressed with the same
   emitter).  Counters are *epoch-tagged*: the top 16 bits hold
   ``ktime >> epoch_shift``, so a counter whose tag is stale reads as
   zero and is reset in place — window decay with no timer, no sweep,
   no second map.  An estimate above ``hh_limit`` is an active flood
   source: DROP.
2. **Token bucket** — per-source buckets denominated in *nanoseconds*
   (tokens accrue 1 ns per elapsed ns, a packet costs ``cost_ns`` ×
   weight), which keeps the refill divide-free: refill is a single
   subtraction against ``bpf_ktime_get_ns``.  SYNs carry
   ``syn_weight`` so a connection-open flood exhausts its bucket
   ``syn_weight`` times faster than data.  Empty bucket: DROP.
3. **Verdict** — surviving SYNs are answered from the hook
   (``XDP_TX`` with the type byte rewritten to SYN-ACK — the
   SYN-cookie move: no server-side state until the source has proven
   liveness); surviving DATA continues up the stack (``XDP_PASS``)
   to the protected service.

Buckets hash by source id into a fixed 1024-entry array; two sources
sharing a bucket share a rate — collisions make the limiter strictly
*more* aggressive, never less, which is the right failure direction
for a shedder.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.datastructures.sketch import (
    ROW_BYTES,
    ROWS,
    _emit_row_counter_addr,
)
from repro.apps.datastructures.common import HASH_CONST
from repro.ebpf.helpers import BPF_KTIME_GET_NS
from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.program import Program, XDP_DROP, XDP_PASS, XDP_TX

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

MAGIC = 0xF1
TYPE_DATA = 0
TYPE_SYN = 1
TYPE_SYNACK = 2
HDR_SIZE = 8

SRC_OFF = 4

#: Token buckets: {tokens_ns: u64, last_ns: u64} per slot.
BUCKET_BITS = 10
N_BUCKETS = 1 << BUCKET_BITS
BUCKET_SIZE = 16

SKETCH_BYTES = ROWS * ROW_BYTES
STATIC_BYTES = SKETCH_BYTES + N_BUCKETS * BUCKET_SIZE

#: Epoch tag layout inside a sketch counter: count in the low 48 bits,
#: window epoch in the top 16.  48 bits of count per window is
#: unsaturable at any offered load this runtime can represent.
COUNT_BITS = 48

SLOT_WEIGHT = -72
SLOT_TYPE = -80


@dataclass(frozen=True)
class RateLimitConfig:
    """Shedder tuning; defaults suit the loopback scenario matrix."""

    #: Per-window weighted-packet estimate above which a source is an
    #: active flood origin (sketch verdict).  Generous by default: the
    #: token bucket is the primary limiter, the sketch catches what a
    #: bucket cannot — e.g. a source rotating ids within one window.
    hh_limit: int = 1 << 16
    #: Bucket capacity in nanoseconds-of-credit.
    burst_ns: int = 50_000_000
    #: Cost of one DATA packet in nanoseconds-of-credit — steady-state
    #: per-source admission rate is ``1e9 / cost_ns`` packets/sec.
    cost_ns: int = 1_000_000
    #: SYN weight: a SYN spends this many packet costs (and counts this
    #: many times toward the heavy-hitter estimate).
    syn_weight: int = 8
    #: Sketch window: epoch = ktime >> epoch_shift (27 → ~134 ms).
    epoch_shift: int = 27

    @property
    def rate_pps(self) -> float:
        return 1e9 / self.cost_ns

    @property
    def burst_packets(self) -> float:
        return self.burst_ns / self.cost_ns


def wrap(src: int, inner: bytes, type_: int = TYPE_DATA) -> bytes:
    """Wrap an inner payload in the shedder envelope."""
    return bytes([MAGIC, type_, 0, 0]) + (src & 0xFFFFFFFF).to_bytes(
        4, "little"
    ) + inner


def wrap_syn(src: int) -> bytes:
    """A bare SYN: envelope only, no inner payload."""
    return wrap(src, b"", TYPE_SYN)


def build_ratelimit_program(
    static: int,
    config: RateLimitConfig | None = None,
    *,
    heap_size: int = 1 << 20,
    name: str = "ratelimit",
) -> Program:
    cfg = config or RateLimitConfig()
    m = MacroAsm()

    # Prologue: at least the envelope must be present.
    m.ldx(R6, R1, 0, 8)   # data
    m.ldx(R3, R1, 8, 8)   # data_end
    m.mov(R2, R6)
    m.add(R2, HDR_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_DROP)   # runt frame: wire garbage
    m.exit()
    m.label(ok)
    m.ldx(R4, R6, 0, 1)
    magic_ok = m.fresh_label("magic")
    m.jcc("==", R4, MAGIC, magic_ok)
    m.mov(R0, XDP_DROP)   # not our protocol: shed before any state
    m.exit()
    m.label(magic_ok)

    # Source id and per-type weight (SYNs are expensive).
    m.ldx(R7, R6, SRC_OFF, 4)
    m.ldx(R2, R6, 1, 1)
    m.stx(R10, R2, SLOT_TYPE, 8)
    m.mov(R3, 1)
    not_syn = m.fresh_label("not_syn")
    m.jcc("!=", R2, TYPE_SYN, not_syn)
    m.mov(R3, cfg.syn_weight)
    m.label(not_syn)
    m.stx(R10, R3, SLOT_WEIGHT, 8)

    # One clock read serves the window epoch and the bucket refill.
    # Biased by 1 ns: the simulated kernel clock starts at 0, and the
    # bucket uses last_ns == 0 as its never-seen sentinel — an
    # unbiased store at boot would hand the source a fresh full
    # bucket on its next packet.
    m.call(BPF_KTIME_GET_NS)
    m.mov(R9, R0)
    m.add(R9, 1)
    m.mov(R8, R9)
    m.rsh(R8, cfg.epoch_shift)
    m.and_(R8, 0xFFFF)

    # -- heavy-hitter sketch: fused update + estimate ---------------------
    # Per row: stale-tagged counters reset in place (window decay),
    # weight is added, and the running minimum accumulates in R0.
    m.ld_imm64(R0, (1 << 64) - 1)
    for row in range(ROWS):
        _emit_row_counter_addr(m, static, row, R7, R4, R5)
        m.ldx(R3, R4, 0, 8)
        m.mov(R2, R3)
        m.rsh(R2, COUNT_BITS)
        fresh = m.fresh_label("fresh")
        m.jcc("==", R2, R8, fresh)
        m.mov(R3, R8)         # stale window: counter resets to epoch<<48
        m.lsh(R3, COUNT_BITS)
        m.label(fresh)
        m.ldx(R5, R10, SLOT_WEIGHT, 8)
        m.add(R3, R5)
        m.stx(R4, R3, 0, 8)
        m.lsh(R3, 64 - COUNT_BITS)  # strip the epoch tag
        m.rsh(R3, 64 - COUNT_BITS)
        keep = m.fresh_label("keep")
        m.jcc(">=", R3, R0, keep)
        m.mov(R0, R3)
        m.label(keep)
    m.ld_imm64(R2, cfg.hh_limit)
    under = m.fresh_label("under")
    m.jcc("<=", R0, R2, under)
    m.mov(R0, XDP_DROP)       # active flood source this window
    m.exit()
    m.label(under)

    # -- token bucket -----------------------------------------------------
    m.mov(R4, R7)
    m.ld_imm64(R5, HASH_CONST)
    m.mul(R4, R5)
    m.rsh(R4, 64 - BUCKET_BITS)
    m.lsh(R4, 4)              # 16 bytes per bucket
    m.heap_addr(R5, static + SKETCH_BYTES)
    m.add(R4, R5)             # R4 = &bucket{tokens_ns, last_ns}
    m.ldx(R2, R4, 0, 8)       # tokens_ns
    m.ldx(R3, R4, 8, 8)       # last_ns
    first = m.fresh_label("first")
    have = m.fresh_label("have")
    m.jcc("==", R3, 0, first)
    m.mov(R5, R9)             # refill: tokens += now - last, cap at burst
    m.sub(R5, R3)
    m.add(R2, R5)
    m.ld_imm64(R5, cfg.burst_ns)
    m.jcc("<=", R2, R5, have)
    m.mov(R2, R5)
    m.jmp(have)
    m.label(first)
    m.ld_imm64(R2, cfg.burst_ns)  # first sight: a full bucket
    m.label(have)
    m.stx(R4, R9, 8, 8)       # last_ns = now
    m.ldx(R5, R10, SLOT_WEIGHT, 8)
    m.ld_imm64(R3, cfg.cost_ns)
    m.mul(R5, R3)             # cost of this packet
    paid = m.fresh_label("paid")
    m.jcc(">=", R2, R5, paid)
    m.stx(R4, R2, 0, 8)       # store the refill, then shed
    m.mov(R0, XDP_DROP)
    m.exit()
    m.label(paid)
    m.sub(R2, R5)
    m.stx(R4, R2, 0, 8)

    # -- verdict ----------------------------------------------------------
    m.ldx(R2, R10, SLOT_TYPE, 8)
    data = m.fresh_label("data")
    m.jcc("!=", R2, TYPE_SYN, data)
    m.st_imm(R6, 1, TYPE_SYNACK, 1)  # answer the SYN from the hook
    m.mov(R0, XDP_TX)
    m.exit()
    m.label(data)
    m.mov(R0, XDP_PASS)       # admitted: continue to the service
    m.exit()

    return Program(name, m.assemble(), hook="xdp", heap_size=heap_size)
