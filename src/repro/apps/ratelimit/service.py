"""Datapath wrapper: shedder extension in front of a protected service.

:class:`RateLimitedService` composes at the service layer the way XDP
programs chain on a real NIC: the shedder runs first, in the same
runtime (same kernel, same packet slot, same clock) as the protected
service's extension, and only packets it PASSes are unwrapped and
handed to the inner service.  The datapath is oblivious — it sees one
:class:`~repro.net.service.PacketService` with the usual verdict
surface.
"""

from __future__ import annotations

from repro.apps.ratelimit.ext import (
    HDR_SIZE,
    MAGIC,
    SRC_OFF,
    STATIC_BYTES,
    RateLimitConfig,
    build_ratelimit_program,
)
from repro.ebpf.program import XDP_PASS, XDP_TX
from repro.net.backpressure import MAX_SHED_SOURCES, OTHER_SOURCE
from repro.net.service import PacketService


class RateLimitedService(PacketService):
    """Token-bucket / heavy-hitter shedding in front of ``inner``.

    Shares ``inner.runtime`` — one kernel, one clock, one per-CPU
    packet slot — so a PASS verdict costs no copy: the inner service
    re-stages only the unwrapped payload.  Per-source drop counts are
    kept Python-side (``source_drops``), bounded like the admission
    layer's shed attribution.
    """

    def __init__(self, inner: PacketService, *,
                 config: RateLimitConfig | None = None,
                 name: str = "ratelimit"):
        super().__init__(inner.runtime)
        self.inner = inner
        self.config = config or RateLimitConfig()
        self.heap = self.runtime.create_heap(1 << 20, name=name)
        self.static = self.heap.reserve_static(STATIC_BYTES)
        prog = build_ratelimit_program(
            self.static, self.config, heap_size=self.heap.size, name=name
        )
        self.ext = self.runtime.load(prog, heap=self.heap, attach=False)
        #: Drops attributed to the envelope's source id.
        self.source_drops: dict = {}
        #: Drops with no parseable source (runt frames, bad magic).
        self.garbage_drops = 0
        #: SYNs answered from the hook.
        self.syn_acks = 0

    def _note_drop(self, payload: bytes) -> None:
        if len(payload) < HDR_SIZE or payload[0] != MAGIC:
            self.garbage_drops += 1
            return
        src = int.from_bytes(payload[SRC_OFF:SRC_OFF + 4], "little")
        drops = self.source_drops
        if src not in drops and len(drops) >= MAX_SHED_SOURCES:
            src = OTHER_SOURCE
        drops[src] = drops.get(src, 0) + 1

    def drops_for(self, sources) -> int:
        """Total drops attributed to a set of source ids."""
        return sum(self.source_drops.get(s, 0) for s in sources)

    def _serve_sync(self, payload: bytes, cpu: int):
        ext = self.ext
        if ext.dead and not self.runtime.supervisor.try_readmit(ext):
            # Shedder quarantined: fail open.  An unprotected service
            # beats a dead datapath — the inner admission layer still
            # bounds the damage.
            return self.inner.ingress(payload[HDR_SIZE:], cpu)
        verdict = ext.invoke(ext.xdp_ctx(payload, cpu), cpu=cpu)
        if ext.dead:
            return self.inner.ingress(payload[HDR_SIZE:], cpu)
        if verdict == XDP_TX:
            self.syn_acks += 1
            reply = self.runtime.kernel.net.read_packet(cpu, len(payload))
            return reply, "kernel"
        if verdict == XDP_PASS:
            return self.inner.ingress(payload[HDR_SIZE:], cpu)
        self._note_drop(payload)
        return None, "drop"

    async def deliver(self, payload: bytes, cpu: int = 0):
        # A "pass" that bubbled out of the inner service finishes on
        # the inner service's stack path, with the envelope stripped.
        return await self.inner.deliver(payload[HDR_SIZE:], cpu)

    def close(self) -> None:
        self.inner.close()
        super().close()
