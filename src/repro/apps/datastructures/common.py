"""Shared infrastructure for extension data structures (§5.2).

Conventions:

* One extension *per operation* (update / lookup / delete), matching
  the per-function accounting of Table 3.  All operations of one
  structure share a heap.
* Operations use the ``bench`` hook; the context carries
  ``(key, value)`` as 8-byte scalars at offsets 0 and 8.
* Return values: lookup returns the value (or ``MISS``); update returns
  ``OK``/``ERR``; delete returns ``OK``/``MISS``.
* Globals (heads, bucket arrays, locks) live in the heap's static area.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.program import Program

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

OK = 1
MISS = 0
ERR = (1 << 64) - 22  # -ENOMEM-ish

#: Fibonacci multiplicative hash constant.
HASH_CONST = 0x9E3779B97F4A7C15


def emit_hash(m: MacroAsm, dst: Reg, key: Reg, bits: int, scratch: Reg) -> None:
    """dst = (key * HASH_CONST) >> (64 - bits); bounded in [0, 2**bits)."""
    if dst != key:
        m.mov(dst, key)
    m.ld_imm64(scratch, HASH_CONST)
    m.mul(dst, scratch)
    m.rsh(dst, 64 - bits)


def load_op_args(m: MacroAsm, key: Reg, value: Reg | None = None) -> None:
    """Load (key, value) from the bench context in R1."""
    m.ldx(key, R1, 0, 8)
    if value is not None:
        m.ldx(value, R1, 8, 8)


@dataclass
class OpStats:
    """Instrumentation accounting for one operation (Table 3)."""

    guards_total: int  # guard candidates on pointer manipulation
    guards_elided: int
    guards_emitted: int
    formation_guards: int
    cancel_points: int


class DataStructureExt:
    """Base wrapper: builds one extension per op over a shared heap.

    Subclasses define ``HEAP_BITS``, ``STATIC_BYTES``, and the three
    ``build_update/lookup/delete(m, static_base)`` emitters (any may be
    None).  ``kmod=True`` loads every op uninstrumented — the unsafe
    kernel-module baseline of §5.2.
    """

    NAME = "ds"
    HEAP_BITS = 24  # 16 MB default heap
    STATIC_BYTES = 64
    OPS = ("update", "lookup", "delete")

    def __init__(self, runtime, *, kmod: bool = False, perf_mode: bool = False,
                 heap=None, elision: bool = True):
        self.runtime = runtime
        self.kmod = kmod
        self.heap = heap or runtime.create_heap(1 << self.HEAP_BITS, name=self.NAME)
        self.static_base = self.heap.reserve_static(self.STATIC_BYTES)
        self.exts = {}
        self._elision = elision
        for op in self.OPS:
            builder = getattr(self, f"build_{op}", None)
            if builder is None:
                continue
            m = MacroAsm()
            builder(m, self.static_base)
            prog = Program(f"{self.NAME}_{op}", m.assemble(), hook="bench",
                           heap_size=self.heap.size)
            if kmod:
                self.exts[op] = runtime.load_kmod(prog, heap=self.heap)
            else:
                self.exts[op] = runtime.load(
                    prog, heap=self.heap, attach=False, perf_mode=perf_mode,
                    elision=elision,
                )
        self.init()

    def init(self) -> None:
        """Subclass hook: structure-specific heap initialisation, done
        from extension code where required (the paper's structures do
        not rely on user space even for initialisation — our static
        area plus allocator covers the same ground)."""

    # -- invocation -------------------------------------------------------------

    def _invoke(self, op: str, key: int, value: int = 0, cpu: int = 0) -> int:
        ext = self.exts[op]
        ctx = self.runtime.make_ctx(cpu, [key, value, 0, 0])
        return ext.invoke(ctx, cpu=cpu)

    def update(self, key: int, value: int, cpu: int = 0) -> int:
        return self._invoke("update", key, value, cpu)

    def lookup(self, key: int, cpu: int = 0) -> int:
        return self._invoke("lookup", key, cpu=cpu)

    def delete(self, key: int, cpu: int = 0) -> int:
        return self._invoke("delete", key, cpu=cpu)

    # -- accounting ---------------------------------------------------------------

    def op_cost(self, op: str) -> int:
        """Native cost units of the most recent invocation of ``op``."""
        return self.exts[op].stats.last_cost_units

    def op_stats(self, op: str) -> OpStats:
        """Table 3 numbers for one operation."""
        st = self.exts[op].iprog.stats
        an = self.exts[op].iprog.analysis
        if an is None:
            return OpStats(0, 0, 0, 0, 0)
        return OpStats(
            guards_total=an.guards_total_candidates,
            guards_elided=an.guards_elided,
            guards_emitted=st.guards_emitted,
            formation_guards=st.formation_guards,
            cancel_points=st.cancel_points,
        )
