"""Chained hash map as a KFlex extension (§5.2).

Buckets live in the heap's static area (an extension global); chain
nodes come from ``kflex_malloc``.  Bucket indexing is provably bounded
(multiplicative hash then a right shift), so the verifier elides the
bucket-array guards; chain-pointer dereferences are formation guards.
"""

from __future__ import annotations

from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_FREE
from repro.apps.datastructures.common import (
    DataStructureExt,
    emit_hash,
    load_op_args,
    ERR,
    MISS,
    OK,
    R0, R2, R3, R4, R6, R7, R8, R9, R10,
)

ELEM = Struct(key=8, value=8, next=8)

BUCKET_BITS = 13  # 8192 buckets


class HashMapDS(DataStructureExt):
    NAME = "hashmap"
    HEAP_BITS = 24
    STATIC_BYTES = (1 << BUCKET_BITS) * 8

    def _emit_bucket_addr(self, m: MacroAsm, static: int, key: int, dst, scratch):
        """dst = &buckets[hash(key)]; provably inside the static area."""
        emit_hash(m, dst, key, BUCKET_BITS, scratch)
        m.lsh(dst, 3)
        m.heap_addr(scratch, static)
        m.add(dst, scratch)

    # -- update ------------------------------------------------------------

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)
        m.mov(R8, R6)
        self._emit_bucket_addr(m, static, R6, R8, R2)  # R8 = bucket addr
        m.ldx(R9, R8, 0, 8)  # chain head (elided: bucket is static)
        m.mov(R3, R9)
        with m.while_("!=", R3, 0):
            m.ldf(R4, R3, ELEM.key)  # guard (sanitises R3)
            with m.if_("==", R4, R6):
                m.stf(R3, ELEM.value, R7)  # elided
                m.mov(R0, OK)
                m.exit()
            m.ldf(R3, R3, ELEM.next)  # elided
        # Not found: allocate and push at the chain head.
        m.stx(R10, R8, -8, 8)  # bucket addr survives the call on the stack
        m.call_helper(KFLEX_MALLOC, ELEM.size)
        with m.if_("==", R0, 0):
            m.ld_imm64(R0, ERR)
            m.exit()
        m.ldx(R8, R10, -8, 8)
        m.stf(R0, ELEM.key, R6)
        m.stf(R0, ELEM.value, R7)
        m.stf(R0, ELEM.next, R9)
        m.stx(R8, R0, 0, 8)  # bucket head = node (elided)
        m.mov(R0, OK)
        m.exit()

    # -- lookup ------------------------------------------------------------

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        m.mov(R8, R6)
        self._emit_bucket_addr(m, static, R6, R8, R2)
        m.ldx(R3, R8, 0, 8)  # elided
        with m.while_("!=", R3, 0):
            m.ldf(R4, R3, ELEM.key)  # guard
            with m.if_("==", R4, R6):
                m.ldf(R0, R3, ELEM.value)  # elided
                m.exit()
            m.ldf(R3, R3, ELEM.next)  # elided
        m.mov(R0, MISS)
        m.exit()

    # -- delete ------------------------------------------------------------

    def build_delete(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        m.mov(R8, R6)
        self._emit_bucket_addr(m, static, R6, R8, R2)
        m.ldx(R9, R8, 0, 8)  # cur (elided)
        m.mov(R7, 0)  # prev = NULL
        with m.while_("!=", R9, 0):
            m.ldf(R4, R9, ELEM.key)  # guard (sanitises R9)
            with m.if_("==", R4, R6):
                m.ldf(R3, R9, ELEM.next)  # elided
                with m.if_else("==", R7, 0) as orelse:
                    m.stx(R8, R3, 0, 8)  # bucket head = next (elided)
                    orelse()
                    m.stf(R7, ELEM.next, R3)  # prev sanitised earlier: elided
                m.call_helper(KFLEX_FREE, R9)
                m.mov(R0, OK)
                m.exit()
            m.mov(R7, R9)
            m.ldf(R9, R9, ELEM.next)  # elided
        m.mov(R0, MISS)
        m.exit()
