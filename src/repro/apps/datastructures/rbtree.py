"""Red-black tree as a KFlex extension (§5.2).

A faithful CLRS red-black tree — insert with recolour/rotate fixup,
delete with transplant and double-black fixup — written entirely in
extension bytecode with ``kflex_malloc`` nodes.  This is the paper's
flagship "impossible in eBPF" structure: unbounded descent loops,
parent pointers, and rotations that no static verifier could bound.

Node: ``{key, value, left, right, parent, color}`` (48 bytes).
NULL children are the sentinel 0 and count as black.
"""

from __future__ import annotations

from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_FREE
from repro.apps.datastructures.common import (
    DataStructureExt,
    load_op_args,
    ERR,
    MISS,
    OK,
    R0, R2, R3, R4, R5, R6, R7, R8, R9, R10,
)

NODE = Struct(key=8, value=8, left=8, right=8, parent=8, color=8)

RED = 1
BLACK = 0

ROOT_OFF = 0  # root pointer, in the static area

# Stack slots used by the operations.
SLOT_DIR = -8
SLOT_PARENT = -16
SLOT_Z = -24
SLOT_YCOLOR = -32


class RBTreeDS(DataStructureExt):
    NAME = "rbtree"
    HEAP_BITS = 24

    # ------------------------------------------------------------------
    # shared emitters
    # ------------------------------------------------------------------

    def _root_addr(self, m, static, dst):
        m.heap_addr(dst, static + ROOT_OFF)

    def _emit_rotate(self, m: MacroAsm, static: int, x, side: str):
        """Inline LEFT/RIGHT-ROTATE(x).  Clobbers R2-R5; preserves x.

        ``side`` is the direction of the rotation; ``x`` must hold a
        non-NULL node pointer.
        """
        near = getattr(NODE, "right" if side == "left" else "left")
        far = getattr(NODE, "left" if side == "left" else "right")
        y, t, rootp = R4, R5, R3
        m.ldf(y, x, near)           # y = x.near
        m.ldf(t, y, far)            # t = y.far
        m.stf(x, near, t)           # x.near = t
        with m.if_("!=", t, 0):
            m.stf(t, NODE.parent, x)
        m.ldf(t, x, NODE.parent)    # t = x.parent
        m.stf(y, NODE.parent, t)
        with m.if_else("==", t, 0) as orelse:
            self._root_addr(m, static, rootp)
            m.stx(rootp, y, 0, 8)   # root = y
            orelse()
            m.ldf(R2, t, NODE.left)
            with m.if_else("==", R2, x) as orelse2:
                m.stf(t, NODE.left, y)
                orelse2()
                m.stf(t, NODE.right, y)
        m.stf(y, far, x)            # y.far = x
        m.stf(x, NODE.parent, y)

    def _emit_transplant(self, m: MacroAsm, static: int, u, v):
        """Replace subtree u with subtree v (v may be NULL).
        Clobbers R2-R3; preserves u and v."""
        m.ldf(R2, u, NODE.parent)
        with m.if_else("==", R2, 0) as orelse:
            self._root_addr(m, static, R3)
            m.stx(R3, v, 0, 8)
            orelse()
            m.ldf(R3, R2, NODE.left)
            with m.if_else("==", R3, u) as orelse2:
                m.stf(R2, NODE.left, v)
                orelse2()
                m.stf(R2, NODE.right, v)
        with m.if_("!=", v, 0):
            m.ldf(R2, u, NODE.parent)
            m.stf(v, NODE.parent, R2)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        self._root_addr(m, static, R2)
        m.ldx(R7, R2, 0, 8)
        with m.while_("!=", R7, 0):
            m.ldf(R3, R7, NODE.key)
            with m.if_("==", R3, R6):
                m.ldf(R0, R7, NODE.value)
                m.exit()
            with m.if_else("<", R6, R3) as orelse:
                m.ldf(R7, R7, NODE.left)
                orelse()
                m.ldf(R7, R7, NODE.right)
        m.mov(R0, MISS)
        m.exit()

    # ------------------------------------------------------------------
    # insert / update
    # ------------------------------------------------------------------

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)
        # Descend to the insertion point.
        m.mov(R8, 0)  # parent
        self._root_addr(m, static, R2)
        m.ldx(R9, R2, 0, 8)
        m.st_imm(R10, SLOT_DIR, 0, 8)
        with m.while_("!=", R9, 0):
            m.ldf(R3, R9, NODE.key)
            with m.if_("==", R3, R6):
                m.stf(R9, NODE.value, R7)  # update in place
                m.mov(R0, OK)
                m.exit()
            m.mov(R8, R9)
            with m.if_else("<", R6, R3) as orelse:
                m.ldf(R9, R9, NODE.left)
                m.st_imm(R10, SLOT_DIR, 0, 8)
                orelse()
                m.ldf(R9, R9, NODE.right)
                m.st_imm(R10, SLOT_DIR, 1, 8)
        # Allocate the new node z.
        m.stx(R10, R8, SLOT_PARENT, 8)
        m.call_helper(KFLEX_MALLOC, NODE.size)
        with m.if_("==", R0, 0):
            m.ld_imm64(R0, ERR)
            m.exit()
        m.mov(R9, R0)  # z
        m.ldx(R8, R10, SLOT_PARENT, 8)
        m.stf(R9, NODE.key, R6)
        m.stf(R9, NODE.value, R7)
        m.stf_imm(R9, NODE.left, 0)
        m.stf_imm(R9, NODE.right, 0)
        m.stf(R9, NODE.parent, R8)
        m.stf_imm(R9, NODE.color, RED)
        with m.if_else("==", R8, 0) as orelse:
            self._root_addr(m, static, R2)
            m.stx(R2, R9, 0, 8)
            orelse()
            m.ldx(R3, R10, SLOT_DIR, 8)
            with m.if_else("==", R3, 0) as orelse2:
                m.stf(R8, NODE.left, R9)
                orelse2()
                m.stf(R8, NODE.right, R9)

        # Fixup: z=R9, p=R8, g=R7, uncle=R6.
        with m.loop() as fix:
            m.ldf(R8, R9, NODE.parent)
            m.jcc("==", R8, 0, fix.break_)
            m.ldf(R2, R8, NODE.color)
            m.jcc("!=", R2, RED, fix.break_)
            m.ldf(R7, R8, NODE.parent)  # grandparent (non-NULL: p is red)
            m.ldf(R2, R7, NODE.left)
            with m.if_else("==", R2, R8) as orelse:
                # parent is the left child; uncle on the right.
                m.ldf(R6, R7, NODE.right)
                uncle_black = m.fresh_label("ub")
                m.jcc("==", R6, 0, uncle_black)
                m.ldf(R3, R6, NODE.color)
                m.jcc("!=", R3, RED, uncle_black)
                # Case 1: red uncle -> recolour, move up.
                m.stf_imm(R8, NODE.color, BLACK)
                m.stf_imm(R6, NODE.color, BLACK)
                m.stf_imm(R7, NODE.color, RED)
                m.mov(R9, R7)
                m.jmp(fix.continue_)
                m.label(uncle_black)
                # Case 2/3: rotations.
                m.ldf(R3, R8, NODE.right)
                with m.if_("==", R3, R9):
                    m.mov(R9, R8)
                    self._emit_rotate(m, static, R9, "left")
                m.ldf(R8, R9, NODE.parent)
                m.ldf(R7, R8, NODE.parent)
                m.stf_imm(R8, NODE.color, BLACK)
                m.stf_imm(R7, NODE.color, RED)
                self._emit_rotate(m, static, R7, "right")
                orelse()
                # Mirror image: parent is the right child.
                m.ldf(R6, R7, NODE.left)
                uncle_black2 = m.fresh_label("ub2")
                m.jcc("==", R6, 0, uncle_black2)
                m.ldf(R3, R6, NODE.color)
                m.jcc("!=", R3, RED, uncle_black2)
                m.stf_imm(R8, NODE.color, BLACK)
                m.stf_imm(R6, NODE.color, BLACK)
                m.stf_imm(R7, NODE.color, RED)
                m.mov(R9, R7)
                m.jmp(fix.continue_)
                m.label(uncle_black2)
                m.ldf(R3, R8, NODE.left)
                with m.if_("==", R3, R9):
                    m.mov(R9, R8)
                    self._emit_rotate(m, static, R9, "right")
                m.ldf(R8, R9, NODE.parent)
                m.ldf(R7, R8, NODE.parent)
                m.stf_imm(R8, NODE.color, BLACK)
                m.stf_imm(R7, NODE.color, RED)
                self._emit_rotate(m, static, R7, "left")
        # Root is always black.
        self._root_addr(m, static, R2)
        m.ldx(R3, R2, 0, 8)
        with m.if_("!=", R3, 0):
            m.stf_imm(R3, NODE.color, BLACK)
        m.mov(R0, OK)
        m.exit()

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def build_delete(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        # Find z.
        self._root_addr(m, static, R2)
        m.ldx(R9, R2, 0, 8)
        found = m.fresh_label("found")
        with m.while_("!=", R9, 0):
            m.ldf(R3, R9, NODE.key)
            m.jcc("==", R3, R6, found)
            with m.if_else("<", R6, R3) as orelse:
                m.ldf(R9, R9, NODE.left)
                orelse()
                m.ldf(R9, R9, NODE.right)
        m.mov(R0, MISS)
        m.exit()

        m.label(found)
        z = R9
        m.stx(R10, z, SLOT_Z, 8)
        # y-original-color; x in R9 after unlink, x_parent in R8.
        m.ldf(R2, z, NODE.color)
        m.stx(R10, R2, SLOT_YCOLOR, 8)
        m.ldf(R3, z, NODE.left)
        fixup = m.fresh_label("fixup")
        with m.if_else("==", R3, 0) as orelse:
            # x = z.right; x_parent = z.parent
            m.ldf(R7, z, NODE.right)
            m.ldf(R8, z, NODE.parent)
            self._emit_transplant(m, static, z, R7)
            m.mov(R9, R7)
            m.jmp(fixup)
            orelse()
            m.ldf(R4, z, NODE.right)
            with m.if_else("==", R4, 0) as orelse2:
                # x = z.left; x_parent = z.parent
                m.ldf(R7, z, NODE.left)
                m.ldf(R8, z, NODE.parent)
                self._emit_transplant(m, static, z, R7)
                m.mov(R9, R7)
                m.jmp(fixup)
                orelse2()
                # Two children: y = minimum(z.right).
                m.ldf(R7, z, NODE.right)  # y cursor
                with m.loop() as down:
                    m.ldf(R2, R7, NODE.left)
                    m.jcc("==", R2, 0, down.break_)
                    m.mov(R7, R2)
                # y = R7
                m.ldf(R2, R7, NODE.color)
                m.stx(R10, R2, SLOT_YCOLOR, 8)
                m.ldf(R6, R7, NODE.right)  # x = y.right (may be 0)
                m.ldf(R2, R7, NODE.parent)
                with m.if_else("==", R2, R9) as orelse3:
                    m.mov(R8, R7)  # x_parent = y
                    orelse3()
                    m.mov(R8, R2)  # x_parent = y.parent
                    self._emit_transplant(m, static, R7, R6)
                    m.ldx(R4, R10, SLOT_Z, 8)
                    m.ldf(R3, R4, NODE.right)
                    m.stf(R7, NODE.right, R3)
                    m.ldf(R3, R7, NODE.right)
                    m.stf(R3, NODE.parent, R7)
                m.ldx(R4, R10, SLOT_Z, 8)  # z
                self._emit_transplant(m, static, R4, R7)
                m.ldf(R3, R4, NODE.left)
                m.stf(R7, NODE.left, R3)
                m.ldf(R3, R7, NODE.left)
                m.stf(R3, NODE.parent, R7)
                m.ldf(R3, R4, NODE.color)
                m.stf(R7, NODE.color, R3)
                m.mov(R9, R6)  # x
                m.jmp(fixup)

        m.label(fixup)
        # If y's original colour was black, rebalance; x=R9 (may be 0),
        # x_parent=R8 (0 only when x is the root).
        m.ldx(R2, R10, SLOT_YCOLOR, 8)
        done = m.fresh_label("done")
        m.jcc("!=", R2, BLACK, done)

        with m.loop() as fx:
            # while x != root and x is black (NULL counts as black)
            self._root_addr(m, static, R2)
            m.ldx(R3, R2, 0, 8)
            m.jcc("==", R9, R3, fx.break_)
            nonblack = m.fresh_label("nb")
            m.jcc("==", R9, 0, nonblack)
            m.ldf(R2, R9, NODE.color)
            m.jcc("==", R2, RED, fx.break_)
            m.label(nonblack)
            # w = sibling of x.
            m.ldf(R2, R8, NODE.left)
            with m.if_else("==", R2, R9) as orelse:
                self._emit_delete_side(m, static, fx, "left")
                orelse()
                self._emit_delete_side(m, static, fx, "right")
        with m.if_("!=", R9, 0):
            m.stf_imm(R9, NODE.color, BLACK)

        m.label(done)
        m.ldx(R4, R10, SLOT_Z, 8)
        m.call_helper(KFLEX_FREE, R4)
        m.mov(R0, OK)
        m.exit()

    def _emit_delete_side(self, m: MacroAsm, static: int, fx, side: str):
        """One arm of the delete fixup (x is the ``side`` child).

        Registers: x=R9, x_parent=R8, w=R7; scratch R2-R6.
        """
        near = getattr(NODE, "right" if side == "left" else "left")
        this = getattr(NODE, side)
        rot_near = "left" if side == "left" else "right"
        rot_far = "right" if side == "left" else "left"

        m.ldf(R7, R8, near)  # w = sibling
        # Case 1: w red.
        m.ldf(R2, R7, NODE.color)
        with m.if_("==", R2, RED):
            m.stf_imm(R7, NODE.color, BLACK)
            m.stf_imm(R8, NODE.color, RED)
            self._emit_rotate(m, static, R8, rot_near)
            m.ldf(R7, R8, near)
        # Case 2: both of w's children black (NULL = black).
        m.ldf(R5, R7, NODE.left)
        wl_black = m.fresh_label("wlb")
        m.jcc("==", R5, 0, wl_black)
        m.ldf(R2, R5, NODE.color)
        m.jcc("==", R2, RED, m_case3 := m.fresh_label("c3"))
        m.label(wl_black)
        m.ldf(R5, R7, NODE.right)
        wr_black = m.fresh_label("wrb")
        m.jcc("==", R5, 0, wr_black)
        m.ldf(R2, R5, NODE.color)
        m.jcc("==", R2, RED, m_case3)
        m.label(wr_black)
        # Case 2 body: recolour w red, move x up.
        m.stf_imm(R7, NODE.color, RED)
        m.mov(R9, R8)
        m.ldf(R8, R9, NODE.parent)
        m.jmp(fx.continue_)

        m.label(m_case3)
        # Case 3: w's far child black -> rotate w toward far side.
        far_field = getattr(NODE, "right" if side == "left" else "left")
        near_field = getattr(NODE, "left" if side == "left" else "right")
        m.ldf(R5, R7, far_field)
        case4 = m.fresh_label("c4")
        do_c3 = m.fresh_label("do3")
        m.jcc("==", R5, 0, do_c3)
        m.ldf(R2, R5, NODE.color)
        m.jcc("==", R2, RED, case4)
        m.label(do_c3)
        m.ldf(R5, R7, near_field)
        with m.if_("!=", R5, 0):
            m.stf_imm(R5, NODE.color, BLACK)
        m.stf_imm(R7, NODE.color, RED)
        self._emit_rotate(m, static, R7, rot_far)
        m.ldf(R7, R8, near)

        m.label(case4)
        # Case 4: w takes parent's colour; parent black; far child black.
        m.ldf(R2, R8, NODE.color)
        m.stf(R7, NODE.color, R2)
        m.stf_imm(R8, NODE.color, BLACK)
        m.ldf(R5, R7, far_field)
        with m.if_("!=", R5, 0):
            m.stf_imm(R5, NODE.color, BLACK)
        self._emit_rotate(m, static, R8, rot_near)
        # x = root terminates the loop.
        self._root_addr(m, static, R2)
        m.ldx(R9, R2, 0, 8)
        m.mov(R8, 0)
        m.jmp(fx.continue_)
