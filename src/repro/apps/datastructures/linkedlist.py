"""Doubly linked list as a KFlex extension (§5.2, Listing 1's shape).

Update pushes at the head (constant time); lookup and delete traverse
the list — the paper's Fig. 5 runs them over 64 K elements.  The
traversal loop is exactly the ``while (e != NULL)`` pattern eBPF
rejects (§2.2) and KFlex admits via a back-edge cancellation point.
"""

from __future__ import annotations

from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_FREE
from repro.apps.datastructures.common import (
    DataStructureExt,
    load_op_args,
    ERR,
    MISS,
    OK,
    R0, R2, R3, R6, R7, R8, R9,
)

ELEM = Struct(key=8, value=8, next=8, prev=8)

HEAD_OFF = 0  # within the static area


class LinkedListDS(DataStructureExt):
    NAME = "linkedlist"
    HEAP_BITS = 24

    # -- update: push-front, O(1) -------------------------------------------

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)
        m.call_helper(KFLEX_MALLOC, ELEM.size)
        with m.if_("==", R0, 0):
            m.ld_imm64(R0, ERR)
            m.exit()
        m.mov(R8, R0)  # node
        m.stf(R8, ELEM.key, R6)
        m.stf(R8, ELEM.value, R7)
        m.stf_imm(R8, ELEM.prev, 0)
        m.heap_addr(R2, static + HEAD_OFF)
        m.ldx(R9, R2, 0, 8)  # old head (untrusted once dereferenced)
        m.stf(R8, ELEM.next, R9)
        with m.if_("!=", R9, 0):
            m.stf(R9, ELEM.prev, R8)  # guard: pointer loaded from memory
        m.stx(R2, R8, 0, 8)  # head = node
        m.mov(R0, OK)
        m.exit()

    # -- lookup: full traversal ------------------------------------------------

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        m.heap_addr(R2, static + HEAD_OFF)
        m.ldx(R7, R2, 0, 8)
        with m.while_("!=", R7, 0):
            m.ldf(R3, R7, ELEM.key)  # guard: e formed from memory
            with m.if_("==", R3, R6):
                m.ldf(R0, R7, ELEM.value)  # elided: e sanitised above
                m.exit()
            m.ldf(R7, R7, ELEM.next)  # elided
        m.mov(R0, MISS)
        m.exit()

    # -- delete: traverse, unlink, free ----------------------------------------

    def build_delete(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        m.heap_addr(R2, static + HEAD_OFF)
        m.ldx(R7, R2, 0, 8)
        with m.while_("!=", R7, 0):
            m.ldf(R3, R7, ELEM.key)  # guard (sanitises R7)
            with m.if_("==", R3, R6):
                m.ldf(R8, R7, ELEM.next)  # elided
                m.ldf(R9, R7, ELEM.prev)  # elided
                with m.if_else("!=", R9, 0) as orelse:
                    m.stf(R9, ELEM.next, R8)  # guard
                    orelse()
                    m.heap_addr(R2, static + HEAD_OFF)
                    m.stx(R2, R8, 0, 8)  # head = e->next
                with m.if_("!=", R8, 0):
                    m.stf(R8, ELEM.prev, R9)  # guard
                m.call_helper(KFLEX_FREE, R7)
                m.mov(R0, OK)
                m.exit()
            m.ldf(R7, R7, ELEM.next)  # elided
        m.mov(R0, MISS)
        m.exit()
