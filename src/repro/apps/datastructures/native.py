"""Reference implementations for differential testing.

Pure-Python models with the same observable semantics as the extension
data structures (§5.2).  Tests drive the extension and the reference
with identical operation streams and compare every result.  (The
*performance* baseline — the paper's KMod — is the same bytecode loaded
uninstrumented via ``KFlexRuntime.load_kmod``, not these classes.)
"""

from __future__ import annotations

from repro.apps.datastructures.common import MISS, OK
from repro.apps.datastructures.sketch import (
    ROW_CONSTS,
    SIGN_CONSTS,
    ROWS,
    WIDTH_BITS,
)

U64 = (1 << 64) - 1


class RefMap:
    """Reference for hashmap / rbtree / linked list / skiplist maps."""

    def __init__(self):
        self._d: dict[int, int] = {}

    def update(self, key: int, value: int) -> int:
        self._d[key] = value
        return OK

    def lookup(self, key: int) -> int:
        return self._d.get(key, MISS)

    def delete(self, key: int) -> int:
        return OK if self._d.pop(key, None) is not None else MISS

    def __len__(self):
        return len(self._d)


class RefCountMin:
    def __init__(self):
        self.rows = [[0] * (1 << WIDTH_BITS) for _ in range(ROWS)]

    @staticmethod
    def _idx(row: int, key: int) -> int:
        return ((key * ROW_CONSTS[row]) & U64) >> (64 - WIDTH_BITS)

    def update(self, key: int, delta: int) -> int:
        for r in range(ROWS):
            self.rows[r][self._idx(r, key)] = (
                self.rows[r][self._idx(r, key)] + delta
            ) & U64
        return OK

    def lookup(self, key: int) -> int:
        return min(self.rows[r][self._idx(r, key)] for r in range(ROWS))


class RefCountSketch:
    def __init__(self):
        self.rows = [[0] * (1 << WIDTH_BITS) for _ in range(ROWS)]

    @staticmethod
    def _idx(row: int, key: int) -> int:
        return ((key * ROW_CONSTS[row]) & U64) >> (64 - WIDTH_BITS)

    @staticmethod
    def _sign(row: int, key: int) -> int:
        return -1 if ((key * SIGN_CONSTS[row]) & U64) >> 63 else 1

    def update(self, key: int, delta: int) -> int:
        for r in range(ROWS):
            i = self._idx(r, key)
            self.rows[r][i] = (self.rows[r][i] + self._sign(r, key) * delta) & U64
        return OK

    def lookup(self, key: int) -> int:
        def s64(v):
            return v - (1 << 64) if v >= (1 << 63) else v

        ests = sorted(
            s64(self.rows[r][self._idx(r, key)]) * self._sign(r, key)
            for r in range(ROWS)
        )
        return ((ests[1] + ests[2]) >> 1) & U64
