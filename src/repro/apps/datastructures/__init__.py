"""Extension-defined data structures (§5.2).

eBPF cannot express these — extensions may not define data structures
or follow unbounded pointer chains (§2.2).  KFlex can: every structure
here is plain bytecode over the extension heap, with nodes allocated by
``kflex_malloc`` on demand.
"""

from repro.apps.datastructures.linkedlist import LinkedListDS
from repro.apps.datastructures.hashmap import HashMapDS
from repro.apps.datastructures.rbtree import RBTreeDS
from repro.apps.datastructures.skiplist import SkipListDS
from repro.apps.datastructures.sketch import CountMinSketchDS, CountSketchDS

ALL_STRUCTURES = {
    "hashmap": HashMapDS,
    "rbtree": RBTreeDS,
    "linkedlist": LinkedListDS,
    "skiplist": SkipListDS,
    "countmin": CountMinSketchDS,
    "countsketch": CountSketchDS,
}

__all__ = [
    "LinkedListDS",
    "HashMapDS",
    "RBTreeDS",
    "SkipListDS",
    "CountMinSketchDS",
    "CountSketchDS",
    "ALL_STRUCTURES",
]
