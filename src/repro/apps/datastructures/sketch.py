"""Network sketches as KFlex extensions (§5.2, Fig. 5e).

Count-Min and Count sketches: fixed-size counter matrices in the static
area, indexed by per-row hashes.  Every access is provably in bounds,
so — as Table 3 notes — the verifier proves all memory accesses
statically and the SFI emits no guards at all.

``update(key, delta)`` adds ``delta`` occurrences of ``key``;
``lookup(key)`` returns the estimate (Count-Min: row minimum;
Count sketch: median of signed row estimates).
"""

from __future__ import annotations

from repro.ebpf.macroasm import MacroAsm
from repro.apps.datastructures.common import (
    DataStructureExt,
    load_op_args,
    OK,
    R0, R2, R3, R4, R5, R6, R7, R8, R9, R10,
)

ROWS = 4
WIDTH_BITS = 12  # 4096 counters per row
ROW_BYTES = (1 << WIDTH_BITS) * 8

#: Distinct odd multipliers per row (Knuth-style multiplicative hashing).
ROW_CONSTS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)

#: Extra multiplier whose low bit supplies the Count-sketch sign.
SIGN_CONSTS = (
    0xFF51AFD7ED558CCD,
    0xC4CEB9FE1A85EC53,
    0x2545F4914F6CDD1D,
    0x9E6C63D0876A9F4B,
)


def _emit_row_counter_addr(m, static, row, key_reg, dst, scratch):
    """dst = &rows[row][hash_row(key)] (all bounds provable)."""
    m.mov(dst, key_reg)
    m.ld_imm64(scratch, ROW_CONSTS[row])
    m.mul(dst, scratch)
    m.rsh(dst, 64 - WIDTH_BITS)
    m.lsh(dst, 3)
    m.heap_addr(scratch, static + row * ROW_BYTES)
    m.add(dst, scratch)


class CountMinSketchDS(DataStructureExt):
    NAME = "countmin"
    HEAP_BITS = 22
    STATIC_BYTES = ROWS * ROW_BYTES
    OPS = ("update", "lookup")

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)  # key, delta
        for row in range(ROWS):
            _emit_row_counter_addr(m, static, row, R6, R8, R2)
            m.ldx(R3, R8, 0, 8)
            m.add(R3, R7)
            m.stx(R8, R3, 0, 8)
        m.mov(R0, OK)
        m.exit()

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        m.ld_imm64(R9, (1 << 64) - 1)  # running minimum = UINT64_MAX
        for row in range(ROWS):
            _emit_row_counter_addr(m, static, row, R6, R8, R2)
            m.ldx(R3, R8, 0, 8)
            skip = m.fresh_label("skip")
            m.jcc(">=", R3, R9, skip)
            m.mov(R9, R3)
            m.label(skip)
        m.mov(R0, R9)
        m.exit()


class CountSketchDS(DataStructureExt):
    NAME = "countsketch"
    HEAP_BITS = 22
    STATIC_BYTES = ROWS * ROW_BYTES
    OPS = ("update", "lookup")

    def _emit_sign(self, m, row, key_reg, dst, scratch):
        """dst = +1 or -1 from the sign hash."""
        m.mov(dst, key_reg)
        m.ld_imm64(scratch, SIGN_CONSTS[row])
        m.mul(dst, scratch)
        m.rsh(dst, 63)  # top bit: 0 or 1
        m.lsh(dst, 1)   # 0 or 2
        m.neg(dst)      # 0 or -2
        m.add(dst, 1)   # +1 or -1

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)
        for row in range(ROWS):
            _emit_row_counter_addr(m, static, row, R6, R8, R2)
            self._emit_sign(m, row, R6, R9, R2)
            m.mul(R9, R7)       # signed delta contribution
            m.ldx(R3, R8, 0, 8)
            m.add(R3, R9)
            m.stx(R8, R3, 0, 8)
        m.mov(R0, OK)
        m.exit()

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        """Median of the four signed row estimates.

        The four estimates are written to the stack, sorted with an
        unrolled compare-exchange network, and the median is the mean
        of the two middle values (all signed arithmetic).
        """
        load_op_args(m, R6)
        for row in range(ROWS):
            _emit_row_counter_addr(m, static, row, R6, R8, R2)
            self._emit_sign(m, row, R6, R9, R2)
            m.ldx(R3, R8, 0, 8)
            m.mul(R3, R9)  # estimate = sign * counter
            m.stx(R10, R3, -8 * (row + 1), 8)

        def cmpswap(off_a, off_b):
            done = m.fresh_label("noswap")
            m.ldx(R3, R10, off_a, 8)
            m.ldx(R4, R10, off_b, 8)
            m.jcc("s<=", R3, R4, done)
            m.stx(R10, R4, off_a, 8)
            m.stx(R10, R3, off_b, 8)
            m.label(done)

        # Batcher network for 4 elements at fp-8..fp-32.
        a, b, c, d = -8, -16, -24, -32
        cmpswap(a, b)
        cmpswap(c, d)
        cmpswap(a, c)
        cmpswap(b, d)
        cmpswap(b, c)
        m.ldx(R3, R10, b, 8)
        m.ldx(R4, R10, c, 8)
        m.add(R3, R4)
        m.arsh(R3, 1)  # signed mean of the middle pair
        m.mov(R0, R3)
        m.exit()
