"""Skip list as a KFlex extension (§5.2, and the ZADD backbone of §5.2).

Classic multi-level list with per-level search loops.  Levels are
derived deterministically from a hash of the key (geometric, p = 1/2),
which keeps extension runs reproducible; the paper's Redis offload uses
the same structure for sorted sets (Fig. 6).

The head node lives in the static area with the same field layout as
heap nodes, so the search loop code is uniform.
"""

from __future__ import annotations

from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.helpers import KFLEX_MALLOC, KFLEX_FREE
from repro.apps.datastructures.common import (
    DataStructureExt,
    load_op_args,
    ERR,
    MISS,
    OK,
    R0, R2, R3, R4, R5, R6, R7, R8, R9, R10,
)

MAX_LEVEL = 8

#: Node: key, value, level, next[MAX_LEVEL].
NODE = Struct(
    key=8, value=8, level=8,
    **{f"next{i}": 8 for i in range(MAX_LEVEL)},
)

LEVEL_CONST = 0xC4CEB9FE1A85EC53

#: Byte offset of next[0] inside a node; next[i] = NEXT_BASE + 8*i.
NEXT_BASE = NODE.next0.off

#: Predecessor scratch array in the static area (after the head node).
#: eBPF has no variable-offset stack access, so — as a compiler would —
#: the per-level predecessor array lives in the heap.
SCRATCH_OFF = NODE.size


def _next_field(i: int):
    return getattr(NODE, f"next{i}")


class SkipListDS(DataStructureExt):
    NAME = "skiplist"
    HEAP_BITS = 24
    STATIC_BYTES = NODE.size + 8 * MAX_LEVEL  # head pseudo-node + preds

    # -- emitters ------------------------------------------------------------

    def _emit_descend(
        self, m: MacroAsm, static: int, *, save_preds: bool,
        heap_scratch: bool = False,
    ):
        """Walk from the head down to level 0.

        Leaves x (the level-0 predecessor) in R8.  With ``save_preds``
        the per-level predecessors are spilled to fp-8(l+1); with
        ``heap_scratch`` they are also written to the static scratch
        array (constant offsets, so these stores elide).
        R6 holds the search key throughout; clobbers R2, R9.
        """
        m.heap_addr(R8, static)  # x = head (trusted)
        for lvl in range(MAX_LEVEL - 1, -1, -1):
            fld = _next_field(lvl)
            with m.loop() as walk:
                m.ldf(R9, R8, fld)  # y = x.next[lvl]
                m.jcc("==", R9, 0, walk.break_)
                m.ldf(R2, R9, NODE.key)  # guard: y from memory
                m.jcc(">=", R2, R6, walk.break_)
                m.mov(R8, R9)  # advance
            if save_preds:
                m.stx(R10, R8, -8 * (lvl + 1), 8)
            if heap_scratch:
                m.heap_addr(R2, static + SCRATCH_OFF + 8 * lvl)
                m.stx(R2, R8, 0, 8)

    def _emit_level(self, m: MacroAsm, key, dst, scratch):
        """dst = deterministic level in [1, MAX_LEVEL] (geometric)."""
        m.mov(scratch, key)
        m.ld_imm64(dst, LEVEL_CONST)
        m.mul(scratch, dst)
        m.mov(dst, 1)
        done = m.fresh_label("lvl_done")
        for i in range(MAX_LEVEL - 1):
            bit = m.fresh_label(f"bit{i}")
            m.jcc("&", scratch, 1 << i, bit)
            m.jmp(done)
            m.label(bit)
            m.add(dst, 1)
        m.label(done)

    # -- operations -------------------------------------------------------------

    def build_update(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6, R7)
        self._emit_descend(m, static, save_preds=True)
        # Found?
        m.ldf(R9, R8, _next_field(0))
        with m.if_("!=", R9, 0):
            m.ldf(R2, R9, NODE.key)  # guard
            with m.if_("==", R2, R6):
                m.stf(R9, NODE.value, R7)
                m.mov(R0, OK)
                m.exit()
        # Insert: level from the key hash, node from the allocator.
        self._emit_level(m, R6, R9, R2)
        m.stx(R10, R9, -8 * (MAX_LEVEL + 1), 8)  # save level
        m.call_helper(KFLEX_MALLOC, NODE.size)
        with m.if_("==", R0, 0):
            m.ld_imm64(R0, ERR)
            m.exit()
        m.mov(R9, R0)
        m.stf(R9, NODE.key, R6)
        m.stf(R9, NODE.value, R7)
        m.ldx(R2, R10, -8 * (MAX_LEVEL + 1), 8)
        m.stf(R9, NODE.level, R2)
        for i in range(MAX_LEVEL):
            m.stf_imm(R9, _next_field(i), 0)
        # Link level by level (unrolled; stop above the node's level).
        done = m.fresh_label("link_done")
        for i in range(MAX_LEVEL):
            m.ldx(R2, R10, -8 * (MAX_LEVEL + 1), 8)
            m.jcc("<=", R2, i, done)
            m.ldx(R8, R10, -8 * (i + 1), 8)  # pred at level i
            m.ldf(R3, R8, _next_field(i))    # guard (pred from stack)
            m.stf(R9, _next_field(i), R3)
            m.stf(R8, _next_field(i), R9)
        m.label(done)
        m.mov(R0, OK)
        m.exit()

    def build_lookup(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        self._emit_descend(m, static, save_preds=False)
        m.ldf(R9, R8, _next_field(0))
        with m.if_("!=", R9, 0):
            m.ldf(R2, R9, NODE.key)  # guard
            with m.if_("==", R2, R6):
                m.ldf(R0, R9, NODE.value)
                m.exit()
        m.mov(R0, MISS)
        m.exit()

    def build_delete(self, m: MacroAsm, static: int) -> None:
        load_op_args(m, R6)
        self._emit_descend(m, static, save_preds=False, heap_scratch=True)
        m.ldf(R9, R8, _next_field(0))
        with m.if_("==", R9, 0):
            m.mov(R0, MISS)
            m.exit()
        m.ldf(R2, R9, NODE.key)  # guard
        with m.if_("!=", R2, R6):
            m.mov(R0, MISS)
            m.exit()
        # Unlink with a *dynamic* level loop, as a compiler emits for
        # ``for (i = 0; i < node->level; i++)``: the level is loaded
        # from node memory, so the computed ``next[i]`` offsets cannot
        # be proven in bounds — these are the manipulation guards range
        # analysis cannot elide (§5.4's partial-elision case).
        m.ldf(R7, R9, NODE.level)  # untrusted bound
        m.mov(R3, 0)  # i
        with m.while_("<", R3, R7):
            # pred = scratch[i]
            m.mov(R5, R3)
            m.lsh(R5, 3)
            m.heap_addr(R4, static + SCRATCH_OFF)
            m.add(R4, R5)
            m.ldx(R4, R4, 0, 8)  # manipulation guard (i unbounded)
            # pred->next[i] cell
            m.mov(R5, R3)
            m.lsh(R5, 3)
            m.add(R5, NEXT_BASE)
            m.add(R4, R5)
            m.ldx(R2, R4, 0, 8)  # formation guard; R4 sanitised after
            with m.if_("==", R2, R9):
                # node->next[i]
                m.mov(R5, R3)
                m.lsh(R5, 3)
                m.add(R5, NEXT_BASE)
                m.add(R5, R9)
                m.ldx(R2, R5, 0, 8)  # guard (node + unbounded offset)
                m.stx(R4, R2, 0, 8)  # pred->next[i] = node->next[i]
            m.add(R3, 1)
        m.call_helper(KFLEX_FREE, R9)
        m.mov(R0, OK)
        m.exit()
