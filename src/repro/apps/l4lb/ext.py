"""The L4LB extension: flow table + ring lookup, XDP_TX redirect.

Every packet carries an 8-byte L4LB envelope in front of the inner
application payload:

====== ====== ==================================================
offset size   field
====== ====== ==================================================
0      1      magic (0xB4; anything else is wire garbage → DROP)
1      1      flags (unused, reserved)
2      2      backend id, u16 LE — *written by the extension*
              (clients send 0); the redirect target
4      4      flow id, u32 LE (the 5-tuple hash stand-in)
====== ====== ==================================================

Verdict pipeline, one extension invocation per packet:

1. **Connection table** (pinned hash map, flow → backend): a hit is
   an established flow and wins unconditionally — this is what keeps
   flows sticky across ring changes *and* LB restarts (the map is
   journaled into the WAL like any pinned map, so recovery replays
   it).
2. **Ring** (array map, slot → backend): on a miss the flow hashes to
   a ring slot, the slot's backend is chosen, and the binding is
   inserted into the connection table before the packet leaves —
   the next packet of this flow takes path 1.
3. The chosen backend id is written into the packet at offset 2 and
   the verdict is ``XDP_TX``: on real hardware this is the rewrite-
   and-retransmit Katran does toward the backend; here the datapath
   wrapper reads the id back and forwards the inner payload to that
   backend's service.

A full connection table degrades gracefully: the insert fails
(-E2BIG), the packet still redirects via the ring, and the flow is
simply not sticky until space frees — the Katran failure mode, chosen
deliberately over dropping new flows.
"""

from __future__ import annotations

from repro.apps.datastructures.common import HASH_CONST
from repro.ebpf.helpers import BPF_MAP_LOOKUP_ELEM, BPF_MAP_UPDATE_ELEM
from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.program import Program, XDP_DROP, XDP_TX

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

MAGIC = 0xB4
HDR_SIZE = 8
BACKEND_OFF = 2
FLOW_OFF = 4

RING_BITS = 7
RING_SIZE = 1 << RING_BITS

SLOT_KEY = -16    # staged flow id (conn-table key, 8 bytes)
SLOT_RING = -24   # staged ring slot (array key, 4 bytes)
SLOT_VAL = -32    # staged backend id (conn-table value, 8 bytes)


def wrap(flow: int, inner: bytes) -> bytes:
    """Wrap an inner payload in the L4LB envelope (backend field 0)."""
    return bytes([MAGIC, 0, 0, 0]) + (flow & 0xFFFFFFFF).to_bytes(
        4, "little"
    ) + inner


def build_l4lb_program(
    conn: HashMap,
    ring: ArrayMap,
    *,
    name: str = "l4lb",
    tag: int = 0,
) -> Program:
    """Build the balancer over an existing conn table + ring map.

    ``tag`` stamps an inert instruction so rebuilt programs (e.g.
    after recovery) can carry distinct content digests, mirroring the
    durable-memcached convention.
    """
    m = MacroAsm()
    if tag:
        m.mov(R0, tag & 0x7FFFFFFF)  # inert: R0 is dead until exit

    # Prologue: the envelope must be present and ours.
    m.ldx(R6, R1, 0, 8)   # data
    m.ldx(R3, R1, 8, 8)   # data_end
    m.mov(R2, R6)
    m.add(R2, HDR_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, XDP_DROP)
    m.exit()
    m.label(ok)
    m.ldx(R4, R6, 0, 1)
    magic_ok = m.fresh_label("magic")
    m.jcc("==", R4, MAGIC, magic_ok)
    m.mov(R0, XDP_DROP)
    m.exit()
    m.label(magic_ok)

    # Flow id, staged as the conn-table key (zero-extended to 8 bytes).
    m.ldx(R7, R6, FLOW_OFF, 4)
    m.stx(R10, R7, SLOT_KEY, 8)

    # 1. Established flow?  The pinned binding wins unconditionally.
    m.map_ptr(R1, conn)
    m.mov(R2, R10)
    m.add(R2, SLOT_KEY)
    m.call(BPF_MAP_LOOKUP_ELEM)
    miss = m.fresh_label("miss")
    m.jcc("==", R0, 0, miss)
    m.ldx(R8, R0, 0, 8)   # backend id
    out = m.fresh_label("out")
    m.jmp(out)

    # 2. New flow: ring slot → backend, then bind it.
    m.label(miss)
    m.mov(R4, R7)
    m.ld_imm64(R5, HASH_CONST)
    m.mul(R4, R5)
    m.rsh(R4, 64 - RING_BITS)
    m.stx(R10, R4, SLOT_RING, 4)
    m.map_ptr(R1, ring)
    m.mov(R2, R10)
    m.add(R2, SLOT_RING)
    m.call(BPF_MAP_LOOKUP_ELEM)
    have = m.fresh_label("have")
    m.jcc("!=", R0, 0, have)
    m.mov(R0, XDP_DROP)   # unreachable: every ring slot exists
    m.exit()
    m.label(have)
    m.ldx(R8, R0, 0, 8)
    m.stx(R10, R8, SLOT_VAL, 8)
    m.map_ptr(R1, conn)
    m.mov(R2, R10)
    m.add(R2, SLOT_KEY)
    m.mov(R3, R10)
    m.add(R3, SLOT_VAL)
    m.mov(R4, 0)          # BPF_ANY
    m.call(BPF_MAP_UPDATE_ELEM)
    # rc deliberately ignored: a full table forfeits stickiness for
    # this flow, it does not drop the packet.

    # 3. Redirect: backend id into the packet, transmit.
    m.label(out)
    m.stx(R6, R8, BACKEND_OFF, 2)
    m.mov(R0, XDP_TX)
    m.exit()

    return Program(
        name, m.assemble(), hook="xdp",
        maps={conn.fd: conn, ring.fd: ring},
    )
