"""``repro.apps.l4lb`` — Katran-style L4 load balancer at the XDP hook.

The flagship production XDP use case: consistent-hash packets to
backend shards entirely at ingress (``XDP_TX`` redirect), with the
flow → backend binding held in a *pinned* map so a load-balancer
restart — or a backend failover — keeps established flows sticky.
See :mod:`repro.apps.l4lb.ext` for the program,
:mod:`repro.apps.l4lb.ring` for the rendezvous ring, and
:mod:`repro.apps.l4lb.service` for the datapath wrapper + failover.
"""

from repro.apps.l4lb.ext import (
    HDR_SIZE,
    MAGIC,
    RING_SIZE,
    build_l4lb_program,
    wrap,
)
from repro.apps.l4lb.ring import build_ring
from repro.apps.l4lb.service import L4LBService

__all__ = [
    "HDR_SIZE",
    "L4LBService",
    "MAGIC",
    "RING_SIZE",
    "build_l4lb_program",
    "build_ring",
    "wrap",
]
