"""Rendezvous (highest-random-weight) hashing for the backend ring.

Katran uses a Maglev-style lookup table; rendezvous hashing gives the
same two properties with less machinery:

* **balance** — each ring slot picks the backend with the highest
  keyed hash, so slots spread near-uniformly for any backend set;
* **minimal disruption** — removing a backend reassigns *only* the
  slots it owned (every other slot's argmax is unchanged), so a
  failover remaps exactly the failed backend's share of the
  keyspace and nothing else.

The ring is config, not state: it is rebuilt from the live backend
list on every change and written into a plain (unpinned) array map.
Stickiness for established flows lives in the pinned connection
table, not here.
"""

from __future__ import annotations

import hashlib


def _weight(slot: int, backend: int) -> bytes:
    return hashlib.sha256(f"{slot}:{backend}".encode()).digest()


def build_ring(backends, size: int) -> list[int]:
    """``ring[slot] -> backend id`` for the given backend set."""
    ids = sorted(backends)
    if not ids:
        raise ValueError("l4lb ring needs at least one backend")
    return [
        max(ids, key=lambda b, s=slot: _weight(s, b)) for slot in range(size)
    ]
