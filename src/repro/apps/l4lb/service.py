"""Datapath wrapper: the balancer fronting real backend services.

:class:`L4LBService` is the LB tier of a two-tier deployment: it owns
its *own* runtime (the LB box) with the balancer extension and the
pinned connection table, and forwards redirected packets to backend
:class:`~repro.net.service.PacketService` instances that each own
*their* runtime and durable store (the backend boxes).  Crashing a
backend, rebuilding it from its store, and crash-restarting the LB
itself are therefore all independent events — exactly the failure
grid the l4lb scenarios walk.
"""

from __future__ import annotations

from repro.apps.l4lb.ext import (
    BACKEND_OFF,
    HDR_SIZE,
    MAGIC,
    RING_SIZE,
    build_l4lb_program,
)
from repro.apps.l4lb.ring import build_ring
from repro.core.runtime import KFlexRuntime
from repro.ebpf.maps import ArrayMap, HashMap
from repro.ebpf.program import XDP_TX
from repro.net.service import PacketService


class L4LBService(PacketService):
    """Katran-style balancing over pinned-map flow state.

    On a fresh ``store`` the connection table is created and pinned at
    ``pin``; on a store that already holds durable state — an LB
    restart — the table is rebuilt from snapshot + WAL and the program
    is recompiled over the recovered map, so established flows keep
    their backend across the restart.  The ring map is config, not
    state: it is rebuilt from the live backend set on every change and
    never pinned.
    """

    def __init__(
        self,
        runtime: KFlexRuntime | None = None,
        *,
        store,
        backends: dict | None = None,
        pin: str = "l4lb/conn",
        conn_capacity: int = 4096,
        ring_size: int = RING_SIZE,
        engine: str | None = None,
    ):
        runtime = runtime or KFlexRuntime(engine=engine)
        self.store = store
        self.pin = pin
        self.ring_size = ring_size
        #: backend id -> PacketService (each with its own runtime).
        self.backends = dict(backends or {})
        k = runtime.kernel
        self.ring_map = ArrayMap(
            k.aspace, k.vmalloc,
            value_size=8, max_entries=ring_size, name="l4lb-ring",
        )
        self.recovered = pin in store.pins()
        self.recovery = None
        if self.recovered:
            loaded = {}

            def factory(rt, m):
                ext = rt.load(
                    build_l4lb_program(m, self.ring_map, tag=1),
                    mode="ebpf", attach=False,
                )
                loaded["ext"] = ext
                return ext

            self.recovery = runtime.recover(store, programs={pin: factory})
            self.conn = runtime.pins.get(pin)
            ext = loaded["ext"]
        else:
            self.conn = HashMap(
                k.aspace, k.vmalloc,
                key_size=8, value_size=8,
                max_entries=conn_capacity, name="l4lb-conn",
            )
            runtime.pin_map(pin, self.conn, store)
            ext = runtime.load(
                build_l4lb_program(self.conn, self.ring_map),
                mode="ebpf", attach=False,
            )
        super().__init__(runtime)
        self.ext = ext
        #: Packets forwarded per backend id.
        self.forwarded: dict = {}
        #: Redirects whose target backend was absent (mid-failover).
        self.unrouted = 0
        #: Non-envelope wire garbage dropped at the hook.
        self.garbage_drops = 0
        if self.backends:
            self.sync_ring()

    # -- ring / backend management ----------------------------------------

    def sync_ring(self) -> list[int]:
        """Rebuild the rendezvous ring from the live backend set and
        write it into the ring map."""
        ring = build_ring(self.backends, self.ring_size)
        for slot, bid in enumerate(ring):
            self.ring_map.update(
                slot.to_bytes(4, "little"), bid.to_bytes(8, "little")
            )
        return ring

    def add_backend(self, bid: int, service) -> None:
        self.backends[bid] = service
        self.sync_ring()

    def remove_backend(self, bid: int, *, purge: bool = True) -> int:
        """Drop a backend permanently: rehash its ring share and (with
        ``purge``) unbind its flows so they re-resolve via the ring.
        Returns the number of purged bindings."""
        self.backends.pop(bid, None)
        if self.backends:
            self.sync_ring()
        if not purge:
            return 0
        stale = [
            key for key, val in self.conn.entries()
            if int.from_bytes(val, "little") == bid
        ]
        for key in stale:
            self.conn.delete(key)
        return len(stale)

    def conn_bindings(self) -> dict:
        """Flow → backend snapshot of the pinned table (test oracle)."""
        return {
            int.from_bytes(key, "little"): int.from_bytes(val, "little")
            for key, val in self.conn.entries()
        }

    # -- verdict dispatch ---------------------------------------------------

    def _serve_sync(self, payload: bytes, cpu: int):
        ext = self.ext
        if ext.dead and not self.runtime.supervisor.try_readmit(ext):
            return None, "pass"
        verdict = ext.invoke(ext.xdp_ctx(payload, cpu), cpu=cpu)
        if ext.dead:
            return None, "pass"
        if verdict != XDP_TX:
            if len(payload) < HDR_SIZE or payload[0] != MAGIC:
                self.garbage_drops += 1
            return None, "drop"
        pkt = self.runtime.kernel.net.read_packet(cpu, len(payload))
        bid = int.from_bytes(pkt[BACKEND_OFF:BACKEND_OFF + 2], "little")
        backend = self.backends.get(bid)
        if backend is None:
            # Bound to a backend that is gone and not yet replaced —
            # the mid-failover window.  The client retries; once the
            # backend is rebuilt (same id) the flow resumes sticky.
            self.unrouted += 1
            return None, "drop"
        self.forwarded[bid] = self.forwarded.get(bid, 0) + 1
        reply, path = backend.ingress(payload[HDR_SIZE:], cpu)
        if path == "pass":
            # Backends here are authoritative (durable memcached); a
            # PASS can only mean capacity exhaustion — shed it.
            return None, "drop"
        return reply, path

    def close(self) -> None:
        for backend in self.backends.values():
            backend.close()
        self.store.close()
        super().close()
