"""Wire format for the Redis experiments (§5.1, Fig. 6).

====== ====== ==========================================
offset size   field
====== ====== ==========================================
0      1      op (0 GET, 1 SET, 2 ZADD; reply sets 0x80)
1      7      pad / status
8      32     key (string key or sorted-set name)
40     8      value id (SET) / score (ZADD)
48     8      member id (ZADD)
56     24     value tail (SET payload continues)
====== ====== ==========================================
"""

from __future__ import annotations

import struct

OP_GET = 0
OP_SET = 1
OP_ZADD = 2
REPLY_FLAG = 0x80
STATUS_OK = 1
STATUS_MISS = 0

PKT_SIZE = 80
KEY_OFF = 8
VAL_OFF = 40
MEMBER_OFF = 48
KEY_SIZE = 32
VAL_SIZE = 32

_SALT = bytes(range(100, 124))


def key_bytes(key_id: int) -> bytes:
    return struct.pack("<Q", key_id & (1 << 64) - 1) + _SALT


def encode_get(key_id: int) -> bytes:
    return bytes([OP_GET]) + bytes(7) + key_bytes(key_id) + bytes(PKT_SIZE - 40)


def encode_set(key_id: int, value_id: int) -> bytes:
    return (
        bytes([OP_SET])
        + bytes(7)
        + key_bytes(key_id)
        + struct.pack("<Q", value_id & (1 << 64) - 1)
        + bytes(PKT_SIZE - 48)
    )


def encode_zadd(key_id: int, score: int, member: int) -> bytes:
    return (
        bytes([OP_ZADD])
        + bytes(7)
        + key_bytes(key_id)
        + struct.pack("<QQ", score & (1 << 64) - 1, member & (1 << 64) - 1)
        + bytes(PKT_SIZE - 56)
    )


def decode_reply(pkt: bytes) -> tuple[bool, int | None]:
    if len(pkt) < 48 or not pkt[0] & REPLY_FLAG:
        raise ValueError("not a reply packet")
    ok = pkt[1] == STATUS_OK
    value = struct.unpack_from("<Q", pkt, VAL_OFF)[0] if ok else None
    return ok, value
