"""Wire format for the Redis experiments (§5.1, Fig. 6).

====== ====== ==========================================
offset size   field
====== ====== ==========================================
0      1      op (0 GET, 1 SET, 2 ZADD; reply sets 0x80)
1      7      pad / status
8      32     key (string key or sorted-set name)
40     8      value id (SET) / score (ZADD)
48     8      member id (ZADD)
56     24     value tail (SET payload continues)
====== ====== ==========================================
"""

from __future__ import annotations

import struct

from repro.errors import FrameError

OP_GET = 0
OP_SET = 1
OP_ZADD = 2
REPLY_FLAG = 0x80
STATUS_OK = 1
STATUS_MISS = 0

PKT_SIZE = 80
KEY_OFF = 8
VAL_OFF = 40
MEMBER_OFF = 48
KEY_SIZE = 32
VAL_SIZE = 32

_SALT = bytes(range(100, 124))


def key_bytes(key_id: int) -> bytes:
    return struct.pack("<Q", key_id & (1 << 64) - 1) + _SALT


def encode_get(key_id: int) -> bytes:
    return bytes([OP_GET]) + bytes(7) + key_bytes(key_id) + bytes(PKT_SIZE - 40)


def encode_set(key_id: int, value_id: int) -> bytes:
    return (
        bytes([OP_SET])
        + bytes(7)
        + key_bytes(key_id)
        + struct.pack("<Q", value_id & (1 << 64) - 1)
        + bytes(PKT_SIZE - 48)
    )


def encode_zadd(key_id: int, score: int, member: int) -> bytes:
    return (
        bytes([OP_ZADD])
        + bytes(7)
        + key_bytes(key_id)
        + struct.pack("<QQ", score & (1 << 64) - 1, member & (1 << 64) - 1)
        + bytes(PKT_SIZE - 56)
    )


def _check_frame(pkt: bytes, what: str) -> None:
    """Exact-size framing for the stream transport: short reads and
    oversized garbage both raise :class:`FrameError`."""
    if len(pkt) < PKT_SIZE:
        raise FrameError(f"short {what} frame: {len(pkt)} < {PKT_SIZE} bytes")
    if len(pkt) > PKT_SIZE:
        raise FrameError(f"oversized {what} frame: {len(pkt)} > {PKT_SIZE} bytes")


def decode_reply(pkt: bytes) -> tuple[bool, int | None]:
    _check_frame(pkt, "reply")
    if not pkt[0] & REPLY_FLAG:
        raise FrameError("not a reply packet (REPLY_FLAG clear)")
    ok = pkt[1] == STATUS_OK
    value = struct.unpack_from("<Q", pkt, VAL_OFF)[0] if ok else None
    return ok, value


def decode_request(pkt: bytes) -> tuple[int, int, int | None, int | None]:
    """Parse a request into ``(op, key_id, value_or_score, member)`` —
    the round-trip inverse of the ``encode_*`` helpers (fields not
    carried by the op are ``None``).

    Raises :class:`FrameError` for wrong size, reply bit set, unknown
    op, or corrupted key salt.
    """
    _check_frame(pkt, "request")
    op = pkt[0]
    if op & REPLY_FLAG:
        raise FrameError("request frame has REPLY_FLAG set")
    if op not in (OP_GET, OP_SET, OP_ZADD):
        raise FrameError(f"unknown op {op}")
    if pkt[KEY_OFF + 8 : KEY_OFF + KEY_SIZE] != _SALT:
        raise FrameError("garbled key (salt pattern mismatch)")
    key_id = struct.unpack_from("<Q", pkt, KEY_OFF)[0]
    if op == OP_GET:
        return OP_GET, key_id, None, None
    if op == OP_SET:
        return OP_SET, key_id, struct.unpack_from("<Q", pkt, VAL_OFF)[0], None
    score, member = struct.unpack_from("<QQ", pkt, VAL_OFF)
    return OP_ZADD, key_id, score, member


def encode_reply(op: int, key_id: int, ok: bool, value_id: int | None = None) -> bytes:
    """Synthesise the reply a conforming server sends for ``op`` (used
    by fallback paths that no longer hold the request bytes)."""
    status = STATUS_OK if ok else STATUS_MISS
    value = value_id if (ok and value_id is not None) else 0
    return (
        bytes([REPLY_FLAG | op, status])
        + bytes(6)
        + key_bytes(key_id)
        + struct.pack("<Q", value & (1 << 64) - 1)
        + bytes(PKT_SIZE - 48)
    )
