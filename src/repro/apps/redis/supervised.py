"""Supervised Redis: sk_skb fast path with userspace fallback (§3.4).

Same degradation co-design as ``repro.apps.memcached.supervised``,
adapted to the Redis wire format and the sorted-set workload:

* healthy extension → GET/SET/ZADD served in the kernel;
* quarantined (or cancelled mid-request) → the op lands in a userspace
  overlay (:class:`~repro.apps.redis.userspace.UserspaceRedis`); string
  GETs additionally consult the surviving heap through the user
  mapping;
* re-admission → overlay strings and zset members are replayed into
  the kernel structures.

The sk_skb extension always returns ``SK_PASS`` (replies are written
into the packet), so "the kernel served this" is detected by the
``REPLY_FLAG`` bit the extension sets in the staged packet — a
cancelled invocation never reaches ``emit_reply``, leaving the flag
clear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PageFault
from repro.apps.redis import protocol as P
from repro.apps.redis.kflex_ext import (
    BUCKET_BITS,
    ENTRY,
    KFlexRedis,
    TYPE_STRING,
)
from repro.apps.redis.userspace import UserspaceRedis
from repro.apps.datastructures.common import HASH_CONST

_MAX_CHAIN = 1 << 16


def _bucket_of(key: bytes) -> int:
    h = 0
    for i in range(4):
        h ^= int.from_bytes(key[8 * i : 8 * i + 8], "little")
    h = (h * HASH_CONST) & ((1 << 64) - 1)
    return h >> (64 - BUCKET_BITS)


@dataclass
class FallbackStats:
    kernel_ops: int = 0
    fallback_ops: int = 0
    heap_hits: int = 0
    replays: int = 0


class SupervisedRedis:
    """Redis front-end that survives extension quarantine."""

    def __init__(self, runtime, **kflex_kwargs):
        self.runtime = runtime
        self.kflex = KFlexRedis(runtime, **kflex_kwargs)
        self.ext = self.kflex.ext
        #: Userspace overlay, authoritative for every key it holds.
        self.overlay = UserspaceRedis()
        self.stats = FallbackStats()
        #: Which path answered the most recent request ("kernel" or
        #: "userspace") — the network datapath's verdict accounting.
        self.last_path = "kernel"
        self.kflex.heap.map_user()
        self._user_delta = self.kflex.heap.user_base - self.kflex.heap.base

    # -- supervisor plumbing ------------------------------------------------

    def _kernel_alive(self, cpu: int) -> bool:
        if not self.ext.dead:
            return True
        return self.runtime.supervisor.try_readmit(self.ext)

    def _served(self, reply: bytes) -> bool:
        return bool(reply[0] & P.REPLY_FLAG)

    def _replay(self, cpu: int) -> None:
        """Re-admission: push overlay state into the kernel structures."""
        for key_id in list(self.overlay.strings):
            if self.ext.dead:
                break
            value_id = self.overlay.strings[key_id]
            reply = self.kflex._roundtrip(P.encode_set(key_id, value_id), cpu)
            if self._served(reply) and reply[1] == P.STATUS_OK:
                del self.overlay.strings[key_id]
                self.stats.replays += 1
        for key_id in list(self.overlay.zsets):
            members = self.overlay.zsets[key_id]
            while members:
                if self.ext.dead:
                    return
                score, member = members[0]
                reply = self.kflex._roundtrip(
                    P.encode_zadd(key_id, score, member), cpu
                )
                if not (self._served(reply) and reply[1] == P.STATUS_OK):
                    break
                members.pop(0)
                self.stats.replays += 1
            if not members:
                del self.overlay.zsets[key_id]

    # -- request API --------------------------------------------------------

    def get(self, key_id: int, cpu: int = 0):
        if self._kernel_alive(cpu):
            self._replay(cpu)
            if key_id not in self.overlay.strings:
                reply = self.kflex._roundtrip(P.encode_get(key_id), cpu)
                if self._served(reply):
                    self.stats.kernel_ops += 1
                    self.last_path = "kernel"
                    return P.decode_reply(reply)
        self.last_path = "userspace"
        self.stats.fallback_ops += 1
        ok, val = self.overlay.get(key_id)
        if not ok:
            val = self._heap_get(key_id)
            if val is not None:
                self.stats.heap_hits += 1
                return (True, val)
            return (False, None)
        return (True, val)

    def set(self, key_id: int, value_id: int, cpu: int = 0) -> bool:
        if self._kernel_alive(cpu):
            self._replay(cpu)
            reply = self.kflex._roundtrip(P.encode_set(key_id, value_id), cpu)
            if self._served(reply) and reply[1] == P.STATUS_OK:
                self.overlay.strings.pop(key_id, None)
                self.stats.kernel_ops += 1
                self.last_path = "kernel"
                return True
        self.last_path = "userspace"
        self.stats.fallback_ops += 1
        return self.overlay.set(key_id, value_id)

    def zadd(self, key_id: int, score: int, member: int, cpu: int = 0) -> bool:
        if self._kernel_alive(cpu):
            self._replay(cpu)
            reply = self.kflex._roundtrip(
                P.encode_zadd(key_id, score, member), cpu
            )
            if self._served(reply) and reply[1] == P.STATUS_OK:
                self.stats.kernel_ops += 1
                self.last_path = "kernel"
                return True
        self.last_path = "userspace"
        self.stats.fallback_ops += 1
        return self.overlay.zadd(key_id, score, member)

    def serve(self, pkt: bytes, cpu: int = 0) -> bytes:
        """Packet-level request entry for the network datapath (the
        stream-transport twin of ``SupervisedMemcached.serve``)."""
        op, key_id, value_or_score, member = P.decode_request(pkt)
        if op == P.OP_GET:
            ok, vid = self.get(key_id, cpu)
            return P.encode_reply(P.OP_GET, key_id, ok, vid)
        if op == P.OP_SET:
            ok = self.set(key_id, value_or_score, cpu)
            return P.encode_reply(P.OP_SET, key_id, ok, value_or_score)
        ok = self.zadd(key_id, value_or_score, member, cpu)
        return P.encode_reply(P.OP_ZADD, key_id, ok, value_or_score)

    # -- combined views ------------------------------------------------------

    def zset_members(self, key_id: int) -> list[tuple[int, int]]:
        """Union of kernel-resident and overlay members, score-sorted.

        The kernel side walks the surviving heap (works during
        quarantine too — §3.4); the overlay holds members added while
        the fast path was down that have not been replayed yet.
        """
        merged = set(self.kflex.zset_members(key_id))
        merged.update(self.overlay.zset_members(key_id))
        return sorted(merged)

    @property
    def pending(self) -> int:
        return len(self.overlay.strings) + sum(
            len(m) for m in self.overlay.zsets.values()
        )

    # -- heap reads through the user mapping (§3.4) --------------------------

    def _heap_get(self, key_id: int) -> int | None:
        """String lookup by chain walk through the user mapping."""
        heap = self.kflex.heap
        asp = self.runtime.kernel.aspace
        delta = self._user_delta
        key = P.key_bytes(key_id)
        cell = heap.base + self.kflex.static + _bucket_of(key) * 8
        try:
            cur = asp.read_int(cell + delta, 8)
            for _ in range(_MAX_CHAIN):
                if not cur:
                    return None
                if asp.read_bytes(cur + delta + ENTRY.k0.off, 32) == key:
                    if asp.read_int(cur + delta + ENTRY.type.off, 8) != TYPE_STRING:
                        return None
                    return asp.read_int(cur + delta + ENTRY.value.off, 8)
                cur = asp.read_int(cur + delta + ENTRY.chain.off, 8)
        except PageFault:
            return None
        return None
