"""KFlex-Redis at the sk_skb hook (§5.1, §5.2, Fig. 6).

One extension handles GET, SET and ZADD.  String values live directly
in hash-table entries; sorted sets embed a skip-list header in the
entry, with member nodes allocated by ``kflex_malloc`` *in the fast
path* whenever ZADD sees a new member — the allocation-on-demand
pattern that makes ZADD impossible to offload with eBPF (§5.2).

Simplification vs. real Redis (documented in DESIGN.md): ZADD inserts
``(score, member)`` nodes ordered by score; re-adding the same member
with a new score inserts a new node instead of moving the old one
(real Redis pairs the skip list with a member dict for that).  The
fast-path work measured — hash lookup, skip-list descent, node
allocation and linking — is identical in shape.
"""

from __future__ import annotations

from repro.ebpf.isa import Reg
from repro.ebpf.macroasm import MacroAsm, Struct
from repro.ebpf.program import Program, SK_PASS
from repro.ebpf.helpers import KFLEX_MALLOC
from repro.apps.redis import protocol as P
from repro.apps.datastructures.common import HASH_CONST

R0, R1, R2, R3, R4, R5 = Reg.R0, Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5
R6, R7, R8, R9, R10 = Reg.R6, Reg.R7, Reg.R8, Reg.R9, Reg.R10

ZLEVELS = 4

ENTRY = Struct(
    k0=8, k1=8, k2=8, k3=8, type=8, value=8, chain=8,
    **{f"zhead{i}": 8 for i in range(ZLEVELS)},
)
ZNODE = Struct(score=8, member=8, **{f"next{i}": 8 for i in range(ZLEVELS)})

TYPE_STRING = 0
TYPE_ZSET = 1

BUCKET_BITS = 12
STATIC_BYTES = (1 << BUCKET_BITS) * 8

SLOT_LEVEL = -8 * (ZLEVELS + 1)
SLOT_BUCKET = -8 * (ZLEVELS + 2)
SLOT_HEAD = -8 * (ZLEVELS + 3)

_KEYF = (ENTRY.k0, ENTRY.k1, ENTRY.k2, ENTRY.k3)

LEVEL_CONST = 0x2545F4914F6CDD1D

#: Offset that turns an entry pointer into a pseudo-ZNODE whose
#: ``next{i}`` fields alias the entry's ``zhead{i}`` fields, so the
#: skip-list walk code is uniform from the header onward.
PSEUDO_HEAD_DELTA = ENTRY.zhead0.off - ZNODE.next0.off


def _znext(i: int):
    return getattr(ZNODE, f"next{i}")


def build_redis_program(static: int, *, heap_size: int = 1 << 26) -> Program:
    m = MacroAsm()
    # Parse (the sk_skb context exposes data/data_end like XDP).
    m.ldx(R6, R1, 0, 8)
    m.ldx(R3, R1, 8, 8)
    m.mov(R2, R6)
    m.add(R2, P.PKT_SIZE)
    ok = m.fresh_label("ok")
    m.jcc("<=", R2, R3, ok)
    m.mov(R0, SK_PASS)
    m.exit()
    m.label(ok)

    # Bucket from the 32-byte key.
    m.ldx(R9, R6, P.KEY_OFF, 8)
    for off in (8, 16, 24):
        m.ldx(R2, R6, P.KEY_OFF + off, 8)
        m.xor(R9, R2)
    m.ld_imm64(R2, HASH_CONST)
    m.mul(R9, R2)
    m.rsh(R9, 64 - BUCKET_BITS)
    m.lsh(R9, 3)
    m.heap_addr(R2, static)
    m.add(R9, R2)
    m.stx(R10, R9, SLOT_BUCKET, 8)
    m.ldx(R7, R9, 0, 8)  # chain cursor
    m.stx(R10, R7, SLOT_HEAD, 8)

    def emit_reply(op_byte, status, value_reg=None):
        m.st_imm(R6, 0, P.REPLY_FLAG | op_byte, 1)
        m.st_imm(R6, 1, status, 1)
        if value_reg is not None:
            m.stx(R6, value_reg, P.VAL_OFF, 8)
        m.mov(R0, SK_PASS)
        m.exit()

    def emit_chain_walk(tag: str, found: str):
        """Walk entries in R7; jumps to ``found`` on key match."""
        with m.while_("!=", R7, 0):
            nxt = m.fresh_label(f"next_{tag}")
            for i, fld in enumerate(_KEYF):
                m.ldf(R4, R7, fld)
                m.ldx(R5, R6, P.KEY_OFF + 8 * i, 8)
                m.jcc("!=", R4, R5, nxt)
            m.jmp(found)
            m.label(nxt)
            m.ldf(R7, R7, ENTRY.chain)

    def emit_new_entry(etype: int, fail: str):
        """Allocate + link a new entry for the packet key; entry in R7."""
        m.call_helper(KFLEX_MALLOC, ENTRY.size)
        m.jcc("==", R0, 0, fail)
        m.mov(R7, R0)
        for i, fld in enumerate(_KEYF):
            m.ldx(R4, R6, P.KEY_OFF + 8 * i, 8)
            m.stf(R7, fld, R4)
        m.stf_imm(R7, ENTRY.type, etype)
        m.stf_imm(R7, ENTRY.value, 0)
        for i in range(ZLEVELS):
            m.stf_imm(R7, getattr(ENTRY, f"zhead{i}"), 0)
        m.ldx(R4, R10, SLOT_HEAD, 8)
        m.stf(R7, ENTRY.chain, R4)
        m.ldx(R9, R10, SLOT_BUCKET, 8)
        m.stx(R9, R7, 0, 8)

    fail = m.fresh_label("fail")

    # Dispatch.
    m.ldx(R2, R6, 0, 1)
    set_path = m.fresh_label("op_set")
    zadd_path = m.fresh_label("op_zadd")
    m.jcc("==", R2, P.OP_SET, set_path)
    m.jcc("==", R2, P.OP_ZADD, zadd_path)

    # ---- GET --------------------------------------------------------------
    got = m.fresh_label("got")
    emit_chain_walk("get", got)
    emit_reply(P.OP_GET, P.STATUS_MISS)
    m.label(got)
    m.ldf(R4, R7, ENTRY.type)
    with m.if_("!=", R4, TYPE_STRING):
        emit_reply(P.OP_GET, P.STATUS_MISS)
    m.ldf(R4, R7, ENTRY.value)
    emit_reply(P.OP_GET, P.STATUS_OK, R4)

    # ---- SET --------------------------------------------------------------
    m.label(set_path)
    sfound = m.fresh_label("sfound")
    emit_chain_walk("set", sfound)
    emit_new_entry(TYPE_STRING, fail)
    m.label(sfound)
    m.ldx(R4, R6, P.VAL_OFF, 8)
    m.stf(R7, ENTRY.value, R4)
    m.stf_imm(R7, ENTRY.type, TYPE_STRING)
    emit_reply(P.OP_SET, P.STATUS_OK)

    # ---- ZADD -------------------------------------------------------------
    m.label(zadd_path)
    zfound = m.fresh_label("zfound")
    emit_chain_walk("zadd", zfound)
    emit_new_entry(TYPE_ZSET, fail)
    m.label(zfound)
    # Skip-list insert of (score, member) under the entry in R7.
    # x = pseudo-head so x.next{i} aliases entry.zhead{i}.
    m.mov(R8, R7)
    m.add(R8, PSEUDO_HEAD_DELTA)
    m.ldx(R9, R6, P.VAL_OFF, 8)  # score
    for lvl in range(ZLEVELS - 1, -1, -1):
        fld = _znext(lvl)
        with m.loop() as walk:
            m.ldf(R5, R8, fld)
            m.jcc("==", R5, 0, walk.break_)
            m.ldf(R2, R5, ZNODE.score)  # guard
            # Redis tie-break: equal scores order by member.
            advance = m.fresh_label("adv")
            m.jcc("<", R2, R9, advance)
            m.jcc(">", R2, R9, walk.break_)
            m.ldf(R3, R5, ZNODE.member)
            m.ldx(R4, R6, P.MEMBER_OFF, 8)
            m.jcc(">=", R3, R4, walk.break_)
            m.label(advance)
            m.mov(R8, R5)
        m.stx(R10, R8, -8 * (lvl + 1), 8)  # predecessor at this level
    # Exact (score, member) already present?  Then just acknowledge.
    m.ldf(R5, R8, _znext(0))
    with m.if_("!=", R5, 0):
        m.ldf(R2, R5, ZNODE.score)
        with m.if_("==", R2, R9):
            m.ldf(R3, R5, ZNODE.member)
            m.ldx(R4, R6, P.MEMBER_OFF, 8)
            with m.if_("==", R3, R4):
                emit_reply(P.OP_ZADD, P.STATUS_OK)
    # Level for the new node from the member hash.
    m.ldx(R4, R6, P.MEMBER_OFF, 8)
    m.ld_imm64(R2, LEVEL_CONST)
    m.mul(R4, R2)
    m.mov(R3, 1)
    lvl_done = m.fresh_label("lvl_done")
    for i in range(ZLEVELS - 1):
        more = m.fresh_label(f"lvl{i}")
        m.jcc("&", R4, 1 << i, more)
        m.jmp(lvl_done)
        m.label(more)
        m.add(R3, 1)
    m.label(lvl_done)
    m.stx(R10, R3, SLOT_LEVEL, 8)
    # Allocate in the fast path — the Fig. 6 headline capability.
    m.call_helper(KFLEX_MALLOC, ZNODE.size)
    m.jcc("==", R0, 0, fail)
    m.mov(R8, R0)
    m.ldx(R9, R6, P.VAL_OFF, 8)
    m.stf(R8, ZNODE.score, R9)
    m.ldx(R4, R6, P.MEMBER_OFF, 8)
    m.stf(R8, ZNODE.member, R4)
    for i in range(ZLEVELS):
        m.stf_imm(R8, _znext(i), 0)
    done = m.fresh_label("link_done")
    for i in range(ZLEVELS):
        m.ldx(R2, R10, SLOT_LEVEL, 8)
        m.jcc("<=", R2, i, done)
        m.ldx(R7, R10, -8 * (i + 1), 8)
        m.ldf(R3, R7, _znext(i))  # guard
        m.stf(R8, _znext(i), R3)
        m.stf(R7, _znext(i), R8)
    m.label(done)
    emit_reply(P.OP_ZADD, P.STATUS_OK)

    m.label(fail)
    m.st_imm(R6, 0, P.REPLY_FLAG | P.OP_ZADD, 1)
    m.st_imm(R6, 1, P.STATUS_MISS, 1)
    m.mov(R0, SK_PASS)
    m.exit()

    return Program("kflex_redis", m.assemble(), hook="sk_skb", heap_size=heap_size)


class KFlexRedis:
    """Loaded KFlex-Redis with Python-side request helpers."""

    def __init__(
        self,
        runtime,
        *,
        kmod: bool = False,
        perf_mode: bool = False,
        heap_size: int = 1 << 26,
        name: str = "kvredis",
        quantum_units: int | None = None,
    ):
        self.runtime = runtime
        self.heap = runtime.create_heap(heap_size, name=name)
        self.static = self.heap.reserve_static(STATIC_BYTES)
        prog = build_redis_program(self.static, heap_size=heap_size)
        if kmod:
            self.ext = runtime.load_kmod(prog, heap=self.heap)
        else:
            self.ext = runtime.load(
                prog, heap=self.heap, attach=False, perf_mode=perf_mode,
                quantum_units=quantum_units,
            )

    def _roundtrip(self, pkt: bytes, cpu: int = 0) -> bytes:
        ctx = self.ext.sk_skb_ctx(pkt, cpu)
        self.ext.invoke(ctx, cpu=cpu)
        return self.runtime.kernel.net.read_packet(cpu, P.PKT_SIZE)

    def get(self, key_id: int, cpu: int = 0):
        return P.decode_reply(self._roundtrip(P.encode_get(key_id), cpu))

    def set(self, key_id: int, value_id: int, cpu: int = 0) -> bool:
        ok, _ = P.decode_reply(self._roundtrip(P.encode_set(key_id, value_id), cpu))
        return ok

    def zadd(self, key_id: int, score: int, member: int, cpu: int = 0) -> bool:
        ok, _ = P.decode_reply(
            self._roundtrip(P.encode_zadd(key_id, score, member), cpu)
        )
        return ok

    @property
    def last_cost_units(self) -> int:
        return self.ext.stats.last_cost_units

    # -- structure inspection (tests) ------------------------------------------

    def zset_members(self, key_id: int) -> list[tuple[int, int]]:
        """Read back (score, member) pairs by walking level 0 from outside."""
        asp = self.runtime.kernel.aspace
        bucket = self._bucket_of(key_id)
        cur = asp.read_int(self.heap.base + self.static + bucket * 8, 8)
        want = P.key_bytes(key_id)
        while cur:
            kb = asp.read_bytes(cur + ENTRY.k0.off, 32)
            if kb == want:
                out = []
                node = asp.read_int(cur + ENTRY.zhead0.off, 8)
                while node:
                    out.append(
                        (
                            asp.read_int(node + ZNODE.score.off, 8),
                            asp.read_int(node + ZNODE.member.off, 8),
                        )
                    )
                    node = asp.read_int(node + ZNODE.next0.off, 8)
                return out
            cur = asp.read_int(cur + ENTRY.chain.off, 8)
        return []

    @staticmethod
    def _bucket_of(key_id: int) -> int:
        kb = P.key_bytes(key_id)
        h = 0
        for i in range(4):
            h ^= int.from_bytes(kb[8 * i : 8 * i + 8], "little")
        h = (h * HASH_CONST) & ((1 << 64) - 1)
        return h >> (64 - BUCKET_BITS)
