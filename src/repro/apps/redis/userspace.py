"""User-space Redis baseline (§5.1).

The paper compares against KeyDB (a multi-threaded Redis) for GET/SET
and single-threaded Redis for ZADD (which takes a global lock).  Same
semantics as the extension: string store plus score-sorted sets
implemented with bisect over a sorted list (the cost harness uses the
KMod bytecode for the data-structure cost; this class provides the
functional behaviour).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.apps.redis import protocol as P


@dataclass
class UserspaceRedis:
    strings: dict = field(default_factory=dict)
    zsets: dict = field(default_factory=dict)  # key -> sorted [(score, member)]

    def get(self, key_id: int):
        v = self.strings.get(key_id)
        return (v is not None, v)

    def set(self, key_id: int, value_id: int) -> bool:
        self.strings[key_id] = value_id
        return True

    def zadd(self, key_id: int, score: int, member: int) -> bool:
        zset = self.zsets.setdefault(key_id, [])
        item = (score, member)
        i = bisect.bisect_left(zset, item)
        if i < len(zset) and zset[i] == item:
            return True
        zset.insert(i, item)
        return True

    def zset_members(self, key_id: int):
        return list(self.zsets.get(key_id, []))

    def warm(self, n_keys: int) -> None:
        for k in range(n_keys):
            self.set(k, k ^ 0x5A5A)
