"""Redis offload (§5.1, §5.2).

GET/SET/ZADD processed by a single KFlex extension at the ``sk_skb``
hook — Redis runs everything over TCP, so requests traverse the Linux
TCP stack before reaching the extension, which is why the paper's Redis
gains are smaller than Memcached's (§5.1).  ZADD exercises the flagship
flexibility claim: a skip list allocated *on demand in the fast path*
whenever a new sorted-set key appears (§5.2, Fig. 6).
"""

from repro.apps.redis.protocol import (
    OP_GET,
    OP_SET,
    OP_ZADD,
    encode_get,
    encode_set,
    encode_zadd,
    encode_reply,
    decode_reply,
    decode_request,
)
from repro.apps.redis.kflex_ext import KFlexRedis
from repro.apps.redis.userspace import UserspaceRedis

__all__ = [
    "OP_GET",
    "OP_SET",
    "OP_ZADD",
    "encode_get",
    "encode_set",
    "encode_zadd",
    "encode_reply",
    "decode_reply",
    "decode_request",
    "KFlexRedis",
    "UserspaceRedis",
]
