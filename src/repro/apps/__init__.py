"""Applications from the paper's evaluation (§5).

* :mod:`repro.apps.datastructures` — hash map, linked list, red-black
  tree, skip list and two network sketches, each written as extension
  bytecode (§5.2, Fig. 5, Table 3).
* :mod:`repro.apps.memcached` — user-space Memcached, the BMC baseline,
  KFlex-Memcached and the GC co-design variant (§5.1, §5.3).
* :mod:`repro.apps.redis` — user-space Redis/KeyDB and KFlex-Redis
  including ZADD offload (§5.1, §5.2).
"""
