"""Threaded-code execution engine: decode once, execute many.

The reference interpreter (:mod:`repro.ebpf.interpreter`) re-decodes
every instruction on every step: an ``if/elif`` chain over the opcode,
attribute reads on the ``Insn``, dict lookups to resolve jump slots,
and a ``bisect`` region walk for every memory access.  That decode work
dwarfs the actual semantics — the same interpreter-vs-JIT gap the real
eBPF runtime closes with its JIT.

This module closes most of that gap while staying in pure Python, with
a one-time **translation pass**: each instruction of a verified,
instrumented, JIT-lowered program is compiled into one specialised
closure with everything burned in at translation time —

* opcode dispatch (the closure *is* the operation; no opcode test at
  run time),
* operand extraction, sign extension and width masks,
* jump targets pre-resolved from slot offsets to instruction indices,
* GUARD / TRANSLATE / CANCELPT constants (heap base, mask, terminate
  cell) resolved to integers,
* helper declarations, argument counts and costs for CALL.

Execution is then a tight ``pc = handlers[pc](regs)`` loop.

Layered on top is a **memory fast path**: the engine keeps a small
cache of region handles ``(base, end, backing bytes, populated pages)``
and loads/stores hit the backing ``bytearray`` directly via
``int.from_bytes``/slice assignment when the access is in a cached
region with its pages populated.  Everything else — unmapped addresses,
unpopulated pages, SMAP traps, store-policy violations, protection-key
faults — falls back to the paged :class:`~repro.kernel.addrspace.
AddressSpace` path, so fault semantics are bit-identical to the
interpreter.  Cache safety: entries are (re)validated against the
address space's ``generation`` counter, the active protection-key set
and the store policy at every ``run()``; population sets are shared
live objects, so demand paging is visible without invalidation.

Cycle accounting is unchanged: per-instruction costs are the same
JIT-lowered array the interpreter charges (cost is per-insn *data*,
independent of host dispatch speed), so every figure's numbers are
identical under either engine — only wall-clock changes.

The interpreter remains the reference semantics and the ``"interp"``
escape hatch; ``tests/test_engine_equivalence.py`` asserts
``ExecResult`` parity (ret, cost, steps, fault kind/index, registers)
between the two over randomized programs and every fault path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import (
    ExtensionFault,
    HelperFault,
    KernelPanic,
    LoadError,
    LockStall,
    PageFault,
    SleepStall,
    StackFault,
)
from repro.ebpf import isa
from repro.ebpf.isa import U32, U64, sign_extend
from repro.ebpf.interpreter import (
    ALU_BINOPS,
    JMP_TESTS,
    ExecResult,
    Fault,
    Interpreter,
    STACK_SIZE,
    exec_atomic,
)

#: Canonical user/kernel split (see Interpreter.USER_SPACE_TOP).
USER_SPACE_TOP = 1 << 47

_S63 = 1 << 63
_S64 = 1 << 64

#: Cap on cached region handles per engine; beyond this the slow path
#: simply stops promoting regions (correctness is unaffected).
MAX_CACHED_REGIONS = 8

_ZERO_REGS = [0] * 11


class _ExitSignal(Exception):
    """Control-flow signal raised by the EXIT handler."""


_EXIT = _ExitSignal()


class ThreadedEngine:
    """Executes one translated program.  Drop-in for ``Interpreter``:
    same constructor signature, same ``run()`` contract, same
    ``ExecResult``.  Unlike the interpreter it is built once per loaded
    program and reused across invocations — translation state, the
    region-handle cache and the register file are all pooled.
    """

    #: Advertises that the constructor takes a ``plan=`` of fused
    #: superinstruction blocks (see repro.ebpf.pipeline.FusePass).
    supports_fusion = True

    def __init__(
        self,
        insns,
        env,
        *,
        costs: list[int] | None = None,
        helper_costs: dict[int, int] | None = None,
        plan=None,
    ):
        self.insns = insns
        self.env = env
        self.costs = costs if costs is not None else [1] * len(insns)
        self.helper_costs = helper_costs or {}
        slot_of = isa.slot_offsets(insns)
        self._slot_of = slot_of
        self._slot_to_idx = {s: i for i, s in enumerate(slot_of)}

        # Mutable run state shared with handlers.  The cache lists are
        # closed over by memory handlers, so they are mutated in place
        # (never rebound) on refresh.
        self._xcost = [0]  # helper cost accumulated this run
        self._ld_cache: list[tuple] = []  # (base, end, data, pages|None)
        self._st_cache: list[tuple] = []
        self._cached_bases: set[int] = set()
        self._cache_key = None
        self._regs = [0] * 11
        self._running = False

        #: Fusion plan: ((start, length, kind), ...); blocks that fail
        #: engine-side validation are silently skipped (executed
        #: unfused), never wrong.
        self.plan = tuple(plan) if plan else ()
        #: Number of plan blocks actually fused at translate time.
        self.fused_blocks = 0

        self._smap = bool(env.smap)
        self._retranslate()

    # -- entry ----------------------------------------------------------

    def run(self, ctx_addr: int = 0, max_steps: int | None = None) -> ExecResult:
        env = self.env
        if bool(env.smap) != self._smap:
            # The SMAP policy is burned into load handlers; re-translate
            # if a test flipped it on a cached engine.
            self._smap = bool(env.smap)
            self._retranslate()
        stack = env.stack_base or env.ensure_stack()
        self._refresh_caches()

        if self._running:
            # Re-entrant invocation: do not clobber the pooled file.
            regs = [0] * 11
        else:
            regs = self._regs
            regs[:] = _ZERO_REGS
        regs[isa.FP] = stack + STACK_SIZE
        regs[1] = ctx_addr & U64

        xc = self._xcost
        xc[0] = 0
        pc = 0
        steps = 0
        cost = 0
        limit = max_steps if max_steps is not None else env.max_steps
        handlers = self.handlers
        costs = self.costs
        n = len(handlers)
        watchdog = env.watchdog
        wd_period = env.watchdog_period
        # Single fused check per iteration: the next step count at which
        # either the stall limit or the watchdog needs servicing.
        next_wd = wd_period if watchdog is not None else limit + 1
        checkpoint = next_wd if next_wd < limit else limit

        self._running = True
        try:
            if not self._has_fused:
                while True:
                    if pc >= n:
                        raise KernelPanic(f"pc {pc} fell off program end")
                    if steps >= checkpoint:
                        # Order matters for parity: stall limit first,
                        # then the watchdog — same as the interpreter.
                        if steps >= limit:
                            return self._fault(
                                regs, pc, cost + xc[0], steps, stack, "stall",
                                message="hard step limit (hardlockup)",
                            )
                        watchdog(cost + xc[0])
                        next_wd = steps + wd_period
                        checkpoint = next_wd if next_wd < limit else limit
                    steps += 1
                    cost += costs[pc]
                    pc = handlers[pc](regs)
            weights = self._weights
            fused = self._fused
            bcosts = self._bcosts
            while True:
                if pc >= n:
                    raise KernelPanic(f"pc {pc} fell off program end")
                if steps >= checkpoint:
                    if steps >= limit:
                        return self._fault(
                            regs, pc, cost + xc[0], steps, stack, "stall",
                            message="hard step limit (hardlockup)",
                        )
                    watchdog(cost + xc[0])
                    next_wd = steps + wd_period
                    checkpoint = next_wd if next_wd < limit else limit
                w = weights[pc]
                # Single-step at unfused indices, and through any block
                # the stall limit or watchdog would fire inside of —
                # the checkpoint then lands on the exact step count.
                if w == 1 or steps + w > checkpoint:
                    steps += 1
                    cost += costs[pc]
                    pc = handlers[pc](regs)
                    continue
                # Fused block: charge every covered instruction up
                # front (members are non-faulting by construction), and
                # park the pc on the terminal so an exception out of it
                # — helper fault, EXIT, cancellation — is attributed to
                # the exact instruction, as in single-step execution.
                head = pc
                steps += w
                cost += bcosts[head]
                pc = head + w - 1
                npc = fused[head](regs)
                if npc >= 0:
                    pc = npc
                else:
                    # Deopt (memory idiom missed the fast-path cache):
                    # nothing was committed — roll the charge back and
                    # single-step the block head instead.
                    steps -= w
                    cost -= bcosts[head]
                    steps += 1
                    cost += costs[head]
                    pc = handlers[head](regs)
        except _ExitSignal as e:
            # _EXIT is a preallocated singleton: re-raising an instance
            # that still carries a traceback *chains* the old frames
            # onto the new one (tb_next), pinning every invocation's
            # frame graph forever.  Drop it before the instance is
            # raised again.
            e.__traceback__ = None
            return ExecResult(
                regs[0], cost + xc[0], steps, regs=list(regs), stack_base=stack
            )
        except PageFault as pf:
            return self._fault(regs, pc, cost + xc[0], steps, stack, "page",
                               pf.addr, str(pf))
        except LockStall as ls:
            return self._fault(regs, pc, cost + xc[0], steps, stack,
                               "lock_stall", message=str(ls))
        except SleepStall as ss:
            return self._fault(regs, pc, cost + xc[0], steps, stack,
                               "sleep_stall", message=str(ss))
        except HelperFault as hf:
            return self._fault(regs, pc, cost + xc[0], steps, stack,
                               "helper", message=str(hf))
        except StackFault as sf:
            return self._fault(regs, pc, cost + xc[0], steps, stack,
                               "page", message=str(sf))
        finally:
            self._running = False

    def _fault(self, regs, pc, cost, steps, stack, kind, addr=0, message=""):
        insns = self.insns
        insn = insns[pc] if pc < len(insns) else None
        orig = insn.orig_idx if insn is not None else None
        if orig is None and insn is not None:
            orig = pc
        return ExecResult(
            0, cost, steps, Fault(kind, pc, orig, addr, message),
            regs=list(regs), stack_base=stack,
        )

    # -- memory fast path ------------------------------------------------

    def _refresh_caches(self) -> None:
        """Revalidate the region-handle cache against mapping state.

        The cache key covers everything an entry's eligibility was
        decided on: the address space's map/unmap generation, the
        active protection-key set, and the store policy.  Anything else
        that changes mid-run (page population, backing contents) is
        shared by reference and needs no invalidation.
        """
        asp = self.env.aspace
        pkeys = asp.active_pkeys
        key = (
            asp.generation,
            None if pkeys is None else frozenset(pkeys),
            self.env.allowed_store_regions,
        )
        if key == self._cache_key:
            return
        self._cache_key = key
        self._ld_cache.clear()
        self._st_cache.clear()
        self._cached_bases.clear()
        heap = self.env.heap
        if heap is not None and not heap.closed:
            self._admit(heap.region)
        if self.env.stack_base:
            region = asp.find_region(self.env.stack_base)
            if region is not None:
                self._admit(region)

    def _admit(self, region) -> None:
        """Add a region's handle to the fast-path caches if eligible."""
        if region.base in self._cached_bases:
            return
        if len(self._cached_bases) >= MAX_CACHED_REGIONS:
            return
        asp = self.env.aspace
        if (
            region.pkey is not None
            and asp.active_pkeys is not None
            and region.pkey not in asp.active_pkeys
        ):
            return  # slow path raises the protection-key fault
        backing = region.backing
        pages = None if backing.all_populated else backing.populated
        entry = (region.base, region.base + region.size, backing.data, pages)
        self._cached_bases.add(region.base)
        self._ld_cache.append(entry)
        allowed = self.env.allowed_store_regions
        if region.writable and (
            allowed is None or region.name.startswith(allowed)
        ):
            self._st_cache.append(entry)

    def _slow_load(self, addr: int, size: int) -> int:
        value = self.env.aspace.read_int(addr, size)
        self._promote(addr)
        return value

    def _slow_store(self, addr: int, value: int, size: int) -> None:
        self._check_store(addr)
        self.env.aspace.write_int(addr, value, size)
        self._promote(addr)

    def _promote(self, addr: int) -> None:
        """After a successful slow access, cache the region for next time."""
        if len(self._cached_bases) >= MAX_CACHED_REGIONS:
            return
        region = self.env.aspace.find_region(addr)
        if region is not None:
            self._admit(region)

    def _check_store(self, addr: int) -> None:
        # Mirrors Interpreter._check_store exactly.
        allowed = self.env.allowed_store_regions
        if allowed is None:
            return
        region = self.env.aspace.find_region(addr)
        if region is not None and not region.name.startswith(allowed):
            raise KernelPanic(
                f"extension store to kernel-owned region {region.name!r} "
                f"at {addr:#x} — memory corruption"
            )

    # -- translation -----------------------------------------------------

    def _translate(self) -> list:
        return [self._compile(i, insn) for i, insn in enumerate(self.insns)]

    def _retranslate(self) -> None:
        self.handlers = self._translate()
        self._apply_plan()

    def _raiser(self, exc_cls, message: str):
        def h(regs, exc_cls=exc_cls, message=message):
            raise exc_cls(message)

        h._raises = True
        return h

    # -- superinstruction fusion -----------------------------------------

    def _apply_plan(self) -> None:
        """Overlay the fusion plan on the translated handler array.

        ``handlers`` keeps one unfused closure per index (mid-block
        jump targets and deopt both single-step through it); block
        heads additionally get a fused closure in ``_fused`` with its
        instruction count in ``_weights`` and the block's summed cost
        in ``_bcosts``.  Blocks that fail validation here — a raiser
        among the members, a missing heap — execute unfused.
        """
        n = len(self.handlers)
        self._weights = [1] * n
        self._fused = list(self.handlers)
        self._bcosts = list(self.costs)
        self._has_fused = False
        self.fused_blocks = 0
        for start, length, kind in self.plan:
            if length < 2 or start < 0 or start + length > n:
                continue
            if kind == "mem":
                fh = self._fuse_mem(start)
            else:
                fh = self._fuse_chain(start, length)
            if fh is None:
                continue
            self._weights[start] = length
            self._fused[start] = fh
            self._bcosts[start] = sum(self.costs[start : start + length])
            self._has_fused = True
            self.fused_blocks += 1

    def _fuse_chain(self, start: int, length: int):
        """Compose consecutive handlers into one closure.  Members (all
        but the last) must be straight-line and non-raising; they are
        executed for their register effects and their returned pc is
        statically the next index.  The terminal's return value is the
        block's next pc."""
        hs = self.handlers[start : start + length]
        if any(getattr(h, "_raises", False) for h in hs[:-1]):
            return None
        if length == 2:
            h0, h1 = hs

            def fh(regs, h0=h0, h1=h1):
                h0(regs)
                return h1(regs)

        elif length == 3:
            h0, h1, h2 = hs

            def fh(regs, h0=h0, h1=h1, h2=h2):
                h0(regs)
                h1(regs)
                return h2(regs)

        elif length == 4:
            h0, h1, h2, h3 = hs

            def fh(regs, h0=h0, h1=h1, h2=h2, h3=h3):
                h0(regs)
                h1(regs)
                h2(regs)
                return h3(regs)

        else:
            body = tuple(hs[:-1])
            last = hs[-1]

            def fh(regs, body=body, last=last):
                for h in body:
                    h(regs)
                return last(regs)

        return fh

    def _fuse_mem(self, start: int):
        """LDX -> GUARD -> STX over the extension heap, fast path only.

        Everything is computed into locals and committed (register
        write + store) in one shot, so returning the deopt sentinel
        (-1) is always safe: the engine re-executes the block head
        through the unfused handlers, which own the slow path and every
        fault with exact attribution."""
        insns = self.insns
        ldx, g, stx = insns[start], insns[start + 1], insns[start + 2]
        heap = self.env.heap
        if heap is None:
            return None
        if (
            (ldx.opcode & isa.CLASS_MASK) != isa.BPF_LDX
            or g.opcode != isa.KFLEX_GUARD
            or g.dst != ldx.dst
            or (stx.opcode & isa.CLASS_MASK) != isa.BPF_STX
            or stx.is_atomic
            or stx.dst != g.dst
            or stx.src == g.dst
        ):
            return None
        hb = heap.base
        hm = heap.mask
        s1 = ldx.src
        off1 = ldx.off
        size1 = isa.size_bytes(ldx.opcode)
        d = g.dst
        s2 = stx.src
        off2 = stx.off
        size2 = isa.size_bytes(stx.opcode)
        mask2 = (1 << (size2 * 8)) - 1
        ld = self._ld_cache
        st = self._st_cache
        smap = self._smap
        npc = start + 3

        def fh(regs, s1=s1, off1=off1, size1=size1, d=d, s2=s2, off2=off2,
               size2=size2, mask2=mask2, hb=hb, hm=hm, ld=ld, st=st,
               smap=smap, npc=npc):
            addr1 = (regs[s1] + off1) & U64
            if smap and 4096 <= addr1 < 0x8000_0000_0000:
                return -1  # the unfused LDX raises the SMAP fault
            val = -1
            for base, end, data, pages in ld:
                if base <= addr1 and addr1 + size1 <= end:
                    o = addr1 - base
                    if pages is None:
                        val = int.from_bytes(data[o : o + size1], "little")
                    else:
                        p0 = o >> 12
                        p1 = (o + size1 - 1) >> 12
                        if p0 in pages and (p1 == p0 or p1 in pages):
                            val = int.from_bytes(data[o : o + size1], "little")
                    break
            if val < 0:
                return -1
            gv = (hb + (val & hm)) & U64
            addr2 = (gv + off2) & U64
            for base, end, data, pages in st:
                if base <= addr2 and addr2 + size2 <= end:
                    o = addr2 - base
                    if pages is not None:
                        p0 = o >> 12
                        p1 = (o + size2 - 1) >> 12
                        if p0 not in pages or (p1 != p0 and p1 not in pages):
                            break
                    regs[d] = gv
                    data[o : o + size2] = (regs[s2] & mask2).to_bytes(
                        size2, "little"
                    )
                    return npc
            return -1

        return fh

    def _compile(self, i: int, insn):
        op = insn.opcode
        cls = op & isa.CLASS_MASK
        npc = i + 1
        if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
            return self._compile_alu(insn, cls == isa.BPF_ALU64, npc)
        if cls == isa.BPF_LDX:
            return self._compile_ldx(insn, npc)
        if cls == isa.BPF_LD:
            if insn.is_ld_imm64:
                value = (insn.imm64 or 0) & U64
                d = insn.dst

                def h(regs, d=d, value=value, npc=npc):
                    regs[d] = value
                    return npc

                return h
            return self._raiser(ExtensionFault, f"unsupported LD mode {op:#x}")
        if cls == isa.BPF_ST:
            return self._compile_st(insn, npc)
        if cls == isa.BPF_STX:
            if insn.is_atomic:
                return self._compile_atomic(insn, npc)
            return self._compile_stx(insn, npc)
        if cls == isa.BPF_JMP or cls == isa.BPF_JMP32:
            return self._compile_jmp(i, insn, cls == isa.BPF_JMP32, npc)
        return self._raiser(ExtensionFault, f"unknown opcode {op:#x}")

    # -- ALU -------------------------------------------------------------

    def _compile_alu(self, insn, is64: bool, npc: int):
        op = insn.opcode & isa.OP_MASK
        use_reg = bool(insn.opcode & isa.BPF_X)
        d = insn.dst
        s = insn.src

        if op == isa.BPF_END:
            width = insn.imm
            if width in (16, 32, 64):
                mask = (1 << width) - 1
                nbytes = width // 8
                if use_reg:  # BPF_X encodes "to_be"

                    def h(regs, d=d, mask=mask, nbytes=nbytes, npc=npc):
                        regs[d] = int.from_bytes(
                            (regs[d] & mask).to_bytes(nbytes, "little"), "big"
                        )
                        return npc

                else:

                    def h(regs, d=d, mask=mask, npc=npc):
                        regs[d] = regs[d] & mask
                        return npc

                return h

            # Odd width: defer to run time so malformed programs fail
            # at execution exactly like the interpreter.
            def h(regs, d=d, width=width, use_reg=use_reg, npc=npc):
                val = regs[d] & ((1 << width) - 1)
                if use_reg:
                    val = int.from_bytes(val.to_bytes(width // 8, "little"), "big")
                regs[d] = val
                return npc

            return h

        if op == isa.BPF_NEG:
            if is64:

                def h(regs, d=d, npc=npc):
                    regs[d] = -regs[d] & U64
                    return npc

            else:

                def h(regs, d=d, npc=npc):
                    regs[d] = -regs[d] & U32
                    return npc

            return h

        fn = ALU_BINOPS.get(op)
        if fn is None:
            return self._raiser(ExtensionFault, f"unknown ALU op {op:#x}")

        if is64 and use_reg:
            if op == isa.BPF_MOV:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = regs[s]
                    return npc

            elif op == isa.BPF_ADD:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = (regs[d] + regs[s]) & U64
                    return npc

            elif op == isa.BPF_SUB:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = (regs[d] - regs[s]) & U64
                    return npc

            elif op == isa.BPF_AND:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = regs[d] & regs[s]
                    return npc

            elif op == isa.BPF_OR:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = regs[d] | regs[s]
                    return npc

            elif op == isa.BPF_XOR:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = regs[d] ^ regs[s]
                    return npc

            elif op == isa.BPF_MUL:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = (regs[d] * regs[s]) & U64
                    return npc

            elif op == isa.BPF_LSH:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = (regs[d] << (regs[s] & 63)) & U64
                    return npc

            elif op == isa.BPF_RSH:

                def h(regs, d=d, s=s, npc=npc):
                    regs[d] = regs[d] >> (regs[s] & 63)
                    return npc

            else:

                def h(regs, d=d, s=s, fn=fn, npc=npc):
                    regs[d] = fn(regs[d], regs[s], True) & U64
                    return npc

            return h

        if is64 and not use_reg:
            b = sign_extend(insn.imm, 32) & U64
            if op == isa.BPF_MOV:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = b
                    return npc

            elif op == isa.BPF_ADD:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = (regs[d] + b) & U64
                    return npc

            elif op == isa.BPF_SUB:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = (regs[d] - b) & U64
                    return npc

            elif op == isa.BPF_AND:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = regs[d] & b
                    return npc

            elif op == isa.BPF_OR:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = regs[d] | b
                    return npc

            elif op == isa.BPF_XOR:

                def h(regs, d=d, b=b, npc=npc):
                    regs[d] = regs[d] ^ b
                    return npc

            elif op == isa.BPF_LSH:
                sh = insn.imm & 63

                def h(regs, d=d, sh=sh, npc=npc):
                    regs[d] = (regs[d] << sh) & U64
                    return npc

            elif op == isa.BPF_RSH:
                sh = insn.imm & 63

                def h(regs, d=d, sh=sh, npc=npc):
                    regs[d] = regs[d] >> sh
                    return npc

            else:

                def h(regs, d=d, b=b, fn=fn, npc=npc):
                    regs[d] = fn(regs[d], b, True) & U64
                    return npc

            return h

        # ALU32 — rarer; go through the shared table with burned masks.
        if use_reg:

            def h(regs, d=d, s=s, fn=fn, npc=npc):
                regs[d] = fn(regs[d] & U32, regs[s] & U32, False) & U32
                return npc

        else:
            b = insn.imm & U32

            def h(regs, d=d, b=b, fn=fn, npc=npc):
                regs[d] = fn(regs[d] & U32, b, False) & U32
                return npc

        return h

    # -- memory ----------------------------------------------------------

    def _compile_ldx(self, insn, npc: int):
        d = insn.dst
        s = insn.src
        off = insn.off
        size = isa.size_bytes(insn.opcode)
        ld = self._ld_cache
        slow = self._slow_load
        if self._smap:

            def h(regs, d=d, s=s, off=off, size=size, npc=npc, ld=ld, slow=slow):
                addr = (regs[s] + off) & U64
                if 4096 <= addr < 0x8000_0000_0000:
                    raise PageFault(
                        addr, f"SMAP: supervisor access to user address {addr:#x}"
                    )
                for base, end, data, pages in ld:
                    if base <= addr and addr + size <= end:
                        o = addr - base
                        if pages is None:
                            regs[d] = int.from_bytes(data[o : o + size], "little")
                            return npc
                        p0 = o >> 12
                        p1 = (o + size - 1) >> 12
                        if p0 in pages and (p1 == p0 or p1 in pages):
                            regs[d] = int.from_bytes(data[o : o + size], "little")
                            return npc
                        break
                regs[d] = slow(addr, size)
                return npc

        else:

            def h(regs, d=d, s=s, off=off, size=size, npc=npc, ld=ld, slow=slow):
                addr = (regs[s] + off) & U64
                for base, end, data, pages in ld:
                    if base <= addr and addr + size <= end:
                        o = addr - base
                        if pages is None:
                            regs[d] = int.from_bytes(data[o : o + size], "little")
                            return npc
                        p0 = o >> 12
                        p1 = (o + size - 1) >> 12
                        if p0 in pages and (p1 == p0 or p1 in pages):
                            regs[d] = int.from_bytes(data[o : o + size], "little")
                            return npc
                        break
                regs[d] = slow(addr, size)
                return npc

        return h

    def _compile_st(self, insn, npc: int):
        d = insn.dst
        off = insn.off
        size = isa.size_bytes(insn.opcode)
        value = insn.imm & U64
        mask = (1 << (size * 8)) - 1
        blob = (value & mask).to_bytes(size, "little")
        st = self._st_cache
        slow = self._slow_store

        def h(regs, d=d, off=off, size=size, blob=blob, value=value, npc=npc,
              st=st, slow=slow):
            addr = (regs[d] + off) & U64
            for base, end, data, pages in st:
                if base <= addr and addr + size <= end:
                    o = addr - base
                    if pages is None:
                        data[o : o + size] = blob
                        return npc
                    p0 = o >> 12
                    p1 = (o + size - 1) >> 12
                    if p0 in pages and (p1 == p0 or p1 in pages):
                        data[o : o + size] = blob
                        return npc
                    break
            slow(addr, value, size)
            return npc

        return h

    def _compile_stx(self, insn, npc: int):
        d = insn.dst
        s = insn.src
        off = insn.off
        size = isa.size_bytes(insn.opcode)
        mask = (1 << (size * 8)) - 1
        st = self._st_cache
        slow = self._slow_store

        def h(regs, d=d, s=s, off=off, size=size, mask=mask, npc=npc,
              st=st, slow=slow):
            addr = (regs[d] + off) & U64
            for base, end, data, pages in st:
                if base <= addr and addr + size <= end:
                    o = addr - base
                    if pages is None:
                        data[o : o + size] = (regs[s] & mask).to_bytes(size, "little")
                        return npc
                    p0 = o >> 12
                    p1 = (o + size - 1) >> 12
                    if p0 in pages and (p1 == p0 or p1 in pages):
                        data[o : o + size] = (regs[s] & mask).to_bytes(size, "little")
                        return npc
                    break
            slow(addr, regs[s], size)
            return npc

        return h

    def _compile_atomic(self, insn, npc: int):
        d = insn.dst
        s = insn.src
        off = insn.off
        size = isa.size_bytes(insn.opcode)
        aop = insn.imm
        check = self._check_store
        aspace = self.env.aspace

        def h(regs, d=d, s=s, off=off, size=size, aop=aop, npc=npc,
              check=check, aspace=aspace):
            addr = (regs[d] + off) & U64
            check(addr)
            exec_atomic(aspace, regs, aop, s, addr, size)
            return npc

        return h

    # -- jumps / calls / pseudo-instructions ------------------------------

    def _compile_jmp(self, i: int, insn, is32: bool, npc: int):
        op = insn.opcode
        env = self.env

        if op == isa.KFLEX_GUARD:
            heap = env.heap
            if heap is None:
                return self._raiser(KernelPanic, "GUARD without an extension heap")
            hb = heap.base
            hm = heap.mask
            d = insn.dst

            def h(regs, d=d, hb=hb, hm=hm, npc=npc):
                regs[d] = (hb + (regs[d] & hm)) & U64
                return npc

            return h

        if op == isa.KFLEX_TRANSLATE:
            heap = env.heap
            if heap is None:
                return self._raiser(KernelPanic, "TRANSLATE without a shared heap")
            hm = heap.mask
            d = insn.dst

            def h(regs, d=d, heap=heap, hm=hm, npc=npc):
                # user_base is read at run time: map_user() may happen
                # after load, exactly as the interpreter observes it.
                ub = heap.user_base
                if not ub:
                    raise KernelPanic("TRANSLATE without a shared heap")
                regs[d] = (ub + (regs[d] & hm)) & U64
                return npc

            return h

        if op == isa.KFLEX_CANCELPT:
            heap = env.heap
            if heap is None:
                return self._raiser(KernelPanic, "CANCELPT without an extension heap")
            # The terminate cell lives in the heap's always-populated
            # header page: read the backing directly.  The dereference
            # of the loaded pointer succeeds iff it still points at the
            # terminate target; anything else (0 when armed) takes the
            # paged path and faults exactly like the interpreter.
            hdata = heap.region.backing.data
            toff = heap.terminate_cell - heap.base
            tt = heap.terminate_target
            read = env.aspace.read_int

            def h(regs, env=env, heap=heap, hdata=hdata, toff=toff, tt=tt,
                  read=read, npc=npc):
                # Fault injection first, matching the interpreter's
                # CANCELPT order exactly (injected fault, then the
                # terminate-pointer dereference).
                inj = env.injector
                if inj is not None:
                    inj.at_cancelpt(env.aspace, heap)
                term = int.from_bytes(hdata[toff : toff + 8], "little")
                if term != tt:
                    read(term, 1)
                return npc

            return h

        if insn.is_call:
            helpers = env.helpers
            hid = insn.imm
            try:
                decl = helpers.declaration(hid)
            except HelperFault:
                # Unknown helper: fault at execution, like the interpreter.
                def h(regs, helpers=helpers, hid=hid):
                    helpers.declaration(hid)
                    raise HelperFault(f"call to unknown helper id {hid}")

                return h
            n_args = decl.n_args
            hcost = self.helper_costs.get(hid, decl.cost)
            invoke = helpers.invoke
            xc = self._xcost
            end = 1 + n_args

            def h(regs, invoke=invoke, hid=hid, env=env, end=end, hcost=hcost,
                  xc=xc, npc=npc):
                ret = invoke(hid, env, tuple(regs[1:end]))
                regs[0] = (ret or 0) & U64
                # R1-R5 are caller-saved: clobber them, as the JIT would.
                regs[1] = 0
                regs[2] = 0
                regs[3] = 0
                regs[4] = 0
                regs[5] = 0
                xc[0] += hcost
                return npc

            return h

        if insn.is_exit:

            def h(regs):
                raise _EXIT

            return h

        # Branches: pre-resolve the taken target from slot offsets.
        op_hi = op & isa.OP_MASK
        tslot = self._slot_of[i] + insn.slots + insn.off
        t = self._slot_to_idx.get(tslot)
        panic_msg = f"jump to mid-instruction slot {tslot}"

        if op_hi == isa.BPF_JA:
            if t is None:
                return self._raiser(KernelPanic, panic_msg)

            def h(regs, t=t):
                return t

            return h

        test = JMP_TESTS.get(op_hi)
        if test is None:
            return self._raiser(ExtensionFault, f"unknown jump op {op_hi:#x}")

        use_reg = bool(op & isa.BPF_X)
        d = insn.dst
        s = insn.src

        if t is None:
            # Malformed taken-target: panic only if the branch is taken.
            cond = self._make_cond(insn, is32, test)

            def h(regs, cond=cond, npc=npc, msg=panic_msg):
                if cond(regs):
                    raise KernelPanic(msg)
                return npc

            return h

        if not is32:
            if use_reg:
                if op_hi == isa.BPF_JEQ:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] == regs[s] else npc

                elif op_hi == isa.BPF_JNE:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] != regs[s] else npc

                elif op_hi == isa.BPF_JGT:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] > regs[s] else npc

                elif op_hi == isa.BPF_JGE:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] >= regs[s] else npc

                elif op_hi == isa.BPF_JLT:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] < regs[s] else npc

                elif op_hi == isa.BPF_JLE:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] <= regs[s] else npc

                elif op_hi == isa.BPF_JSET:

                    def h(regs, d=d, s=s, t=t, npc=npc):
                        return t if regs[d] & regs[s] else npc

                else:  # signed comparisons

                    def h(regs, d=d, s=s, test=test, t=t, npc=npc):
                        a = regs[d]
                        b = regs[s]
                        sa = a - _S64 if a >= _S63 else a
                        sb = b - _S64 if b >= _S63 else b
                        return t if test(a, b, sa, sb) else npc

                return h
            # Immediate: burn the sign-extended constant.
            b = sign_extend(insn.imm, 32) & U64
            sb = sign_extend(insn.imm, 32)
            if op_hi == isa.BPF_JEQ:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] == b else npc

            elif op_hi == isa.BPF_JNE:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] != b else npc

            elif op_hi == isa.BPF_JGT:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] > b else npc

            elif op_hi == isa.BPF_JGE:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] >= b else npc

            elif op_hi == isa.BPF_JLT:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] < b else npc

            elif op_hi == isa.BPF_JLE:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] <= b else npc

            elif op_hi == isa.BPF_JSET:

                def h(regs, d=d, b=b, t=t, npc=npc):
                    return t if regs[d] & b else npc

            else:

                def h(regs, d=d, b=b, sb=sb, test=test, t=t, npc=npc):
                    a = regs[d]
                    sa = a - _S64 if a >= _S63 else a
                    return t if test(a, b, sa, sb) else npc

            return h

        # JMP32: width-masked comparison via the shared table.
        cond = self._make_cond(insn, True, test)

        def h(regs, cond=cond, t=t, npc=npc):
            return t if cond(regs) else npc

        return h

    def _make_cond(self, insn, is32: bool, test):
        """Generic ``regs -> bool`` closure with Interpreter._branch
        semantics; used for JMP32 and malformed-target branches."""
        d = insn.dst
        s = insn.src
        use_reg = bool(insn.opcode & isa.BPF_X)
        if is32:
            if use_reg:

                def cond(regs, d=d, s=s, test=test):
                    a = regs[d] & U32
                    b = regs[s] & U32
                    return test(a, b, sign_extend(a, 32), sign_extend(b, 32))

            else:
                b = insn.imm & U32
                sb = sign_extend(b, 32)

                def cond(regs, d=d, b=b, sb=sb, test=test):
                    a = regs[d] & U32
                    return test(a, b, sign_extend(a, 32), sb)

            return cond
        if use_reg:

            def cond(regs, d=d, s=s, test=test):
                a = regs[d]
                b = regs[s]
                sa = a - _S64 if a >= _S63 else a
                sb = b - _S64 if b >= _S63 else b
                return test(a, b, sa, sb)

        else:
            b = sign_extend(insn.imm, 32) & U64
            sb = sign_extend(insn.imm, 32)

            def cond(regs, d=d, b=b, sb=sb, test=test):
                a = regs[d]
                sa = a - _S64 if a >= _S63 else a
                return test(a, b, sa, sb)

        return cond


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

#: Available execution engines.  ``"interp"`` is the reference
#: interpreter (the semantics oracle and escape hatch); ``"threaded"``
#: is the default fast path.
ENGINES: dict[str, type] = {
    "interp": Interpreter,
    "threaded": ThreadedEngine,
}

_default_engine = os.environ.get("REPRO_ENGINE", "threaded")


def default_engine() -> str:
    """The engine name new :class:`~repro.core.runtime.KFlexRuntime`
    instances pick up (``REPRO_ENGINE`` env var, default ``threaded``)."""
    return _default_engine


def set_default_engine(name: str) -> None:
    global _default_engine
    if name not in ENGINES:
        raise LoadError(
            f"unknown execution engine {name!r} (have: {sorted(ENGINES)})"
        )
    _default_engine = name


@contextmanager
def engine_scope(name: str):
    """Temporarily override the default engine (benchmarks, A/B tests)."""
    global _default_engine
    prev = _default_engine
    set_default_engine(name)
    try:
        yield
    finally:
        _default_engine = prev


def make_engine(name: str, insns, env, *, costs=None, helper_costs=None,
                plan=None):
    """Construct the named engine over a lowered instruction list.

    ``plan`` is a superinstruction fusion plan (see
    :class:`repro.ebpf.pipeline.FusePass`); engines that don't
    advertise ``supports_fusion`` — the reference interpreter — simply
    ignore it and stay the unfused semantics oracle.
    """
    cls = ENGINES.get(name)
    if cls is None:
        raise LoadError(
            f"unknown execution engine {name!r} (have: {sorted(ENGINES)})"
        )
    if plan and getattr(cls, "supports_fusion", False):
        return cls(insns, env, costs=costs, helper_costs=helper_costs,
                   plan=plan)
    return cls(insns, env, costs=costs, helper_costs=helper_costs)
