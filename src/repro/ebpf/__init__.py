"""eBPF substrate: instruction set, assembler, maps, interpreter, verifier, JIT.

This package implements the parts of the eBPF framework that KFlex
builds upon (paper §2.2, §3): the bytecode ISA, an in-"kernel" verifier
with tnum/range analysis and reference tracking, kernel-provided maps,
helper functions with acquire/release semantics, and a lowering pass
standing in for the x86-64 JIT.
"""

from repro.ebpf.isa import Insn, Reg, disasm
from repro.ebpf.asm import Assembler
from repro.ebpf.program import Program
from repro.ebpf.engine import (
    ENGINES,
    default_engine,
    engine_scope,
    make_engine,
    set_default_engine,
)

__all__ = [
    "Insn",
    "Reg",
    "disasm",
    "Assembler",
    "Program",
    "ENGINES",
    "default_engine",
    "engine_scope",
    "make_engine",
    "set_default_engine",
]
