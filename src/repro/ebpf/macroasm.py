"""Structured assembler for writing extensions.

The paper's extensions are written in C and compiled to eBPF bytecode;
this repository has no C compiler, so extensions are written against
this thin structured layer instead: labelled control flow becomes
``with``-blocks, struct fields get named accessors, and helper calls
marshal their arguments.  Everything lowers to plain bytecode — the
verifier, Kie and the JIT see exactly what a compiler would emit.

Registers are chosen explicitly by the extension author (as a compiler's
register allocator would); R1–R5 are clobbered by helper calls, R6–R9
survive them.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.ebpf.asm import Assembler
from repro.ebpf.isa import Insn, Reg
from repro.ebpf.program import PSEUDO_HEAP_OFF, PSEUDO_MAP_FD


@dataclass(frozen=True)
class Field:
    """One struct member: byte offset and access size."""

    off: int
    size: int


class Struct:
    """A C-style struct layout for heap objects.

    >>> elem = Struct(key=4, value=4, next=8, prev=8)
    >>> elem.key.off, elem.next.off, elem.size
    (0, 8, 24)

    Fields are laid out in declaration order with natural alignment.
    """

    def __init__(self, **fields: int):
        off = 0
        self._fields: dict[str, Field] = {}
        for name, size in fields.items():
            if size not in (1, 2, 4, 8):
                raise AssemblerError(f"field {name}: unsupported size {size}")
            off = (off + size - 1) & ~(size - 1)
            self._fields[name] = Field(off, size)
            off += size
        self.size = (off + 7) & ~7  # 8-byte aligned object size

    def __getattr__(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise AttributeError(name) from None


class LoopCtl:
    """Handles for ``break``/``continue`` inside a loop block."""

    def __init__(self, head: str, end: str):
        self.continue_ = head
        self.break_ = end


class MacroAsm(Assembler):
    """Assembler with structured control flow and field access."""

    # -- field access ---------------------------------------------------

    def ldf(self, dst: Reg, base: Reg, field: Field) -> int:
        """dst = base->field"""
        return self.ldx(dst, base, field.off, field.size)

    def stf(self, base: Reg, field: Field, src: Reg) -> int:
        """base->field = src"""
        return self.stx(base, src, field.off, field.size)

    def stf_imm(self, base: Reg, field: Field, imm: int) -> int:
        """base->field = imm"""
        return self.st_imm(base, field.off, imm, field.size)

    # -- constants ------------------------------------------------------

    def heap_addr(self, dst: Reg, off: int) -> int:
        """dst = &heap[off] (relocated to the heap base at load time)."""
        return self.ld_imm64(dst, off, pseudo=PSEUDO_HEAP_OFF)

    def map_ptr(self, dst: Reg, map_obj) -> int:
        """dst = pointer to a kernel map (by fd relocation)."""
        return self.ld_imm64(dst, map_obj.fd, pseudo=PSEUDO_MAP_FD)

    # -- helper calls ------------------------------------------------------

    def call_helper(self, hid: int, *args) -> int:
        """Marshal ``args`` into R1..R5 and call the helper.

        Each arg is a ``Reg`` (moved) or an int immediate.  Args are
        marshalled left-to-right: passing an argument register (R1–R5)
        as a *later* argument's source would read an already-overwritten
        register, so keep sources in R0/R6–R9 or pass them in order.
        """
        if len(args) > 5:
            raise AssemblerError("helpers take at most five arguments")
        for i, arg in enumerate(args):
            target = Reg(i + 1)
            if isinstance(arg, Reg):
                if arg != target:
                    self.mov(target, arg)
            else:
                self.mov(target, int(arg))
        return self.call(hid)

    # -- structured control flow ---------------------------------------

    @contextmanager
    def loop(self):
        """An infinite loop; exit with ``jcc(..., ctl.break_)``."""
        head = self.fresh_label("loop")
        end = self.fresh_label("endloop")
        self.label(head)
        ctl = LoopCtl(head, end)
        yield ctl
        self.jmp(head)
        self.label(end)

    @contextmanager
    def while_(self, op: str, dst: Reg, src):
        """Loop while the condition holds."""
        head = self.fresh_label("while")
        end = self.fresh_label("endwhile")
        self.label(head)
        self.jcc(_negate(op), dst, src, end)
        yield LoopCtl(head, end)
        self.jmp(head)
        self.label(end)

    @contextmanager
    def if_(self, op: str, dst: Reg, src):
        """Execute the block when the condition holds."""
        end = self.fresh_label("endif")
        self.jcc(_negate(op), dst, src, end)
        yield
        self.label(end)

    @contextmanager
    def if_else(self, op: str, dst: Reg, src):
        """``with m.if_else(...) as orelse: ...; orelse(); ...``"""
        else_lbl = self.fresh_label("else")
        end = self.fresh_label("endif")
        self.jcc(_negate(op), dst, src, else_lbl)
        state = {"in_else": False}

        def orelse():
            if state["in_else"]:
                raise AssemblerError("else() called twice")
            state["in_else"] = True
            self.jmp(end)
            self.label(else_lbl)

        yield orelse
        if not state["in_else"]:
            self.label(else_lbl)
        self.label(end)

    # -- common sequences -------------------------------------------------

    def memcpy(self, dst: Reg, src: Reg, n: int, *, scratch: Reg) -> None:
        """Copy n bytes (unrolled, 8-byte chunks then tail), as a
        compiler would inline small constant-size memcpy."""
        off = 0
        while n - off >= 8:
            self.ldx(scratch, src, off, 8)
            self.stx(dst, scratch, off, 8)
            off += 8
        for size in (4, 2, 1):
            if n - off >= size:
                self.ldx(scratch, src, off, size)
                self.stx(dst, scratch, off, size)
                off += size

    def memcmp_jne(self, a: Reg, b: Reg, n: int, target: str, *, s1: Reg, s2: Reg):
        """Jump to ``target`` if the n bytes at a and b differ."""
        off = 0
        while off < n:
            size = 8 if n - off >= 8 else (4 if n - off >= 4 else (2 if n - off >= 2 else 1))
            self.ldx(s1, a, off, size)
            self.ldx(s2, b, off, size)
            self.jcc("!=", s1, s2, target)
            off += size

    def stack_zero(self, off: int, n: int) -> None:
        """Zero n bytes at fp+off (8-byte granularity)."""
        if off % 8 or n % 8:
            raise AssemblerError("stack_zero wants 8-byte alignment")
        for o in range(off, off + n, 8):
            self.st_imm(Reg.R10, o, 0, 8)


_NEGATIONS = {
    "==": "!=",
    "!=": "==",
    ">": "<=",
    "<=": ">",
    "<": ">=",
    ">=": "<",
    "s>": "s<=",
    "s<=": "s>",
    "s<": "s>=",
    "s>=": "s<",
}


def _negate(op: str) -> str:
    try:
        return _NEGATIONS[op]
    except KeyError:
        raise AssemblerError(f"condition {op!r} cannot be negated") from None
