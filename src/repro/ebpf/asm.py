"""Label-based eBPF assembler.

Produces ``Insn`` lists with kernel-faithful slot-based jump offsets
(``off`` counts 8-byte slots from the *next* instruction, and
``ld_imm64`` occupies two slots).

The assembler is deliberately low-level; extensions in this repository
are written against :mod:`repro.ebpf.macroasm`, which layers structured
control flow on top of this class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblerError
from repro.ebpf import isa
from repro.ebpf.isa import Insn, Reg


@dataclass
class _Fixup:
    insn_pos: int  # index into self._insns
    label: str


class Assembler:
    """Builds an instruction list; jumps may reference labels."""

    def __init__(self):
        self._insns: list[Insn] = []
        self._labels: dict[str, int] = {}  # label -> insn index
        self._fixups: list[_Fixup] = []
        self._label_counter = 0

    # -- labels -------------------------------------------------------

    def label(self, name: str) -> str:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    def _emit(self, insn: Insn) -> int:
        self._insns.append(insn)
        return len(self._insns) - 1

    def raw(self, insn: Insn) -> int:
        """Append a pre-built instruction."""
        return self._emit(insn)

    # -- ALU ----------------------------------------------------------

    def _alu(self, op: int, dst: int, src, *, width64: bool = True) -> int:
        cls = isa.BPF_ALU64 if width64 else isa.BPF_ALU
        if isinstance(src, Reg) or (isinstance(src, int) and isinstance(src, Reg)):
            return self._emit(Insn(cls | op | isa.BPF_X, int(dst), int(src)))
        return self._emit(Insn(cls | op | isa.BPF_K, int(dst), 0, 0, int(src)))

    def mov(self, dst: Reg, src) -> int:
        """mov64 dst, src (register or 32-bit signed immediate)."""
        return self._alu(isa.BPF_MOV, dst, src)

    def mov32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_MOV, dst, src, width64=False)

    def add(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_ADD, dst, src)

    def sub(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_SUB, dst, src)

    def mul(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_MUL, dst, src)

    def div(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_DIV, dst, src)

    def mod(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_MOD, dst, src)

    def and_(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_AND, dst, src)

    def or_(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_OR, dst, src)

    def xor(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_XOR, dst, src)

    def lsh(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_LSH, dst, src)

    def rsh(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_RSH, dst, src)

    def arsh(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_ARSH, dst, src)

    def neg(self, dst: Reg) -> int:
        return self._emit(Insn(isa.BPF_ALU64 | isa.BPF_NEG, int(dst)))

    def add32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_ADD, dst, src, width64=False)

    def sub32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_SUB, dst, src, width64=False)

    def mul32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_MUL, dst, src, width64=False)

    def and32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_AND, dst, src, width64=False)

    def rsh32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_RSH, dst, src, width64=False)

    def lsh32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_LSH, dst, src, width64=False)

    def xor32(self, dst: Reg, src) -> int:
        return self._alu(isa.BPF_XOR, dst, src, width64=False)

    # -- constants ----------------------------------------------------

    def ld_imm64(self, dst: Reg, value: int, *, pseudo: int = 0) -> int:
        """Load a full 64-bit immediate (two slots).

        ``pseudo`` models the kernel's ``src_reg`` convention for
        relocated immediates (e.g. ``BPF_PSEUDO_MAP_FD``).
        """
        op = isa.BPF_LD | isa.BPF_IMM | isa.BPF_DW
        return self._emit(
            Insn(op, int(dst), pseudo, 0, value & isa.U32, imm64=value & isa.U64)
        )

    # -- memory -------------------------------------------------------

    _SIZES = {1: isa.BPF_B, 2: isa.BPF_H, 4: isa.BPF_W, 8: isa.BPF_DW}

    def ldx(self, dst: Reg, src: Reg, off: int = 0, size: int = 8) -> int:
        op = isa.BPF_LDX | isa.BPF_MEM | self._SIZES[size]
        return self._emit(Insn(op, int(dst), int(src), off))

    def stx(self, dst: Reg, src: Reg, off: int = 0, size: int = 8) -> int:
        op = isa.BPF_STX | isa.BPF_MEM | self._SIZES[size]
        return self._emit(Insn(op, int(dst), int(src), off))

    def st_imm(self, dst: Reg, off: int, imm: int, size: int = 8) -> int:
        op = isa.BPF_ST | isa.BPF_MEM | self._SIZES[size]
        return self._emit(Insn(op, int(dst), 0, off, imm))

    def atomic(self, dst: Reg, src: Reg, off: int, aop: int, size: int = 8) -> int:
        """Atomic RMW: ``aop`` is one of the ``isa.ATOMIC_*`` encodings
        (optionally ORed with ``isa.BPF_FETCH``)."""
        op = isa.BPF_STX | isa.BPF_ATOMIC | self._SIZES[size]
        return self._emit(Insn(op, int(dst), int(src), off, aop))

    # -- control flow -------------------------------------------------

    _JOPS = {
        "==": isa.BPF_JEQ,
        "!=": isa.BPF_JNE,
        ">": isa.BPF_JGT,
        ">=": isa.BPF_JGE,
        "<": isa.BPF_JLT,
        "<=": isa.BPF_JLE,
        "s>": isa.BPF_JSGT,
        "s>=": isa.BPF_JSGE,
        "s<": isa.BPF_JSLT,
        "s<=": isa.BPF_JSLE,
        "&": isa.BPF_JSET,
    }

    def jmp(self, label: str) -> int:
        pos = self._emit(Insn(isa.BPF_JMP | isa.BPF_JA))
        self._fixups.append(_Fixup(pos, label))
        return pos

    def jcc(self, op: str, dst: Reg, src, label: str, *, width32: bool = False) -> int:
        """Conditional jump; ``op`` is a comparison string ('==', 's<', '&', …)."""
        jop = self._JOPS.get(op)
        if jop is None:
            raise AssemblerError(f"unknown jump condition {op!r}")
        cls = isa.BPF_JMP32 if width32 else isa.BPF_JMP
        if isinstance(src, Reg):
            insn = Insn(cls | jop | isa.BPF_X, int(dst), int(src))
        else:
            insn = Insn(cls | jop | isa.BPF_K, int(dst), 0, 0, int(src))
        pos = self._emit(insn)
        self._fixups.append(_Fixup(pos, label))
        return pos

    def call(self, helper_id: int) -> int:
        return self._emit(Insn(isa.BPF_JMP | isa.BPF_CALL, 0, 0, 0, helper_id))

    def exit(self) -> int:
        return self._emit(Insn(isa.BPF_JMP | isa.BPF_EXIT))

    # -- finalisation ---------------------------------------------------

    def assemble(self) -> list[Insn]:
        """Resolve labels to slot-based offsets and return the program."""
        slot_of = isa.slot_offsets(self._insns)
        total = isa.total_slots(self._insns)
        insns = list(self._insns)
        for fix in self._fixups:
            if fix.label not in self._labels:
                raise AssemblerError(f"undefined label {fix.label!r}")
            target_idx = self._labels[fix.label]
            target_slot = slot_of[target_idx] if target_idx < len(insns) else total
            insn = insns[fix.insn_pos]
            # Offset is relative to the slot after this instruction.
            off = target_slot - (slot_of[fix.insn_pos] + insn.slots)
            if not -(1 << 15) <= off < (1 << 15):
                raise AssemblerError(f"jump offset {off} out of 16-bit range")
            insns[fix.insn_pos] = insn.with_off(off)
        return insns
