"""The eBPF instruction set (v1, per the kernel's standardization doc).

KFlex "retains the instruction set of eBPF's bytecode" (paper §3), so
this module is a faithful model of that ISA: 11 registers, 8-byte
instructions encoded as ``opcode | dst:4 | src:4 | offset:16 | imm:32``,
with ``LD_IMM64`` occupying two instruction slots.

Two KFlex-specific pseudo-instructions are added by the instrumentation
engine (Kie, §3.2–3.3) and exist only between instrumentation and JIT
lowering — they are never accepted from user input:

* ``GUARD`` — SFI sanitisation of a heap pointer held in ``dst``:
  ``dst = heap_base + (dst & heap_mask)``. Lowered to a single ``AND``
  against the reserved mask register (R9 on x86-64), with the base added
  via indexed addressing (R12).
* ``CANCELPT`` — a cancellation point: performs the ``*terminate`` heap
  access described in §3.3. Faults when the runtime has zeroed the
  terminate cell, triggering extension cancellation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum

from repro.errors import EncodingError

# ---------------------------------------------------------------------------
# Registers
# ---------------------------------------------------------------------------


class Reg(IntEnum):
    """eBPF registers.

    R0: return value / scratch.  R1–R5: helper arguments (clobbered by
    calls).  R6–R9: callee-saved.  R10: read-only frame pointer.
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10


FP = Reg.R10
MAX_REG = 10

# ---------------------------------------------------------------------------
# Opcode fields
# ---------------------------------------------------------------------------

# Instruction classes (low 3 bits of opcode).
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_JMP32 = 0x06
BPF_ALU64 = 0x07

CLASS_MASK = 0x07

# Source modifier for ALU/JMP (bit 3).
BPF_K = 0x00  # use 32-bit immediate
BPF_X = 0x08  # use source register

# ALU/ALU64 operations (high 4 bits).
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0
BPF_MOV = 0xB0
BPF_ARSH = 0xC0
BPF_END = 0xD0

# JMP operations (high 4 bits).
BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40
BPF_JNE = 0x50
BPF_JSGT = 0x60
BPF_JSGE = 0x70
BPF_CALL = 0x80
BPF_EXIT = 0x90
BPF_JLT = 0xA0
BPF_JLE = 0xB0
BPF_JSLT = 0xC0
BPF_JSLE = 0xD0

OP_MASK = 0xF0

# Load/store size (bits 3–4).
BPF_W = 0x00  # 4 bytes
BPF_H = 0x08  # 2 bytes
BPF_B = 0x10  # 1 byte
BPF_DW = 0x18  # 8 bytes

SIZE_MASK = 0x18

# Load/store mode (bits 5–7).
BPF_IMM = 0x00  # ld_imm64
BPF_MEM = 0x60
BPF_ATOMIC = 0xC0

MODE_MASK = 0xE0

# Atomic operation encodings (carried in the imm field of STX|ATOMIC).
BPF_FETCH = 0x01
ATOMIC_ADD = BPF_ADD
ATOMIC_OR = BPF_OR
ATOMIC_AND = BPF_AND
ATOMIC_XOR = BPF_XOR
ATOMIC_XCHG = 0xE0 | BPF_FETCH
ATOMIC_CMPXCHG = 0xF0 | BPF_FETCH

# KFlex pseudo-opcodes (reserved op values within the JMP/JMP32 classes
# that no legal eBPF encoding uses).  They exist only between Kie
# instrumentation and JIT lowering.
KFLEX_GUARD = BPF_JMP | 0xE0  # 0xe5: SFI guard on register `dst`
KFLEX_CANCELPT = BPF_JMP | 0xF0  # 0xf5: cancellation point
KFLEX_TRANSLATE = BPF_JMP32 | 0xE0  # 0xe6: translate-on-store (§3.4)

SIZE_BYTES = {BPF_B: 1, BPF_H: 2, BPF_W: 4, BPF_DW: 8}

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1


def size_bytes(opcode: int) -> int:
    """Access width in bytes of a load/store opcode."""
    return SIZE_BYTES[opcode & SIZE_MASK]


# ---------------------------------------------------------------------------
# Instruction representation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Insn:
    """One eBPF instruction slot.

    ``LD_IMM64`` is represented as a single ``Insn`` carrying the full
    64-bit immediate in ``imm64``; it still counts as *two* slots for
    encoding and jump-offset purposes (``slots`` property), exactly as
    in the kernel.
    """

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0
    imm64: int | None = None  # only for LD_IMM64
    # Set by Kie: index of the source-program instruction this one was
    # derived from (None for instrumentation that has no source insn).
    orig_idx: int | None = field(default=None, compare=False)

    @property
    def cls(self) -> int:
        return self.opcode & CLASS_MASK

    @property
    def is_ld_imm64(self) -> bool:
        return self.opcode == (BPF_LD | BPF_IMM | BPF_DW)

    @property
    def slots(self) -> int:
        """Number of 8-byte encoding slots this instruction occupies."""
        return 2 if self.is_ld_imm64 else 1

    @property
    def is_jump(self) -> bool:
        if self.cls not in (BPF_JMP, BPF_JMP32):
            return False
        op = self.opcode & OP_MASK
        return op not in (BPF_CALL, BPF_EXIT) and self.opcode not in (
            KFLEX_GUARD,
            KFLEX_CANCELPT,
            KFLEX_TRANSLATE,
        )

    @property
    def is_cond_jump(self) -> bool:
        return self.is_jump and (self.opcode & OP_MASK) != BPF_JA

    @property
    def is_call(self) -> bool:
        return self.cls == BPF_JMP and (self.opcode & OP_MASK) == BPF_CALL

    @property
    def is_exit(self) -> bool:
        return self.cls == BPF_JMP and (self.opcode & OP_MASK) == BPF_EXIT

    @property
    def is_mem_access(self) -> bool:
        return self.cls in (BPF_LDX, BPF_ST, BPF_STX) and (
            self.opcode & MODE_MASK
        ) in (BPF_MEM, BPF_ATOMIC)

    @property
    def is_atomic(self) -> bool:
        return self.cls == BPF_STX and (self.opcode & MODE_MASK) == BPF_ATOMIC

    def with_off(self, off: int) -> "Insn":
        return replace(self, off=off)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return disasm_insn(self)


# ---------------------------------------------------------------------------
# Encoding / decoding
# ---------------------------------------------------------------------------

_SLOT = struct.Struct("<BBhi")  # opcode, regs, off, imm


def _pack_regs(dst: int, src: int) -> int:
    # Little-endian register byte layout: src in high nibble.
    return (src << 4) | dst


def encode(insns: list[Insn]) -> bytes:
    """Encode a list of instructions into the 8-byte kernel wire format."""
    out = bytearray()
    for insn in insns:
        if insn.is_ld_imm64:
            imm64 = insn.imm64 if insn.imm64 is not None else insn.imm
            imm64 &= U64
            lo = imm64 & U32
            hi = (imm64 >> 32) & U32
            out += _SLOT.pack(
                insn.opcode, _pack_regs(insn.dst, insn.src), insn.off, _to_s32(lo)
            )
            out += _SLOT.pack(0, 0, 0, _to_s32(hi))
        else:
            out += _SLOT.pack(
                insn.opcode, _pack_regs(insn.dst, insn.src), insn.off, _to_s32(insn.imm)
            )
    return bytes(out)


def decode(blob: bytes) -> list[Insn]:
    """Decode kernel wire format back into ``Insn`` objects."""
    if len(blob) % 8 != 0:
        raise EncodingError(f"bytecode length {len(blob)} not a multiple of 8")
    insns: list[Insn] = []
    slots = [blob[i : i + 8] for i in range(0, len(blob), 8)]
    i = 0
    while i < len(slots):
        opcode, regs, off, imm = _SLOT.unpack(slots[i])
        dst, src = regs & 0x0F, regs >> 4
        if opcode == (BPF_LD | BPF_IMM | BPF_DW):
            if i + 1 >= len(slots):
                raise EncodingError("truncated ld_imm64")
            _, _, _, imm_hi = _SLOT.unpack(slots[i + 1])
            imm64 = (imm & U32) | ((imm_hi & U32) << 32)
            insns.append(Insn(opcode, dst, src, off, imm, imm64=imm64))
            i += 2
        else:
            insns.append(Insn(opcode, dst, src, off, imm))
            i += 1
    return insns


def _to_s32(v: int) -> int:
    v &= U32
    return v - (1 << 32) if v >= (1 << 31) else v


def to_s64(v: int) -> int:
    """Interpret a 64-bit pattern as signed."""
    v &= U64
    return v - (1 << 64) if v >= (1 << 63) else v


def to_u64(v: int) -> int:
    """Truncate a Python int to an unsigned 64-bit pattern."""
    return v & U64


def sign_extend(v: int, bits: int) -> int:
    """Sign-extend the low ``bits`` of ``v``."""
    v &= (1 << bits) - 1
    return v - (1 << bits) if v >= (1 << (bits - 1)) else v


# ---------------------------------------------------------------------------
# Slot-index mapping
# ---------------------------------------------------------------------------


def slot_offsets(insns: list[Insn]) -> list[int]:
    """Slot index of each instruction (ld_imm64 occupies two slots)."""
    out = []
    pos = 0
    for insn in insns:
        out.append(pos)
        pos += insn.slots
    return out


def total_slots(insns: list[Insn]) -> int:
    return sum(i.slots for i in insns)


# ---------------------------------------------------------------------------
# Disassembler
# ---------------------------------------------------------------------------

_ALU_NAMES = {
    BPF_ADD: "add",
    BPF_SUB: "sub",
    BPF_MUL: "mul",
    BPF_DIV: "div",
    BPF_OR: "or",
    BPF_AND: "and",
    BPF_LSH: "lsh",
    BPF_RSH: "rsh",
    BPF_NEG: "neg",
    BPF_MOD: "mod",
    BPF_XOR: "xor",
    BPF_MOV: "mov",
    BPF_ARSH: "arsh",
    BPF_END: "end",
}

_JMP_NAMES = {
    BPF_JA: "ja",
    BPF_JEQ: "jeq",
    BPF_JGT: "jgt",
    BPF_JGE: "jge",
    BPF_JSET: "jset",
    BPF_JNE: "jne",
    BPF_JSGT: "jsgt",
    BPF_JSGE: "jsge",
    BPF_JLT: "jlt",
    BPF_JLE: "jle",
    BPF_JSLT: "jslt",
    BPF_JSLE: "jsle",
}

_SIZE_NAMES = {BPF_B: "b", BPF_H: "h", BPF_W: "w", BPF_DW: "dw"}


def disasm_insn(insn: Insn) -> str:
    """Human-readable rendering of one instruction."""
    cls = insn.cls
    if insn.opcode == KFLEX_GUARD:
        return f"guard r{insn.dst}, heap{insn.imm}"
    if insn.opcode == KFLEX_CANCELPT:
        return f"cancelpt #{insn.imm}"
    if insn.opcode == KFLEX_TRANSLATE:
        return f"translate r{insn.dst}"
    if insn.is_ld_imm64:
        return f"lddw r{insn.dst}, {insn.imm64:#x}" + (
            f" (pseudo src={insn.src})" if insn.src else ""
        )
    if cls in (BPF_ALU, BPF_ALU64):
        op = insn.opcode & OP_MASK
        name = _ALU_NAMES.get(op, f"alu{op:#x}")
        w = "64" if cls == BPF_ALU64 else "32"
        if op == BPF_NEG:
            return f"neg{w} r{insn.dst}"
        if op == BPF_END:
            return f"end{insn.imm} r{insn.dst}"
        src = f"r{insn.src}" if insn.opcode & BPF_X else str(insn.imm)
        return f"{name}{w} r{insn.dst}, {src}"
    if cls in (BPF_JMP, BPF_JMP32):
        op = insn.opcode & OP_MASK
        if op == BPF_CALL:
            return f"call {insn.imm}"
        if op == BPF_EXIT:
            return "exit"
        name = _JMP_NAMES.get(op, f"jmp{op:#x}")
        if op == BPF_JA:
            return f"ja +{insn.off}"
        src = f"r{insn.src}" if insn.opcode & BPF_X else str(insn.imm)
        w = "32" if cls == BPF_JMP32 else ""
        return f"{name}{w} r{insn.dst}, {src}, +{insn.off}"
    if cls == BPF_LDX:
        sz = _SIZE_NAMES[insn.opcode & SIZE_MASK]
        return f"ldx{sz} r{insn.dst}, [r{insn.src}{insn.off:+d}]"
    if cls == BPF_ST:
        sz = _SIZE_NAMES[insn.opcode & SIZE_MASK]
        return f"st{sz} [r{insn.dst}{insn.off:+d}], {insn.imm}"
    if cls == BPF_STX:
        sz = _SIZE_NAMES[insn.opcode & SIZE_MASK]
        if insn.is_atomic:
            return f"atomic{sz} [r{insn.dst}{insn.off:+d}], r{insn.src}, op={insn.imm:#x}"
        return f"stx{sz} [r{insn.dst}{insn.off:+d}], r{insn.src}"
    return f"<op {insn.opcode:#x}>"


def disasm(insns: list[Insn]) -> str:
    """Disassemble a whole program with slot indices."""
    offs = slot_offsets(insns)
    return "\n".join(f"{offs[i]:4d}: {disasm_insn(insn)}" for i, insn in enumerate(insns))
