"""The eBPF verifier.

KFlex reuses eBPF's automated verification for kernel-interface
compliance and co-designs its runtime mechanisms with the verifier's
analyses (paper §3): range analysis (tnums + signed/unsigned intervals)
drives SFI guard elision (§3.2, §5.4), and symbolic execution with
reference tracking computes the per-cancellation-point object tables
(§3.3, §4.3).

The implementation follows the upstream verifier's published design:
path-sensitive symbolic execution over an abstract register file, state
pruning at join points, bounded-loop unrolling, and — in KFlex mode —
widening for loops whose bounds cannot be established statically.
"""

from repro.ebpf.verifier.tnum import Tnum
from repro.ebpf.verifier.verifier import (
    Analysis,
    RegionPartial,
    Verifier,
    VerifierConfig,
    merge_region_partials,
)

__all__ = [
    "Tnum",
    "Verifier",
    "VerifierConfig",
    "Analysis",
    "RegionPartial",
    "merge_region_partials",
]
