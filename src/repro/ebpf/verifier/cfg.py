"""Control-flow graph over bytecode.

Used by the verifier for back-edge detection (the candidate
cancellation-point sites of §3.3, class C1) and for a register liveness
analysis that makes state pruning effective — without liveness, dead
registers would keep otherwise-equal states from matching, and path
exploration of real extensions would explode.

Also computes the *region partition* the verification service
(:mod:`repro.verify`) schedules over: maximal cut points that no edge
crosses, so exploration of one region depends on earlier regions only
through the states arriving at its start.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerificationError
from repro.ebpf import isa
from repro.ebpf.isa import Insn
from repro.ebpf.rewrite import jump_target_index


@dataclass
class Cfg:
    insns: list[Insn]
    succ: list[list[int]]
    pred: list[list[int]]
    #: (src, dst) pairs classified as back edges by DFS.
    back_edges: set[tuple[int, int]]
    #: live_in[i]: bitmask of registers possibly read at/after insn i.
    live_in: list[int]

    def is_back_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self.back_edges


def build_cfg(insns: list[Insn]) -> Cfg:
    n = len(insns)
    succ: list[list[int]] = [[] for _ in range(n)]
    pred: list[list[int]] = [[] for _ in range(n)]

    for i, insn in enumerate(insns):
        targets: list[int] = []
        if insn.is_exit:
            pass
        elif insn.is_jump:
            t = jump_target_index(insns, i)
            if t >= n:
                raise VerificationError("jump past program end", i)
            targets.append(t)
            if insn.is_cond_jump:
                targets.append(i + 1)
        else:
            targets.append(i + 1)
        for t in targets:
            if t >= n:
                raise VerificationError("fall-through past program end", i)
            succ[i].append(t)
            pred[t].append(i)

    back = _find_back_edges(succ)
    live = _liveness(insns, succ)
    return Cfg(insns, succ, pred, back, live)


@dataclass(frozen=True)
class Region:
    """One contiguous slice ``[start, end)`` of the instruction stream
    that no control-flow edge crosses except at its boundaries.

    Regions are delimited by *linear cut points*: an index ``c`` is a
    cut iff no edge jumps over it — every forward edge ``(src, dst)``
    with ``src < c`` has ``dst <= c`` and every back edge ``(src, dst)``
    with ``src >= c`` has ``dst >= c``.  Two properties follow:

    * loops never span a cut (their back edge would cross it), so each
      region is explored to a fixpoint independently; and
    * every edge leaving region ``k`` lands exactly on the *start* of
      region ``k + 1`` — if it targeted a later cut, the cuts in
      between would have been invalidated by that very edge.  Regions
      therefore form a chain, and exploration state flows only through
      the per-region entry states.
    """

    ordinal: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start


def compute_regions(cfg: Cfg) -> list[Region]:
    """Partition the program into the maximal chain of regions.

    A candidate cut exists between every pair of adjacent instructions;
    an edge ``(src, dst)`` invalidates the cuts strictly inside its
    span — ``(src, dst)`` for a forward edge, ``(dst, src]`` for a back
    edge (the loop header itself stays a valid cut, so a region may
    begin at a loop head).  Surviving cuts are found with a difference
    array in O(insns + edges).
    """
    n = len(cfg.insns)
    if n == 0:
        return []
    crossed = [0] * (n + 1)
    for src in range(n):
        for dst in cfg.succ[src]:
            # Forward edges invalidate cuts in (src, dst); back edges
            # (dst <= src, including self-loops) invalidate (dst, src].
            lo, hi = (src + 1, dst) if dst > src else (dst + 1, src + 1)
            if lo < hi:
                crossed[lo] += 1
                crossed[hi] -= 1
    bounds = [0]
    depth = 0
    for c in range(1, n):
        depth += crossed[c]
        if depth == 0:
            bounds.append(c)
    bounds.append(n)
    return [
        Region(k, bounds[k], bounds[k + 1]) for k in range(len(bounds) - 1)
    ]


def _find_back_edges(succ: list[list[int]]) -> set[tuple[int, int]]:
    """Iterative DFS edge classification from the entry node."""
    n = len(succ)
    WHITE, GREY, BLACK = 0, 1, 2
    color = [WHITE] * n
    back: set[tuple[int, int]] = set()
    if n == 0:
        return back
    stack: list[tuple[int, int]] = [(0, 0)]  # (node, next-successor index)
    color[0] = GREY
    while stack:
        node, si = stack[-1]
        if si < len(succ[node]):
            stack[-1] = (node, si + 1)
            nxt = succ[node][si]
            if color[nxt] == GREY:
                back.add((node, nxt))
            elif color[nxt] == WHITE:
                color[nxt] = GREY
                stack.append((nxt, 0))
        else:
            color[node] = BLACK
            stack.pop()
    return back


def _uses_defs(insn: Insn) -> tuple[int, int]:
    """(use bitmask, def bitmask) of registers for one instruction."""
    use = 0
    defs = 0
    op = insn.opcode
    cls = insn.cls
    if op in (isa.KFLEX_GUARD, isa.KFLEX_TRANSLATE):
        return (1 << insn.dst), (1 << insn.dst)
    if op == isa.KFLEX_CANCELPT:
        return 0, 0
    if insn.is_ld_imm64:
        return 0, (1 << insn.dst)
    if cls in (isa.BPF_ALU, isa.BPF_ALU64):
        aop = op & isa.OP_MASK
        if aop == isa.BPF_MOV:
            if op & isa.BPF_X:
                use |= 1 << insn.src
        else:
            use |= 1 << insn.dst
            if op & isa.BPF_X:
                use |= 1 << insn.src
        defs |= 1 << insn.dst
    elif cls == isa.BPF_LDX:
        use |= 1 << insn.src
        defs |= 1 << insn.dst
    elif cls == isa.BPF_ST:
        use |= 1 << insn.dst
    elif cls == isa.BPF_STX:
        use |= (1 << insn.dst) | (1 << insn.src)
        if insn.is_atomic:
            if insn.imm & isa.BPF_FETCH or insn.imm == isa.ATOMIC_XCHG:
                defs |= 1 << insn.src
            if insn.imm == isa.ATOMIC_CMPXCHG:
                use |= 1 << 0
                defs |= 1 << 0
    elif cls in (isa.BPF_JMP, isa.BPF_JMP32):
        jop = op & isa.OP_MASK
        if insn.is_call:
            # Conservative: helper may read all argument registers.
            use |= 0b111110  # R1-R5
            defs |= 0b111111  # R0-R5 clobbered
        elif insn.is_exit:
            use |= 1 << 0
        elif jop != isa.BPF_JA:
            use |= 1 << insn.dst
            if op & isa.BPF_X:
                use |= 1 << insn.src
    return use, defs


def _liveness(insns: list[Insn], succ: list[list[int]]) -> list[int]:
    n = len(insns)
    gen = [0] * n
    kill = [0] * n
    for i, insn in enumerate(insns):
        gen[i], kill[i] = _uses_defs(insn)
    live_in = [0] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = 0
            for s in succ[i]:
                out |= live_in[s]
            new_in = gen[i] | (out & ~kill[i])
            if new_in != live_in[i]:
                live_in[i] = new_in
                changed = True
    # R10 (frame pointer) is always live: stack contents may be read
    # through it at any point and stack slots are compared separately.
    return [v | (1 << 10) for v in live_in]
