"""Control-flow graph over bytecode.

Used by the verifier for back-edge detection (the candidate
cancellation-point sites of §3.3, class C1) and for a register liveness
analysis that makes state pruning effective — without liveness, dead
registers would keep otherwise-equal states from matching, and path
exploration of real extensions would explode.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerificationError
from repro.ebpf import isa
from repro.ebpf.isa import Insn
from repro.ebpf.rewrite import jump_target_index


@dataclass
class Cfg:
    insns: list[Insn]
    succ: list[list[int]]
    pred: list[list[int]]
    #: (src, dst) pairs classified as back edges by DFS.
    back_edges: set[tuple[int, int]]
    #: live_in[i]: bitmask of registers possibly read at/after insn i.
    live_in: list[int]

    def is_back_edge(self, src: int, dst: int) -> bool:
        return (src, dst) in self.back_edges


def build_cfg(insns: list[Insn]) -> Cfg:
    n = len(insns)
    succ: list[list[int]] = [[] for _ in range(n)]
    pred: list[list[int]] = [[] for _ in range(n)]

    for i, insn in enumerate(insns):
        targets: list[int] = []
        if insn.is_exit:
            pass
        elif insn.is_jump:
            t = jump_target_index(insns, i)
            if t >= n:
                raise VerificationError("jump past program end", i)
            targets.append(t)
            if insn.is_cond_jump:
                targets.append(i + 1)
        else:
            targets.append(i + 1)
        for t in targets:
            if t >= n:
                raise VerificationError("fall-through past program end", i)
            succ[i].append(t)
            pred[t].append(i)

    back = _find_back_edges(succ)
    live = _liveness(insns, succ)
    return Cfg(insns, succ, pred, back, live)


def _find_back_edges(succ: list[list[int]]) -> set[tuple[int, int]]:
    """Iterative DFS edge classification from the entry node."""
    n = len(succ)
    WHITE, GREY, BLACK = 0, 1, 2
    color = [WHITE] * n
    back: set[tuple[int, int]] = set()
    if n == 0:
        return back
    stack: list[tuple[int, int]] = [(0, 0)]  # (node, next-successor index)
    color[0] = GREY
    while stack:
        node, si = stack[-1]
        if si < len(succ[node]):
            stack[-1] = (node, si + 1)
            nxt = succ[node][si]
            if color[nxt] == GREY:
                back.add((node, nxt))
            elif color[nxt] == WHITE:
                color[nxt] = GREY
                stack.append((nxt, 0))
        else:
            color[node] = BLACK
            stack.pop()
    return back


def _uses_defs(insn: Insn) -> tuple[int, int]:
    """(use bitmask, def bitmask) of registers for one instruction."""
    use = 0
    defs = 0
    op = insn.opcode
    cls = insn.cls
    if op in (isa.KFLEX_GUARD, isa.KFLEX_TRANSLATE):
        return (1 << insn.dst), (1 << insn.dst)
    if op == isa.KFLEX_CANCELPT:
        return 0, 0
    if insn.is_ld_imm64:
        return 0, (1 << insn.dst)
    if cls in (isa.BPF_ALU, isa.BPF_ALU64):
        aop = op & isa.OP_MASK
        if aop == isa.BPF_MOV:
            if op & isa.BPF_X:
                use |= 1 << insn.src
        else:
            use |= 1 << insn.dst
            if op & isa.BPF_X:
                use |= 1 << insn.src
        defs |= 1 << insn.dst
    elif cls == isa.BPF_LDX:
        use |= 1 << insn.src
        defs |= 1 << insn.dst
    elif cls == isa.BPF_ST:
        use |= 1 << insn.dst
    elif cls == isa.BPF_STX:
        use |= (1 << insn.dst) | (1 << insn.src)
        if insn.is_atomic:
            if insn.imm & isa.BPF_FETCH or insn.imm == isa.ATOMIC_XCHG:
                defs |= 1 << insn.src
            if insn.imm == isa.ATOMIC_CMPXCHG:
                use |= 1 << 0
                defs |= 1 << 0
    elif cls in (isa.BPF_JMP, isa.BPF_JMP32):
        jop = op & isa.OP_MASK
        if insn.is_call:
            # Conservative: helper may read all argument registers.
            use |= 0b111110  # R1-R5
            defs |= 0b111111  # R0-R5 clobbered
        elif insn.is_exit:
            use |= 1 << 0
        elif jop != isa.BPF_JA:
            use |= 1 << insn.dst
            if op & isa.BPF_X:
                use |= 1 << insn.src
    return use, defs


def _liveness(insns: list[Insn], succ: list[list[int]]) -> list[int]:
    n = len(insns)
    gen = [0] * n
    kill = [0] * n
    for i, insn in enumerate(insns):
        gen[i], kill[i] = _uses_defs(insn)
    live_in = [0] * n
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            out = 0
            for s in succ[i]:
                out |= live_in[s]
            new_in = gen[i] | (out & ~kill[i])
            if new_in != live_in[i]:
                live_in[i] = new_in
                changed = True
    # R10 (frame pointer) is always live: stack contents may be read
    # through it at any point and stack slots are compared separately.
    return [v | (1 << 10) for v in live_in]
