"""The verifier driver: symbolic execution, compliance checks, analysis.

This implements the split at the heart of KFlex (§3):

* **Kernel-owned memory** (context, stack, map values, packet data,
  sockets) is *verified*: any access that cannot be proven in-bounds and
  well-typed rejects the program, exactly as in eBPF.
* **Extension-owned memory** (the KFlex heap) is *checked at runtime*:
  accesses are never rejected; instead the verifier's range analysis
  decides, per access, whether the SFI guard can be elided (§3.2, §5.4).

On top of the per-path state the verifier computes everything Kie and
the runtime need (§3.3, §4.3):

* the set of loop back edges whose termination could not be established
  statically (C1 cancellation-point sites);
* per-cancellation-point *object tables* — where each acquired kernel
  resource lives (register or stack slot) and which destructor releases
  it — including the branch-merge corner case of §4.3, resolved by
  spilling conflicting resources to designated stack slots;
* the loop-convergence check of §3.1: kernel resources acquired within
  a loop iteration must be released by its end;
* translate-on-store sites for user-shared heaps (§3.4).

In ``mode="ebpf"`` the verifier behaves like upstream: unbounded loops,
multiple locks, scalar-based memory accesses and KFlex-only helpers are
all rejected.  This mode runs the BMC baseline and the compatibility
tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.errors import VerificationError
from repro.ebpf import isa
from repro.ebpf.isa import Insn, U64, sign_extend, to_s64
from repro.ebpf.program import Program, PSEUDO_MAP_FD, PSEUDO_HEAP_OFF
from repro.ebpf.helpers import DECLARATIONS, KFLEX_ONLY, Arg, Ret
from repro.ebpf.rewrite import jump_target_index
from repro.ebpf.verifier.tnum import Tnum
from repro.ebpf.verifier.cfg import build_cfg, compute_regions
from repro.ebpf.verifier.state import Ref, Slot, VerifierState, STACK_SIZE
from repro.ebpf.verifier.value import (
    KERNEL_POINTERS,
    RegState,
    RType,
    S64_MAX,
    S64_MIN,
    SCALAR_OPS,
    U64_MAX,
    truncate32,
)

#: Guard-page span (must match repro.kernel.vmalloc.GUARD_SIZE).
GUARD_SLACK = 1 << 15

#: Socket object size extensions may read (bpf_sock fields).
SOCK_READ_SIZE = 64


@dataclass
class CtxField:
    off: int
    size: int
    kind: str  # "scalar" | "packet_data" | "packet_end"
    name: str = ""


@dataclass
class CtxLayout:
    name: str
    size: int
    fields: dict[int, CtxField] = field(default_factory=dict)

    @staticmethod
    def xdp() -> "CtxLayout":
        return CtxLayout(
            "xdp_md",
            16,
            {
                0: CtxField(0, 8, "packet_data", "data"),
                8: CtxField(8, 8, "packet_end", "data_end"),
            },
        )

    @staticmethod
    def sk_skb() -> "CtxLayout":
        return CtxLayout(
            "sk_skb",
            24,
            {
                0: CtxField(0, 8, "packet_data", "data"),
                8: CtxField(8, 8, "packet_end", "data_end"),
                16: CtxField(16, 8, "scalar", "sk_cookie"),
            },
        )

    @staticmethod
    def bench(size: int = 64) -> "CtxLayout":
        """A flat scalar context for microbenchmark extensions: reads of
        any aligned field are plain scalars."""
        layout = CtxLayout("bench", size)
        for off in range(0, size, 8):
            layout.fields[off] = CtxField(off, 8, "scalar", f"arg{off // 8}")
        return layout


CTX_LAYOUTS = {
    "xdp": CtxLayout.xdp,
    "sk_skb": CtxLayout.sk_skb,
    "bench": CtxLayout.bench,
    "tracepoint": CtxLayout.bench,
    "lsm": CtxLayout.bench,
}


@dataclass
class VerifierConfig:
    mode: str = "kflex"  # "kflex" | "ebpf"
    #: Performance mode (§3.2/§4.2): loads are not sanitised.
    perf_mode: bool = False
    #: Allow storing kernel pointers into the extension heap.
    allow_ptr_leaks: bool = False
    #: Back-edge visits before scalar widening kicks in.  Below this,
    #: loops unroll (so constant-bound loops verify precisely and get
    #: no cancellation point).
    widen_threshold: int = 24
    #: Total instruction-visits budget (the kernel's 1M insn cap).
    insn_budget: int = 2_000_000
    #: Cached states kept per pruning point.
    max_states_per_insn: int = 64
    #: Instrument stores of heap pointers for user-space sharing (§3.4).
    translate_on_store: bool = False
    #: Guard elision via range analysis (§3.2/§5.4).  Disabled only by
    #: the ablation benchmark, to measure what the co-design buys.
    elision: bool = True
    #: Name of the verifier profile this config was resolved from
    #: (:mod:`repro.verify.profiles`), or "" for an ad-hoc config.  The
    #: name is part of the config (and thus of every ProgramCache key
    #: via :func:`repro.ebpf.pipeline.config_key`), so artifacts
    #: verified under different profiles can never collide even if the
    #: profiles happen to resolve to the same knob values.
    profile: str = ""


@dataclass
class HeapAccess:
    """Verdict for one heap-touching memory instruction."""

    insn_idx: int
    kind: str  # "load" | "store" | "atomic"
    base_reg: int
    #: "formation" — untrusted scalar used as a pointer (guard mandatory,
    #: excluded from Table 3 totals); "manipulation" — derived heap
    #: pointer whose bounds were not provable (guard emitted);
    #: "elided" — proven safe by range analysis (no guard).
    category: str
    guard: bool


@dataclass
class ObjTableEntry:
    loc_kind: str  # "reg" | "stack"
    loc: int  # register number or stack offset
    res_kind: str  # "sock" | "lock"
    destructor: int  # helper id
    site: int  # acquiring call insn

    def key(self) -> tuple:
        return (self.loc_kind, self.loc, self.res_kind)


@dataclass
class Analysis:
    """Everything Kie and the runtime consume."""

    accesses: dict[int, HeapAccess] = field(default_factory=dict)
    #: Back-edge jump insns of loops not proven terminating (C1 sites).
    cp_back_edges: set[int] = field(default_factory=set)
    #: insn idx (heap access or back edge) -> object table.
    object_tables: dict[int, tuple[ObjTableEntry, ...]] = field(default_factory=dict)
    #: Store insns needing translate-on-store instrumentation.
    translate_stores: set[int] = field(default_factory=set)
    #: Deepest stack byte used (negative offset magnitude).
    max_stack: int = 0
    #: Acquiring call insn -> designated spill slot offset.
    spill_slots: dict[int, int] = field(default_factory=dict)
    #: Releasing call insn -> spill slot offsets to clear.
    release_clears: dict[int, list[int]] = field(default_factory=dict)
    #: Verification effort, mirroring the kernel's verifier stats.
    insns_processed: int = 0
    #: Whether any loop required widening (i.e. is not statically bounded).
    has_unbounded_loops: bool = False

    # -- Table 3 accounting (§5.4) ------------------------------------

    @property
    def guards_total_candidates(self) -> int:
        """Guard sites on pointer manipulation (formation excluded)."""
        return sum(
            1 for a in self.accesses.values() if a.category in ("elided", "manipulation")
        )

    @property
    def guards_elided(self) -> int:
        return sum(1 for a in self.accesses.values() if a.category == "elided")

    @property
    def guards_emitted(self) -> int:
        return sum(1 for a in self.accesses.values() if a.guard)


@dataclass
class _CpRecord:
    """Incremental object-table merge state for one Cp (see §4.3)."""

    entries: dict[tuple, ObjTableEntry] = field(default_factory=dict)
    n_paths: int = 0
    present: dict[tuple, int] = field(default_factory=dict)
    zero: dict[tuple, int] = field(default_factory=dict)
    conflict_sites: set[int] = field(default_factory=set)


@dataclass
class RegionPartial:
    """Everything one region's exploration produced.

    The unit of work the verification service schedules, caches and
    merges (:mod:`repro.verify`).  Instruction-indexed payloads
    (``analysis.accesses``, ``cp_records``, ``release_clears``) are
    disjoint across regions by construction — every index is explored
    inside exactly one region — so :func:`merge_region_partials` is a
    deterministic reassembly, not a join.
    """

    ordinal: int
    span: tuple[int, int]
    #: Scratch Analysis holding the region-local accesses, back edges,
    #: translate-store sites, max_stack and unbounded-loop flag.
    analysis: Analysis = field(default_factory=Analysis)
    cp_records: dict[int, _CpRecord] = field(default_factory=dict)
    release_clears: dict[int, set[int]] = field(default_factory=dict)
    spill_conflicts: set[int] = field(default_factory=set)
    #: States that crossed into the next region's start: (state, via).
    out_entries: list = field(default_factory=list)
    processed: int = 0
    pkt_id_out: int = 0
    #: Largest within-region processed count observed at a worklist pop
    #: — replays the instruction-budget check exactly when the partial
    #: is reused with a different amount of budget already consumed.
    budget_high_water: int = 0


def merge_region_partials(
    partials: list[RegionPartial], spill_sites: dict[int, int]
) -> tuple[Analysis, set[int]]:
    """Deterministically reassemble per-region partials (in ordinal
    order) into one :class:`Analysis`, exactly as the tail of the old
    monolithic exploration did.  Returns ``(analysis, new_spills)``."""
    analysis = Analysis()
    cp_records: dict[int, _CpRecord] = {}
    release_clears: dict[int, set[int]] = {}
    spill_conflicts: set[int] = set()
    processed = 0
    for part in partials:
        pa = part.analysis
        analysis.accesses.update(pa.accesses)
        analysis.cp_back_edges |= pa.cp_back_edges
        analysis.translate_stores |= pa.translate_stores
        analysis.max_stack = max(analysis.max_stack, pa.max_stack)
        analysis.has_unbounded_loops |= pa.has_unbounded_loops
        cp_records.update(part.cp_records)
        for site, offs in part.release_clears.items():
            release_clears.setdefault(site, set()).update(offs)
        spill_conflicts |= part.spill_conflicts
        processed += part.processed
    analysis.insns_processed = processed
    analysis.max_stack = max(
        analysis.max_stack,
        max((-off for off in spill_sites.values()), default=0),
    )
    # Assemble object tables; collect conflicts.
    for cp_idx, rec in cp_records.items():
        for key, entry in rec.entries.items():
            covered = rec.present.get(key, 0) + rec.zero.get(key, 0)
            if covered < rec.n_paths:
                rec.conflict_sites.add(entry.site)
        spill_conflicts |= rec.conflict_sites
        analysis.object_tables[cp_idx] = tuple(rec.entries.values())
    analysis.release_clears = {
        site: sorted(offs) for site, offs in release_clears.items()
    }
    analysis.spill_slots = dict(spill_sites)
    new_spills = spill_conflicts - set(spill_sites)
    return analysis, new_spills


class Verifier:
    def __init__(
        self,
        program: Program,
        config: VerifierConfig | None = None,
        *,
        heap_size: int | None = None,
    ):
        self.prog = program
        self.cfg_opts = config or VerifierConfig()
        self.heap_size = heap_size if heap_size is not None else program.heap_size
        if self.cfg_opts.mode == "ebpf" and self.heap_size:
            raise VerificationError("eBPF mode does not support extension heaps")
        self.ctx_layout = CTX_LAYOUTS[program.hook]()
        self._id_counter = 0
        self._pkt_id = 0
        #: Optional per-region result memo (duck-typed: ``key_for`` /
        #: ``get`` / ``put``) enabling differential re-verification —
        #: see :class:`repro.verify.differential.RegionMemo`.
        self.region_memo = None
        #: Optional callback ``(ordinal, RegionPartial) -> None`` fired
        #: after each region completes (worker progress streaming and
        #: chaos injection hang off this).
        self.region_hook = None
        self.regions_total = 0
        self.regions_reused = 0
        #: Wall-clock split of :meth:`verify`, consumed by the pipeline
        #: sub-stage stats ("verify:explore" / "verify:merge").
        self.timings = {"explore_ns": 0.0, "merge_ns": 0.0}

    # ------------------------------------------------------------------
    # public entry
    # ------------------------------------------------------------------

    def verify(self) -> Analysis:
        analysis, spill_sites = self._explore(spill_sites={})
        if spill_sites:
            # §4.3: conflicting object-table locations — re-verify with
            # the conflicting acquisition sites spilled to designated
            # stack slots.
            slots = self._assign_spill_slots(analysis.max_stack, spill_sites)
            analysis, leftover = self._explore(spill_sites=slots)
            if leftover:
                raise VerificationError(
                    "object tables still conflict after spilling; "
                    "ambiguous resource flow"
                )
            analysis.spill_slots = slots
        return analysis

    def _assign_spill_slots(
        self, max_stack: int, sites: set[int]
    ) -> dict[int, int]:
        slots: dict[int, int] = {}
        off = -((max_stack + 7) // 8 * 8)
        for site in sorted(sites):
            off -= 8
            if off < -STACK_SIZE:
                raise VerificationError(
                    "no stack room for cancellation spill slots"
                )
            slots[site] = off
        return slots

    # ------------------------------------------------------------------
    # exploration
    # ------------------------------------------------------------------

    def _fresh_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    def _explore(self, spill_sites: dict[int, int]):
        """Explore the program region by region (see
        :func:`~repro.ebpf.verifier.cfg.compute_regions`).

        Regions form a chain: states leaving region ``k`` arrive
        exactly at region ``k + 1``'s start, so exploration walks the
        chain forward, threading the entry states, the packet id and
        the budget through.  Each region runs :meth:`_explore_region`
        — the *same* code whether invoked here serially, inside a
        verification-service worker, or replayed differentially from a
        region memo — so all three schedules produce bit-identical
        analyses by construction.
        """
        insns = self.prog.insns
        if not insns:
            raise VerificationError("empty program")
        if not insns[-1].is_exit and not insns[-1].is_jump:
            raise VerificationError("program does not end with exit/jump", len(insns) - 1)
        cfg = build_cfg(insns)
        opts = self.cfg_opts
        regions = compute_regions(cfg)
        # Pruning points: join points and jump targets.
        prune_points = {
            i for i in range(len(insns)) if len(cfg.pred[i]) > 1
        } | {dst for (_, dst) in cfg.back_edges}

        init = VerifierState()
        init.regs[1] = RegState(RType.PTR_TO_CTX, Tnum.const(0), 0, 0, 0, 0)
        init.regs[10] = RegState(RType.PTR_TO_STACK, Tnum.const(0), 0, 0, 0, 0)
        for site, off in spill_sites.items():
            init.stack[off] = Slot("spill", RegState.const(0))

        t0 = time.perf_counter_ns()
        entries: list[tuple[VerifierState, int | None]] = [(init, None)]
        partials: list[RegionPartial] = []
        processed = 0
        pkt_id = 0
        memo = self.region_memo
        for region in regions:
            self.regions_total += 1
            part = None
            key = None
            if memo is not None:
                key = memo.key_for(self, region, entries, pkt_id, spill_sites)
                part = memo.get(key)
            if part is not None:
                self.regions_reused += 1
            else:
                part = self._explore_region(
                    cfg,
                    region,
                    entries,
                    spill_sites,
                    prune_points=prune_points,
                    pkt_id_in=pkt_id,
                    processed_start=processed,
                )
                if memo is not None:
                    memo.put(key, part)
            # Replay the per-pop budget check for reused partials (a
            # no-op for freshly explored ones, which already raised).
            if processed + part.budget_high_water > opts.insn_budget:
                raise VerificationError(
                    f"verification budget exceeded ({opts.insn_budget} insns)"
                )
            partials.append(part)
            processed += part.processed
            pkt_id = part.pkt_id_out
            entries = part.out_entries
            if self.region_hook is not None:
                self.region_hook(region.ordinal, part)
        self.timings["explore_ns"] += time.perf_counter_ns() - t0

        t1 = time.perf_counter_ns()
        result = merge_region_partials(partials, spill_sites)
        self.timings["merge_ns"] += time.perf_counter_ns() - t1
        return result

    def _explore_region(
        self,
        cfg,
        region,
        entries: list,
        spill_sites: dict[int, int],
        *,
        prune_points: set[int],
        pkt_id_in: int,
        processed_start: int,
    ) -> RegionPartial:
        """Path-sensitive exploration of one region, from its entry
        states to its out-edge states.  Deterministic given the same
        inputs: the value-id counter is rebased to the region's ordinal
        (``ordinal << 32``), the packet id is threaded in explicitly,
        and entry states are cloned before use — so the same region
        explored by any scheduler yields an identical partial."""
        insns = cfg.insns
        opts = self.cfg_opts
        start, end = region.start, region.end
        # Region-scoped id namespace: ids allocated while exploring
        # region k live in [k << 32, (k+1) << 32), disjoint from both
        # earlier regions' ids (carried in by entry states) and later
        # regions'.  No id ever reaches the merged Analysis.
        self._id_counter = region.ordinal << 32
        self._pkt_id = pkt_id_in

        part = RegionPartial(ordinal=region.ordinal, span=(start, end))
        analysis = part.analysis
        cp_records = part.cp_records
        spill_conflicts = part.spill_conflicts
        release_clears = part.release_clears
        out_entries = part.out_entries
        seen: dict[int, list[VerifierState]] = {}
        visits: dict[int, int] = {}
        header_ref_sig: dict[int, tuple] = {}

        # Worklist of (insn idx, state, came_via_back_edge_from),
        # seeded so entry states are popped in arrival order.  Entry
        # states are cloned: a reused partial's out states must stay
        # pristine for the next reuse.
        stack: list[tuple[int, VerifierState, int | None]] = [
            (start, st.clone(), via) for st, via in reversed(entries)
        ]
        processed = 0

        while stack:
            idx, st, via = stack.pop()
            if processed > part.budget_high_water:
                part.budget_high_water = processed
            if processed_start + processed > opts.insn_budget:
                raise VerificationError(
                    f"verification budget exceeded ({opts.insn_budget} insns)"
                )

            # -- pruning / widening at join points ----------------------
            if idx in prune_points:
                sig = st.refs_signature()
                if idx not in header_ref_sig:
                    header_ref_sig[idx] = sig
                is_back = via is not None and cfg.is_back_edge(via, idx)
                if is_back and sig != header_ref_sig[idx]:
                    raise VerificationError(
                        "kernel resources acquired in loop do not converge "
                        f"(held at loop head: {header_ref_sig[idx]}, "
                        f"after iteration: {sig})",
                        idx,
                    )
                cached_list = seen.setdefault(idx, [])
                live = cfg.live_in[idx]
                pruned = False
                for cached in cached_list:
                    if st.subsumed_by(cached, live):
                        pruned = True
                        break
                if pruned:
                    if is_back:
                        if opts.mode == "ebpf":
                            # The loop state repeats with no progress:
                            # termination cannot be established, and
                            # eBPF rejects such loops (§2.2).
                            raise VerificationError(
                                "back-edge with repeating state (eBPF "
                                "rejects loops without computable bounds)",
                                via,
                            )
                        # KFlex: the loop is not statically terminating —
                        # its back edge becomes a cancellation point (C1).
                        self._mark_unbounded(analysis, via)
                    continue
                visits[idx] = visits.get(idx, 0) + 1
                if (
                    is_back
                    and opts.mode == "kflex"
                    and visits[idx] >= opts.widen_threshold
                ):
                    # Counting loops advance the state forever; widen to
                    # reach the fixpoint instead of unrolling.  (eBPF
                    # mode keeps unrolling until the insn budget trips,
                    # mirroring the kernel's "too complex" rejection.)
                    st = st.widen_against(cached_list[-1], live)
                    self._mark_unbounded(analysis, via)
                if len(cached_list) >= opts.max_states_per_insn:
                    # Evict the oldest cached state: never starve the
                    # cache, or unmatched loop states would re-explore
                    # indefinitely.
                    cached_list.pop(0)
                cached_list.append(st.clone())

            # -- linear execution until branch/exit ---------------------
            while True:
                processed += 1
                insn = insns[idx]
                st.processed += 1

                # Cancellation-point bookkeeping (§3.3): object tables
                # are recorded at heap accesses (C2) and at loop back
                # edges (C1) with the pre-instruction state.
                if insn.is_mem_access:
                    if self._is_heap_access_candidate(insn, st):
                        self._record_cp(cp_records, idx, st, spill_sites, spill_conflicts)
                elif insn.is_jump and any(
                    (idx, t) in cfg.back_edges for t in cfg.succ[idx]
                ):
                    self._record_cp(cp_records, idx, st, spill_sites, spill_conflicts)
                elif insn.is_call:
                    decl = DECLARATIONS.get(insn.imm)
                    if decl is not None:
                        # Every helper call is a cancellation-prone
                        # site: a spinning helper may be cancelled while
                        # it waits (§4.4), and any helper may report a
                        # fault that cancels the extension — so each
                        # call needs an object table of the resources
                        # held *before* it runs.
                        self._record_cp(
                            cp_records, idx, st, spill_sites, spill_conflicts
                        )
                elif insn.opcode in (
                    isa.KFLEX_GUARD,
                    isa.KFLEX_CANCELPT,
                    isa.KFLEX_TRANSLATE,
                ):
                    raise VerificationError(
                        "KFlex pseudo-instruction in input program", idx
                    )

                nxt = self._step(
                    insns, idx, st, analysis, spill_sites, release_clears
                )
                if nxt is None:
                    break  # exit reached or both branch arms pushed
                new_idx, branch_states = nxt
                if branch_states is not None:
                    # Conditional: push both arms through the prune
                    # logic; arms crossing the region boundary become
                    # entry states of the next region instead.
                    for arm_idx, arm_state in branch_states:
                        if arm_idx == end:
                            out_entries.append((arm_state, idx))
                        else:
                            stack.append((arm_idx, arm_state, idx))
                    break
                if new_idx == end:
                    out_entries.append((st, idx))
                    break
                if new_idx in prune_points or cfg.is_back_edge(idx, new_idx):
                    stack.append((new_idx, st, idx))
                    break
                idx = new_idx

        part.processed = processed
        part.pkt_id_out = self._pkt_id
        return part

    def _mark_unbounded(self, analysis: Analysis, back_edge_insn: int) -> None:
        analysis.cp_back_edges.add(back_edge_insn)
        analysis.has_unbounded_loops = True

    # ------------------------------------------------------------------
    # single-instruction transfer
    # ------------------------------------------------------------------

    def _step(
        self,
        insns,
        idx,
        st: VerifierState,
        analysis: Analysis,
        spill_sites,
        release_clears,
    ):
        """Returns None (path done), or (next_idx, None) for fall-through,
        or (_, [(idx, state), ...]) when both branch arms were produced."""
        insn = insns[idx]
        cls = insn.cls
        op = insn.opcode

        if cls in (isa.BPF_ALU, isa.BPF_ALU64):
            self._do_alu(insn, st, idx)
            return idx + 1, None

        if insn.is_ld_imm64:
            self._do_ld_imm64(insn, st, idx)
            return idx + 1, None

        if cls == isa.BPF_LDX:
            self._do_load(insn, st, idx, analysis)
            return idx + 1, None

        if cls in (isa.BPF_ST, isa.BPF_STX):
            self._do_store(insn, st, idx, analysis)
            return idx + 1, None

        if cls in (isa.BPF_JMP, isa.BPF_JMP32):
            if insn.is_exit:
                self._check_exit(st, idx)
                return None
            if insn.is_call:
                self._do_call(insn, st, idx, spill_sites, release_clears)
                return idx + 1, None
            jop = op & isa.OP_MASK
            if jop == isa.BPF_JA:
                return jump_target_index(insns, idx), None
            # Conditional branch: refine both arms.
            taken_idx = jump_target_index(insns, idx)
            arms = self._branch(insn, st, idx, cls == isa.BPF_JMP32)
            out = []
            for taken, arm_state in arms:
                out.append((taken_idx if taken else idx + 1, arm_state))
            return idx, out

        raise VerificationError(f"unknown instruction class {cls:#x}", idx)

    # -- ALU ------------------------------------------------------------

    _ALU_NAMES = {
        isa.BPF_ADD: "add",
        isa.BPF_SUB: "sub",
        isa.BPF_MUL: "mul",
        isa.BPF_DIV: "div",
        isa.BPF_MOD: "mod",
        isa.BPF_OR: "or",
        isa.BPF_AND: "and",
        isa.BPF_XOR: "xor",
        isa.BPF_LSH: "lsh",
        isa.BPF_RSH: "rsh",
        isa.BPF_ARSH: "arsh",
    }

    def _do_alu(self, insn: Insn, st: VerifierState, idx: int) -> None:
        is64 = insn.cls == isa.BPF_ALU64
        op = insn.opcode & isa.OP_MASK
        dst = st.regs[insn.dst]

        if op == isa.BPF_MOV:
            if insn.opcode & isa.BPF_X:
                src = st.regs[insn.src]
                if src.type == RType.NOT_INIT:
                    raise VerificationError(f"read of uninitialised r{insn.src}", idx)
                st.regs[insn.dst] = src if is64 else truncate32(_as_scalar(src, self, idx))
            else:
                v = sign_extend(insn.imm, 32) & U64 if is64 else insn.imm & 0xFFFFFFFF
                st.regs[insn.dst] = RegState.const(v)
            return

        if op == isa.BPF_END:
            if not dst.is_scalar:
                raise VerificationError("byteswap of pointer", idx)
            st.regs[insn.dst] = RegState.unknown() if not dst.is_const else RegState.const(
                _bswap(dst.const_value, insn.imm, bool(insn.opcode & isa.BPF_X))
            )
            return

        if op == isa.BPF_NEG:
            st.regs[insn.dst] = self._scalar_op("sub", RegState.const(0),
                                                _as_scalar(dst, self, idx), is64)
            return

        name = self._ALU_NAMES.get(op)
        if name is None:
            raise VerificationError(f"unknown ALU op {op:#x}", idx)

        if insn.opcode & isa.BPF_X:
            src = st.regs[insn.src]
            if src.type == RType.NOT_INIT:
                raise VerificationError(f"read of uninitialised r{insn.src}", idx)
        else:
            v = sign_extend(insn.imm, 32) & U64 if is64 else insn.imm & 0xFFFFFFFF
            src = RegState.const(v)
        if dst.type == RType.NOT_INIT:
            raise VerificationError(f"read of uninitialised r{insn.dst}", idx)

        # Pointer arithmetic.
        if dst.is_pointer or src.is_pointer:
            if not is64:
                raise VerificationError("32-bit arithmetic on pointer", idx)
            st.regs[insn.dst] = self._pointer_alu(name, dst, src, idx)
            return

        st.regs[insn.dst] = self._scalar_op(name, dst, src, is64)

    def _scalar_op(self, name: str, a: RegState, b: RegState, is64: bool) -> RegState:
        if not is64:
            a, b = truncate32(a), truncate32(b)
        res = SCALAR_OPS[name](a, b)
        return res if is64 else truncate32(res)

    def _pointer_alu(self, name: str, dst: RegState, src: RegState, idx: int) -> RegState:
        kflex = self.cfg_opts.mode == "kflex"
        # ptr - ptr of compatible heap pointers gives a scalar.
        if dst.is_pointer and src.is_pointer:
            if name == "sub" and dst.type == src.type == RType.PTR_TO_HEAP:
                return RegState.unknown(self._fresh_id())
            raise VerificationError(
                f"arithmetic '{name}' between two pointers", idx
            )
        ptr, scalar = (dst, src) if dst.is_pointer else (src, dst)
        if name not in ("add", "sub") or (name == "sub" and src.is_pointer):
            # e.g. AND on a pointer, or scalar - ptr.
            if ptr.type == RType.PTR_TO_HEAP and kflex:
                # Extension-owned pointer degraded to an untrusted
                # scalar; any later dereference will be guarded.
                a = RegState.unknown(self._fresh_id())
                b = _as_plain_scalar(scalar)
                return self._scalar_op(name, a if dst.is_pointer else b,
                                       b if dst.is_pointer else a, True)
            raise VerificationError(
                f"invalid arithmetic '{name}' on pointer type {ptr.type.name}", idx
            )

        if ptr.type in (RType.PTR_TO_CTX, RType.PTR_TO_STACK, RType.CONST_PTR_TO_MAP,
                        RType.PTR_TO_SOCK, RType.PTR_TO_PACKET_END):
            if not scalar.is_const:
                raise VerificationError(
                    f"variable offset on {ptr.type.name} not allowed", idx
                )
            delta = to_s64(scalar.const_value)
            if name == "sub":
                delta = -delta
            if not dst.is_pointer and name == "sub":
                raise VerificationError("scalar - pointer", idx)
            return replace(ptr, off=ptr.off + delta)

        if ptr.maybe_null and ptr.type in (RType.PTR_TO_MAP_VALUE,):
            raise VerificationError(
                "arithmetic on possibly-NULL map value pointer", idx
            )

        # Variable-offset pointers (map value, packet, heap).
        if name == "sub" and not dst.is_pointer:
            raise VerificationError("scalar - pointer", idx)
        if scalar.is_const:
            delta = to_s64(scalar.const_value)
            if name == "sub":
                delta = -delta
            return replace(ptr, off=ptr.off + delta)
        # Fold variable part into the pointer's var_off/bounds.
        s = scalar
        if name == "sub":
            # Conservative: subtracting an unknown leaves bounds unknown.
            if s.umax > S64_MAX:
                return self._degrade_heap(ptr, idx)
            s = replace(
                s,
                var_off=Tnum.unknown(),
                umin=0,
                umax=U64_MAX,
                smin=-s.smax if s.smax < S64_MAX else S64_MIN,
                smax=-s.smin if s.smin > S64_MIN else S64_MAX,
            )
            new_var = ptr.var_off.sub(scalar.var_off)
        else:
            new_var = ptr.var_off.add(s.var_off)
        if name == "add":
            umin = ptr.umin + s.umin
            umax = ptr.umax + s.umax
            if umax > U64_MAX:
                return self._degrade_heap(ptr, idx)
        else:
            umin, umax = 0, U64_MAX
            if ptr.umin >= scalar.umax:
                umin, umax = ptr.umin - scalar.umax, ptr.umax - scalar.umin
        return replace(
            ptr, var_off=new_var, umin=umin, umax=umax, smin=S64_MIN, smax=S64_MAX
        )

    def _degrade_heap(self, ptr: RegState, idx: int) -> RegState:
        if ptr.type == RType.PTR_TO_HEAP and self.cfg_opts.mode == "kflex":
            return replace(RegState.unknown(self._fresh_id()), derived=True)
        raise VerificationError(
            f"pointer arithmetic on {ptr.type.name} escapes provable bounds", idx
        )

    # -- LD_IMM64 ---------------------------------------------------------

    def _do_ld_imm64(self, insn: Insn, st: VerifierState, idx: int) -> None:
        if insn.src == PSEUDO_MAP_FD:
            m = self.prog.maps.get(insn.imm64)
            if m is None:
                raise VerificationError(f"unknown map fd {insn.imm64}", idx)
            st.regs[insn.dst] = RegState(
                RType.CONST_PTR_TO_MAP, Tnum.const(0), 0, 0, 0, 0, map=m
            )
        elif insn.src == PSEUDO_HEAP_OFF:
            if self.heap_size is None:
                raise VerificationError("heap constant without declared heap", idx)
            off = insn.imm64 or 0
            if off >= self.heap_size:
                raise VerificationError(
                    f"heap constant offset {off:#x} beyond heap size", idx
                )
            st.regs[insn.dst] = RegState(
                RType.PTR_TO_HEAP,
                Tnum.const(0),
                0,
                0,
                0,
                0,
                off=off,
                anchor="base",
                id=self._fresh_id(),
            )
        else:
            st.regs[insn.dst] = RegState.const(insn.imm64 or 0)

    # -- memory ------------------------------------------------------------

    def _is_heap_access_candidate(self, insn: Insn, st: VerifierState) -> bool:
        base_reg = insn.src if insn.cls == isa.BPF_LDX else insn.dst
        base = st.regs[base_reg]
        return base.type == RType.PTR_TO_HEAP or (
            base.is_scalar and self.heap_size is not None
        )

    def _do_load(self, insn: Insn, st, idx: int, analysis: Analysis) -> None:
        size = isa.size_bytes(insn.opcode)
        base = st.regs[insn.src]
        off = insn.off
        if base.type == RType.NOT_INIT:
            raise VerificationError(f"load via uninitialised r{insn.src}", idx)

        if base.type == RType.PTR_TO_STACK:
            val, err = st.stack_read(base.off + off, size)
            if err:
                raise VerificationError(err, idx)
            analysis.max_stack = max(analysis.max_stack, -(base.off + off))
            st.regs[insn.dst] = val
            return

        if base.type == RType.PTR_TO_CTX:
            st.regs[insn.dst] = self._ctx_load(base.off + off, size, idx)
            return

        if base.type == RType.PTR_TO_MAP_VALUE:
            self._check_map_value_access(base, off, size, idx)
            st.regs[insn.dst] = RegState.unknown(self._fresh_id())
            return

        if base.type == RType.PTR_TO_PACKET:
            self._check_packet_access(base, off, size, idx)
            st.regs[insn.dst] = RegState.unknown(self._fresh_id())
            return

        if base.type == RType.PTR_TO_SOCK:
            if base.maybe_null:
                raise VerificationError("access to possibly-NULL socket", idx)
            if not 0 <= base.off + off <= SOCK_READ_SIZE - size:
                raise VerificationError("socket field access out of range", idx)
            st.regs[insn.dst] = RegState.unknown(self._fresh_id())
            return

        if base.type == RType.PTR_TO_HEAP or base.is_scalar:
            self._heap_access(insn, st, idx, analysis, "load", insn.src)
            st.regs[insn.dst] = RegState.unknown(self._fresh_id())
            return

        raise VerificationError(
            f"load via non-dereferenceable type {base.type.name}", idx
        )

    def _do_store(self, insn: Insn, st, idx: int, analysis: Analysis) -> None:
        size = isa.size_bytes(insn.opcode)
        base = st.regs[insn.dst]
        off = insn.off
        is_atomic = insn.is_atomic
        if base.type == RType.NOT_INIT:
            raise VerificationError(f"store via uninitialised r{insn.dst}", idx)

        if insn.cls == isa.BPF_STX:
            src = st.regs[insn.src]
            if src.type == RType.NOT_INIT:
                raise VerificationError(f"store of uninitialised r{insn.src}", idx)
        else:
            src = RegState.const(insn.imm & U64)

        if base.type == RType.PTR_TO_STACK:
            if is_atomic:
                # Read-modify-write: the slot must already be initialised.
                _, err = st.stack_read(base.off + off, size)
                if err:
                    raise VerificationError(err, idx)
            err = st.stack_write(base.off + off, size, RegState.unknown()
                                 if is_atomic else src)
            if err:
                raise VerificationError(err, idx)
            analysis.max_stack = max(analysis.max_stack, -(base.off + off))
            if is_atomic:
                self._atomic_result(insn, st)
            return

        if base.type == RType.PTR_TO_MAP_VALUE:
            self._check_map_value_access(base, off, size, idx)
            if src.type in KERNEL_POINTERS and not self.cfg_opts.allow_ptr_leaks:
                raise VerificationError("leaking kernel pointer into map value", idx)
            if is_atomic:
                self._atomic_result(insn, st)
            return

        if base.type == RType.PTR_TO_PACKET:
            if is_atomic:
                raise VerificationError("atomic op on packet data", idx)
            self._check_packet_access(base, off, size, idx)
            return

        if base.type == RType.PTR_TO_CTX:
            raise VerificationError("store to context is not allowed", idx)

        if base.type == RType.PTR_TO_HEAP or base.is_scalar:
            if src.type in KERNEL_POINTERS and not self.cfg_opts.allow_ptr_leaks:
                raise VerificationError(
                    "leaking kernel pointer into extension heap", idx
                )
            self._heap_access(
                insn, st, idx, analysis, "atomic" if is_atomic else "store", insn.dst
            )
            if (
                insn.cls == isa.BPF_STX
                and not is_atomic
                and src.type == RType.PTR_TO_HEAP
                and self.cfg_opts.translate_on_store
            ):
                # §3.4: the stored pointer is rewritten to the user-space
                # mapping; the register is mutated by the translation and
                # becomes an untrusted scalar afterwards.
                analysis.translate_stores.add(idx)
                st.regs[insn.src] = RegState.unknown(self._fresh_id())
            if is_atomic:
                self._atomic_result(insn, st)
            return

        raise VerificationError(
            f"store via non-dereferenceable type {base.type.name}", idx
        )

    def _atomic_result(self, insn: Insn, st) -> None:
        if insn.imm & isa.BPF_FETCH or insn.imm == isa.ATOMIC_XCHG:
            st.regs[insn.src] = RegState.unknown(self._fresh_id())
        if insn.imm == isa.ATOMIC_CMPXCHG:
            st.regs[0] = RegState.unknown(self._fresh_id())

    def _ctx_load(self, off: int, size: int, idx: int) -> RegState:
        fld = self.ctx_layout.fields.get(off)
        if fld is None or fld.size != size:
            raise VerificationError(
                f"invalid {self.ctx_layout.name} context read at offset {off}", idx
            )
        if fld.kind == "scalar":
            return RegState.unknown(self._fresh_id())
        if self._pkt_id == 0:
            self._pkt_id = self._fresh_id()
        if fld.kind == "packet_data":
            return RegState(
                RType.PTR_TO_PACKET, Tnum.const(0), 0, 0, 0, 0, id=self._pkt_id
            )
        return RegState(
            RType.PTR_TO_PACKET_END, Tnum.const(0), 0, 0, 0, 0, id=self._pkt_id
        )

    def _check_map_value_access(self, base: RegState, off: int, size: int, idx: int):
        if base.maybe_null:
            raise VerificationError("access to possibly-NULL map value", idx)
        lo = base.off + base.umin + off
        hi = base.off + base.umax + off + size
        if lo < 0 or hi > base.map.value_size:
            raise VerificationError(
                f"map value access [{lo}, {hi}) outside [0, {base.map.value_size})",
                idx,
            )

    def _check_packet_access(self, base: RegState, off: int, size: int, idx: int):
        lo = base.off + base.umin + off
        hi = base.off + base.umax + off + size
        if lo < 0 or hi > base.pkt_range:
            raise VerificationError(
                f"packet access [{lo}, {hi}) beyond verified range "
                f"{base.pkt_range} (compare against data_end first)",
                idx,
            )

    # -- the KFlex split: heap accesses are guarded, not rejected ---------

    def _heap_access(
        self, insn: Insn, st, idx: int, analysis: Analysis, kind: str, base_reg: int
    ) -> None:
        if self.heap_size is None or self.cfg_opts.mode == "ebpf":
            raise VerificationError(
                "memory access via scalar/heap pointer (eBPF rejects; "
                "declare a KFlex heap)",
                idx,
            )
        base = st.regs[base_reg]
        size = isa.size_bytes(insn.opcode)
        off = insn.off

        if base.is_scalar:
            # An untrusted value used as a pointer.  The guard is
            # mandatory; for Table 3 accounting it is "manipulation" if
            # the value descends from heap-pointer arithmetic whose
            # bounds escaped the analysis, else "formation" (§5.4
            # excludes formations from totals).
            category = "manipulation" if base.derived else "formation"
            guard = True
        else:
            span = self.heap_size if base.anchor == "base" else base.mem_size
            lo = base.off + base.umin + off
            hi = base.off + base.umax + off + size
            safe = (
                self.cfg_opts.elision
                and not base.maybe_null
                and base.umax <= U64_MAX  # bounds meaningful
                and lo >= -GUARD_SLACK
                and hi <= span + GUARD_SLACK
            )
            if safe:
                category, guard = "elided", False
            else:
                category, guard = "manipulation", True

        if guard and kind == "load" and self.cfg_opts.perf_mode:
            # Performance mode: reads are not sanitised (§4.2).  The
            # register is NOT sanitised either, so later writes through
            # it still get their guard.
            self._merge_access(analysis, idx, kind, base_reg, category, False)
            return

        self._merge_access(analysis, idx, kind, base_reg, category, guard)
        if guard:
            # Post-guard semantics: the register now provably points into
            # the heap (offset in [0, heap_size)).  Sanitised pointers
            # carry no value id: they are anonymous heap addresses, and
            # fresh ids here would make loop states structurally unequal
            # (distinct alias patterns across spill slots), defeating
            # pruning in multi-level structures.
            st.regs[base_reg] = RegState(
                RType.PTR_TO_HEAP,
                Tnum.range(0, self.heap_size - 1),
                0,
                min(self.heap_size - 1, S64_MAX),
                0,
                self.heap_size - 1,
                off=0,
                anchor="base",
            )

    _CATEGORY_RANK = {"elided": 0, "manipulation": 1, "formation": 2}

    def _merge_access(
        self, analysis: Analysis, idx: int, kind, base_reg, category, guard
    ) -> None:
        """Merge an access verdict across paths: a guard required on any
        path must be emitted, and the recorded category is the worst."""
        old = analysis.accesses.get(idx)
        if old is not None:
            guard = guard or old.guard
            if self._CATEGORY_RANK[old.category] > self._CATEGORY_RANK[category]:
                category = old.category
        analysis.accesses[idx] = HeapAccess(idx, kind, base_reg, category, guard)

    # -- calls --------------------------------------------------------------

    def _do_call(self, insn, st, idx, spill_sites, release_clears) -> None:
        hid = insn.imm
        decl = DECLARATIONS.get(hid)
        if decl is None:
            raise VerificationError(f"call to unknown helper {hid}", idx)
        if self.cfg_opts.mode == "ebpf" and hid in KFLEX_ONLY:
            raise VerificationError(
                f"helper {decl.name} is not available in eBPF mode", idx
            )
        if decl.may_sleep and not self.prog.sleepable:
            raise VerificationError(
                f"helper {decl.name} may sleep; only sleepable programs "
                "may call it",
                idx,
            )

        cur_map = None
        mem_reg: RegState | None = None
        args: list[RegState] = []
        for i, atype in enumerate(decl.args):
            reg = st.regs[1 + i]
            args.append(reg)
            if reg.type == RType.NOT_INIT:
                raise VerificationError(
                    f"uninitialised r{1 + i} as {decl.name} arg {i + 1}", idx
                )
            if atype == Arg.SCALAR:
                if not reg.is_scalar:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be scalar", idx
                    )
            elif atype == Arg.CTX:
                if reg.type != RType.PTR_TO_CTX:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be the context", idx
                    )
            elif atype == Arg.CONST_MAP:
                if reg.type != RType.CONST_PTR_TO_MAP:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be a map", idx
                    )
                cur_map = reg.map
            elif atype in (Arg.MAP_KEY, Arg.MAP_VALUE):
                if cur_map is None:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1}: no map argument seen", idx
                    )
                need = cur_map.key_size if atype == Arg.MAP_KEY else cur_map.value_size
                self._check_mem_arg(st, reg, need, idx, decl.name, i)
            elif atype == Arg.MEM:
                mem_reg = reg
            elif atype == Arg.SIZE:
                if not reg.is_const or reg.const_value == 0:
                    raise VerificationError(
                        f"{decl.name} size arg {i + 1} must be a non-zero constant",
                        idx,
                    )
                if mem_reg is None:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1}: SIZE without MEM", idx
                    )
                self._check_mem_arg(st, mem_reg, reg.const_value, idx, decl.name, i)
            elif atype == Arg.SOCK:
                if reg.type != RType.PTR_TO_SOCK or reg.maybe_null:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be a non-NULL socket", idx
                    )
            elif atype == Arg.HEAP_PTR:
                if reg.type != RType.PTR_TO_HEAP:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be a heap pointer", idx
                    )
            elif atype == Arg.HEAP_OR_SCALAR:
                if reg.type != RType.PTR_TO_HEAP and not reg.is_scalar:
                    raise VerificationError(
                        f"{decl.name} arg {i + 1} must be heap pointer or scalar",
                        idx,
                    )

        # Resource release.
        if decl.releases:
            self._do_release(decl, args, st, idx, spill_sites, release_clears)

        # Clobber caller-saved registers, set return value.
        for r in range(1, 6):
            st.regs[r] = RegState.not_init()
        st.regs[0] = self._helper_ret(decl, args, idx)

        # Resource acquisition.
        if decl.acquires:
            self._do_acquire(decl, args, st, idx, spill_sites)

    def _check_mem_arg(
        self, st: VerifierState, reg: RegState, size: int, idx: int, name: str, i: int
    ):
        if reg.type == RType.PTR_TO_STACK:
            # Must be fully initialised (the kernel requires helper MEM
            # arguments on the stack to have been written first).
            if not st.stack_initialised(reg.off, size):
                raise VerificationError(
                    f"{name} arg {i + 1}: stack memory not initialised", idx
                )
        elif reg.type == RType.PTR_TO_MAP_VALUE:
            self._check_map_value_access(reg, 0, size, idx)
        elif reg.type == RType.PTR_TO_HEAP:
            pass  # the trusted helper sanitises heap arguments itself
        elif reg.type == RType.PTR_TO_PACKET:
            self._check_packet_access(reg, 0, size, idx)
        else:
            raise VerificationError(
                f"{name} arg {i + 1} must point to readable memory", idx
            )

    def _helper_ret(self, decl, args, idx: int) -> RegState:
        if decl.ret in (Ret.SCALAR, Ret.VOID):
            return RegState.unknown(self._fresh_id())
        rid = self._fresh_id()
        if decl.ret == Ret.MAP_VALUE_OR_NULL:
            m = next(
                (a.map for a in args if a.type == RType.CONST_PTR_TO_MAP), None
            )
            return RegState(
                RType.PTR_TO_MAP_VALUE,
                Tnum.const(0),
                0,
                0,
                0,
                0,
                map=m,
                mem_size=m.value_size if m else 0,
                maybe_null=True,
                id=rid,
            )
        if decl.ret == Ret.SOCK_OR_NULL:
            return RegState(
                RType.PTR_TO_SOCK, Tnum.const(0), 0, 0, 0, 0, maybe_null=True, id=rid
            )
        if decl.ret == Ret.HEAP_OR_NULL:
            size_arg = args[0] if args else None
            mem = size_arg.umin if size_arg is not None and size_arg.is_scalar else 0
            return RegState(
                RType.PTR_TO_HEAP,
                Tnum.const(0),
                0,
                0,
                0,
                0,
                mem_size=mem,
                anchor="object",
                maybe_null=True,
                id=rid,
            )
        raise VerificationError(f"unhandled return type {decl.ret}", idx)

    def _do_acquire(self, decl, args, st, idx, spill_sites) -> None:
        rid = self._fresh_id()
        if decl.acquire_from == "ret":
            # Tag the return register with the reference id.
            st.regs[0] = replace(st.regs[0], ref_id=rid)
            val_id = st.regs[0].id
        else:
            val_id = args[0].id
        st.add_ref(Ref(rid, decl.acquires, decl.destructor, idx, val_id))
        if idx in spill_sites:
            slot_off = spill_sites[idx]
            src = st.regs[0] if decl.acquire_from == "ret" else args[0]
            st.stack[slot_off] = Slot("spill", src)

    def _do_release(self, decl, args, st, idx, spill_sites, release_clears) -> None:
        # Find the reference being released from the first matching arg.
        ref_id = 0
        val_id = 0
        for a in args:
            if a.ref_id:
                ref_id = a.ref_id
                break
            if a.type == RType.PTR_TO_HEAP and decl.releases == "lock":
                val_id = a.id
        ref = None
        if ref_id:
            ref = st.release_ref(ref_id)
        elif val_id:
            for r in list(st.refs.values()):
                if r.kind == decl.releases and r.val_id == val_id:
                    ref = st.release_ref(r.ref_id)
                    break
        if ref is None:
            # Fall back: a single held resource of the right kind.
            candidates = [r for r in st.refs.values() if r.kind == decl.releases]
            if len(candidates) == 1:
                ref = st.release_ref(candidates[0].ref_id)
        if ref is None:
            raise VerificationError(
                f"{decl.name} releases a {decl.releases} that is not held "
                "(or cannot be identified)",
                idx,
            )
        if ref.site in spill_sites:
            slot_off = spill_sites[ref.site]
            st.stack[slot_off] = Slot("spill", RegState.const(0))
            release_clears.setdefault(idx, set()).add(slot_off)
        # Registers aliasing the released reference lose it.
        for i, r in enumerate(st.regs):
            if r.ref_id == ref.ref_id:
                st.regs[i] = RegState.unknown(self._fresh_id())

    # -- branches ------------------------------------------------------------

    def _branch(self, insn: Insn, st: VerifierState, idx: int, is32: bool):
        """Returns [(taken: bool, state), ...] — one or two arms."""
        jop = insn.opcode & isa.OP_MASK
        dst = st.regs[insn.dst]
        if dst.type == RType.NOT_INIT:
            raise VerificationError(f"branch on uninitialised r{insn.dst}", idx)
        if insn.opcode & isa.BPF_X:
            src = st.regs[insn.src]
            if src.type == RType.NOT_INIT:
                raise VerificationError(f"branch on uninitialised r{insn.src}", idx)
        else:
            src = RegState.const(sign_extend(insn.imm, 32) & U64)

        # Packet-range refinement: ptr vs data_end (§ eBPF direct packet
        # access; needed by every XDP extension in this repo).
        pkt = self._pkt_branch(jop, dst, src, insn, st)
        if pkt is not None:
            return pkt

        # NULL checks on maybe-null pointers.
        if (
            dst.is_pointer
            and dst.maybe_null
            and src.is_scalar
            and src.is_const
            and src.const_value == 0
            and jop in (isa.BPF_JEQ, isa.BPF_JNE)
        ):
            return self._null_check(jop, insn.dst, st)

        # Pointer comparisons otherwise: allowed, no refinement.
        if dst.is_pointer or src.is_pointer:
            return [(True, st.clone()), (False, st)]

        # Scalar comparison with refinement on both arms.
        a, b = (truncate32(dst), truncate32(src)) if is32 else (dst, src)
        arms = []
        taken_a, taken_b = _refine(jop, a, b, True)
        if taken_a is not None:
            ts = st.clone()
            if not is32:
                ts.regs[insn.dst] = taken_a
                if insn.opcode & isa.BPF_X:
                    ts.regs[insn.src] = taken_b
            arms.append((True, ts))
        fall_a, fall_b = _refine(jop, a, b, False)
        if fall_a is not None:
            fs = st
            if not is32:
                fs.regs[insn.dst] = fall_a
                if insn.opcode & isa.BPF_X:
                    fs.regs[insn.src] = fall_b
            arms.append((False, fs))
        if not arms:
            raise VerificationError("branch condition is infeasible both ways", idx)
        return arms

    def _null_check(self, jop: int, regno: int, st: VerifierState):
        """JEQ/JNE against 0 on a maybe-null pointer."""
        reg = st.regs[regno]
        null_state = st.clone()
        nonnull_state = st

        def apply(target: VerifierState, is_null: bool):
            for i, r in enumerate(target.regs):
                if r.id == reg.id and r.maybe_null and r.type == reg.type:
                    if is_null:
                        target.regs[i] = RegState.const(0)
                    else:
                        target.regs[i] = replace(r, maybe_null=False)
            if is_null and reg.ref_id:
                # NULL was returned: there is nothing to release.
                target.release_ref(reg.ref_id)

        apply(null_state, True)
        apply(nonnull_state, False)
        if jop == isa.BPF_JEQ:  # jump when == 0 (NULL)
            return [(True, null_state), (False, nonnull_state)]
        return [(True, nonnull_state), (False, null_state)]

    def _pkt_branch(self, jop, dst: RegState, src: RegState, insn, st):
        """'if pkt + N > data_end' style comparisons (§2.2 direct packet
        access): on the arm where the access fits, every packet pointer
        sharing the id gains the proven range."""
        pairs = None
        if dst.type == RType.PTR_TO_PACKET and src.type == RType.PTR_TO_PACKET_END:
            pairs = (dst, jop)
        elif dst.type == RType.PTR_TO_PACKET_END and src.type == RType.PTR_TO_PACKET:
            flipped = {
                isa.BPF_JGT: isa.BPF_JLT,
                isa.BPF_JLT: isa.BPF_JGT,
                isa.BPF_JGE: isa.BPF_JLE,
                isa.BPF_JLE: isa.BPF_JGE,
            }.get(jop)
            if flipped is None:
                return None
            pairs = (src, flipped)
        if pairs is None:
            return None
        pkt, eff = pairs
        n = pkt.off
        if eff == isa.BPF_JGT:  # pkt + n > end: taken -> OOB, fall -> fits
            fits_taken = False
        elif eff == isa.BPF_JLE:  # pkt + n <= end: taken -> fits
            fits_taken = True
        elif eff == isa.BPF_JGE:  # pkt + n >= end: fall-through n-1 fits
            fits_taken = False
            n -= 1
        elif eff == isa.BPF_JLT:  # pkt + n < end: taken side has n...
            fits_taken = True
            n -= 1
        else:
            return None

        fits_state = st.clone()
        other_state = st
        for i, r in enumerate(fits_state.regs):
            if r.type == RType.PTR_TO_PACKET and r.id == pkt.id:
                fits_state.regs[i] = replace(r, pkt_range=max(r.pkt_range, n))
        if fits_taken:
            return [(True, fits_state), (False, other_state)]
        return [(True, other_state), (False, fits_state)]

    # -- exit ------------------------------------------------------------

    def _check_exit(self, st: VerifierState, idx: int) -> None:
        r0 = st.regs[0]
        if r0.type == RType.NOT_INIT:
            raise VerificationError("R0 not initialised at exit", idx)
        if not r0.is_scalar:
            raise VerificationError("R0 must be a scalar at exit", idx)
        if st.refs:
            kinds = ", ".join(
                f"{r.kind} acquired at insn {r.site}" for r in st.refs.values()
            )
            raise VerificationError(f"unreleased references at exit: {kinds}", idx)

    # -- object tables -----------------------------------------------------

    def _record_cp(
        self, cp_records, idx, st: VerifierState, spill_sites, spill_conflicts
    ) -> None:
        rec = cp_records.setdefault(idx, _CpRecord())
        rec.n_paths += 1
        if not st.refs and not rec.entries:
            # Fast path: nothing held, nothing previously recorded —
            # the object table stays empty (by far the common case).
            return
        entries: list[ObjTableEntry] = []
        for ref in st.refs.values():
            entry = self._locate_ref(ref, st, spill_sites)
            if entry is None:
                spill_conflicts.add(ref.site)
                continue
            entries.append(entry)
        zero_keys = self._zero_locations(st)
        for e in entries:
            key = e.key()
            old = rec.entries.get(key)
            if old is not None and (old.res_kind != e.res_kind or old.destructor != e.destructor):
                rec.conflict_sites.add(old.site)
                rec.conflict_sites.add(e.site)
            rec.entries[key] = e
            rec.present[key] = rec.present.get(key, 0) + 1
        for key in zero_keys:
            rec.zero[key] = rec.zero.get(key, 0) + 1

    def _locate_ref(self, ref: Ref, st: VerifierState, spill_sites):
        if ref.site in spill_sites:
            return ObjTableEntry(
                "stack", spill_sites[ref.site], ref.kind, ref.destructor, ref.site
            )
        for i, r in enumerate(st.regs):
            if r.ref_id == ref.ref_id and ref.kind == "sock":
                return ObjTableEntry("reg", i, ref.kind, ref.destructor, ref.site)
            if (
                ref.kind == "lock"
                and r.type == RType.PTR_TO_HEAP
                and r.id == ref.val_id
                and ref.val_id
            ):
                return ObjTableEntry("reg", i, ref.kind, ref.destructor, ref.site)
        for off, slot in st.stack.items():
            if slot.kind != "spill" or slot.reg is None:
                continue
            r = slot.reg
            if r.ref_id == ref.ref_id and ref.kind == "sock":
                return ObjTableEntry("stack", off, ref.kind, ref.destructor, ref.site)
            if (
                ref.kind == "lock"
                and r.type == RType.PTR_TO_HEAP
                and r.id == ref.val_id
                and ref.val_id
            ):
                return ObjTableEntry("stack", off, ref.kind, ref.destructor, ref.site)
        return None

    @staticmethod
    def _zero_locations(st: VerifierState) -> set[tuple]:
        zeros = set()
        for i, r in enumerate(st.regs):
            if r.is_scalar and r.is_const and r.const_value == 0:
                for kind in ("sock", "lock"):
                    zeros.add(("reg", i, kind))
        for off, slot in st.stack.items():
            if slot.kind == "spill" and slot.reg is not None and slot.reg.is_null_const:
                for kind in ("sock", "lock"):
                    zeros.add(("stack", off, kind))
        return zeros


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _as_scalar(reg: RegState, verifier: Verifier, idx: int) -> RegState:
    if reg.is_scalar:
        return reg
    if reg.type == RType.PTR_TO_HEAP and verifier.cfg_opts.mode == "kflex":
        return RegState.unknown(verifier._fresh_id())
    raise VerificationError(f"scalar operation on {reg.type.name}", idx)


def _as_plain_scalar(reg: RegState) -> RegState:
    return reg if reg.is_scalar else RegState.unknown()


def _bswap(v: int, width: int, to_be: bool) -> int:
    nbytes = width // 8
    v &= (1 << width) - 1
    if to_be:
        return int.from_bytes(v.to_bytes(nbytes, "little"), "big")
    return v


def _refine(jop: int, a: RegState, b: RegState, taken: bool):
    """Kernel-style reg_set_min_max: returns refined (a, b) for the given
    branch arm, or (None, None) if the arm is infeasible."""
    inverse = {
        isa.BPF_JEQ: isa.BPF_JNE,
        isa.BPF_JNE: isa.BPF_JEQ,
        isa.BPF_JGT: isa.BPF_JLE,
        isa.BPF_JLE: isa.BPF_JGT,
        isa.BPF_JGE: isa.BPF_JLT,
        isa.BPF_JLT: isa.BPF_JGE,
        isa.BPF_JSGT: isa.BPF_JSLE,
        isa.BPF_JSLE: isa.BPF_JSGT,
        isa.BPF_JSGE: isa.BPF_JSLT,
        isa.BPF_JSLT: isa.BPF_JSGE,
    }
    if not taken:
        if jop == isa.BPF_JSET:
            return a, b  # no useful refinement either way
        jop = inverse.get(jop)
        if jop is None:
            return a, b
    if jop == isa.BPF_JSET:
        return a, b

    if jop == isa.BPF_JEQ:
        t = a.var_off.intersect(b.var_off)
        umin = max(a.umin, b.umin)
        umax = min(a.umax, b.umax)
        smin = max(a.smin, b.smin)
        smax = min(a.smax, b.smax)
        if umin > umax or smin > smax:
            return None, None
        na = replace(a, var_off=t, umin=umin, umax=umax, smin=smin, smax=smax)
        nb = replace(b, var_off=t, umin=umin, umax=umax, smin=smin, smax=smax)
        try:
            return na.deduce_bounds(), nb.deduce_bounds()
        except ValueError:
            return None, None

    if jop == isa.BPF_JNE:
        if a.is_const and b.is_const and a.const_value == b.const_value:
            return None, None
        # Exclude the single boundary value where possible.
        na, nb = a, b
        if b.is_const:
            c = b.const_value
            if a.umin == c == a.umax:
                return None, None
            if a.umin == c:
                na = replace(a, umin=c + 1)
            elif a.umax == c:
                na = replace(a, umax=c - 1)
        return (na.deduce_bounds() if na is not a else a), nb

    def bound(a, b, a_lo_u=None, a_hi_u=None, a_lo_s=None, a_hi_s=None,
              b_lo_u=None, b_hi_u=None, b_lo_s=None, b_hi_s=None):
        na = replace(
            a,
            umin=max(a.umin, a_lo_u) if a_lo_u is not None else a.umin,
            umax=min(a.umax, a_hi_u) if a_hi_u is not None else a.umax,
            smin=max(a.smin, a_lo_s) if a_lo_s is not None else a.smin,
            smax=min(a.smax, a_hi_s) if a_hi_s is not None else a.smax,
        )
        nb = replace(
            b,
            umin=max(b.umin, b_lo_u) if b_lo_u is not None else b.umin,
            umax=min(b.umax, b_hi_u) if b_hi_u is not None else b.umax,
            smin=max(b.smin, b_lo_s) if b_lo_s is not None else b.smin,
            smax=min(b.smax, b_hi_s) if b_hi_s is not None else b.smax,
        )
        if na.umin > na.umax or na.smin > na.smax:
            return None, None
        if nb.umin > nb.umax or nb.smin > nb.smax:
            return None, None
        return na.deduce_bounds(), nb.deduce_bounds()

    if jop == isa.BPF_JGT:  # a > b
        return bound(a, b, a_lo_u=b.umin + 1, b_hi_u=a.umax - 1 if a.umax else None)
    if jop == isa.BPF_JGE:
        return bound(a, b, a_lo_u=b.umin, b_hi_u=a.umax)
    if jop == isa.BPF_JLT:
        return bound(a, b, a_hi_u=b.umax - 1 if b.umax else None, b_lo_u=a.umin + 1)
    if jop == isa.BPF_JLE:
        return bound(a, b, a_hi_u=b.umax, b_lo_u=a.umin)
    if jop == isa.BPF_JSGT:
        return bound(a, b, a_lo_s=b.smin + 1, b_hi_s=a.smax - 1)
    if jop == isa.BPF_JSGE:
        return bound(a, b, a_lo_s=b.smin, b_hi_s=a.smax)
    if jop == isa.BPF_JSLT:
        return bound(a, b, a_hi_s=b.smax - 1, b_lo_s=a.smin + 1)
    if jop == isa.BPF_JSLE:
        return bound(a, b, a_hi_s=b.smax, b_lo_s=a.smin)
    return a, b
