"""Tracked numbers ("tnums"): the verifier's bit-level abstract domain.

A tnum ``(value, mask)`` represents the set of 64-bit integers ``x``
with ``x & ~mask == value`` — each mask bit is unknown, each clear mask
bit is known to equal the corresponding value bit.  This is the same
domain the kernel verifier uses (``kernel/bpf/tnum.c``); the arithmetic
below follows those algorithms.

Tnums matter to KFlex because the SFI guard-elision analysis (§3.2,
§5.4) is built on the verifier's range analysis, of which tnums are the
bit-precision half: e.g. after ``r1 &= 0xff`` the tnum proves the value
fits a heap of size ≥ 256 regardless of interval information.
"""

from __future__ import annotations

from dataclasses import dataclass

U64 = (1 << 64) - 1


@dataclass(frozen=True)
class Tnum:
    value: int
    mask: int

    def __post_init__(self):
        if self.value & self.mask:
            raise ValueError("tnum value and mask overlap")

    # -- constructors ---------------------------------------------------

    @staticmethod
    def const(v: int) -> "Tnum":
        return Tnum(v & U64, 0)

    @staticmethod
    def unknown() -> "Tnum":
        return Tnum(0, U64)

    @staticmethod
    def range(umin: int, umax: int) -> "Tnum":
        """Smallest tnum containing every value in [umin, umax]."""
        if umin > umax:
            return Tnum.unknown()
        chi = umin ^ umax
        bits = chi.bit_length()
        if bits > 63:
            return Tnum.unknown()
        delta = (1 << bits) - 1
        return Tnum(umin & ~delta, delta)

    # -- predicates -----------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.mask == 0

    @property
    def is_unknown(self) -> bool:
        return self.mask == U64

    def contains(self, v: int) -> bool:
        return (v & U64 & ~self.mask) == self.value

    def is_subset_of(self, other: "Tnum") -> bool:
        """Every value in self is also in other."""
        if self.mask & ~other.mask:
            return False
        return (self.value & ~other.mask) == other.value

    @property
    def umin(self) -> int:
        return self.value

    @property
    def umax(self) -> int:
        return (self.value | self.mask) & U64

    # -- arithmetic (kernel tnum.c algorithms) ----------------------------

    def add(self, other: "Tnum") -> "Tnum":
        sm = (self.mask + other.mask) & U64
        sv = (self.value + other.value) & U64
        sigma = (sm + sv) & U64
        chi = sigma ^ sv
        mu = (chi | self.mask | other.mask) & U64
        return Tnum(sv & ~mu, mu)

    def sub(self, other: "Tnum") -> "Tnum":
        dv = (self.value - other.value) & U64
        alpha = (dv + self.mask) & U64
        beta = (dv - other.mask) & U64
        chi = alpha ^ beta
        mu = (chi | self.mask | other.mask) & U64
        return Tnum(dv & ~mu, mu)

    def and_(self, other: "Tnum") -> "Tnum":
        alpha = self.value | self.mask
        beta = other.value | other.mask
        v = self.value & other.value
        return Tnum(v, (alpha & beta & ~v) & U64)

    def or_(self, other: "Tnum") -> "Tnum":
        v = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(v, (mu & ~v) & U64)

    def xor(self, other: "Tnum") -> "Tnum":
        v = self.value ^ other.value
        mu = (self.mask | other.mask) & U64
        return Tnum((v & ~mu) & U64, mu)

    def mul(self, other: "Tnum") -> "Tnum":
        """Kernel's shift-and-add tnum multiplication."""
        a, b = self, other
        acc_v = (a.value * b.value) & U64
        acc_m = Tnum.const(0)
        while a.value or a.mask:
            if a.value & 1:
                acc_m = acc_m.add(Tnum(0, b.mask))
            elif a.mask & 1:
                acc_m = acc_m.add(Tnum(0, (b.value | b.mask) & U64))
            a = a.rshift(1)
            b = b.lshift(1)
        return Tnum.const(acc_v).add(acc_m)

    def lshift(self, shift: int) -> "Tnum":
        return Tnum((self.value << shift) & U64, (self.mask << shift) & U64)

    def rshift(self, shift: int) -> "Tnum":
        return Tnum(self.value >> shift, self.mask >> shift)

    def arshift(self, shift: int, width: int = 64) -> "Tnum":
        """Arithmetic right shift within ``width`` bits.

        A known sign bit shifts known copies of itself in; an unknown
        sign bit makes all shifted-in positions unknown.
        """
        wmask = (1 << width) - 1
        v = self.value & wmask
        m = self.mask & wmask
        sign = 1 << (width - 1)
        shift = min(shift, width - 1)
        vs = v >> shift
        ms = m >> shift
        high = wmask & ~(wmask >> shift)  # positions vacated by the shift
        if m & sign:  # sign unknown: vacated bits unknown
            return Tnum(vs, ms | high)
        if v & sign:  # known negative: vacated bits known one
            return Tnum(vs | high, ms)
        return Tnum(vs, ms)

    def intersect(self, other: "Tnum") -> "Tnum":
        """Values in both; caller must ensure compatibility."""
        v = self.value | other.value
        mu = self.mask & other.mask
        return Tnum(v & ~mu, mu)

    def union(self, other: "Tnum") -> "Tnum":
        """Smallest tnum containing both (join for widening/merging)."""
        chi = (self.value ^ other.value) | self.mask | other.mask
        return Tnum(self.value & ~chi & U64, chi & U64)

    def cast(self, size: int) -> "Tnum":
        """Truncate to ``size`` bytes (e.g. after a 32-bit ALU op)."""
        if size >= 8:
            return self
        m = (1 << (size * 8)) - 1
        return Tnum(self.value & m, self.mask & m)

    def __repr__(self) -> str:
        if self.is_const:
            return f"Tnum({self.value:#x})"
        if self.is_unknown:
            return "Tnum(?)"
        return f"Tnum(v={self.value:#x}, m={self.mask:#x})"
