"""Whole-machine verifier state: registers, stack frame, references.

The reference set is what KFlex's extension cancellations are built on:
the verifier tracks every kernel resource acquired along each path
(sockets via ``bpf_sk_lookup_*``, locks via ``kflex_spin_lock``), and
the object table of each cancellation point is derived from the state's
reference set at that instruction (§3.3, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ebpf.verifier.value import RegState

STACK_SIZE = 512


@dataclass(frozen=True)
class Slot:
    """One 8-byte stack slot."""

    kind: str  # "spill" | "misc"
    reg: RegState | None = None
    init_mask: int = 0xFF  # which bytes hold initialised data


@dataclass(frozen=True)
class Ref:
    """An acquired kernel resource held by the extension."""

    ref_id: int
    kind: str  # "sock" | "lock"
    destructor: int  # helper id the unwinder must call
    site: int  # insn index of the acquiring call
    val_id: int = 0  # value identity (lock address id)


class VerifierState:
    """Mutable per-path state; cloned at branches."""

    __slots__ = ("regs", "stack", "refs", "processed")

    def __init__(
        self,
        regs: list[RegState] | None = None,
        stack: dict[int, Slot] | None = None,
        refs: dict[int, Ref] | None = None,
    ):
        self.regs: list[RegState] = regs or [RegState.not_init() for _ in range(11)]
        #: slot start offset (negative, multiple of 8) -> Slot
        self.stack: dict[int, Slot] = stack or {}
        self.refs: dict[int, Ref] = refs or {}
        self.processed = 0

    def clone(self) -> "VerifierState":
        st = VerifierState(list(self.regs), dict(self.stack), dict(self.refs))
        return st

    # -- stack ------------------------------------------------------------

    @staticmethod
    def _check_range(off: int, size: int) -> str | None:
        if off + size > 0 or off < -STACK_SIZE:
            return f"stack access [{off}, {off + size}) outside [-{STACK_SIZE}, 0)"
        return None

    def stack_write(self, off: int, size: int, reg: RegState) -> str | None:
        """Model a store of ``reg`` to fp+off.  Returns error or None."""
        err = self._check_range(off, size)
        if err:
            return err
        aligned = off % 8 == 0 and size == 8
        if aligned and (reg.is_pointer or reg.is_scalar):
            self.stack[off] = Slot("spill", reg)
            return None
        # Partial/unaligned writes turn the touched slots into misc data;
        # spilled pointers overwritten partially are destroyed.
        for slot_off in range(_slot_start(off), off + size, 8):
            slot = self.stack.get(slot_off)
            mask = slot.init_mask if slot and slot.kind == "misc" else (
                0xFF if slot else 0
            )
            for b in range(8):
                if off <= slot_off + b < off + size:
                    mask |= 1 << b
            self.stack[slot_off] = Slot("misc", None, mask)
        return None

    def stack_read(self, off: int, size: int) -> tuple[RegState | None, str | None]:
        """Model a load from fp+off.  Returns (value, error)."""
        err = self._check_range(off, size)
        if err:
            return None, err
        if off % 8 == 0 and size == 8:
            slot = self.stack.get(off)
            if slot is None:
                return None, f"read of uninitialised stack at {off}"
            if slot.kind == "spill":
                return slot.reg, None
            if slot.init_mask != 0xFF:
                return None, f"read of partially initialised stack at {off}"
            return RegState.unknown(), None
        for slot_off in range(_slot_start(off), off + size, 8):
            slot = self.stack.get(slot_off)
            for b in range(8):
                byte_off = slot_off + b
                if off <= byte_off < off + size:
                    if slot is None:
                        return None, f"read of uninitialised stack at {byte_off}"
                    if slot.kind == "misc" and not slot.init_mask & (1 << b):
                        return None, f"read of uninitialised stack at {byte_off}"
        return RegState.unknown(), None

    def stack_initialised(self, off: int, size: int) -> bool:
        """Is [fp+off, fp+off+size) fully initialised (helper MEM args)?"""
        if self._check_range(off, size):
            return False
        for slot_off in range(_slot_start(off), off + size, 8):
            slot = self.stack.get(slot_off)
            if slot is None:
                return False
            if slot.kind == "misc":
                for b in range(8):
                    if off <= slot_off + b < off + size and not slot.init_mask & (1 << b):
                        return False
        return True

    # -- reference bookkeeping ---------------------------------------------

    def add_ref(self, ref: Ref) -> None:
        self.refs[ref.ref_id] = ref

    def release_ref(self, ref_id: int) -> Ref | None:
        return self.refs.pop(ref_id, None)

    def refs_signature(self) -> tuple:
        """Order-insensitive fingerprint used for the loop-convergence
        check (§3.1): kernel resources acquired in an iteration must be
        released by its end, so the signature must match across a back
        edge."""
        return tuple(sorted((r.kind, r.site) for r in self.refs.values()))

    # -- pruning / widening --------------------------------------------------

    def subsumed_by(self, cached: "VerifierState", live_mask: int) -> bool:
        """True if this state is covered by ``cached`` (prune the path)."""
        idmap: dict[int, int] = {}
        for i in range(11):
            if not live_mask & (1 << i):
                continue
            if not cached.regs[i].subsumes(self.regs[i], idmap):
                return False
        # Stack: every slot the cached state knew about must subsume ours;
        # slots we have but cached lacks are fine only if cached treated
        # them as unknown — cached lacking a slot means "uninitialised",
        # which does NOT cover an initialised slot being read later, so
        # require our slots to be a superset with subsumption.
        for off, cslot in cached.stack.items():
            oslot = self.stack.get(off)
            if oslot is None:
                return False
            if cslot.kind == "spill":
                if oslot.kind != "spill" or not cslot.reg.subsumes(oslot.reg, idmap):
                    return False
            else:
                if oslot.kind == "misc" and (oslot.init_mask & cslot.init_mask) != cslot.init_mask:
                    return False
        if self.refs_signature() != cached.refs_signature():
            return False
        return True

    def widen_against(self, cached: "VerifierState", live_mask: int) -> "VerifierState":
        """Widen at a loop header that keeps producing new states.

        True widening (not a join): any register whose cached abstract
        value does not already cover the current one jumps straight to
        "unknown within its type", guaranteeing termination of the
        fixpoint.  Heap pointers widen to an unknown offset, which makes
        later accesses through them guarded rather than elided — the
        sound direction for KFlex.
        """
        st = self.clone()
        idmap: dict[int, int] = {}
        for i in range(11):
            if not live_mask & (1 << i):
                st.regs[i] = RegState.not_init()
                continue
            a, b = st.regs[i], cached.regs[i]
            if b.subsumes(a, idmap):
                st.regs[i] = b
            elif a.type == b.type:
                st.regs[i] = a.widen_to_unknown()
            else:
                st.regs[i] = RegState.unknown()
        new_stack: dict[int, Slot] = {}
        for off, slot in st.stack.items():
            cslot = cached.stack.get(off)
            if cslot is None:
                continue  # not present before the loop: drop knowledge
            if slot.kind == "spill" and cslot.kind == "spill":
                if cslot.reg.subsumes(slot.reg, idmap):
                    new_stack[off] = cslot
                elif cslot.reg.type == slot.reg.type:
                    new_stack[off] = Slot("spill", slot.reg.widen_to_unknown())
                else:
                    new_stack[off] = Slot("misc", None, 0xFF)
            else:
                mask = (slot.init_mask if slot.kind == "misc" else 0xFF) & (
                    cslot.init_mask if cslot.kind == "misc" else 0xFF
                )
                new_stack[off] = Slot("misc", None, mask)
        st.stack = new_stack
        return st


def _slot_start(off: int) -> int:
    return (off // 8) * 8
