"""Abstract values: the verifier's register state.

Each register holds either a scalar — tracked by a tnum plus
signed/unsigned 64-bit intervals, as in the kernel verifier — or a typed
pointer into one of the memory kinds an extension can reach:

* kernel-owned: context, stack, map values, packet data, sockets.
  Accesses are *verified* (kernel-interface compliance, §3): the bounds
  must be provable or the program is rejected.
* extension-owned: the KFlex heap.  Accesses are *guarded* (SFI, §3.2)
  unless provably safe, in which case Kie elides the guard (§5.4).

``PTR_TO_HEAP`` carries an ``anchor``: ``"base"`` means the tracked
offset is relative to the heap start (valid span ``[0, heap_size)``),
``"object"`` means it is relative to a ``kflex_malloc`` allocation of
``mem_size`` bytes located somewhere inside the heap.  Guard pages of
2**15 bytes on each side (§4.1) mean an access is memory-safe whenever
its offset stays within ``[-GUARD, span+GUARD)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum, auto

from repro.ebpf.isa import U64, to_s64
from repro.ebpf.verifier.tnum import Tnum

S64_MIN = -(1 << 63)
S64_MAX = (1 << 63) - 1
U64_MAX = U64
U32_MAX = (1 << 32) - 1


class RType(Enum):
    NOT_INIT = auto()
    SCALAR = auto()
    PTR_TO_CTX = auto()
    PTR_TO_STACK = auto()
    CONST_PTR_TO_MAP = auto()
    PTR_TO_MAP_VALUE = auto()
    PTR_TO_PACKET = auto()
    PTR_TO_PACKET_END = auto()
    PTR_TO_SOCK = auto()
    PTR_TO_HEAP = auto()


#: Pointer types that must never leak into user-visible memory.
KERNEL_POINTERS = {
    RType.PTR_TO_CTX,
    RType.PTR_TO_STACK,
    RType.CONST_PTR_TO_MAP,
    RType.PTR_TO_MAP_VALUE,
    RType.PTR_TO_PACKET,
    RType.PTR_TO_PACKET_END,
    RType.PTR_TO_SOCK,
}


@dataclass(frozen=True)
class RegState:
    """Abstract state of one register (immutable; ops return new states)."""

    type: RType = RType.NOT_INIT
    # Scalar value domain; for pointer types these fields describe the
    # *variable* part of the offset (kernel convention).
    var_off: Tnum = Tnum.const(0)
    smin: int = 0
    smax: int = 0
    umin: int = 0
    umax: int = 0
    #: Constant part of a pointer offset.
    off: int = 0
    #: Referenced map (CONST_PTR_TO_MAP / PTR_TO_MAP_VALUE).
    map: object | None = None
    #: Size of the pointed-to object (map value size, malloc size).
    mem_size: int = 0
    #: For PTR_TO_HEAP: "base" or "object" (see module docstring).
    anchor: str = "base"
    #: Reference id for acquired objects (sockets); 0 = not a reference.
    ref_id: int = 0
    #: Value identity, for null-check propagation, packet-range
    #: propagation and lock identification.
    id: int = 0
    #: The pointer may be NULL (must be null-checked before use).
    maybe_null: bool = False
    #: For PTR_TO_PACKET: bytes proven readable past the packet start
    #: (established by comparisons against data_end).
    pkt_range: int = 0
    #: Scalar provenance: True when this value was a heap pointer whose
    #: arithmetic escaped provable bounds.  Used only for Table 3
    #: accounting (such guards are "pointer manipulation", not
    #: "pointer formation").
    derived: bool = False

    # -- constructors ---------------------------------------------------

    @staticmethod
    def not_init() -> "RegState":
        return RegState()

    @staticmethod
    def unknown(rid: int = 0) -> "RegState":
        return RegState(
            RType.SCALAR,
            Tnum.unknown(),
            S64_MIN,
            S64_MAX,
            0,
            U64_MAX,
            id=rid,
        )

    @staticmethod
    def const(v: int) -> "RegState":
        v &= U64
        s = to_s64(v)
        return RegState(RType.SCALAR, Tnum.const(v), s, s, v, v)

    @staticmethod
    def scalar_range(umin: int, umax: int) -> "RegState":
        reg = RegState(
            RType.SCALAR, Tnum.range(umin, umax), S64_MIN, S64_MAX, umin, umax
        )
        return reg.deduce_bounds()

    # -- predicates -----------------------------------------------------

    @property
    def is_scalar(self) -> bool:
        return self.type == RType.SCALAR

    @property
    def is_pointer(self) -> bool:
        return self.type not in (RType.NOT_INIT, RType.SCALAR)

    @property
    def is_const(self) -> bool:
        return self.is_scalar and self.var_off.is_const

    @property
    def const_value(self) -> int:
        return self.var_off.value

    @property
    def is_null_const(self) -> bool:
        return self.is_const and self.const_value == 0

    # -- bounds plumbing --------------------------------------------------

    def deduce_bounds(self) -> "RegState":
        """Tighten interval bounds from the tnum and vice versa
        (mirrors the kernel's __update_reg_bounds/__reg_deduce_bounds)."""
        t = self.var_off
        umin = max(self.umin, t.umin)
        umax = min(self.umax, t.umax)
        smin, smax = self.smin, self.smax
        # If the sign bit is known, unsigned and signed ranges relate.
        if umax <= S64_MAX:  # sign bit known zero
            smin = max(smin, umin)
            smax = min(smax, umax)
            if smin < 0:
                smin = umin
        elif umin > S64_MAX:  # sign bit known one
            smin = max(smin, to_s64(umin))
            smax = min(smax, to_s64(umax))
        if smin >= 0:
            umin = max(umin, smin)
            umax = min(umax, smax if smax >= 0 else umax)
        if umin > umax or smin > smax:
            # Contradictory knowledge; fall back to the tnum's view to
            # stay sound (the path is infeasible anyway).
            umin, umax = t.umin, t.umax
            smin, smax = S64_MIN, S64_MAX
        return replace(self, umin=umin, umax=umax, smin=smin, smax=smax)

    def widen_to_unknown(self) -> "RegState":
        """Forget scalar knowledge (loop widening)."""
        if self.type == RType.SCALAR:
            return RegState.unknown(self.id)
        return replace(
            self,
            var_off=Tnum.unknown(),
            smin=S64_MIN,
            smax=S64_MAX,
            umin=0,
            umax=U64_MAX,
        )

    # -- subsumption (state pruning) --------------------------------------

    def subsumes(self, other: "RegState", idmap: dict[int, int]) -> bool:
        """True if every concrete state of ``other`` is covered by self.

        ``idmap`` canonicalises value ids across the two states (the
        kernel's check_ids): ids must correspond one-to-one.
        """
        if self.type == RType.NOT_INIT:
            return True  # we knew nothing before; anything refines it
        if self.type != other.type:
            return False
        # Scalar ids are only used transiently (null-check propagation
        # happens on pointers); requiring id equality on scalars would
        # block pruning of loops that launder values through arithmetic.
        if self.type != RType.SCALAR and not _ids_match(self.id, other.id, idmap):
            return False
        if self.type == RType.SCALAR:
            return (
                other.var_off.is_subset_of(self.var_off)
                and self.umin <= other.umin
                and self.umax >= other.umax
                and self.smin <= other.smin
                and self.smax >= other.smax
            )
        if (
            self.map is not other.map
            or self.mem_size != other.mem_size
            or self.anchor != other.anchor
            or self.ref_id != other.ref_id
            or self.maybe_null != other.maybe_null
        ):
            return False
        if self.type == RType.PTR_TO_PACKET and self.pkt_range > other.pkt_range:
            return False
        if self.off != other.off:
            # Variable-offset pointers could fold the difference into
            # bounds; keep it simple and require equal fixed offsets.
            return False
        return (
            other.var_off.is_subset_of(self.var_off)
            and self.umin <= other.umin
            and self.umax >= other.umax
        )

    def join(self, other: "RegState") -> "RegState":
        """Least upper bound for widening at loop headers."""
        if self.type != other.type:
            return RegState.unknown()
        if self.type == RType.SCALAR:
            return RegState(
                RType.SCALAR,
                self.var_off.union(other.var_off),
                min(self.smin, other.smin),
                max(self.smax, other.smax),
                min(self.umin, other.umin),
                max(self.umax, other.umax),
                id=self.id if self.id == other.id else 0,
            )
        if (
            self.map is not other.map
            or self.anchor != other.anchor
            or self.ref_id != other.ref_id
        ):
            return RegState.unknown()
        return replace(
            self,
            var_off=self.var_off.union(other.var_off),
            smin=min(self.smin, other.smin),
            smax=max(self.smax, other.smax),
            umin=min(self.umin, other.umin),
            umax=max(self.umax, other.umax),
            off=self.off if self.off == other.off else 0,
            mem_size=min(self.mem_size, other.mem_size),
            pkt_range=min(self.pkt_range, other.pkt_range),
            maybe_null=self.maybe_null or other.maybe_null,
            id=self.id if self.id == other.id else 0,
        )


def _ids_match(a: int, b: int, idmap: dict[int, int]) -> bool:
    if a == 0 and b == 0:
        return True
    if (a == 0) != (b == 0):
        return False
    if a in idmap:
        return idmap[a] == b
    if b in idmap.values():
        return False
    idmap[a] = b
    return True


# ---------------------------------------------------------------------------
# Scalar ALU transfer functions
# ---------------------------------------------------------------------------


def _wrap_u(v: int) -> int:
    return v & U64


def scalar_add(a: RegState, b: RegState) -> RegState:
    t = a.var_off.add(b.var_off)
    if a.smin + b.smin < S64_MIN or a.smax + b.smax > S64_MAX:
        smin, smax = S64_MIN, S64_MAX
    else:
        smin, smax = a.smin + b.smin, a.smax + b.smax
    if a.umax + b.umax > U64_MAX:
        umin, umax = 0, U64_MAX
    else:
        umin, umax = a.umin + b.umin, a.umax + b.umax
    return RegState(RType.SCALAR, t, smin, smax, umin, umax).deduce_bounds()


def scalar_sub(a: RegState, b: RegState) -> RegState:
    t = a.var_off.sub(b.var_off)
    if a.smin - b.smax < S64_MIN or a.smax - b.smin > S64_MAX:
        smin, smax = S64_MIN, S64_MAX
    else:
        smin, smax = a.smin - b.smax, a.smax - b.smin
    if a.umin < b.umax:
        umin, umax = 0, U64_MAX
    else:
        umin, umax = a.umin - b.umax, a.umax - b.umin
    return RegState(RType.SCALAR, t, smin, smax, umin, umax).deduce_bounds()


def scalar_mul(a: RegState, b: RegState) -> RegState:
    t = a.var_off.mul(b.var_off)
    if a.umax * b.umax <= U64_MAX and a.umin >= 0 and b.umin >= 0:
        umin, umax = a.umin * b.umin, a.umax * b.umax
        smin = umin if umax <= S64_MAX else S64_MIN
        smax = umax if umax <= S64_MAX else S64_MAX
    else:
        umin, umax, smin, smax = 0, U64_MAX, S64_MIN, S64_MAX
    return RegState(RType.SCALAR, t, smin, smax, umin, umax).deduce_bounds()


def scalar_div(a: RegState, b: RegState) -> RegState:
    # eBPF div-by-zero yields 0, so 0 is always a possible result.
    if b.is_const and b.const_value != 0:
        umax = a.umax // b.const_value
    else:
        umax = a.umax
    return RegState(
        RType.SCALAR, Tnum.range(0, umax), 0, min(umax, S64_MAX), 0, umax
    ).deduce_bounds()


def scalar_mod(a: RegState, b: RegState) -> RegState:
    # mod-by-zero leaves dst unchanged, so the result is bounded by
    # max(a.umax, b.umax - 1).
    if b.is_const and b.const_value != 0 and b.umin > 0:
        umax = b.const_value - 1
    else:
        umax = max(a.umax, b.umax - 1 if b.umax else 0)
    return RegState(
        RType.SCALAR, Tnum.range(0, umax), 0, min(umax, S64_MAX), 0, umax
    ).deduce_bounds()


def _from_tnum(t: Tnum) -> RegState:
    umin, umax = t.umin, t.umax
    smin = umin if umax <= S64_MAX else S64_MIN
    smax = umax if umax <= S64_MAX else S64_MAX
    return RegState(RType.SCALAR, t, smin, smax, umin, umax).deduce_bounds()


def scalar_and(a: RegState, b: RegState) -> RegState:
    reg = _from_tnum(a.var_off.and_(b.var_off))
    # AND cannot increase an unsigned value.
    return replace(reg, umax=min(reg.umax, a.umax, b.umax)).deduce_bounds()


def scalar_or(a: RegState, b: RegState) -> RegState:
    reg = _from_tnum(a.var_off.or_(b.var_off))
    return replace(reg, umin=max(reg.umin, a.umin, b.umin)).deduce_bounds()


def scalar_xor(a: RegState, b: RegState) -> RegState:
    return _from_tnum(a.var_off.xor(b.var_off))


def scalar_lsh(a: RegState, b: RegState) -> RegState:
    if b.is_const:
        sh = b.const_value & 63
        t = a.var_off.lshift(sh)
        if a.umax <= (U64_MAX >> sh):
            return RegState(
                RType.SCALAR,
                t,
                0 if a.smin < 0 else a.smin << sh,
                S64_MAX if (a.smax << sh) > S64_MAX else a.smax << sh,
                a.umin << sh,
                a.umax << sh,
            ).deduce_bounds()
        return _from_tnum(t)
    return RegState.unknown()


def scalar_rsh(a: RegState, b: RegState) -> RegState:
    if b.is_const:
        sh = b.const_value & 63
        return RegState(
            RType.SCALAR,
            a.var_off.rshift(sh),
            0,
            min(a.umax >> sh, S64_MAX),
            a.umin >> sh,
            a.umax >> sh,
        ).deduce_bounds()
    return RegState.unknown()


def scalar_arsh(a: RegState, b: RegState) -> RegState:
    if b.is_const:
        sh = b.const_value & 63
        return RegState(
            RType.SCALAR,
            a.var_off.arshift(sh),
            a.smin >> sh,
            a.smax >> sh,
            0,
            U64_MAX,
        ).deduce_bounds()
    return RegState.unknown()


def scalar_neg(a: RegState) -> RegState:
    return scalar_sub(RegState.const(0), a)


SCALAR_OPS = {
    "add": scalar_add,
    "sub": scalar_sub,
    "mul": scalar_mul,
    "div": scalar_div,
    "mod": scalar_mod,
    "and": scalar_and,
    "or": scalar_or,
    "xor": scalar_xor,
    "lsh": scalar_lsh,
    "rsh": scalar_rsh,
    "arsh": scalar_arsh,
}


def truncate32(reg: RegState) -> RegState:
    """Zero-extend a 32-bit ALU result (upper bits known zero)."""
    t = reg.var_off.cast(4)
    umin, umax = t.umin, t.umax
    if reg.umax <= U32_MAX and reg.umin <= reg.umax:
        umin = max(umin, reg.umin)
        umax = min(umax, reg.umax)
    return RegState(RType.SCALAR, t, umin, umax, umin, umax, id=0).deduce_bounds()
