"""The eBPF virtual machine.

Executes instruction lists (raw bytecode or Kie-instrumented programs)
against the simulated kernel address space, which plays the role of the
MMU: wild accesses raise :class:`~repro.errors.PageFault` exactly where
real hardware would, and the KFlex runtime catches those faults to drive
extension cancellation (§3.3).

The interpreter also implements the performance model's innermost loop:
every instruction is charged its *native* cost (the number of x86-64
instructions the JIT would emit for it, supplied by
:mod:`repro.ebpf.jit` as a per-instruction cost array), and helper calls
are charged their declared cost.  The accumulated count is returned in
:class:`ExecResult` and converted to nanoseconds by the simulator.

KFlex pseudo-instructions:

* ``GUARD dst`` — SFI sanitisation: ``dst = heap_base + (dst & mask)``.
* ``CANCELPT`` — loads the terminate pointer from the heap's reserved
  cell and dereferences it (§3.3).  When the runtime has zeroed the
  cell, the dereference of address 0 faults, triggering cancellation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    ExtensionFault,
    HelperFault,
    KernelPanic,
    LockStall,
    PageFault,
    SleepStall,
    StackFault,
)
from repro.ebpf import isa
from repro.ebpf.isa import Insn, U32, U64, sign_extend, to_s64
from repro.ebpf.helpers import HelperTable

#: eBPF stack frame size, as in the kernel.
STACK_SIZE = 512

#: Hard step limit: models the hardlockup watchdog's last line of
#: defence.  Far above any legitimate extension execution.
DEFAULT_MAX_STEPS = 50_000_000


# ---------------------------------------------------------------------------
# Shared instruction semantics
#
# One source of truth for ALU / branch / atomic behaviour, used both by
# the reference interpreter below and by the threaded-code engine
# (:mod:`repro.ebpf.engine`).  The differential test harness asserts the
# two execution paths agree bit-for-bit; sharing the arithmetic keeps
# that invariant structural rather than coincidental.
# ---------------------------------------------------------------------------

#: ``op -> fn(a, b, is64)``.  Operands arrive already width-masked
#: (64-bit values, or low 32 bits for ALU32); the caller masks the
#: result back to the operation width.
ALU_BINOPS = {
    isa.BPF_ADD: lambda a, b, is64: a + b,
    isa.BPF_SUB: lambda a, b, is64: a - b,
    isa.BPF_MUL: lambda a, b, is64: a * b,
    isa.BPF_DIV: lambda a, b, is64: (
        0 if (b & U64) == 0 else (a & U64) // (b & U64 if is64 else b & U32)
    ),
    isa.BPF_MOD: lambda a, b, is64: (
        a if (b & U64) == 0 else (a & U64) % (b & U64 if is64 else b & U32)
    ),
    isa.BPF_OR: lambda a, b, is64: a | b,
    isa.BPF_AND: lambda a, b, is64: a & b,
    isa.BPF_XOR: lambda a, b, is64: a ^ b,
    isa.BPF_LSH: lambda a, b, is64: a << (b & (63 if is64 else 31)),
    isa.BPF_RSH: lambda a, b, is64: (a & (U64 if is64 else U32))
    >> (b & (63 if is64 else 31)),
    isa.BPF_ARSH: lambda a, b, is64: sign_extend(a, 64 if is64 else 32)
    >> (b & (63 if is64 else 31)),
    isa.BPF_MOV: lambda a, b, is64: b,
}

#: ``op -> fn(a, b, sa, sb)`` over width-masked unsigned operands and
#: their signed reinterpretations.
JMP_TESTS = {
    isa.BPF_JEQ: lambda a, b, sa, sb: a == b,
    isa.BPF_JNE: lambda a, b, sa, sb: a != b,
    isa.BPF_JGT: lambda a, b, sa, sb: a > b,
    isa.BPF_JGE: lambda a, b, sa, sb: a >= b,
    isa.BPF_JLT: lambda a, b, sa, sb: a < b,
    isa.BPF_JLE: lambda a, b, sa, sb: a <= b,
    isa.BPF_JSGT: lambda a, b, sa, sb: sa > sb,
    isa.BPF_JSGE: lambda a, b, sa, sb: sa >= sb,
    isa.BPF_JSLT: lambda a, b, sa, sb: sa < sb,
    isa.BPF_JSLE: lambda a, b, sa, sb: sa <= sb,
    isa.BPF_JSET: lambda a, b, sa, sb: (a & b) != 0,
}


def exec_atomic(aspace, regs: list[int], aop: int, src_reg: int, addr: int,
                size: int) -> None:
    """Execute one STX|ATOMIC operation against ``aspace``.

    The address has already passed the store-policy check; reads and
    writes go through the paged address space so population faults keep
    their exact semantics.
    """
    fetch = bool(aop & isa.BPF_FETCH)
    base_op = aop & ~isa.BPF_FETCH
    old = aspace.read_int(addr, size)
    src = regs[src_reg]
    mask = (1 << (size * 8)) - 1
    if aop == isa.ATOMIC_XCHG:
        aspace.write_int(addr, src, size)
        regs[src_reg] = old
        return
    if aop == isa.ATOMIC_CMPXCHG:
        if old == (regs[0] & mask):
            aspace.write_int(addr, src, size)
        regs[0] = old
        return
    if base_op == isa.ATOMIC_ADD:
        new = old + src
    elif base_op == isa.ATOMIC_OR:
        new = old | src
    elif base_op == isa.ATOMIC_AND:
        new = old & src
    elif base_op == isa.ATOMIC_XOR:
        new = old ^ src
    else:
        raise ExtensionFault(f"unknown atomic op {aop:#x}")
    aspace.write_int(addr, new & mask, size)
    if fetch:
        regs[src_reg] = old


@dataclass
class ExecEnv:
    """Everything an executing extension can reach.

    One ``ExecEnv`` per logical CPU; reused across invocations (the
    stack region is mapped once and recycled).
    """

    aspace: object  # AddressSpace
    helpers: HelperTable
    cpu: int = 0
    maps_by_addr: dict = field(default_factory=dict)
    #: The extension heap (None for plain eBPF programs).
    heap: object | None = None
    #: Called every ``watchdog_period`` executed instructions with the
    #: cost accumulated so far; lets the KFlex watchdog zero the
    #: terminate cell mid-execution (§4.3).
    watchdog: object | None = None
    watchdog_period: int = 4096
    max_steps: int = DEFAULT_MAX_STEPS
    #: Region-name *prefixes* the verifier sanctioned for this program
    #: (e.g. "stack:", "heap:kv", "map:"). A store landing in a mapped
    #: region outside these models kernel-memory corruption and raises
    #: KernelPanic — used to demonstrate what SFI prevents.  None
    #: disables the check.
    allowed_store_regions: tuple | None = None
    #: SMAP (§4.2): extensions run with Supervisor Mode Access
    #: Prevention enabled, so a performance-mode unguarded read of a
    #: *user-space* address traps — which cancels the extension instead
    #: of letting a malicious application steer its control flow.
    smap: bool = True
    #: Optional :class:`repro.sim.faults.FaultInjector`.  Consulted at
    #: every CANCELPT (by both engines, in identical order) so injected
    #: heap / SFI faults surface exactly where organic ones would.
    injector: object | None = None
    stack_base: int = 0  # mapped lazily

    def ensure_stack(self) -> int:
        if not self.stack_base:
            # Per-CPU kernel stacks live in the kernel half of the
            # address space (SMAP forbids supervisor access below 2^47).
            base = 0xFFFF_A000_0000_0000 + self.cpu * 0x10000
            # Stacks are per-CPU kernel resources shared by every
            # extension on this machine; map once, reuse thereafter.
            if self.aspace.find_region(base) is None:
                self.aspace.map_region(base, STACK_SIZE, f"stack:cpu{self.cpu}")
            self.stack_base = base
        return self.stack_base


@dataclass
class Fault:
    """Description of a runtime fault, consumed by the cancellation path."""

    kind: str  # "page", "stall", "helper"
    insn_idx: int  # index in the executed program
    orig_idx: int | None  # index in the pre-instrumentation program
    addr: int = 0
    message: str = ""


@dataclass
class ExecResult:
    ret: int
    cost: int  # native-instruction units
    steps: int  # bytecode instructions executed
    fault: Fault | None = None
    regs: list[int] | None = None  # register file at exit/fault
    stack_base: int = 0

    @property
    def ok(self) -> bool:
        return self.fault is None


class Interpreter:
    """Executes one program.  Stateless across runs except for the env."""

    def __init__(
        self,
        insns: list[Insn],
        env: ExecEnv,
        *,
        costs: list[int] | None = None,
        helper_costs: dict[int, int] | None = None,
    ):
        self.insns = insns
        self.env = env
        self.costs = costs if costs is not None else [1] * len(insns)
        self.helper_costs = helper_costs or {}
        # Slot-index -> instruction-index map for jump resolution.
        slot_of = isa.slot_offsets(insns)
        self._slot_to_idx = {s: i for i, s in enumerate(slot_of)}
        self._slot_of = slot_of

    # -- entry ----------------------------------------------------------

    def run(self, ctx_addr: int = 0, max_steps: int | None = None) -> ExecResult:
        env = self.env
        aspace = env.aspace
        regs = [0] * 11
        stack = env.ensure_stack()
        regs[isa.FP] = stack + STACK_SIZE
        regs[1] = ctx_addr & U64

        heap = env.heap
        heap_base = heap.base if heap is not None else 0
        heap_mask = heap.mask if heap is not None else 0

        pc = 0
        steps = 0
        cost = 0
        limit = max_steps if max_steps is not None else env.max_steps
        insns = self.insns
        n = len(insns)
        watchdog = env.watchdog
        wd_period = env.watchdog_period
        next_wd = wd_period

        def fault(kind: str, addr: int = 0, message: str = "") -> ExecResult:
            insn = insns[pc] if pc < n else None
            orig = insn.orig_idx if insn is not None else None
            if orig is None and insn is not None:
                orig = pc
            return ExecResult(
                0,
                cost,
                steps,
                Fault(kind, pc, orig, addr, message),
                regs=list(regs),
                stack_base=stack,
            )

        while True:
            if pc >= n:
                raise KernelPanic(f"pc {pc} fell off program end")
            if steps >= limit:
                return fault("stall", message="hard step limit (hardlockup)")
            if watchdog is not None and steps >= next_wd:
                watchdog(cost)
                next_wd = steps + wd_period

            insn = insns[pc]
            op = insn.opcode
            steps += 1
            cost += self.costs[pc]
            cls = op & isa.CLASS_MASK

            try:
                # ---- ALU ----------------------------------------------
                if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
                    self._alu(regs, insn, cls == isa.BPF_ALU64)
                    pc += 1
                # ---- loads --------------------------------------------
                elif cls == isa.BPF_LDX:
                    size = isa.size_bytes(op)
                    addr = (regs[insn.src] + insn.off) & U64
                    self._check_load(addr, size)
                    regs[insn.dst] = aspace.read_int(addr, size)
                    pc += 1
                elif cls == isa.BPF_LD:
                    if insn.is_ld_imm64:
                        regs[insn.dst] = (insn.imm64 or 0) & U64
                        pc += 1
                    else:
                        raise ExtensionFault(f"unsupported LD mode {op:#x}")
                # ---- stores -------------------------------------------
                elif cls == isa.BPF_ST:
                    size = isa.size_bytes(op)
                    addr = (regs[insn.dst] + insn.off) & U64
                    self._check_store(addr, size)
                    aspace.write_int(addr, insn.imm & U64, size)
                    pc += 1
                elif cls == isa.BPF_STX:
                    size = isa.size_bytes(op)
                    addr = (regs[insn.dst] + insn.off) & U64
                    self._check_store(addr, size)
                    if insn.is_atomic:
                        self._atomic(regs, insn, addr, size)
                    else:
                        aspace.write_int(addr, regs[insn.src], size)
                    pc += 1
                # ---- jumps / calls ------------------------------------
                elif cls == isa.BPF_JMP or cls == isa.BPF_JMP32:
                    if op == isa.KFLEX_GUARD:
                        if heap is None:
                            raise KernelPanic("GUARD without an extension heap")
                        regs[insn.dst] = (heap_base + (regs[insn.dst] & heap_mask)) & U64
                        pc += 1
                    elif op == isa.KFLEX_TRANSLATE:
                        if heap is None or not heap.user_base:
                            raise KernelPanic("TRANSLATE without a shared heap")
                        regs[insn.dst] = (
                            heap.user_base + (regs[insn.dst] & heap_mask)
                        ) & U64
                        pc += 1
                    elif op == isa.KFLEX_CANCELPT:
                        if heap is None:
                            raise KernelPanic("CANCELPT without an extension heap")
                        if env.injector is not None:
                            env.injector.at_cancelpt(aspace, heap)
                        term_ptr = aspace.read_int(heap.terminate_cell, 8)
                        # Dereference the terminate pointer: faults (and
                        # thus cancels) when the watchdog zeroed it.
                        aspace.read_int(term_ptr, 1)
                        pc += 1
                    elif insn.is_call:
                        cost += self._call(regs, insn)
                        pc += 1
                    elif insn.is_exit:
                        return ExecResult(
                            regs[0], cost, steps, regs=list(regs), stack_base=stack
                        )
                    else:
                        taken = self._branch(regs, insn, cls == isa.BPF_JMP32)
                        if taken:
                            target_slot = self._slot_of[pc] + insn.slots + insn.off
                            npc = self._slot_to_idx.get(target_slot)
                            if npc is None:
                                raise KernelPanic(
                                    f"jump to mid-instruction slot {target_slot}"
                                )
                            pc = npc
                        else:
                            pc += 1
                else:
                    raise ExtensionFault(f"unknown opcode {op:#x}")
            except PageFault as pf:
                return fault("page", pf.addr, str(pf))
            except LockStall as ls:
                return fault("lock_stall", message=str(ls))
            except SleepStall as ss:
                return fault("sleep_stall", message=str(ss))
            except HelperFault as hf:
                return fault("helper", message=str(hf))
            except StackFault as sf:
                return fault("page", message=str(sf))

    # -- pieces -----------------------------------------------------------

    def _alu(self, regs: list[int], insn: Insn, is64: bool) -> None:
        op = insn.opcode & isa.OP_MASK
        use_reg = bool(insn.opcode & isa.BPF_X)
        dst = insn.dst
        if op == isa.BPF_END:
            # to-le is a no-op on little-endian; to-be swaps.  The
            # assembler encodes width in imm (16/32/64).
            width = insn.imm
            val = regs[dst] & ((1 << width) - 1)
            if use_reg:  # BPF_X encodes "to_be" in the kernel
                val = int.from_bytes(
                    val.to_bytes(width // 8, "little"), "big"
                )
            regs[dst] = val
            return
        if op == isa.BPF_NEG:
            val = -regs[dst]
        else:
            if use_reg:
                src = regs[insn.src]
            else:
                # Immediates are sign-extended to 64-bit for ALU64.
                src = sign_extend(insn.imm, 32) & U64 if is64 else insn.imm & U32
            a = regs[dst] if is64 else regs[dst] & U32
            b = src if is64 else src & U32
            fn = ALU_BINOPS.get(op)
            if fn is None:
                raise ExtensionFault(f"unknown ALU op {op:#x}")
            val = fn(a, b, is64)
        regs[dst] = val & U64 if is64 else val & U32

    def _branch(self, regs: list[int], insn: Insn, is32: bool) -> bool:
        op = insn.opcode & isa.OP_MASK
        if op == isa.BPF_JA:
            return True
        a = regs[insn.dst]
        if insn.opcode & isa.BPF_X:
            b = regs[insn.src]
        else:
            # Branch immediates are sign-extended to 64 bits.
            b = sign_extend(insn.imm, 32) & U64
        if is32:
            a &= U32
            b &= U32
            sa, sb = sign_extend(a, 32), sign_extend(b, 32)
        else:
            sa, sb = to_s64(a), to_s64(b)
        test = JMP_TESTS.get(op)
        if test is None:
            raise ExtensionFault(f"unknown jump op {op:#x}")
        return test(a, b, sa, sb)

    def _atomic(self, regs: list[int], insn: Insn, addr: int, size: int) -> None:
        exec_atomic(self.env.aspace, regs, insn.imm, insn.src, addr, size)

    def _call(self, regs: list[int], insn: Insn) -> int:
        env = self.env
        hid = insn.imm
        decl = env.helpers.declaration(hid)
        args = tuple(regs[1 : 1 + decl.n_args])
        ret = env.helpers.invoke(hid, env, args)
        regs[0] = (ret or 0) & U64
        # R1-R5 are caller-saved: clobber them, as the JIT would.
        for r in range(1, 6):
            regs[r] = 0
        return self.helper_costs.get(hid, decl.cost)

    # -- memory policy ----------------------------------------------------

    #: Canonical split of the x86-64 address space: addresses below
    #: 2**47 belong to user space.
    USER_SPACE_TOP = 1 << 47

    def _check_load(self, addr: int, size: int) -> None:
        # Loads from unmapped memory fault via the address space itself.
        # With SMAP, supervisor-mode code (the extension) cannot touch
        # user mappings at all: performance-mode reads through
        # application-controlled pointers trap here (§4.2).  NULL-page
        # addresses are exempt so that ordinary unmapped-page faults
        # keep their own (identical) cancellation semantics.
        if self.env.smap and 4096 <= addr < self.USER_SPACE_TOP:
            raise PageFault(addr, f"SMAP: supervisor access to user address {addr:#x}")

    def _check_store(self, addr: int, size: int) -> None:
        allowed = self.env.allowed_store_regions
        if allowed is None:
            return
        region = self.env.aspace.find_region(addr)
        if region is not None and not region.name.startswith(allowed):
            raise KernelPanic(
                f"extension store to kernel-owned region {region.name!r} "
                f"at {addr:#x} — memory corruption"
            )
