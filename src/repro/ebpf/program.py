"""Extension program objects.

A :class:`Program` is what user space hands to the kernel via ``bpf(2)``:
bytecode, the hook it attaches to, referenced maps, and — for KFlex
extensions — the declared extension-heap size (the ``kflex_heap(size)``
macro of §3.1 becomes the ``heap_size`` field here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.isa import Insn

# LD_IMM64 pseudo source-register conventions (kernel-style relocations).
PSEUDO_MAP_FD = 1  # imm64 is a map fd; resolved to the map object
PSEUDO_HEAP_OFF = 2  # imm64 is a byte offset into the extension heap

#: Hooks an extension may attach to, with their default return code on
#: cancellation (§4.3: security denies, networking passes).
HOOKS = {
    "xdp": {"default_ret": 2, "name_of_default": "XDP_PASS"},
    "sk_skb": {"default_ret": 1, "name_of_default": "SK_PASS"},
    "lsm": {"default_ret": -1, "name_of_default": "EPERM"},
    "tracepoint": {"default_ret": 0, "name_of_default": "0"},
    "bench": {"default_ret": 0, "name_of_default": "0"},
}

# XDP return codes (subset).
XDP_ABORTED = 0
XDP_DROP = 1
XDP_PASS = 2
XDP_TX = 3

SK_DROP = 0
SK_PASS = 1


@dataclass
class Program:
    """An extension as submitted for loading."""

    name: str
    insns: list[Insn]
    hook: str = "bench"
    #: fd -> map object, for LD_IMM64 PSEUDO_MAP_FD relocations.
    maps: dict[int, object] = field(default_factory=dict)
    #: Extension heap size in bytes (None: plain eBPF program, no heap).
    heap_size: int | None = None
    #: Optional user-supplied callback adjusting the return code after a
    #: cancellation (§4.3).  Must be loop- and Cp-free; the runtime
    #: enforces this by accepting only a plain int-to-int callable here
    #: (modelling the restricted callback, not arbitrary bytecode).
    cancel_callback: object | None = None
    #: Sleepable programs may call may_sleep helpers (user-page faults
    #: are allowed); their stalls are caught by the runtime's background
    #: checker instead of the lockup watchdogs (§4.3).
    sleepable: bool = False

    def __post_init__(self):
        if self.hook not in HOOKS:
            raise ValueError(f"unknown hook {self.hook!r}")

    @property
    def default_ret(self) -> int:
        return HOOKS[self.hook]["default_ret"]

    def __len__(self) -> int:
        return len(self.insns)
