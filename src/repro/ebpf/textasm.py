"""Text-format assembler for extension programs.

The paper's practicality pitch (§2.1) is that users keep their usual
languages and toolchains; this repo's stand-in for "compile your C" is
either the Python builder API (:mod:`repro.ebpf.macroasm`) or this
textual assembly, which looks like verifier-log / bpftool output:

.. code-block:: text

    ; a bounded loop summing 1..10
        mov64 r0, 0
        mov64 r1, 10
    loop:
        jeq r1, 0, done
        add64 r0, r1
        sub64 r1, 1
        ja loop
    done:
        exit

Supported forms::

    <alu>{64,32} rD, rS | imm      add sub mul div mod and or xor lsh rsh arsh mov
    neg64 rD | end{16,32,64} rD
    lddw rD, imm64                 64-bit immediate (two slots)
    lddw rD, heap[off]             heap-offset relocation (PSEUDO_HEAP_OFF)
    lddw rD, map[name]             map relocation (names bound at assemble())
    ldx{b,h,w,dw} rD, [rS+off]
    stx{b,h,w,dw} [rD+off], rS
    st{b,h,w,dw} [rD+off], imm
    atomic{b,h,w,dw} <add|or|and|xor|xchg|cmpxchg>[_fetch] [rD+off], rS
    j<cc>{,32} rD, rS|imm, label   cc: eq ne gt ge lt le sgt sge slt sle set
    ja label | call <id|helper-name> | exit
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError
from repro.ebpf import isa
from repro.ebpf.asm import Assembler
from repro.ebpf.helpers import DECLARATIONS
from repro.ebpf.isa import Insn, Reg
from repro.ebpf.program import PSEUDO_HEAP_OFF

_HELPER_IDS = {h.name: h.hid for h in DECLARATIONS.values()}

_JCC = {
    "jeq": "==", "jne": "!=", "jgt": ">", "jge": ">=", "jlt": "<",
    "jle": "<=", "jsgt": "s>", "jsge": "s>=", "jslt": "s<", "jsle": "s<=",
    "jset": "&",
}

_ALU = {"add", "sub", "mul", "div", "mod", "and", "or", "xor",
        "lsh", "rsh", "arsh", "mov"}

_SIZES = {"b": 1, "h": 2, "w": 4, "dw": 8}

_ATOMIC_OPS = {
    "add": isa.ATOMIC_ADD,
    "or": isa.ATOMIC_OR,
    "and": isa.ATOMIC_AND,
    "xor": isa.ATOMIC_XOR,
    "xchg": isa.ATOMIC_XCHG,
    "cmpxchg": isa.ATOMIC_CMPXCHG,
}

_MEM_RE = re.compile(r"^\[\s*(r\d+)\s*([+-]\s*\w+)?\s*\]$")


def _reg(tok: str, lineno: int) -> Reg:
    tok = tok.strip().lower()
    if not re.fullmatch(r"r(10|[0-9])", tok):
        raise AssemblerError(f"line {lineno}: bad register {tok!r}")
    return Reg(int(tok[1:]))


def _int(tok: str, lineno: int) -> int:
    try:
        return int(tok.strip(), 0)
    except ValueError:
        raise AssemblerError(f"line {lineno}: bad integer {tok!r}") from None


def _mem(tok: str, lineno: int) -> tuple[Reg, int]:
    m = _MEM_RE.match(tok.strip())
    if not m:
        raise AssemblerError(f"line {lineno}: bad memory operand {tok!r}")
    reg = _reg(m.group(1), lineno)
    off = 0
    if m.group(2):
        off = _int(m.group(2).replace(" ", ""), lineno)
    return reg, off


def assemble_text(source: str, *, maps: dict | None = None) -> list[Insn]:
    """Assemble textual source into an instruction list.

    ``maps`` binds ``map[name]`` relocations to map objects (their fds
    are substituted, exactly like libbpf's relocation step).
    """
    maps = maps or {}
    a = Assembler()
    for lineno, raw in enumerate(source.splitlines(), 1):
        line = raw.split(";")[0].strip()
        if not line:
            continue
        # Labels, possibly followed by an instruction on the same line.
        while True:
            m = re.match(r"^([A-Za-z_.][\w.]*)\s*:\s*(.*)$", line)
            if not m:
                break
            a.label(m.group(1))
            line = m.group(2).strip()
        if not line:
            continue
        _emit(a, line, lineno, maps)
    return a.assemble()


def _split_operands(rest: str) -> list[str]:
    """Split on commas that are not inside brackets."""
    out, depth, cur = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur).strip())
    return [o for o in out if o]


def _emit(a: Assembler, line: str, lineno: int, maps: dict) -> None:
    parts = line.split(None, 1)
    op = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    ops = _split_operands(rest)

    def need(n):
        if len(ops) != n:
            raise AssemblerError(
                f"line {lineno}: {op} expects {n} operand(s), got {len(ops)}"
            )

    # -- control ------------------------------------------------------------
    if op == "exit":
        need(0)
        a.exit()
        return
    if op == "ja":
        need(1)
        a.jmp(ops[0])
        return
    if op == "call":
        need(1)
        tok = ops[0].strip().lower()
        hid = _HELPER_IDS.get(tok)
        if hid is None:
            hid = _int(ops[0], lineno)
        a.call(hid)
        return

    # -- conditional jumps ------------------------------------------------------
    m = re.fullmatch(r"(j[a-z]+?)(32)?", op)
    if m and m.group(1) in _JCC:
        need(3)
        cond = _JCC[m.group(1)]
        dst = _reg(ops[0], lineno)
        src = ops[1].strip().lower()
        src_val = _reg(src, lineno) if src.startswith("r") and src[1:].isdigit() \
            else _int(src, lineno)
        a.jcc(cond, dst, src_val, ops[2], width32=bool(m.group(2)))
        return

    # -- lddw ---------------------------------------------------------------------
    if op == "lddw":
        need(2)
        dst = _reg(ops[0], lineno)
        val = ops[1].strip()
        hm = re.fullmatch(r"heap\[(.+)\]", val)
        mm = re.fullmatch(r"map\[(\w+)\]", val)
        if hm:
            a.ld_imm64(dst, _int(hm.group(1), lineno), pseudo=PSEUDO_HEAP_OFF)
        elif mm:
            name = mm.group(1)
            if name not in maps:
                raise AssemblerError(f"line {lineno}: unbound map {name!r}")
            from repro.ebpf.program import PSEUDO_MAP_FD

            a.ld_imm64(dst, maps[name].fd, pseudo=PSEUDO_MAP_FD)
        else:
            a.ld_imm64(dst, _int(val, lineno))
        return

    # -- loads/stores -----------------------------------------------------------------
    m = re.fullmatch(r"ldx(b|h|w|dw)", op)
    if m:
        need(2)
        dst = _reg(ops[0], lineno)
        src, off = _mem(ops[1], lineno)
        a.ldx(dst, src, off, _SIZES[m.group(1)])
        return
    m = re.fullmatch(r"stx(b|h|w|dw)", op)
    if m:
        need(2)
        dst, off = _mem(ops[0], lineno)
        src = _reg(ops[1], lineno)
        a.stx(dst, src, off, _SIZES[m.group(1)])
        return
    m = re.fullmatch(r"st(b|h|w|dw)", op)
    if m:
        need(2)
        dst, off = _mem(ops[0], lineno)
        a.st_imm(dst, off, _int(ops[1], lineno), _SIZES[m.group(1)])
        return
    m = re.fullmatch(r"atomic(b|h|w|dw)", op)
    if m:
        # "atomicdw add [rD+off], rS" — op-kind and memory operand are
        # space-separated within the first comma-operand.
        need(2)
        first = ops[0].split(None, 1)
        if len(first) != 2:
            raise AssemblerError(f"line {lineno}: atomic wants '<op> [mem]'")
        aop_tok, mem_tok = first[0].strip().lower(), first[1]
        fetch = aop_tok.endswith("_fetch")
        aop_name = aop_tok[:-6] if fetch else aop_tok
        if aop_name not in _ATOMIC_OPS:
            raise AssemblerError(f"line {lineno}: bad atomic op {aop_tok!r}")
        aop = _ATOMIC_OPS[aop_name] | (isa.BPF_FETCH if fetch else 0)
        dst, off = _mem(mem_tok, lineno)
        src = _reg(ops[1], lineno)
        a.atomic(dst, src, off, aop, _SIZES[m.group(1)])
        return

    # -- ALU ----------------------------------------------------------------------------
    m = re.fullmatch(r"(\w+?)(64|32)?", op)
    if m and m.group(1) in _ALU | {"neg", "end"}:
        name, width = m.group(1), m.group(2) or "64"
        if name == "neg":
            need(1)
            a.neg(_reg(ops[0], lineno))
            return
        if name == "end":
            raise AssemblerError(
                f"line {lineno}: use be16/be32/be64 for byteswaps"
            )
        need(2)
        dst = _reg(ops[0], lineno)
        src = ops[1].strip().lower()
        src_val = _reg(src, lineno) if re.fullmatch(r"r\d+", src) \
            else _int(src, lineno)
        method = {"and": "and_", "or": "or_"}.get(name, name)
        if width == "32":
            method32 = method + "32"
            fn = getattr(a, method32, None)
            if fn is None:
                raise AssemblerError(
                    f"line {lineno}: 32-bit form of {name} not supported"
                )
            fn(dst, src_val)
        else:
            getattr(a, method)(dst, src_val)
        return

    m = re.fullmatch(r"be(16|32|64)", op)
    if m:
        need(1)
        a.raw(Insn(isa.BPF_ALU | isa.BPF_END | isa.BPF_X,
                   int(_reg(ops[0], lineno)), 0, 0, int(m.group(1))))
        return

    raise AssemblerError(f"line {lineno}: unknown instruction {op!r}")
