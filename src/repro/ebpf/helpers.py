"""Kernel helper functions — the extension/kernel interface.

eBPF extensions interact with kernel-owned resources only through
hook-specific context objects and helper functions with well-defined
semantics (paper §2.2).  This is what makes kernel-interface compliance
statically verifiable: each helper declares argument/return types and
acquire/release semantics, and the verifier checks calls against these
declarations and tracks acquired references (§3.3).

Helper *declarations* (id, signature, resource semantics, cost) live
here.  Implementations receive an execution environment (``env``) giving
access to the simulated kernel; KFlex-runtime helpers (``kflex_malloc``
et al., Table 2) are declared here but bound to their implementations by
:class:`repro.core.runtime.KFlexRuntime` at load time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

from repro.errors import HelperFault


class Arg(Enum):
    """Verifier-visible argument types."""

    SCALAR = auto()  # any scalar
    CTX = auto()  # the hook context pointer
    CONST_MAP = auto()  # pointer loaded from a map fd
    MAP_KEY = auto()  # readable memory of the map's key_size
    MAP_VALUE = auto()  # readable memory of the map's value_size
    MEM = auto()  # readable memory, size given by the next SIZE arg
    SIZE = auto()  # constant bounding the preceding MEM arg
    SOCK = auto()  # an acquired socket reference
    HEAP_PTR = auto()  # pointer into the extension heap
    HEAP_OR_SCALAR = auto()  # heap pointer or untrusted scalar (kflex_free)


class Ret(Enum):
    """Verifier-visible return types."""

    SCALAR = auto()
    VOID = auto()
    MAP_VALUE_OR_NULL = auto()
    SOCK_OR_NULL = auto()
    HEAP_OR_NULL = auto()


@dataclass(frozen=True)
class Helper:
    """Declaration of one helper function."""

    hid: int
    name: str
    args: tuple[Arg, ...]
    ret: Ret
    #: Resource kind acquired by a successful call ("sock", "lock"), or None.
    acquires: str | None = None
    #: Where the acquired resource's identifying value comes from:
    #: "ret" (e.g. the socket pointer) or "arg1" (e.g. the lock address).
    acquire_from: str = "ret"
    #: Resource kind released by this call, or None.
    releases: str | None = None
    #: Helper id of the destructor the cancellation unwinder must call
    #: to release this helper's acquired resource (§3.3).
    destructor: int | None = None
    #: Cost in native-instruction units for the performance model.
    cost: int = 20
    #: True if the helper may spin (lock acquisition) — execution time
    #: is then workload-dependent rather than fixed.
    may_spin: bool = False
    #: True if the helper may sleep (fault in user pages); only
    #: *sleepable* programs may call it, and stalls are detected by the
    #: runtime's background checker instead of the lockup watchdogs
    #: (§4.3 "Monitoring execution duration").
    may_sleep: bool = False

    @property
    def n_args(self) -> int:
        return len(self.args)


# ---------------------------------------------------------------------------
# Helper IDs (eBPF-compatible where they exist upstream)
# ---------------------------------------------------------------------------

BPF_MAP_LOOKUP_ELEM = 1
BPF_MAP_UPDATE_ELEM = 2
BPF_MAP_DELETE_ELEM = 3
BPF_KTIME_GET_NS = 5
BPF_GET_SMP_PROCESSOR_ID = 8
BPF_SK_LOOKUP_UDP = 85
BPF_SK_RELEASE = 86

BPF_COPY_FROM_USER = 148  # sleepable (upstream id)

# KFlex runtime helpers (Table 2).
KFLEX_MALLOC = 200
KFLEX_FREE = 201
KFLEX_SPIN_LOCK = 202
KFLEX_SPIN_UNLOCK = 203

DECLARATIONS: dict[int, Helper] = {
    h.hid: h
    for h in [
        Helper(
            BPF_MAP_LOOKUP_ELEM,
            "bpf_map_lookup_elem",
            (Arg.CONST_MAP, Arg.MAP_KEY),
            Ret.MAP_VALUE_OR_NULL,
            cost=80,
        ),
        Helper(
            BPF_MAP_UPDATE_ELEM,
            "bpf_map_update_elem",
            (Arg.CONST_MAP, Arg.MAP_KEY, Arg.MAP_VALUE, Arg.SCALAR),
            Ret.SCALAR,
            cost=110,
        ),
        Helper(
            BPF_MAP_DELETE_ELEM,
            "bpf_map_delete_elem",
            (Arg.CONST_MAP, Arg.MAP_KEY),
            Ret.SCALAR,
            cost=90,
        ),
        Helper(BPF_KTIME_GET_NS, "bpf_ktime_get_ns", (), Ret.SCALAR, cost=25),
        Helper(
            BPF_GET_SMP_PROCESSOR_ID,
            "bpf_get_smp_processor_id",
            (),
            Ret.SCALAR,
            cost=5,
        ),
        Helper(
            BPF_SK_LOOKUP_UDP,
            "bpf_sk_lookup_udp",
            (Arg.CTX, Arg.MEM, Arg.SIZE, Arg.SCALAR, Arg.SCALAR),
            Ret.SOCK_OR_NULL,
            acquires="sock",
            destructor=BPF_SK_RELEASE,
            cost=150,
        ),
        Helper(
            BPF_SK_RELEASE,
            "bpf_sk_release",
            (Arg.SOCK,),
            Ret.SCALAR,
            releases="sock",
            cost=30,
        ),
        Helper(
            BPF_COPY_FROM_USER,
            "bpf_copy_from_user",
            (Arg.HEAP_PTR, Arg.SCALAR, Arg.SCALAR),
            Ret.SCALAR,
            cost=400,
            may_sleep=True,
        ),
        Helper(KFLEX_MALLOC, "kflex_malloc", (Arg.SCALAR,), Ret.HEAP_OR_NULL, cost=45),
        Helper(KFLEX_FREE, "kflex_free", (Arg.HEAP_OR_SCALAR,), Ret.VOID, cost=35),
        Helper(
            KFLEX_SPIN_LOCK,
            "kflex_spin_lock",
            (Arg.HEAP_PTR,),
            Ret.VOID,
            acquires="lock",
            acquire_from="arg1",
            destructor=KFLEX_SPIN_UNLOCK,
            cost=20,
            may_spin=True,
        ),
        Helper(
            KFLEX_SPIN_UNLOCK,
            "kflex_spin_unlock",
            (Arg.HEAP_PTR,),
            Ret.VOID,
            releases="lock",
            cost=15,
        ),
    ]
}

#: Helpers vanilla eBPF does not provide — loading a program that calls
#: one of these in eBPF-compat mode is rejected (BMC cannot allocate!).
KFLEX_ONLY = {KFLEX_MALLOC, KFLEX_FREE, KFLEX_SPIN_LOCK, KFLEX_SPIN_UNLOCK}


class HelperTable:
    """Bound helpers for one loaded extension: declaration + impl.

    Implementations are callables ``impl(env, *args) -> int`` where
    ``env`` is the interpreter's :class:`~repro.ebpf.interpreter.ExecEnv`.
    """

    def __init__(self):
        self._impls: dict[int, object] = {}

    def bind(self, hid: int, impl) -> None:
        if hid not in DECLARATIONS:
            raise HelperFault(f"binding unknown helper id {hid}")
        self._impls[hid] = impl

    def declaration(self, hid: int) -> Helper:
        helper = DECLARATIONS.get(hid)
        if helper is None:
            raise HelperFault(f"call to unknown helper id {hid}")
        return helper

    def invoke(self, hid: int, env, args: tuple[int, ...]) -> int:
        impl = self._impls.get(hid)
        if impl is None:
            raise HelperFault(f"helper {self.declaration(hid).name} not bound")
        # Shared choke point of both execution engines: injected helper
        # failures surface here so the fire schedule is engine-identical.
        # (getattr: bare tests invoke with env=None or stub objects.)
        inj = getattr(env, "injector", None)
        if inj is not None:
            inj.at_helper(hid, DECLARATIONS[hid].name)
        return impl(env, *args)

    def is_bound(self, hid: int) -> bool:
        return hid in self._impls


# ---------------------------------------------------------------------------
# Standard implementations over the simulated kernel
# ---------------------------------------------------------------------------


def bind_standard_helpers(table: HelperTable, kernel) -> None:
    """Bind the map/time/socket helpers to a simulated kernel instance."""

    def map_by_addr(env, addr: int):
        m = env.maps_by_addr.get(addr)
        if m is None:
            raise HelperFault(f"bad map pointer {addr:#x}")
        return m

    def map_lookup(env, map_addr, key_ptr):
        m = map_by_addr(env, map_addr)
        key = env.aspace.read_bytes(key_ptr, m.key_size)
        return m.lookup(key)

    def map_update(env, map_addr, key_ptr, val_ptr, flags):
        m = map_by_addr(env, map_addr)
        key = env.aspace.read_bytes(key_ptr, m.key_size)
        val = env.aspace.read_bytes(val_ptr, m.value_size)
        return m.update(key, val, flags) & (1 << 64) - 1

    def map_delete(env, map_addr, key_ptr):
        m = map_by_addr(env, map_addr)
        key = env.aspace.read_bytes(key_ptr, m.key_size)
        return m.delete(key) & (1 << 64) - 1

    def ktime(env):
        return kernel.now_ns()

    def smp_id(env):
        return env.cpu

    def sk_lookup_udp(env, ctx, tuple_ptr, size, netns, flags):
        tup = env.aspace.read_bytes(tuple_ptr, min(size, 12))
        sock = kernel.net.sk_lookup_udp(tup)
        if sock is None:
            return 0
        sock.get_ref()
        return sock.addr

    def sk_release(env, sock_addr):
        sock = kernel.net.sock_by_addr(sock_addr)
        if sock is None:
            raise HelperFault(f"sk_release of bad socket {sock_addr:#x}")
        sock.put_ref()
        return 0

    table.bind(BPF_MAP_LOOKUP_ELEM, map_lookup)
    table.bind(BPF_MAP_UPDATE_ELEM, map_update)
    table.bind(BPF_MAP_DELETE_ELEM, map_delete)
    table.bind(BPF_KTIME_GET_NS, ktime)
    table.bind(BPF_GET_SMP_PROCESSOR_ID, smp_id)
    table.bind(BPF_SK_LOOKUP_UDP, sk_lookup_udp)
    table.bind(BPF_SK_RELEASE, sk_release)
