"""Kernel-provided eBPF maps.

Vanilla eBPF prevents extensions from defining data structures and
forces them onto kernel-provided maps (paper §2.2).  The BMC baseline
(§5.1) is built on exactly these: a preallocated hash map acting as a
look-aside cache.  KFlex extensions largely bypass maps in favour of
the extension heap, but heaps themselves are *implemented as* eBPF maps
so user space can mmap them by fd (§4.1) — see
:class:`repro.core.heap.ExtensionHeap`.

Map value storage lives in the simulated kernel address space so that
helper-returned value pointers are real, dereferenceable addresses the
verifier can bound (PTR_TO_MAP_VALUE with ``mem_size = value_size``).
"""

from __future__ import annotations

import itertools

from repro.errors import MapFull, KernelPanic
from repro.kernel.addrspace import AddressSpace
from repro.kernel.vmalloc import VmallocArena

_fd_counter = itertools.count(3)


def alloc_fd() -> int:
    """Process-global fd allocator (fds 0-2 reserved, as usual)."""
    return next(_fd_counter)


class Map:
    """Base class: fixed key/value sizes, bounded entry count.

    ``journal`` is the durable-state hook: when set (by
    :meth:`repro.state.store.DurableStore.attach`), every *successful*
    mutation is reported with the canonical post-write slot bytes —
    canonical because ``update`` with a short value only overwrites a
    prefix of the slot, so the journal must record what the slot now
    holds, not what the caller passed.
    """

    map_type = "generic"

    def __init__(
        self,
        aspace: AddressSpace,
        arena: VmallocArena,
        *,
        key_size: int,
        value_size: int,
        max_entries: int,
        name: str = "map",
    ):
        if key_size <= 0 or value_size <= 0 or max_entries <= 0:
            raise KernelPanic("invalid map geometry")
        self.aspace = aspace
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.name = name
        self.fd = alloc_fd()
        # Preallocate value storage (kernel maps preallocate by default;
        # BMC relies on this, §5.1).
        self._vm = arena.alloc(
            max(value_size * max_entries, 1), align=8, guard=0, name=f"map:{name}"
        )
        self.region = aspace.map_region(
            self._vm.base, self._vm.size, f"map:{name}", populated=True
        )
        self.journal = None

    def meta(self) -> dict:
        return {
            "map_type": _MAP_TYPE_IDS[self.map_type],
            "key_size": self.key_size,
            "value_size": self.value_size,
            "max_entries": self.max_entries,
            "name": self.name,
        }

    def read_slot(self, slot: int) -> bytes:
        return self.aspace.read_bytes(self.slot_addr(slot), self.value_size)

    def _journal_update(self, key: bytes, slot: int) -> None:
        if self.journal is not None:
            self.journal.record_update(key, self.read_slot(slot))

    def _journal_delete(self, key: bytes) -> None:
        if self.journal is not None:
            self.journal.record_delete(key)

    def entries(self) -> list[tuple[bytes, bytes]]:
        """Stable serialization of live entries (key-sorted for hash
        maps, index order for arrays) — the snapshot/oracle view."""
        raise NotImplementedError

    def load_entries(self, entries) -> None:
        """Recovery path: install entries without journaling them."""
        raise NotImplementedError

    def slot_addr(self, slot: int) -> int:
        if not 0 <= slot < self.max_entries:
            raise KernelPanic(f"map slot {slot} out of range")
        return self._vm.base + slot * self.value_size

    # Interface used by helpers; returns a value address or 0 (NULL).
    def lookup(self, key: bytes) -> int:
        raise NotImplementedError

    def update(self, key: bytes, value: bytes, flags: int = 0) -> int:
        raise NotImplementedError

    def delete(self, key: bytes) -> int:
        raise NotImplementedError


class ArrayMap(Map):
    """BPF_MAP_TYPE_ARRAY: u32 index keys, all slots always present."""

    map_type = "array"

    def __init__(self, aspace, arena, *, value_size, max_entries, name="array"):
        super().__init__(
            aspace,
            arena,
            key_size=4,
            value_size=value_size,
            max_entries=max_entries,
            name=name,
        )

    def _index(self, key: bytes) -> int | None:
        idx = int.from_bytes(key[:4], "little")
        return idx if idx < self.max_entries else None

    def lookup(self, key: bytes) -> int:
        idx = self._index(key)
        return 0 if idx is None else self.slot_addr(idx)

    def update(self, key: bytes, value: bytes, flags: int = 0) -> int:
        idx = self._index(key)
        if idx is None:
            return -22  # -EINVAL
        self.aspace.write_bytes(self.slot_addr(idx), value[: self.value_size])
        self._journal_update(idx.to_bytes(4, "little"), idx)
        return 0

    def delete(self, key: bytes) -> int:
        return -22  # array elements cannot be deleted

    def entries(self) -> list[tuple[bytes, bytes]]:
        return [
            (idx.to_bytes(4, "little"), self.read_slot(idx))
            for idx in range(self.max_entries)
        ]

    def load_entries(self, entries) -> None:
        for key, value in entries:
            idx = self._index(key)
            if idx is None:
                raise KernelPanic(f"recovered array index out of range: {key!r}")
            self.aspace.write_bytes(self.slot_addr(idx), value[: self.value_size])


class HashMap(Map):
    """BPF_MAP_TYPE_HASH with preallocated slots (the kernel default).

    Slot reuse follows a free list, as in the kernel's pcpu_freelist;
    when full, updates of new keys fail with -E2BIG, which is exactly
    the limitation that forces BMC to evict rather than allocate.
    """

    map_type = "hash"

    def __init__(self, aspace, arena, *, key_size, value_size, max_entries, name="hash"):
        super().__init__(
            aspace,
            arena,
            key_size=key_size,
            value_size=value_size,
            max_entries=max_entries,
            name=name,
        )
        self._slots: dict[bytes, int] = {}
        self._free = list(range(max_entries - 1, -1, -1))

    def lookup(self, key: bytes) -> int:
        key = bytes(key[: self.key_size])
        slot = self._slots.get(key)
        return 0 if slot is None else self.slot_addr(slot)

    def update(self, key: bytes, value: bytes, flags: int = 0) -> int:
        key = bytes(key[: self.key_size])
        slot = self._slots.get(key)
        if slot is None:
            if not self._free:
                return -7  # -E2BIG
            slot = self._free.pop()
            self._slots[key] = slot
        self.aspace.write_bytes(self.slot_addr(slot), value[: self.value_size])
        self._journal_update(key, slot)
        return 0

    def delete(self, key: bytes) -> int:
        key = bytes(key[: self.key_size])
        slot = self._slots.pop(key, None)
        if slot is None:
            return -2  # -ENOENT
        self._free.append(slot)
        self._journal_delete(key)
        return 0

    def __len__(self) -> int:
        return len(self._slots)

    def update_or_full(self, key: bytes, value: bytes) -> bool:
        """Convenience for BMC: returns False when the map was full."""
        return self.update(key, value) == 0

    def entries(self) -> list[tuple[bytes, bytes]]:
        return [
            (key, self.read_slot(slot)) for key, slot in sorted(self._slots.items())
        ]

    def load_entries(self, entries) -> None:
        for key, value in entries:
            key = bytes(key[: self.key_size])
            slot = self._slots.get(key)
            if slot is None:
                if not self._free:
                    raise KernelPanic("recovered more entries than max_entries")
                slot = self._free.pop()
                self._slots[key] = slot
            self.aspace.write_bytes(self.slot_addr(slot), value[: self.value_size])


_MAP_TYPE_IDS = {"generic": 0, "array": 1, "hash": 2}
_MAP_CLASSES: dict[int, type] = {1: ArrayMap, 2: HashMap}


def build_map(aspace, arena, meta: dict):
    """Reconstruct a map from snapshot metadata (the recovery path).

    The returned map gets a fresh fd — identity across a crash is the
    *pin path*, not the fd, just as in bpffs.
    """
    cls = _MAP_CLASSES.get(meta["map_type"])
    if cls is None:
        raise KernelPanic(f"unknown map type id {meta['map_type']}")
    kwargs = {
        "value_size": meta["value_size"],
        "max_entries": meta["max_entries"],
        "name": meta.get("name", "map"),
    }
    if cls is HashMap:
        kwargs["key_size"] = meta["key_size"]
    return cls(aspace, arena, **kwargs)
