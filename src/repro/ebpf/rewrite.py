"""Bytecode rewriting with jump fixup.

Kie (the KFlex instrumentation engine, §3.2–3.3) inserts guard and
cancellation-point instructions into verified bytecode.  Insertion
changes instruction positions, so every slot-based jump offset must be
recomputed.  This module converts a program into a symbolic form whose
jumps reference instruction *indices*, supports insertion, and resolves
back to slot-based offsets.

Insertion semantics: sequences inserted before instruction ``i`` are
executed by every path that previously reached ``i``, including jumps
that targeted ``i`` directly.  This is required for correctness of both
guards (every path to a heap access must be sanitised) and cancellation
points (every traversal of a loop back edge must pass the Cp).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import EncodingError
from repro.ebpf import isa
from repro.ebpf.isa import Insn


def jump_target_index(insns: list[Insn], i: int) -> int:
    """Index of the instruction a jump at index ``i`` targets."""
    slot_of = isa.slot_offsets(insns)
    target_slot = slot_of[i] + insns[i].slots + insns[i].off
    # Build reverse map lazily; programs are small enough.
    for j, s in enumerate(slot_of):
        if s == target_slot:
            return j
    if target_slot == isa.total_slots(insns):
        return len(insns)
    raise EncodingError(f"jump at insn {i} targets mid-instruction slot {target_slot}")


@dataclass
class SymInsn:
    """An instruction whose jump target (if any) is an index, not an offset."""

    insn: Insn
    target: int | None = None


class Rewriter:
    """Insert instrumentation into a program while preserving jumps.

    Typical Kie usage::

        rw = Rewriter(insns)
        for idx in reversed(guard_sites):
            rw.insert_before(idx, [guard_insn])
        out = rw.resolve()

    ``insert_before`` takes indices in the *original* program; the
    rewriter tracks the mapping, so insertion order does not matter.
    """

    def __init__(self, insns: list[Insn]):
        self._sym: list[SymInsn] = []
        slot_of = isa.slot_offsets(insns)
        slot_to_idx = {s: j for j, s in enumerate(slot_of)}
        slot_to_idx[isa.total_slots(insns)] = len(insns)
        for i, insn in enumerate(insns):
            target = None
            if insn.is_jump:
                tslot = slot_of[i] + insn.slots + insn.off
                if tslot not in slot_to_idx:
                    raise EncodingError(
                        f"jump at insn {i} targets mid-instruction slot {tslot}"
                    )
                target = slot_to_idx[tslot]
            self._sym.append(SymInsn(insn, target))
        # orig index -> current index of the original instruction
        self._pos = list(range(len(insns)))
        self._n_orig = len(insns)

    def current_index(self, orig_idx: int) -> int:
        """Current position of original instruction ``orig_idx``."""
        return self._pos[orig_idx]

    def insert_before(self, orig_idx: int, new_insns: list[Insn]) -> None:
        """Insert ``new_insns`` immediately before original insn ``orig_idx``.

        Jumps that targeted ``orig_idx`` now target the first inserted
        instruction, so the instrumentation dominates the original insn.
        """
        at = self._pos[orig_idx]
        n = len(new_insns)
        tagged = [
            SymInsn(replace(ins, orig_idx=orig_idx) if ins.orig_idx is None else ins)
            for ins in new_insns
        ]
        self._sym[at:at] = tagged
        # Shift targets strictly beyond the insertion point.  Targets
        # equal to `at` stay put: they now enter the inserted sequence
        # first, so the instrumentation dominates the original insn.
        for si in self._sym:
            if si.target is not None and si.target > at:
                si.target += n
        for i in range(self._n_orig):
            if self._pos[i] >= at and i != orig_idx:
                self._pos[i] += n
        self._pos[orig_idx] += n  # the original insn itself moved past inserts

    def insert_after(self, orig_idx: int, new_insns: list[Insn]) -> None:
        """Insert ``new_insns`` immediately after original insn ``orig_idx``.

        Only fall-through from ``orig_idx`` executes the inserted code:
        jumps that targeted the *next* instruction still skip it.  Used
        for post-call resource spills and release clears (§4.3), which
        must run only when the call itself just executed.
        """
        at = self._pos[orig_idx] + 1
        n = len(new_insns)
        tagged = [
            SymInsn(replace(ins, orig_idx=orig_idx) if ins.orig_idx is None else ins)
            for ins in new_insns
        ]
        self._sym[at:at] = tagged
        for si in self._sym:
            if si.target is not None and si.target >= at:
                si.target += n
        for i in range(self._n_orig):
            if self._pos[i] >= at:
                self._pos[i] += n

    def replace_insn(self, orig_idx: int, new_insn: Insn) -> None:
        """Swap the original instruction at ``orig_idx`` for ``new_insn``."""
        at = self._pos[orig_idx]
        target = self._sym[at].target
        self._sym[at] = SymInsn(replace(new_insn, orig_idx=orig_idx), target)

    def resolve(self) -> list[Insn]:
        """Produce the rewritten program with slot-based offsets."""
        insns = [si.insn for si in self._sym]
        slot_of = isa.slot_offsets(insns)
        total = isa.total_slots(insns)
        out: list[Insn] = []
        for i, si in enumerate(self._sym):
            insn = si.insn
            if si.target is not None:
                tslot = slot_of[si.target] if si.target < len(insns) else total
                off = tslot - (slot_of[i] + insn.slots)
                if not -(1 << 15) <= off < (1 << 15):
                    raise EncodingError(f"rewritten jump offset {off} overflows")
                insn = insn.with_off(off)
            out.append(insn)
        return out
