"""The JIT lowering pass: instrumented bytecode -> executable program.

The paper's JIT compiles instrumented bytecode to x86-64, reserving R9
for the heap mask and R12 for the heap base so guards lower to a single
``AND`` with the base folded into indexed addressing (§4.2).  Python
cannot emit machine code, so this pass does the two things the real JIT
contributes to the reproduction:

1. **Validation** — pseudo-instructions may only come from Kie; a raw
   program containing them is rejected (the real verifier would have
   done so before JIT).
2. **Cost assignment** — a per-instruction native-cost array used by
   the interpreter's cycle accounting.  Costs approximate x86-64
   instruction/latency counts on the paper's testbed and are the basis
   of every performance figure; see :mod:`repro.sim.costs` for the
   nanosecond conversion.

The cost model is deliberately simple and uniform across systems under
comparison (KMod baselines run through the same table minus
instrumentation), so relative results — the shapes the paper reports —
are driven by instruction counts, guard elision, and kernel-path
constants rather than by tuning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LoadError
from repro.ebpf import isa
from repro.ebpf.isa import Insn

# Native cost units (~cycles) per instruction kind.
COST_ALU = 1
COST_MUL = 3
COST_DIV = 20
COST_BRANCH = 1
COST_MEM = 4  # L1-hit load/store
COST_ATOMIC = 20  # lock-prefixed RMW
COST_CALL_OVERHEAD = 5
#: One AND against the reserved mask register; the base add is folded
#: into the addressing mode (§4.2), so a guard is a single instruction.
COST_GUARD = 1
#: The *terminate* cell load plus the dereference.  Both stay in L1 and
#: are independent of the loop's own dependency chain, so out-of-order
#: execution hides most of their latency — the paper calls the overhead
#: "negligible" (§3.3).  Charge the issue slots, not the full latency.
COST_CANCELPT = 2
COST_TRANSLATE = 2  # AND + ADD against the user base

#: Extra prologue/epilogue work when the extension uses a heap: push/pop
#: callee-saved R12 and load base/mask into R12/R9 (§4.2).
HEAP_PROLOGUE_COST = 4


@dataclass
class JitProgram:
    """Executable output: instructions plus their native costs."""

    insns: list[Insn]
    costs: list[int]
    prologue_cost: int
    native_insns: int  # total native instructions emitted (static count)
    helper_costs: dict[int, int] = field(default_factory=dict)


def lower(insns: list[Insn], *, uses_heap: bool, from_kie: bool = False) -> JitProgram:
    """Assign native costs; validate pseudo-instruction provenance."""
    costs: list[int] = []
    native = 0
    for i, insn in enumerate(insns):
        op = insn.opcode
        if op in (isa.KFLEX_GUARD, isa.KFLEX_CANCELPT, isa.KFLEX_TRANSLATE):
            if not from_kie:
                raise LoadError(
                    f"insn {i}: KFlex pseudo-instruction in non-instrumented input"
                )
            cost = {
                isa.KFLEX_GUARD: COST_GUARD,
                isa.KFLEX_CANCELPT: COST_CANCELPT,
                isa.KFLEX_TRANSLATE: COST_TRANSLATE,
            }[op]
        elif insn.is_ld_imm64:
            cost = COST_ALU
        elif insn.cls in (isa.BPF_ALU, isa.BPF_ALU64):
            aop = op & isa.OP_MASK
            if aop == isa.BPF_MUL:
                cost = COST_MUL
            elif aop in (isa.BPF_DIV, isa.BPF_MOD):
                cost = COST_DIV
            else:
                cost = COST_ALU
        elif insn.cls == isa.BPF_LDX or insn.cls == isa.BPF_ST:
            cost = COST_MEM
        elif insn.cls == isa.BPF_STX:
            cost = COST_ATOMIC if insn.is_atomic else COST_MEM
        elif insn.cls in (isa.BPF_JMP, isa.BPF_JMP32):
            if insn.is_call:
                cost = COST_CALL_OVERHEAD  # helper body cost added at runtime
            else:
                cost = COST_BRANCH
        else:
            raise LoadError(f"insn {i}: cannot lower opcode {op:#x}")
        costs.append(cost)
        native += cost if cost <= COST_MEM else 1  # rough static insn count

    return JitProgram(
        insns=insns,
        costs=costs,
        prologue_cost=HEAP_PROLOGUE_COST if uses_heap else 0,
        native_insns=native,
    )
