"""Staged compilation pipeline: the Fig. 1 load path as explicit passes.

Historically ``KFlexRuntime.load`` ran verify → instrument → lower as an
inline monolith, with the threaded-engine translation bolted onto the
extension afterwards.  This module restructures the load path the way
Rex (arXiv:2502.18832) and BeePL (arXiv:2507.09883) argue extension
tooling should be built — as explicit, composable compilation stages
over typed, immutable artifacts:

    RawProgram → VerifiedProgram → InstrumentedProgram
               → LoweredProgram  → TranslatedProgram

* :class:`RawProgram` — the submitted bytecode plus everything the
  pipeline's behaviour depends on (verifier configuration, concrete
  heap) and a content digest of the bytecode.
* :class:`VerifiedProgram` — adds the verifier's
  :class:`~repro.ebpf.verifier.Analysis` (``None`` for unverified KMod
  loads; the pipeline models them as a verification pass that admits
  everything and learns nothing).
* :class:`InstrumentedProgram` — wraps Kie's output (guards,
  cancellation points, relocations, spills).  Unverified loads get the
  *identity* instrumentation via :func:`repro.core.kie.uninstrumented`,
  so no caller ever fabricates a stage output by hand.
* :class:`LoweredProgram` — wraps the JIT's cost-assigned
  :class:`~repro.ebpf.jit.JitProgram`.
* :class:`TranslatedProgram` — one engine instance bound to one
  ``ExecEnv`` (per CPU).  Translation closes over the environment, so
  unlike the earlier stages it is pooled per extension, not shared in
  the content-addressed cache.

A :class:`PassManager` runs registered :class:`Pass` objects in order.
Passes are pluggable: future optimisation stages (guard coalescing,
dead-store elimination) register between ``instrument`` and ``lower``
with :meth:`PassManager.register` and see exactly the artifacts the
built-in stages see.

On top sits the :class:`ProgramCache`, a content-addressed memo of
per-stage payloads:

* ``verify`` is keyed by ``(bytecode digest, VerifierConfig fields,
  heap size)`` — the analysis depends only on heap *geometry*, so it is
  shared across heap instances of the same size.
* ``instrument`` and ``lower`` additionally key on the concrete heap
  base, because relocation burns absolute heap/map addresses into the
  bytecode.

Any difference in elision, mode, perf mode, or heap size therefore
lands on a different key — stale artifacts can never be served.  The
cache is bounded (LRU) and counts hits/misses/evictions per stage;
:class:`PipelineStats` adds per-stage wall-clock timings
(:class:`repro.sim.metrics.StageStats`).  ``kflexctl stats`` and
``benchmarks/bench_load_path.py`` surface both.
"""

from __future__ import annotations

import hashlib
import os
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields as dataclass_fields

from repro.errors import LoadError
from repro.ebpf import isa, jit
from repro.ebpf.engine import make_engine
from repro.ebpf.interpreter import ALU_BINOPS, JMP_TESTS
from repro.ebpf.program import Program
from repro.ebpf.verifier import Analysis, Verifier, VerifierConfig
from repro.sim.metrics import StageStats

# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------


def program_digest(program: Program) -> str:
    """Content digest of everything verification reads from a program:
    the encoded bytecode, the hook (context layout and default return),
    sleepability, and the geometry of every referenced map (relocation
    bakes map bases into the instructions)."""
    h = hashlib.sha256()
    h.update(isa.encode(program.insns))
    h.update(program.hook.encode())
    h.update(b"\x01" if program.sleepable else b"\x00")
    for fd in sorted(program.maps):
        m = program.maps[fd]
        h.update(struct.pack("<qQQ", fd, m.region.base, m.region.size))
    return h.hexdigest()


def config_key(config: VerifierConfig | None) -> tuple:
    """Every VerifierConfig field, by name — a new knob automatically
    becomes part of the cache key, so adding one can never cause a
    stale hit.  ``None`` marks the unverified (KMod) load flavour."""
    if config is None:
        return ("unverified",)
    return tuple(
        (f.name, getattr(config, f.name)) for f in dataclass_fields(config)
    )


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RawProgram:
    """Stage 0: the submitted program plus the load parameters that
    determine every downstream artifact."""

    program: Program
    #: ``None`` = unverified load (the §5.2 KMod baseline).
    config: VerifierConfig | None
    #: Concrete extension heap (geometry *and* base address), or None.
    heap: object | None
    digest: str

    @property
    def heap_size(self) -> int | None:
        if self.heap is not None:
            return self.heap.size
        return self.program.heap_size

    def verify_key(self) -> tuple:
        """Cache key for heap-geometry-dependent stages (verification
        reads the heap size, never its base address)."""
        return (self.digest, config_key(self.config), self.heap_size)

    def placement_key(self) -> tuple:
        """Cache key for stages that bake concrete addresses in
        (relocation: heap base, map bases via the digest)."""
        heap_at = None if self.heap is None else (self.heap.base, self.heap.size)
        return self.verify_key() + (heap_at,)


@dataclass(frozen=True)
class VerifiedProgram:
    """Stage 1 output: the raw program plus the verifier's analysis
    (``None`` when the load flavour skips verification)."""

    raw: RawProgram
    analysis: Analysis | None

    @property
    def verified(self) -> bool:
        return self.analysis is not None


@dataclass(frozen=True)
class InstrumentedProgram:
    """Stage 2 output: wraps Kie's instrumented program (``kprog``)."""

    source: VerifiedProgram
    #: :class:`repro.core.kie.InstrumentedProgram`.
    kprog: object

    @property
    def raw(self) -> RawProgram:
        return self.source.raw


@dataclass(frozen=True)
class LoweredProgram:
    """Stage 3 output: wraps the JIT's cost-assigned program."""

    instrumented: InstrumentedProgram
    #: :class:`repro.ebpf.jit.JitProgram`.
    jprog: jit.JitProgram

    @property
    def raw(self) -> RawProgram:
        return self.instrumented.raw

    @property
    def kprog(self):
        return self.instrumented.kprog

    @property
    def analysis(self) -> Analysis | None:
        return self.instrumented.source.analysis


@dataclass(frozen=True)
class FuseConfig:
    """Superinstruction-fusion knobs.  Every field is folded into the
    fuse stage's cache key (see :func:`fuse_config_key`), so fused and
    unfused artifacts can never collide in the :class:`ProgramCache`."""

    #: Master switch; ``False`` produces an empty plan (the escape
    #: hatch behind ``kflexctl --no-fuse`` / ``REPRO_FUSE=0``).
    enabled: bool = True
    #: Longest run of instructions collapsed into one fused closure.
    max_len: int = 8
    #: Also fuse the LDX -> GUARD -> STX heap read-modify-write idiom
    #: (deoptimizes to single-step execution on any fast-path miss).
    mem_idioms: bool = True


def fuse_config_key(config: FuseConfig | None) -> tuple:
    """Field-by-field key, same convention as :func:`config_key`: a new
    fusion knob automatically becomes part of the cache key."""
    if config is None:
        return ("nofuse",)
    return tuple(
        (f.name, getattr(config, f.name)) for f in dataclass_fields(config)
    )


def default_fuse_config() -> FuseConfig:
    """Process-default fusion config (``REPRO_FUSE=0`` disables)."""
    return FuseConfig(enabled=os.environ.get("REPRO_FUSE", "1") != "0")


def _fusible_member(insn, has_heap: bool) -> bool:
    """True for straight-line instructions that can never raise: safe
    to execute mid-superinstruction, where a fault could not be
    attributed to the right instruction index."""
    cls = insn.opcode & isa.CLASS_MASK
    if cls == isa.BPF_ALU64 or cls == isa.BPF_ALU:
        op = insn.opcode & isa.OP_MASK
        if op == isa.BPF_END:
            return insn.imm in (16, 32, 64)
        if op == isa.BPF_NEG:
            return True
        return op in ALU_BINOPS
    if cls == isa.BPF_LD:
        return insn.is_ld_imm64
    if insn.opcode == isa.KFLEX_GUARD:
        # The guard is pure arithmetic over burned heap constants; it
        # compiles to a raiser without a heap, so only fuse with one.
        return has_heap
    return False


def _fusible_terminal(insn) -> bool:
    """True for instructions allowed to *end* a fused block.  They may
    raise (CALL helper faults, EXIT, CANCELPT) — the engine points the
    pc at the terminal before executing the block, so fault attribution
    stays exact."""
    cls = insn.opcode & isa.CLASS_MASK
    if cls != isa.BPF_JMP and cls != isa.BPF_JMP32:
        return False
    if insn.opcode in (isa.KFLEX_GUARD, isa.KFLEX_TRANSLATE):
        return False
    if insn.opcode == isa.KFLEX_CANCELPT:
        return True
    if insn.is_call or insn.is_exit:
        return True
    op = insn.opcode & isa.OP_MASK
    return op == isa.BPF_JA or op in JMP_TESTS


def compute_fuse_plan(insns, config: FuseConfig, *, has_heap: bool) -> tuple:
    """Scan a lowered instruction list for fusible runs.

    Returns an immutable plan: ``((start, length, kind), ...)`` with
    non-overlapping blocks in program order.  Kinds:

    * ``"mem"`` — the LDX -> GUARD -> STX heap idiom (fast-path only,
      deoptimizes on a cache miss);
    * ``"mov"`` — a run of register moves;
    * ``"alu"`` — a straight-line arithmetic run;
    * ``"alu_jmp"`` — an arithmetic run absorbed into its terminal
      branch / call / exit / cancellation point.

    Jumping *into* the middle of a block is always legal: the engine
    keeps the unfused handler at every index, so a mid-block entry
    simply executes single-stepped.
    """
    if not config.enabled:
        return ()
    plan = []
    n = len(insns)
    max_len = max(2, config.max_len)
    i = 0
    while i < n:
        if config.mem_idioms and has_heap and i + 2 < n:
            ldx, g, stx = insns[i], insns[i + 1], insns[i + 2]
            if (
                (ldx.opcode & isa.CLASS_MASK) == isa.BPF_LDX
                and g.opcode == isa.KFLEX_GUARD
                and g.dst == ldx.dst
                and (stx.opcode & isa.CLASS_MASK) == isa.BPF_STX
                and not stx.is_atomic
                and stx.dst == g.dst
                and stx.src != g.dst
            ):
                plan.append((i, 3, "mem"))
                i += 3
                continue
        if _fusible_member(insns[i], has_heap):
            j = i + 1
            while j < n and j - i < max_len and _fusible_member(insns[j], has_heap):
                j += 1
            kind = "mov" if all(
                (x.opcode & isa.OP_MASK) == isa.BPF_MOV
                and (x.opcode & isa.CLASS_MASK) in (isa.BPF_ALU64, isa.BPF_ALU)
                for x in insns[i:j]
            ) else "alu"
            if j < n and j - i < max_len and _fusible_terminal(insns[j]):
                j += 1
                kind = "alu_jmp"
            if j - i >= 2:
                plan.append((i, j - i, kind))
                i = j
                continue
        i += 1
    return tuple(plan)


@dataclass(frozen=True)
class FusedProgram:
    """Stage 3.5 output: the lowered program plus a superinstruction
    plan.  Proxies the :class:`LoweredProgram` surface so downstream
    consumers (the runtime, tools, tests) are agnostic to whether the
    fuse stage ran."""

    lowered: LoweredProgram
    #: ``((start, length, kind), ...)`` — see :func:`compute_fuse_plan`.
    plan: tuple
    fuse_config: FuseConfig

    @property
    def jprog(self) -> jit.JitProgram:
        return self.lowered.jprog

    @property
    def instrumented(self) -> InstrumentedProgram:
        return self.lowered.instrumented

    @property
    def raw(self) -> RawProgram:
        return self.lowered.raw

    @property
    def kprog(self):
        return self.lowered.kprog

    @property
    def analysis(self) -> Analysis | None:
        return self.lowered.analysis


@dataclass(frozen=True)
class TranslatedProgram:
    """Stage 4 output: one engine bound to one ExecEnv.  Pooled per
    (extension, CPU) — the closures close over the environment, so this
    artifact is never shared through the content-addressed cache."""

    lowered: LoweredProgram
    engine_name: str
    cpu: int
    engine: object


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: stage name -> {"hits": n, "misses": n}
    by_stage: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "by_stage": {k: dict(v) for k, v in self.by_stage.items()},
        }


class ProgramCache:
    """Bounded (LRU) content-addressed cache of per-stage payloads.

    Entries are keyed by ``(stage name, stage cache key)``; the values
    are the stage *payloads* (an ``Analysis``, a Kie program, a
    ``JitProgram``) rather than whole artifacts, so a hit is re-wrapped
    around the caller's own upstream artifact — a cached analysis never
    smuggles a previous load's heap object along with it.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise LoadError(f"ProgramCache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _stage_stats(self, stage: str) -> dict:
        return self.stats.by_stage.setdefault(stage, {"hits": 0, "misses": 0})

    def get(self, stage: str, key: tuple):
        k = (stage, key)
        payload = self._entries.get(k)
        st = self._stage_stats(stage)
        if payload is None:
            self.stats.misses += 1
            st["misses"] += 1
            return None
        self._entries.move_to_end(k)
        self.stats.hits += 1
        st["hits"] += 1
        return payload

    def put(self, stage: str, key: tuple, payload) -> None:
        k = (stage, key)
        self._entries[k] = payload
        self._entries.move_to_end(k)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, *, digest: str | None = None,
                   stage: str | None = None) -> int:
        """Explicitly drop entries by program digest and/or stage;
        returns the number removed.  (Key mismatch already guarantees
        correctness — this exists for memory reclamation, e.g. when a
        program is retired for good.)"""
        doomed = [
            k for k in self._entries
            if (stage is None or k[0] == stage)
            and (digest is None or k[1][0] == digest)
        ]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class Pass:
    """One pipeline stage.

    Subclasses implement :meth:`run` (artifact in, artifact out).  A
    cacheable pass also implements :meth:`cache_key` (returning a
    content-address for its input; ``None`` disables caching),
    :meth:`payload` (what to store on a miss) and :meth:`rebuild`
    (re-wrap a cached payload around the *current* input artifact).
    """

    name = "?"

    def cache_key(self, art) -> tuple | None:
        return None

    def run(self, art):
        raise NotImplementedError

    def payload(self, out):
        return out

    def rebuild(self, art, payload):
        return payload

    def consume_subtimings(self) -> dict | None:
        """Wall-clock split of the last :meth:`run`, or None.  A pass
        that reports one returns ``{sub-stage: ns}`` exactly once per
        run (the manager records them as ``"name:sub"`` stages)."""
        return None


class VerifyPass(Pass):
    """Fig. 1 step 1: the eBPF verifier.  The single most expensive
    stage — and the one whose result depends only on bytecode, config
    and heap geometry, so it caches across heap instances.

    With a :class:`repro.verify.VerificationService` plugged in, jobs
    go through its queue/worker pool (and per-worker differential
    memos); without one, the pass runs the verifier inline — the serial
    fallback.  Either way the analysis is bit-identical and the
    queue-wait / region-explore / merge split is reported via
    :meth:`consume_subtimings`.
    """

    name = "verify"

    def __init__(self, service=None):
        #: Optional :class:`repro.verify.VerificationService`.
        self.service = service
        self._subtimings: dict | None = None

    def cache_key(self, art: RawProgram) -> tuple:
        return art.verify_key()

    def run(self, art: RawProgram) -> VerifiedProgram:
        if art.config is None:
            # Unverified flavour (KMod baseline §5.2): admit everything,
            # learn nothing.  Downstream stages see analysis=None.
            return VerifiedProgram(art, None)
        if self.service is not None:
            analysis, timings = self.service.verify_timed(
                art.program, art.config, art.heap_size
            )
            self._subtimings = timings
        else:
            v = Verifier(art.program, art.config, heap_size=art.heap_size)
            analysis = v.verify()
            self._subtimings = {
                "queue": 0.0,
                "explore": v.timings["explore_ns"],
                "merge": v.timings["merge_ns"],
            }
        return VerifiedProgram(art, analysis)

    def payload(self, out: VerifiedProgram):
        return (out.analysis,)  # tuple: a cached None is not a miss

    def rebuild(self, art: RawProgram, payload) -> VerifiedProgram:
        return VerifiedProgram(art, payload[0])

    def consume_subtimings(self) -> dict | None:
        sub, self._subtimings = self._subtimings, None
        return sub


class InstrumentPass(Pass):
    """Fig. 1 step 2: Kie.  Relocation bakes heap/map base addresses
    into the bytecode, so the key includes concrete placement."""

    name = "instrument"

    def cache_key(self, art: VerifiedProgram) -> tuple:
        return art.raw.placement_key()

    def run(self, art: VerifiedProgram) -> InstrumentedProgram:
        from repro.core import kie

        if art.analysis is None:
            kprog = kie.uninstrumented(art.raw.program, heap=art.raw.heap)
        else:
            kprog = kie.instrument(
                art.raw.program, art.analysis, heap=art.raw.heap
            )
        return InstrumentedProgram(art, kprog)

    def payload(self, out: InstrumentedProgram):
        return out.kprog

    def rebuild(self, art: VerifiedProgram, payload) -> InstrumentedProgram:
        return InstrumentedProgram(art, payload)


class LowerPass(Pass):
    """Fig. 1 step 3: JIT lowering (validation + native costs)."""

    name = "lower"

    def cache_key(self, art: InstrumentedProgram) -> tuple:
        return art.raw.placement_key()

    def run(self, art: InstrumentedProgram) -> LoweredProgram:
        # Unverified loads never pay the heap prologue: an unsafe
        # module reserves no mask/base registers (R9/R12, §4.2).
        uses_heap = art.kprog.uses_heap and art.source.verified
        jprog = jit.lower(art.kprog.insns, uses_heap=uses_heap, from_kie=True)
        return LoweredProgram(art, jprog)

    def payload(self, out: LoweredProgram):
        return out.jprog

    def rebuild(self, art: InstrumentedProgram, payload) -> LoweredProgram:
        return LoweredProgram(art, payload)


class FusePass(Pass):
    """Superinstruction fusion: collapse hot straight-line runs of the
    lowered program into single fused closures for the threaded-code
    engine (ALU chains into their terminal branch, MOV chains, the
    LDX -> GUARD -> STX heap idiom).

    The pass computes a *plan* over instruction indices; the engine
    composes its own per-instruction closures accordingly at translate
    time, charging exactly the same per-instruction steps and costs, so
    ``ExecResult`` is bit-identical with the pass on or off.  The plan
    depends on the placement-keyed bytecode and every
    :class:`FuseConfig` field, so fused and unfused artifacts occupy
    distinct :class:`ProgramCache` keys.
    """

    name = "fuse"

    def __init__(self, config: FuseConfig | None = None):
        self.config = config if config is not None else default_fuse_config()

    def cache_key(self, art: LoweredProgram) -> tuple:
        return art.raw.placement_key() + (fuse_config_key(self.config),)

    def run(self, art: LoweredProgram) -> FusedProgram:
        plan = compute_fuse_plan(
            art.jprog.insns, self.config,
            has_heap=art.raw.heap is not None,
        )
        return FusedProgram(art, plan, self.config)

    def payload(self, out: FusedProgram):
        return out.plan

    def rebuild(self, art: LoweredProgram, payload) -> FusedProgram:
        return FusedProgram(art, payload, self.config)


# ---------------------------------------------------------------------------
# Pass manager
# ---------------------------------------------------------------------------


class PassManager:
    """Runs registered passes in order, with per-stage caching and
    timing.  ``register`` splices new passes anywhere in the sequence —
    the seam future optimisation passes plug into."""

    def __init__(self, passes=None):
        self._passes: list[Pass] = list(
            passes if passes is not None else default_passes()
        )

    @property
    def names(self) -> list[str]:
        return [p.name for p in self._passes]

    def _index_of(self, name: str) -> int:
        for i, p in enumerate(self._passes):
            if p.name == name:
                return i
        raise LoadError(f"no pipeline pass named {name!r} (have: {self.names})")

    def register(self, p: Pass, *, before: str | None = None,
                 after: str | None = None) -> None:
        """Insert a pass.  Exactly one of ``before``/``after`` names an
        existing stage; with neither, the pass is appended."""
        if before is not None and after is not None:
            raise LoadError("register() takes before= or after=, not both")
        if any(q.name == p.name for q in self._passes):
            raise LoadError(f"pipeline pass {p.name!r} already registered")
        if before is not None:
            self._passes.insert(self._index_of(before), p)
        elif after is not None:
            self._passes.insert(self._index_of(after) + 1, p)
        else:
            self._passes.append(p)

    def replace(self, name: str, p: Pass) -> Pass:
        """Swap a stage implementation; returns the displaced pass."""
        i = self._index_of(name)
        old, self._passes[i] = self._passes[i], p
        return old

    def remove(self, name: str) -> Pass:
        i = self._index_of(name)
        return self._passes.pop(i)

    def run(self, art, *, cache: ProgramCache | None = None,
            stats: "PipelineStats | None" = None):
        for p in self._passes:
            t0 = time.perf_counter_ns()
            key = p.cache_key(art) if cache is not None else None
            payload = cache.get(p.name, key) if key is not None else None
            if payload is None:
                out = p.run(art)
                if key is not None:
                    cache.put(p.name, key, p.payload(out))
            else:
                out = p.rebuild(art, payload)
            sub = p.consume_subtimings()  # always drain, even w/o stats
            if stats is not None:
                stats.record_stage(
                    p.name, time.perf_counter_ns() - t0,
                    cached=payload is not None,
                )
                if sub:
                    for sub_name, ns in sub.items():
                        stats.record_stage(f"{p.name}:{sub_name}", ns)
            art = out
        return art


def default_passes() -> list[Pass]:
    return [VerifyPass(), InstrumentPass(), LowerPass(), FusePass()]


# ---------------------------------------------------------------------------
# Pipeline statistics
# ---------------------------------------------------------------------------


@dataclass
class PipelineStats:
    """Per-runtime pipeline accounting, surfaced by ``kflexctl stats``."""

    loads: int = 0
    #: Loads whose every cacheable stage hit (no verifier run at all).
    warm_loads: int = 0
    #: stage name -> StageStats (wall-clock, runs, cached-hit counts).
    stages: dict = field(default_factory=dict)
    #: Engine translations actually performed (cold per extension/CPU).
    translations: int = 0
    #: Invocations served by an already-translated pooled engine.
    pool_hits: int = 0

    def record_stage(self, name: str, ns: float, *, cached: bool = False) -> None:
        st = self.stages.get(name)
        if st is None:
            st = self.stages[name] = StageStats()
        st.record(ns, cached=cached)

    def as_dict(self) -> dict:
        return {
            "loads": self.loads,
            "warm_loads": self.warm_loads,
            "translations": self.translations,
            "pool_hits": self.pool_hits,
            "stages": {k: v.as_dict() for k, v in self.stages.items()},
        }


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class CompilationPipeline:
    """One per :class:`~repro.core.runtime.KFlexRuntime`: owns the pass
    sequence, the content-addressed cache, and the statistics."""

    def __init__(self, *, cache: ProgramCache | None = None,
                 passes: PassManager | None = None,
                 fuse: FuseConfig | bool | None = None,
                 verify_service=None):
        self.cache = cache if cache is not None else ProgramCache()
        self.passes = passes if passes is not None else PassManager()
        if fuse is not None:
            cfg = fuse if isinstance(fuse, FuseConfig) else FuseConfig(
                enabled=bool(fuse)
            )
            self.passes.replace("fuse", FusePass(cfg))
        self.verify_service = verify_service
        if verify_service is not None:
            self.passes.replace("verify", VerifyPass(verify_service))
        self.stats = PipelineStats()

    # -- load-path stages -------------------------------------------------

    def compile(self, program: Program, *, config: VerifierConfig | None,
                heap=None) -> LoweredProgram:
        """Run the registered stages over a program; ``config=None``
        selects the unverified (KMod) flavour."""
        raw = RawProgram(program, config, heap, program_digest(program))
        misses_before = self.cache.stats.misses
        lowered = self.passes.run(raw, cache=self.cache, stats=self.stats)
        self.stats.loads += 1
        if self.cache.stats.misses == misses_before:
            self.stats.warm_loads += 1
        return lowered

    def seed_verify(self, program: Program, config: VerifierConfig,
                    analysis: Analysis, heap=None) -> None:
        """Pre-warm the verify stage with an analysis produced
        elsewhere (a batch pre-verification through the service): the
        next :meth:`compile` of the same (bytecode, config, heap
        geometry) hits the cache and skips the verifier entirely."""
        raw = RawProgram(program, config, heap, program_digest(program))
        self.cache.put("verify", raw.verify_key(), (analysis,))

    def translate(self, lowered: LoweredProgram, engine_name: str, env,
                  cpu: int = 0) -> TranslatedProgram:
        """Stage 4: bind an engine to one ExecEnv.  Not content-cached
        (the result closes over the environment); extensions pool the
        result per CPU and report reuse via ``stats.pool_hits``."""
        t0 = time.perf_counter_ns()
        engine = make_engine(
            engine_name,
            lowered.jprog.insns,
            env,
            costs=lowered.jprog.costs,
            helper_costs=lowered.jprog.helper_costs,
            plan=getattr(lowered, "plan", None),
        )
        self.stats.record_stage("translate", time.perf_counter_ns() - t0)
        self.stats.translations += 1
        return TranslatedProgram(lowered, engine_name, cpu, engine)

    # -- reporting --------------------------------------------------------

    def stats_dict(self) -> dict:
        d = self.stats.as_dict()
        d["cache"] = self.cache.stats.as_dict()
        d["cache"]["entries"] = len(self.cache)
        return d

    def format_stats(self) -> str:
        s = self.stats
        lines = [
            f"compilation pipeline: {s.loads} loads ({s.warm_loads} warm), "
            f"{s.translations} translations, {s.pool_hits} pool reuses",
            f"  {'stage':<12s} {'runs':>5s} {'cached':>7s} "
            f"{'total':>10s} {'mean':>10s} {'max':>10s}",
        ]
        order = []
        for n in self.passes.names:
            if n in s.stages:
                order.append(n)
            # Sub-stages ("verify:explore") sit under their parent.
            order += [k for k in s.stages if k.startswith(f"{n}:")]
        order += [n for n in s.stages if n not in order]
        for name in order:
            st = s.stages[name]
            lines.append(
                f"  {name:<12s} {st.runs:>5d} {st.cached:>7d} "
                f"{st.total_ns / 1e6:>8.2f}ms {st.mean_ns / 1e6:>8.3f}ms "
                f"{st.max_ns / 1e6:>8.2f}ms"
            )
        c = self.cache.stats
        lines.append(
            f"cache: {len(self.cache)} entries, {c.hits} hits, "
            f"{c.misses} misses, {c.evictions} evictions"
        )
        for stage, row in c.by_stage.items():
            lines.append(
                f"  {stage:<12s} {row['hits']} hits / {row['misses']} misses"
            )
        return "\n".join(lines)
