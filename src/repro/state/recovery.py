"""Crash-consistent runtime recovery.

``KFlexRuntime.recover(store)`` (which delegates here) is the restart
half of the durability story: a fresh runtime — typically over a fresh
simulated kernel, since the old one died with the process — rebuilds
every pinned map from its snapshot + WAL, re-registers the pins,
reloads programs through the compilation pipeline, re-attaches hooks,
and finishes with a quiescence sweep.  Ordering matters and mirrors
the load path (Fig. 1): maps must exist before programs that reference
them are compiled, and the verifier/pipeline run *after* state
recovery so a program is admitted against the map geometry it will
actually see.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PinRecovery:
    """What recovering one pin found — surfaced by ``kflexctl recover``
    and asserted on by the chaos oracle."""

    path: str
    snapshot_seq: int       # WAL seq the chosen snapshot covered (0 = none)
    recovered_seq: int      # highest seq applied: snapshot + replay
    replayed: int           # WAL records applied past the snapshot
    stale_skipped: int      # records the snapshot already covered
    discarded_bytes: int    # torn/corrupt WAL suffix truncated away
    torn: str | None        # why the WAL scan stopped early, if it did
    snapshots_discarded: int  # corrupt snapshots skipped (fell back)
    entries: int            # live entries after recovery


@dataclass
class RecoveryReport:
    pins: list[PinRecovery] = field(default_factory=list)
    programs_reloaded: list[str] = field(default_factory=list)
    quiescence: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no crash damage was found (nothing torn, no
        snapshot fallback)."""
        return all(
            p.torn is None and p.snapshots_discarded == 0 for p in self.pins
        )

    def describe(self) -> str:
        lines = []
        for p in self.pins:
            status = "clean" if p.torn is None else f"torn ({p.torn})"
            lines.append(
                f"{p.path}: seq {p.recovered_seq} "
                f"(snapshot {p.snapshot_seq} + {p.replayed} replayed), "
                f"{p.entries} entries, {status}"
                + (f", {p.discarded_bytes}B discarded" if p.discarded_bytes else "")
            )
        for name in self.programs_reloaded:
            lines.append(f"reloaded {name}")
        return "\n".join(lines) or "nothing to recover"


def recover_runtime(runtime, store, *, programs=None) -> RecoveryReport:
    """Rebuild a runtime's pinned state from a :class:`DurableStore`.

    ``programs`` maps pin path -> ``factory(runtime, map) ->
    LoadedExtension``; each factory builds its program over the
    recovered map and loads it through ``runtime.load`` (which verifies
    against the recovered geometry and re-attaches the hook).
    Factories run after *all* pins are recovered, so multi-map programs
    can acquire every pin they need.
    """
    report = RecoveryReport()
    for pin in store.pins():
        m, pin_report = store.recover_map(
            pin, runtime.kernel.aspace, runtime.kernel.vmalloc
        )
        runtime.pins.pin(pin, m)
        report.pins.append(pin_report)
    for pin, factory in sorted((programs or {}).items()):
        m = runtime.pins.acquire(pin)
        ext = factory(runtime, m)
        report.programs_reloaded.append(
            getattr(getattr(ext, "program", None), "name", pin)
        )
    # Post-recovery quiescence: a freshly recovered runtime must hold no
    # extension-owned kernel resources (§3.3 applied to restart).
    sweep = runtime.auditor.sweep(runtime)
    report.quiescence = dict(runtime.quiescence_report())
    report.quiescence["sweep_ok"] = sweep.ok
    return report
