"""WAL shipping, quorum acks, epoch fencing, anti-entropy repair.

The durable store (PR 5) makes an acked write survive *one* node's
death; this module makes it survive the node's disk.  Every WAL record
a primary journals is shipped — already CRC-framed, byte-identical —
to N follower replicas, and the client's ack is released only after a
configurable write quorum (``sync_replicas=k``) of followers confirms
the record durable on their side of the fsync-analog.

The pieces are deliberately sans-I/O: frames are plain ``bytes``, a
follower is a :class:`ReplicaSession` over any storage backend, and
the transport is a :class:`FollowerChannel` — :class:`LocalChannel`
for deterministic in-process chaos, ``repro.net.replica``'s socket
channel for the real TCP datapath.

**Frame protocol** (one replication frame per TCP frame; every frame
carries the shipper's epoch)::

    u8   kind      HELLO / APPEND / SNAPSHOT / WATERMARK / ACK
    u64  epoch     fencing token (see below)
    u64  seq       record seq (APPEND), snapshot seq (SNAPSHOT ack),
                   watermark (ACK)
    u16  pin len, pin bytes
    u32  body len, body
    u32  CRC-32 over everything above

APPEND's body is the WAL record exactly as the primary appended it, so
the follower's log is a bit-identical prefix of the primary's and
``scan_wal``'s torn-tail semantics apply unchanged on the receiving
side.  SNAPSHOT bodies are chunked (``u32 total, u32 offset, bytes``)
so a full map image fits under the datapath's 4 KiB frame cap.

**Epoch fencing.**  Followers persist the highest epoch they have seen
(``replication/epoch``) and answer any frame from a lower epoch with
``ST_FENCED`` — a deposed primary's late frames are rejected, and its
shipper raises :class:`~repro.errors.PrimaryFenced` so nothing it
journals after the promotion is ever acknowledged.  Adopting a *higher*
epoch marks every pin dirty: the follower's local WAL suffix may
diverge from the new primary's chosen history, so it acknowledges
nothing until a snapshot install under the new epoch re-bases it
(recorded in the per-pin ``<pin>/repl`` marker).  Because a dirty pin
never acks, a follower's reported watermark is always a verified prefix
of the *current* epoch's history — the invariant replica promotion
relies on when it picks the most-caught-up survivor.

**Anti-entropy.**  ``GAP`` acks (missed records, dirty pins, fresh
followers) trigger :meth:`QuorumShipper.resync`: a WAL-tail transfer
when the primary's log still covers the follower's watermark, otherwise
a chunked snapshot + tail — the same snapshot/WAL handoff primitive
``DurableStore`` recovery uses.  :meth:`QuorumShipper.maintenance`
runs the loop proactively: reconnect dead channels, compare watermarks,
repair laggards.  It is invoked every ``maintenance_every`` commits on
the write path (deterministic under chaos) and explicitly after a
promotion.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    ChannelDown,
    PrimaryFenced,
    QuorumLost,
    ReplicationError,
    SimulatedCrash,
)
from repro.state.snapshot import (
    SnapshotCorrupt,
    decode_snapshot,
    encode_snapshot,
    snapshot_name,
    snapshot_seq,
)
from repro.state.wal import scan_wal

# -- frame codec ------------------------------------------------------------

MSG_HELLO = 1      # announce/raise epoch; ack is a liveness probe
MSG_APPEND = 2     # body = one WAL record blob (primary encoding)
MSG_SNAPSHOT = 3   # body = u32 total, u32 offset, chunk bytes
MSG_WATERMARK = 4  # read-only watermark query (never raises the epoch)
MSG_ACK = 5        # body = status byte

ST_OK = 0       # durable through ack.seq
ST_FENCED = 1   # frame epoch below the follower's persisted epoch
ST_GAP = 2      # record not contiguous / pin dirty: needs resync
ST_BAD = 3      # undecodable frame or corrupt record
ST_CONT = 4     # snapshot chunk staged; more expected

_RHDR = struct.Struct("<BQQH")  # kind, epoch, seq, pin_len
_U32 = struct.Struct("<I")
_U64x2 = struct.Struct("<QQ")

#: Whole-frame budget, matching the TCP datapath's MAX_FRAME so one
#: replication frame always fits one wire frame.
MAX_REPL_FRAME = 1 << 12
#: Snapshot chunk payload size: frame budget minus codec overhead.
SNAP_CHUNK = MAX_REPL_FRAME - 128

#: Storage name of a node's persisted fencing epoch.
EPOCH_NAME = "replication/epoch"


@dataclass(frozen=True)
class ReplFrame:
    kind: int
    epoch: int
    seq: int
    pin: str
    body: bytes

    @property
    def status(self) -> int:
        """ACK status byte (ST_BAD for a malformed ack body)."""
        return self.body[0] if self.body else ST_BAD


def encode_frame(kind: int, epoch: int, seq: int, pin: str,
                 body: bytes = b"") -> bytes:
    pin_b = pin.encode()
    head = b"".join((
        _RHDR.pack(kind, epoch, seq, len(pin_b)),
        pin_b,
        _U32.pack(len(body)),
        body,
    ))
    return head + _U32.pack(zlib.crc32(head))


def decode_frame(blob: bytes) -> ReplFrame:
    if len(blob) < _RHDR.size + 2 * _U32.size:
        raise ReplicationError("replication frame too short")
    head, (crc,) = blob[: -_U32.size], _U32.unpack(blob[-_U32.size:])
    if zlib.crc32(head) != crc:
        raise ReplicationError("replication frame crc mismatch")
    kind, epoch, seq, pin_len = _RHDR.unpack_from(head, 0)
    off = _RHDR.size
    pin = head[off: off + pin_len]
    if len(pin) != pin_len:
        raise ReplicationError("truncated replication pin")
    off += pin_len
    (body_len,) = _U32.unpack_from(head, off)
    off += _U32.size
    body = head[off: off + body_len]
    if len(body) != body_len or off + body_len != len(head):
        raise ReplicationError("truncated replication body")
    if kind not in (MSG_HELLO, MSG_APPEND, MSG_SNAPSHOT, MSG_WATERMARK,
                    MSG_ACK):
        raise ReplicationError(f"unknown replication frame kind {kind}")
    return ReplFrame(kind, epoch, seq, pin.decode(errors="replace"),
                     bytes(body))


def read_epoch(storage) -> int:
    """The node's persisted fencing epoch (0 = never participated)."""
    blob = storage.read(EPOCH_NAME)
    if blob is None or len(blob) != 8:
        return 0
    return int.from_bytes(blob, "little")


def write_epoch(storage, epoch: int) -> None:
    storage.write_atomic(EPOCH_NAME, epoch.to_bytes(8, "little"))


def bump_epoch(storages) -> int:
    """Next fencing epoch: one past the highest any node has persisted.

    Robust to a promotion coordinator that itself restarted — the epoch
    lives with the data, not with whoever is doing the promoting."""
    return max((read_epoch(s) for s in storages), default=0) + 1


# -- follower ---------------------------------------------------------------


@dataclass
class ReplicaStats:
    appends: int = 0
    dup_appends: int = 0
    gaps: int = 0
    fenced: int = 0
    bad_frames: int = 0
    snapshots_installed: int = 0
    hellos: int = 0
    epoch_adoptions: int = 0


class ReplicaSession:
    """Follower-side replication logic over one storage backend.

    A follower is a *log receiver*: shipped records land in the same
    ``<pin>/wal`` / ``snap-`` / ``meta`` layout the primary uses, so
    promotion is nothing more than running ``DurableStore.recover_map``
    over the follower's storage.  No live map is maintained — keeping
    followers cheap, and keeping recovery the single code path that
    turns durable bytes into state.

    Acks are durable acks: an APPEND is acknowledged only after its
    bytes crossed the storage flush (fsync-analog).  Crash injection
    hooks (``replica.append`` / ``replica.flush`` /
    ``antientropy.install``) model the follower dying at each boundary,
    torn tails included — on restart, :meth:`watermark` re-scans with
    ``scan_wal``'s torn-tail rule and truncates the damage, and the
    primary's anti-entropy re-ships the difference.
    """

    def __init__(self, storage, *, node_id: str = "follower", crash=None):
        self.storage = storage
        self.node_id = node_id
        self.crash = crash
        self.crashed = False
        self.epoch = read_epoch(storage)
        self.stats = ReplicaStats()
        self._watermarks: dict[str, int] = {}
        #: Volatile snapshot reassembly buffers: pin -> (total, buf).
        self._staging: dict[str, tuple[int, bytearray]] = {}

    # -- pin state --------------------------------------------------------

    def _repl_marker(self, pin: str) -> tuple[int, int] | None:
        """(epoch_verified, base_seq) from ``<pin>/repl``, or None."""
        blob = self.storage.read(f"{pin}/repl")
        if blob is None or len(blob) != _U64x2.size:
            return None
        return _U64x2.unpack(blob)

    def clean(self, pin: str) -> bool:
        """True when the pin's local history is verified against the
        *current* epoch — i.e. it was (re-)based by a snapshot install
        under this epoch.  Only clean pins accept appends or report a
        non-zero watermark; everything else waits for anti-entropy."""
        if not pin:
            # HELLO acks carry no pin; never touch storage with an
            # empty name (DirStorage rejects it).
            return False
        marker = self._repl_marker(pin)
        return marker is not None and marker[0] == self.epoch

    def watermark(self, pin: str) -> int:
        """Contiguous durable seq for ``pin`` (0 when dirty/unknown).

        Computed from durable bytes only, so a restarted session over
        the same storage reports exactly what survived: the snapshot
        base plus the longest contiguous clean WAL prefix.  A torn tail
        is truncated here, reusing ``scan_wal`` semantics."""
        if not self.clean(pin):
            return 0
        cached = self._watermarks.get(pin)
        if cached is not None:
            return cached
        _, base = self._repl_marker(pin)
        wal_name = f"{pin}/wal"
        blob = self.storage.read(wal_name) or b""
        records, good_len, _torn = scan_wal(blob)
        if good_len < len(blob):
            self.storage.truncate(wal_name, good_len)
        wm = base
        keep = 0
        for rec in records:
            if rec.seq <= wm:
                keep += 1  # stale: snapshot already covers it
                continue
            if rec.seq != wm + 1:
                break  # durable gap: trust only the prefix
            wm = rec.seq
            keep += 1
        self._watermarks[pin] = wm
        return wm

    def pins(self) -> list[str]:
        out = set()
        for name in self.storage.list():
            if "/" not in name:
                continue
            pin, leaf = name.rsplit("/", 1)
            if leaf in ("meta", "wal", "repl") or leaf.startswith("snap-"):
                out.add(pin)
        return sorted(out)

    # -- frame handling ---------------------------------------------------

    def handle_frame(self, blob: bytes) -> bytes:
        """Process one shipped frame; returns the ack frame."""
        try:
            fr = decode_frame(blob)
        except ReplicationError:
            self.stats.bad_frames += 1
            return self._ack("", ST_BAD, 0)
        if fr.kind == MSG_WATERMARK:
            # Read-only: promotion queries must not raise the epoch
            # before the pick is made.
            return self._ack(fr.pin, ST_OK, self.watermark(fr.pin))
        if fr.epoch < self.epoch:
            self.stats.fenced += 1
            return self._ack(fr.pin, ST_FENCED, self.watermark(fr.pin))
        if fr.epoch > self.epoch:
            self._adopt_epoch(fr.epoch)
        if fr.kind == MSG_HELLO:
            self.stats.hellos += 1
            return self._ack("", ST_OK, 0)
        if fr.kind == MSG_APPEND:
            return self._append(fr)
        if fr.kind == MSG_SNAPSHOT:
            return self._snapshot_chunk(fr)
        self.stats.bad_frames += 1
        return self._ack(fr.pin, ST_BAD, 0)

    def _ack(self, pin: str, status: int, seq: int) -> bytes:
        return encode_frame(MSG_ACK, self.epoch, seq, pin, bytes([status]))

    def _adopt_epoch(self, epoch: int) -> None:
        # Persisting the epoch implicitly dirties every pin: their
        # ``repl`` markers still carry the old epoch, so clean() flips
        # false until a snapshot re-bases them under the new one.  The
        # local WAL suffix stays on disk but is never trusted again —
        # it may diverge from the promoted primary's chosen history.
        write_epoch(self.storage, epoch)
        self.epoch = epoch
        self._watermarks.clear()
        self._staging.clear()
        self.stats.epoch_adoptions += 1

    def _append(self, fr: ReplFrame) -> bytes:
        pin = fr.pin
        if not self.clean(pin):
            self.stats.gaps += 1
            return self._ack(pin, ST_GAP, 0)
        records, _good, torn = scan_wal(fr.body)
        if torn is not None or len(records) != 1:
            self.stats.bad_frames += 1
            return self._ack(pin, ST_BAD, self.watermark(pin))
        rec = records[0]
        wm = self.watermark(pin)
        if rec.seq <= wm:
            self.stats.dup_appends += 1
            return self._ack(pin, ST_OK, wm)
        if rec.seq != wm + 1:
            self.stats.gaps += 1
            return self._ack(pin, ST_GAP, wm)
        wal_name = f"{pin}/wal"
        if self.crash is not None:
            self.crash.at("replica.append")
        self.storage.append(wal_name, fr.body)
        if self.crash is not None:
            surviving = self.crash.torn(
                "replica.flush", self.storage.pending_bytes(wal_name)
            )
            if surviving is not None:
                self.storage.flush(wal_name, torn_prefix=surviving)
                raise SimulatedCrash("replica.flush")
        self.storage.flush(wal_name)
        self._watermarks[pin] = rec.seq
        self.stats.appends += 1
        return self._ack(pin, ST_OK, rec.seq)

    def _snapshot_chunk(self, fr: ReplFrame) -> bytes:
        pin = fr.pin
        if len(fr.body) < 2 * _U32.size:
            self.stats.bad_frames += 1
            return self._ack(pin, ST_BAD, 0)
        (total,) = _U32.unpack_from(fr.body, 0)
        (offset,) = _U32.unpack_from(fr.body, _U32.size)
        chunk = fr.body[2 * _U32.size:]
        if offset == 0:
            self._staging[pin] = (total, bytearray())
        staged = self._staging.get(pin)
        if staged is None or staged[0] != total or offset != len(staged[1]):
            self._staging.pop(pin, None)
            self.stats.bad_frames += 1
            return self._ack(pin, ST_BAD, 0)
        staged[1].extend(chunk)
        if len(staged[1]) < total:
            return self._ack(pin, ST_CONT, len(staged[1]))
        blob = bytes(self._staging.pop(pin)[1])
        try:
            seq, meta, _entries = decode_snapshot(blob)
        except SnapshotCorrupt:
            self.stats.bad_frames += 1
            return self._ack(pin, ST_BAD, 0)
        if self.crash is not None:
            self.crash.at("antientropy.install")
        # Install order: image and meta first, the epoch-verification
        # marker last — a crash mid-install leaves the pin dirty and
        # the next resync simply re-runs.
        self.storage.write_atomic(f"{pin}/meta", encode_snapshot(0, meta, []))
        self.storage.write_atomic(snapshot_name(pin, seq), blob)
        # Wipe every OTHER snapshot, newer-seq ones included: a deposed
        # primary rejoining as a follower may hold snapshots from its
        # divergent (unshipped) history whose seq numbers run ahead of
        # the new primary's — recovery must never prefer those.
        for name in self.storage.list(pin + "/"):
            s = snapshot_seq(name)
            if s is not None and s != seq:
                self.storage.delete(name)
        self.storage.delete(f"{pin}/wal")
        self.storage.write_atomic(f"{pin}/repl", _U64x2.pack(self.epoch, seq))
        self._watermarks[pin] = seq
        self.stats.snapshots_installed += 1
        return self._ack(pin, ST_OK, seq)


# -- channels ---------------------------------------------------------------


class FollowerChannel:
    """Transport to one follower: framed send + one ack per request.

    ``alive`` is the shipper's view; a channel marks itself dead by
    raising :class:`~repro.errors.ChannelDown` and is revived only by
    :meth:`reconnect` (driven by anti-entropy maintenance)."""

    node_id: str = "?"
    alive: bool = True

    def send(self, frame: bytes) -> None:
        raise NotImplementedError

    def recv(self, timeout: float | None = None) -> bytes:
        raise NotImplementedError

    def reconnect(self) -> None:
        raise ChannelDown(self.node_id)

    def close(self) -> None:
        pass


class LocalChannel(FollowerChannel):
    """In-process channel: frames go straight to a ReplicaSession.

    Used by the chaos campaign and the tier-1 tests so the whole
    primary/follower dance runs deterministically in one thread.  A
    :class:`~repro.errors.SimulatedCrash` inside the session is this
    follower dying mid-frame: its volatile bytes are dropped (the
    ``kill -9`` model) and the channel goes down; the harness restarts
    the node by installing a fresh session over the same storage."""

    def __init__(self, node_id: str, session: ReplicaSession | None = None):
        self.node_id = node_id
        self.session = session
        self.alive = session is not None
        self._replies: deque[bytes] = deque()

    def send(self, frame: bytes) -> None:
        s = self.session
        if s is None or s.crashed:
            self.alive = False
            raise ChannelDown(self.node_id)
        try:
            self._replies.append(s.handle_frame(frame))
        except SimulatedCrash:
            s.crashed = True
            s.storage.crash()
            self.session = None
            self.alive = False
            raise ChannelDown(self.node_id) from None

    def recv(self, timeout: float | None = None) -> bytes:
        if not self._replies:
            raise ChannelDown(self.node_id)
        return self._replies.popleft()

    def restart(self, session: ReplicaSession) -> None:
        """Harness hook: the follower process came back up."""
        self.session = session
        self._replies.clear()

    def reconnect(self) -> None:
        if self.session is None or self.session.crashed:
            raise ChannelDown(self.node_id)
        self.alive = True


# -- primary ----------------------------------------------------------------


@dataclass
class ShipStats:
    records_shipped: int = 0
    record_acks: int = 0
    dup_acks: int = 0
    snapshots_shipped: int = 0
    snapshot_chunks: int = 0
    tail_records: int = 0
    resyncs: int = 0
    gaps_seen: int = 0
    follower_downs: int = 0
    reconnects: int = 0
    maintenance_runs: int = 0
    quorum_losses: int = 0
    fenced: int = 0
    oversized_records: int = 0

    def merge(self, other: "ShipStats") -> "ShipStats":
        for f in (
            "records_shipped", "record_acks", "dup_acks",
            "snapshots_shipped", "snapshot_chunks", "tail_records",
            "resyncs", "gaps_seen", "follower_downs", "reconnects",
            "maintenance_runs", "quorum_losses", "fenced",
            "oversized_records",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self


class QuorumShipper:
    """Primary-side shipping: stage on the journal hook, commit before
    the ack leaves.

    The map-mutation journal *stages* each record (cheap, no I/O beyond
    the local WAL flush that already happened); the serving layer calls
    :meth:`commit` after the extension returns and before the reply is
    written — the quorum-aware ack path.  ``commit`` ships every staged
    record to all live followers and requires ``sync_replicas`` durable
    acks per record, raising :class:`~repro.errors.QuorumLost`
    otherwise (the reply is then dropped, not acked).

    Channel failures never raise out of a ship: a dead follower is
    marked down, counted, and left for maintenance to reconnect and
    repair.  ``ST_GAP`` acks trigger an inline resync so a freshly
    (re)joined follower can still contribute to this record's quorum.
    """

    def __init__(self, channels, *, sync_replicas: int = 1, epoch: int = 1,
                 crash=None, ack_timeout: float = 5.0,
                 maintenance_every: int | None = 64):
        channels = list(channels)
        if sync_replicas > len(channels):
            raise ReplicationError(
                f"sync_replicas={sync_replicas} exceeds "
                f"{len(channels)} follower channels"
            )
        self.channels = channels
        self.sync_replicas = sync_replicas
        self.epoch = epoch
        self.crash = crash
        self.ack_timeout = ack_timeout
        self.maintenance_every = maintenance_every
        self.stats = ShipStats()
        self.store = None
        self.fenced = False
        self._outbox: list[tuple[str, int, bytes]] = []
        self._commits = 0
        #: seq -> tuple of follower node_ids that acked it durably —
        #: the chaos oracle's ack-set evidence.
        self.last_acks: dict[int, tuple[str, ...]] = {}

    def bind_store(self, store) -> None:
        """Called by ``DurableStore.__init__``; persists this primary's
        epoch next to its data so ``bump_epoch`` sees it."""
        self.store = store
        if read_epoch(store.storage) < self.epoch:
            write_epoch(store.storage, self.epoch)

    # -- write path -------------------------------------------------------

    def stage(self, pin: str, seq: int, blob: bytes) -> None:
        # No size check here: stage runs inside the map-mutation
        # journal hook, after the local WAL append, where nothing can
        # shed the request.  Oversized records are refused in commit()
        # instead, whose QuorumLost the serving layer already sheds.
        self._outbox.append((pin, seq, blob))

    def has_staged(self) -> bool:
        return bool(self._outbox)

    def commit(self) -> dict[int, tuple[str, ...]]:
        """Ship the outbox; returns ``{seq: acked node_ids}``.

        Raises :class:`QuorumLost` / :class:`PrimaryFenced`; either way
        the outbox is consumed (a dead or deposed primary does not
        retry on behalf of an unacknowledged client)."""
        outbox, self._outbox = self._outbox, []
        if self.fenced:
            raise PrimaryFenced(self.epoch, self.epoch)
        acks: dict[int, tuple[str, ...]] = {}
        for pin, seq, blob in outbox:
            if len(blob) > MAX_REPL_FRAME - 128:
                # Cannot be framed for shipment, so it can never reach
                # a follower quorum.  The record is already in the
                # local WAL, but the client is not acked — followers
                # pick the value up via the chunked snapshot path.
                self.stats.oversized_records += 1
                raise QuorumLost(pin, seq, 0, self.sync_replicas)
            acks[seq] = self._ship_record(pin, seq, blob)
        self.last_acks = acks
        self._commits += 1
        if (self.maintenance_every is not None
                and self._commits % self.maintenance_every == 0):
            self.maintenance()
        return acks

    def _ship_record(self, pin: str, seq: int, blob: bytes) -> tuple[str, ...]:
        if self.crash is not None:
            self.crash.at("ship.send")
        frame = encode_frame(MSG_APPEND, self.epoch, seq, pin, blob)
        self.stats.records_shipped += 1
        acked: list[str] = []
        for ch in self.channels:
            if not ch.alive:
                continue
            ack = self._request(ch, frame)
            if ack is None:
                continue
            st = ack.status
            if st == ST_FENCED:
                self._fence(ack)
            if st == ST_OK and ack.seq >= seq:
                self.stats.record_acks += 1
                if ack.seq > seq:
                    self.stats.dup_acks += 1
                acked.append(ch.node_id)
            elif st == ST_GAP:
                self.stats.gaps_seen += 1
                if self.resync(ch, pin, ack.seq) >= seq:
                    acked.append(ch.node_id)
        if len(acked) < self.sync_replicas:
            self.stats.quorum_losses += 1
            raise QuorumLost(pin, seq, len(acked), self.sync_replicas)
        return tuple(acked)

    def _request(self, ch, frame: bytes) -> ReplFrame | None:
        """Send + read one ack; None means the channel just died."""
        try:
            ch.send(frame)
            ack = decode_frame(ch.recv(self.ack_timeout))
        except (ChannelDown, ReplicationError):
            # Only live channels are ever sent to, so this is always a
            # live -> dead transition (some transports mark themselves
            # dead before raising; don't trust ``ch.alive`` here).
            ch.alive = False
            self.stats.follower_downs += 1
            return None
        return ack

    def _fence(self, ack: ReplFrame) -> None:
        self.fenced = True
        self.stats.fenced += 1
        raise PrimaryFenced(self.epoch, ack.epoch)

    # -- anti-entropy -----------------------------------------------------

    def resync(self, ch, pin: str, follower_wm: int) -> int:
        """Repair one follower's ``pin`` to the primary's current seq.

        WAL-tail transfer when the primary's log still reaches back to
        the follower's watermark (the follower holds a verified prefix
        of this epoch's history, so appending the missing records is
        enough); otherwise a chunked snapshot install, which also
        re-bases a dirty pin under the current epoch.  Returns the
        follower's watermark after repair (0 on failure)."""
        if self.store is None or pin not in self.store._journals:
            return 0
        if self.crash is not None:
            self.crash.at("antientropy.send")
        self.stats.resyncs += 1
        journal = self.store._journals[pin]
        target = journal.wal.seq
        if follower_wm > 0:
            wal_blob = self.store.storage.read(f"{pin}/wal") or b""
            records, _good, _torn = scan_wal(wal_blob)
            tail = [r for r in records if r.seq > follower_wm]
            covers = (
                not tail or tail[0].seq == follower_wm + 1
            ) and (not records or records[0].seq <= follower_wm + 1)
            if covers:
                wm = follower_wm
                from repro.state.wal import encode_record

                for rec in tail:
                    ack = self._request(ch, encode_frame(
                        MSG_APPEND, self.epoch, rec.seq, pin,
                        encode_record(rec.seq, rec.op, rec.key, rec.value),
                    ))
                    if ack is None:
                        return 0
                    if ack.status == ST_FENCED:
                        self._fence(ack)
                    if ack.status != ST_OK or ack.seq < rec.seq:
                        break  # fall through to the snapshot path
                    self.stats.tail_records += 1
                    wm = ack.seq
                else:
                    if wm >= target:
                        return wm
                    # The tail closed no further than wm < target (the
                    # WAL was compacted past records the follower never
                    # saw): only a snapshot can finish the repair.
        return self._send_snapshot(
            ch, pin, target,
            encode_snapshot(target, journal.map.meta(),
                            journal.map.entries()),
        )

    def _send_snapshot(self, ch, pin: str, seq: int, blob: bytes) -> int:
        """Chunked snapshot install on one follower; returns its
        post-install watermark (0 on failure)."""
        total = len(blob)
        off = 0
        while True:
            chunk = blob[off: off + SNAP_CHUNK]
            body = _U32.pack(total) + _U32.pack(off) + chunk
            ack = self._request(
                ch, encode_frame(MSG_SNAPSHOT, self.epoch, seq, pin, body)
            )
            if ack is None:
                return 0
            if ack.status == ST_FENCED:
                self._fence(ack)
            self.stats.snapshot_chunks += 1
            off += len(chunk)
            if off >= total:
                if ack.status == ST_OK and ack.seq >= seq:
                    self.stats.snapshots_shipped += 1
                    return ack.seq
                return 0
            if ack.status != ST_CONT:
                return 0

    def ship_snapshot(self, pin: str, seq: int, blob: bytes) -> None:
        """Propagate a primary compaction so follower WALs stay bounded.

        Best-effort: a follower that misses it just keeps a longer WAL
        until the next resync; no quorum requirement applies (the
        records the snapshot covers were already individually acked)."""
        for ch in self.channels:
            if ch.alive:
                self._send_snapshot(ch, pin, seq, blob)

    def hello(self, ch) -> bool:
        """Announce (and raise) this primary's epoch on one channel."""
        ack = self._request(ch, encode_frame(MSG_HELLO, self.epoch, 0, ""))
        if ack is not None and ack.status == ST_FENCED:
            self._fence(ack)
        return ack is not None and ack.status == ST_OK

    def announce(self) -> int:
        """HELLO every live channel; returns how many answered."""
        return sum(1 for ch in self.channels if ch.alive and self.hello(ch))

    def watermarks(self, pin: str) -> dict[str, int]:
        """Read-only follower watermarks (live channels only)."""
        out: dict[str, int] = {}
        frame = encode_frame(MSG_WATERMARK, self.epoch, 0, pin)
        for ch in self.channels:
            if not ch.alive:
                continue
            ack = self._request(ch, frame)
            if ack is not None and ack.status == ST_OK:
                out[ch.node_id] = ack.seq
        return out

    def maintenance(self) -> None:
        """One anti-entropy pass: reconnect the dead, repair the lagging.

        Runs on the write path every ``maintenance_every`` commits (and
        explicitly after promotion), so divergence heals without a
        background thread racing the serving loop."""
        self.stats.maintenance_runs += 1
        for ch in self.channels:
            if not ch.alive:
                try:
                    ch.reconnect()
                except ChannelDown:
                    continue
                self.stats.reconnects += 1
                if not self.hello(ch):
                    continue
            if self.store is None:
                continue
            for pin in list(self.store._journals):
                target = self.store._journals[pin].wal.seq
                ack = self._request(
                    ch, encode_frame(MSG_WATERMARK, self.epoch, 0, pin)
                )
                if ack is None:
                    break
                if ack.status == ST_OK and ack.seq < target:
                    self.resync(ch, pin, ack.seq)


# -- promotion --------------------------------------------------------------


def pick_promotee(watermarks: dict[str, int]) -> str | None:
    """Most-caught-up follower: highest verified contiguous seq, ties
    broken by node id for determinism.  None when nobody reported."""
    if not watermarks:
        return None
    return min(watermarks, key=lambda n: (-watermarks[n], n))
