"""The durable store: on-disk layout + journaling + crash-consistent
map recovery.

Layout per pin path (storage names are slash-separated)::

    <pin>/meta              map geometry, written once at attach time
    <pin>/wal               append-only mutation log (repro.state.wal)
    <pin>/snap-<seq>        compacting snapshots (repro.state.snapshot)

Write ordering for a snapshot (crash sites marked ``*``)::

    encode entries at WAL seq S
    *snapshot.write*     — nothing durable changed yet
    write_atomic(snap-S)
    *snapshot.commit*    — both old and new snapshots valid; replay
                           skips seq <= S, so double-coverage is inert
    delete older snapshots
    *wal.compact*        — snap-S valid, WAL still holds <= S records
    truncate WAL

Every arrow is crash-safe: recovery picks the newest *valid* snapshot,
replays only WAL records past its sequence, and truncates (never
parses) anything after the first torn or corrupt WAL frame.
"""

from __future__ import annotations

from repro.errors import StateError
from repro.state.recovery import PinRecovery
from repro.state.snapshot import (
    SnapshotCorrupt,
    decode_snapshot,
    encode_snapshot,
    snapshot_name,
    snapshot_seq,
)
from repro.state.storage import DirStorage, MemStorage
from repro.state.wal import OP_DELETE, OP_UPDATE, MapWal, scan_wal


class MapJournal:
    """Installed as ``map.journal`` by :meth:`DurableStore.attach`.

    Receives canonical post-mutation bytes from the map and feeds the
    WAL; optionally triggers a compacting snapshot every N records.
    """

    def __init__(self, store: "DurableStore", path: str, m, wal: MapWal):
        self.store = store
        self.path = path
        self.map = m
        self.wal = wal
        self._since_snapshot = 0

    def record_update(self, key: bytes, value: bytes) -> None:
        self.wal.append(OP_UPDATE, key, value)
        self._stage_shipment()
        self._maybe_snapshot()

    def record_delete(self, key: bytes) -> None:
        self.wal.append(OP_DELETE, key)
        self._stage_shipment()
        self._maybe_snapshot()

    def _stage_shipment(self) -> None:
        # Stage-only on the journal hook: the actual ship + quorum wait
        # happens in QuorumShipper.commit(), which the serving layer
        # calls after the extension returns and before the client's
        # reply goes out.  Keeping the network out of the map mutation
        # keeps the engine invocation path single-node-fast.
        shipper = self.store.shipper
        if shipper is not None:
            shipper.stage(self.path, self.wal.seq, self.wal.last_blob)

    def _maybe_snapshot(self) -> None:
        self._since_snapshot += 1
        every = self.store.snapshot_every
        if every is not None and self._since_snapshot >= every:
            self.store.snapshot(self.path)

    def detach(self) -> None:
        if self.map.journal is self:
            self.map.journal = None


class DurableStore:
    """One durable-state root: many pinned maps, one storage backend.

    ``sync_every=1`` (the default) flushes the WAL after every mutation
    — an acknowledged write is durable, which is what lets the shard
    failover test promise bit-identical surviving keys.  Larger values
    trade the durability barrier for throughput (benchmarked in
    ``benchmarks/bench_recovery.py``).
    """

    def __init__(self, root=None, *, storage=None, sync_every: int | None = 1,
                 snapshot_every: int | None = None, crash=None, shipper=None):
        if storage is None:
            storage = DirStorage(root) if root is not None else MemStorage()
        elif root is not None:
            raise StateError("pass either root or storage, not both")
        self.storage = storage
        self.sync_every = sync_every
        self.snapshot_every = snapshot_every
        self.crash = crash
        #: Optional :class:`repro.state.replication.QuorumShipper`: every
        #: journaled WAL record is staged for follower shipment, and the
        #: serving layer commits the outbox before acking the client.
        self.shipper = shipper
        self._journals: dict[str, MapJournal] = {}
        if shipper is not None:
            shipper.bind_store(self)

    # -- attach / journal -------------------------------------------------

    def attach(self, path: str, m) -> None:
        """Pin a *fresh* map's state under ``path`` and start journaling.

        Refuses paths that already hold durable state: silently
        shadowing a previous incarnation is how state gets lost, so an
        existing pin must go through :meth:`recover_map` instead.
        """
        if path in self._journals:
            raise StateError(f"map already attached at {path!r}")
        if self._pin_state_names(path):
            raise StateError(
                f"durable state already exists at {path!r}; recover it instead"
            )
        if m.journal is not None:
            raise StateError("map is already journaled by another store")
        self.storage.write_atomic(f"{path}/meta", encode_snapshot(0, m.meta(), []))
        wal = MapWal(
            self.storage, f"{path}/wal", sync_every=self.sync_every, crash=self.crash
        )
        journal = MapJournal(self, path, m, wal)
        m.journal = journal
        self._journals[path] = journal

    def wal(self, path: str) -> MapWal:
        return self._journals[path].wal

    def map(self, path: str):
        return self._journals[path].map

    def pins(self) -> list[str]:
        """Pin paths with durable state (not merely attached in-memory)."""
        out = set()
        for name in self.storage.list():
            if "/" not in name:
                continue
            pin, leaf = name.rsplit("/", 1)
            if leaf in ("meta", "wal") or leaf.startswith("snap-"):
                out.add(pin)
        return sorted(out)

    def attached(self) -> list[str]:
        return sorted(self._journals)

    def _pin_state_names(self, path: str) -> list[str]:
        return [
            n
            for n in self.storage.list(path + "/")
            if n.rsplit("/", 1)[-1] in ("meta", "wal")
            or n.rsplit("/", 1)[-1].startswith("snap-")
        ]

    # -- snapshots --------------------------------------------------------

    def snapshot(self, path: str) -> int:
        """Write a compacting snapshot of the pinned map; returns the
        WAL sequence it covers."""
        try:
            journal = self._journals[path]
        except KeyError:
            raise StateError(f"no map attached at {path!r}") from None
        seq = journal.wal.seq
        blob = encode_snapshot(seq, journal.map.meta(), journal.map.entries())
        if self.crash is not None:
            self.crash.at("snapshot.write")
        self.storage.write_atomic(snapshot_name(path, seq), blob)
        if self.crash is not None:
            self.crash.at("snapshot.commit")
        for name in self.storage.list(path + "/"):
            s = snapshot_seq(name)
            if s is not None and s < seq:
                self.storage.delete(name)
        if self.crash is not None:
            self.crash.at("wal.compact")
        journal.wal.reset(seq)
        journal._since_snapshot = 0
        if self.shipper is not None:
            # Propagate the compaction so follower WALs stay bounded;
            # best-effort (the covered records were already acked).
            self.shipper.ship_snapshot(path, seq, blob)
        return seq

    # -- recovery ---------------------------------------------------------

    def recover_map(self, path: str, aspace, arena):
        """Rebuild the pinned map at ``path`` from durable state only.

        Returns ``(map, PinRecovery)``.  Never raises on torn or
        corrupt crash leftovers — those degrade to an older snapshot /
        shorter WAL prefix; it raises :class:`StateError` only when the
        pin has no usable metadata at all (it never existed).
        """
        from repro.ebpf.maps import build_map

        # Newest valid snapshot wins; corrupt ones are discarded.
        snaps = sorted(
            (
                (snapshot_seq(n), n)
                for n in self.storage.list(path + "/")
                if snapshot_seq(n) is not None
            ),
            reverse=True,
        )
        snap_seq, meta, entries = 0, None, []
        snapshots_discarded = 0
        for seq, name in snaps:
            blob = self.storage.read(name)
            try:
                snap_seq, meta, entries = decode_snapshot(blob)
            except SnapshotCorrupt:
                snapshots_discarded += 1
                self.storage.delete(name)
                continue
            break
        if meta is None:
            blob = self.storage.read(f"{path}/meta")
            if blob is not None:
                try:
                    _, meta, _ = decode_snapshot(blob)
                except SnapshotCorrupt:
                    meta = None
            if meta is None:
                raise StateError(f"no usable metadata for pin {path!r}")

        m = build_map(aspace, arena, meta)
        m.load_entries(entries)

        wal_name = f"{path}/wal"
        blob = self.storage.read(wal_name) or b""
        records, good_len, torn = scan_wal(blob)
        discarded_bytes = len(blob) - good_len
        if discarded_bytes:
            self.storage.truncate(wal_name, good_len)

        replayed = stale_skipped = 0
        last_seq = snap_seq
        for rec in records:
            if self.crash is not None:
                self.crash.at("recovery.replay")
            if rec.seq <= snap_seq:
                stale_skipped += 1
                continue
            if rec.op == OP_UPDATE:
                m.load_entries([(rec.key, rec.value)])
            elif rec.op == OP_DELETE:
                m.delete(rec.key)
            replayed += 1
            last_seq = rec.seq

        wal = MapWal(
            self.storage,
            wal_name,
            sync_every=self.sync_every,
            start_seq=max(last_seq, snap_seq),
            crash=self.crash,
        )
        journal = MapJournal(self, path, m, wal)
        m.journal = journal
        self._journals[path] = journal
        report = PinRecovery(
            path=path,
            snapshot_seq=snap_seq,
            recovered_seq=wal.seq,
            replayed=replayed,
            stale_skipped=stale_skipped,
            discarded_bytes=discarded_bytes,
            torn=torn,
            snapshots_discarded=snapshots_discarded,
            entries=len(m) if hasattr(m, "__len__") else m.max_entries,
        )
        return m, report

    # -- lifecycle --------------------------------------------------------

    def flush(self) -> None:
        for journal in self._journals.values():
            journal.wal.flush()

    def crash_volatile(self) -> None:
        """Model process death: pending bytes vanish, journals detach.

        The storage object survives (it *is* the disk); a new
        DurableStore over the same storage is the restarted process.
        """
        self.storage.crash()
        for journal in self._journals.values():
            journal.detach()
        self._journals.clear()

    def close(self) -> None:
        self.flush()
        for journal in self._journals.values():
            journal.detach()
        self._journals.clear()
