"""Per-map append-only write-ahead log.

Record format (all little-endian)::

    u32  payload length
    u32  CRC-32 of the payload
    payload:
        u64  sequence number (monotonic per pin, 1-based)
        u8   op (1 = update, 2 = delete)
        u32  key length, then key bytes
        u32  value length, then value bytes (empty for deletes)

The **torn-tail rule**: a scan accepts the longest prefix of whole,
CRC-clean records and discards everything after the first framing or
checksum failure.  A torn suffix is the *expected* outcome of dying
between an append and its fsync-analog, so it is not an error — the
recovery path truncates it and reports how many bytes were discarded.
Corruption in the middle of the durable region degrades the same way
(the log is trusted only up to its first bad frame); the recovered map
is then a clean prefix of history, which is exactly the guarantee the
chaos oracle checks.

Sequence numbers make replay idempotent across the snapshot boundary:
records at or below the snapshot's sequence are skipped, so a crash
after snapshot commit but before WAL compaction double-applies nothing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

OP_UPDATE = 1
OP_DELETE = 2

_HDR = struct.Struct("<II")  # payload_len, crc32
_SEQ_OP = struct.Struct("<QB")
_U32 = struct.Struct("<I")

#: Upper bound on one record's payload; anything larger in a length
#: prefix is treated as framing corruption, not an allocation request.
MAX_PAYLOAD = 1 << 24


@dataclass(frozen=True)
class WalRecord:
    seq: int
    op: int
    key: bytes
    value: bytes


def encode_record(seq: int, op: int, key: bytes, value: bytes = b"") -> bytes:
    payload = b"".join(
        (
            _SEQ_OP.pack(seq, op),
            _U32.pack(len(key)),
            key,
            _U32.pack(len(value)),
            value,
        )
    )
    return _HDR.pack(len(payload), zlib.crc32(payload)) + payload


def _decode_payload(payload: bytes) -> WalRecord | None:
    try:
        seq, op = _SEQ_OP.unpack_from(payload, 0)
        off = _SEQ_OP.size
        (klen,) = _U32.unpack_from(payload, off)
        off += _U32.size
        key = payload[off : off + klen]
        if len(key) != klen:
            return None
        off += klen
        (vlen,) = _U32.unpack_from(payload, off)
        off += _U32.size
        value = payload[off : off + vlen]
        if len(value) != vlen or off + vlen != len(payload):
            return None
    except struct.error:
        return None
    if op not in (OP_UPDATE, OP_DELETE):
        return None
    return WalRecord(seq, op, bytes(key), bytes(value))


def scan_wal(blob: bytes) -> tuple[list[WalRecord], int, str | None]:
    """Decode the longest clean prefix of a WAL blob.

    Returns ``(records, good_len, torn)`` where ``good_len`` is the
    byte length of the accepted prefix and ``torn`` names the reason
    the scan stopped early (``None`` when the whole blob was clean).
    """
    records: list[WalRecord] = []
    off = 0
    n = len(blob)
    while off < n:
        if n - off < _HDR.size:
            return records, off, "torn header"
        plen, crc = _HDR.unpack_from(blob, off)
        if plen == 0 or plen > MAX_PAYLOAD:
            return records, off, "bad length prefix"
        if off + _HDR.size + plen > n:
            return records, off, "torn payload"
        payload = blob[off + _HDR.size : off + _HDR.size + plen]
        if zlib.crc32(payload) != crc:
            return records, off, "crc mismatch"
        rec = _decode_payload(payload)
        if rec is None:
            return records, off, "malformed payload"
        records.append(rec)
        off += _HDR.size + plen
    return records, off, None


class MapWal:
    """Appender for one pin's WAL, with an explicit durability policy.

    ``sync_every=1`` flushes (fsync-analog) after every record — an
    acknowledged write is durable, the policy the shard-failover path
    uses.  ``sync_every=N`` batches N records per flush (the benchmark
    configuration); ``sync_every=None`` flushes only on demand.
    """

    def __init__(self, storage, name: str, *, sync_every: int | None = 1,
                 start_seq: int = 0, crash=None):
        self.storage = storage
        self.name = name
        self.sync_every = sync_every
        self.crash = crash
        #: Sequence of the most recently appended record.
        self.seq = start_seq
        #: Sequence covered by the last completed flush — the durable
        #: barrier: records at or below it survive any crash.
        self.durable_seq = start_seq
        #: Encoded bytes of the most recent append — the exact frame a
        #: replication shipper forwards to followers (no re-encoding,
        #: so follower WALs are byte-identical to the primary's).
        self.last_blob: bytes = b""
        self._unsynced = 0
        self.records_appended = 0
        self.flushes = 0
        self.bytes_appended = 0

    def append(self, op: int, key: bytes, value: bytes = b"") -> int:
        self.seq += 1
        blob = encode_record(self.seq, op, key, value)
        self.last_blob = blob
        self.storage.append(self.name, blob)
        self.records_appended += 1
        self.bytes_appended += len(blob)
        self._unsynced += 1
        if self.crash is not None:
            self.crash.at("wal.append")
        if self.sync_every is not None and self._unsynced >= self.sync_every:
            self.flush()
        return self.seq

    def flush(self) -> None:
        """Durability point.  A crash injected here persists only a
        prefix of the pending bytes (the torn tail)."""
        if self._unsynced == 0:
            return
        if self.crash is not None:
            torn = self.crash.torn("wal.flush", self.storage.pending_bytes(self.name))
            if torn is not None:
                from repro.errors import SimulatedCrash

                self.storage.flush(self.name, torn_prefix=torn)
                raise SimulatedCrash("wal.flush")
        self.storage.flush(self.name)
        self.durable_seq = self.seq
        self._unsynced = 0
        self.flushes += 1

    def reset(self, seq: int) -> None:
        """Compaction: the snapshot now covers everything up to ``seq``;
        drop the log (durable and pending alike) and keep counting."""
        self.storage.delete(self.name)
        self._unsynced = 0
        self.seq = seq
        self.durable_seq = seq
